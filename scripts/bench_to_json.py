#!/usr/bin/env python3
"""Append a google-benchmark run to the BENCH_sim.json trajectory.

Workflow (details in docs/PERFORMANCE.md):

    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release -DHS_BUILD_BENCH=ON
    cmake --build build-rel -j
    for i in $(seq 1 8); do
      ./build-rel/bench/micro_sim --benchmark_min_time=0.1 \
          --benchmark_format=json >> /tmp/bench_rounds.jsonl
    done
    python3 scripts/bench_to_json.py /tmp/bench_rounds.jsonl \
        --label my-change --engine "one-line description" [--dry-run]

The input file holds one or more google-benchmark JSON documents
(concatenated runs are fine). For every benchmark the MINIMUM real_time
across all runs is kept — on shared hosts the minimum is the robust
summary; means and single runs drift with background load. The script
appends one entry to the "entries" list, preserving everything already
recorded, and derives speedups against a chosen baseline entry.

Only Python's standard library is used.
"""

import argparse
import json
import re
import sys
from datetime import date
from pathlib import Path

# Completed jobs per iteration of the end-to-end cluster benchmark
# (mean over its seed cycle; see bench/micro_sim.cpp). Used to derive
# jobs_per_sec from the minimum iteration time.
CLUSTER_JOBS_PER_ITER = 14895.0
CLUSTER_BENCH = "BM_FullClusterSimulation"

# Headline latency benchmarks: lower-is-better real_time metrics gated
# by --latency-regression. The serving p99 benches report the batch p99
# as their iteration time (see bench/micro_serving.cpp), so real_time
# here IS the tail latency, and min-over-rounds keeps the least
# contended estimate.
HEADLINE_LATENCY = [
    r"^BM_ServingAcquireP99LeastLoad/",
    r"^BM_ServingAcquireP99Alias/",
    r"^BM_ServingAcquireP99Health/",
]


def is_headline_latency(name):
    return any(re.search(p, name) for p in HEADLINE_LATENCY)


def parse_runs(path):
    """Yield google-benchmark JSON documents from a file that may hold
    several of them back to back."""
    text = Path(path).read_text()
    decoder = json.JSONDecoder()
    pos = 0
    while True:
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            return
        doc, end = decoder.raw_decode(text, pos)
        yield doc
        pos = end


def collect_minima(runs):
    """name -> {"real_time": min, "unit": ...} over all runs."""
    minima = {}
    for doc in runs:
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            entry = minima.setdefault(
                name, {"real_time": float("inf"), "unit": bench["time_unit"]}
            )
            entry["real_time"] = min(entry["real_time"], bench["real_time"])
    return minima


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="file of google-benchmark JSON runs")
    parser.add_argument("--label", required=True,
                        help="entry label, e.g. pr3-heap-tuning")
    parser.add_argument("--engine", default="",
                        help="one-line description of the engine state")
    parser.add_argument("--commit", default="",
                        help="commit hash the binary was built from")
    parser.add_argument("--build", default="Release, gcc -O3")
    parser.add_argument("--baseline", default=None,
                        help="label of the entry to compute speedups "
                             "against (default: previous entry)")
    parser.add_argument("--trajectory", default=None,
                        help="path to BENCH_sim.json (default: repo root "
                             "relative to this script)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the new entry instead of writing")
    parser.add_argument("--check-regression", type=float, default=None,
                        metavar="PCT",
                        help="fail (exit 1) if the cluster benchmark's "
                             "jobs/sec fell more than PCT%% below the "
                             "baseline entry's recorded value")
    parser.add_argument("--latency-regression", type=float, default=None,
                        metavar="PCT",
                        help="fail (exit 1) if any headline latency "
                             "benchmark (lower is better; see "
                             "HEADLINE_LATENCY) rose more than PCT%% "
                             "above the baseline entry's recorded value")
    args = parser.parse_args()

    trajectory_path = Path(
        args.trajectory
        or Path(__file__).resolve().parent.parent / "BENCH_sim.json"
    )
    trajectory = json.loads(trajectory_path.read_text())

    minima = collect_minima(parse_runs(args.input))
    if not minima:
        sys.exit("no benchmark results found in " + args.input)
    results = {}
    for name in sorted(minima):
        results[name] = {
            "real_time": round(minima[name]["real_time"], 3),
            "unit": minima[name]["unit"],
        }
        if name == CLUSTER_BENCH:
            unit = minima[name]["unit"]
            scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
            seconds = minima[name]["real_time"] * scale
            results[name]["jobs_per_sec"] = round(
                CLUSTER_JOBS_PER_ITER / seconds
            )

    entry = {
        "label": args.label,
        "date": date.today().isoformat(),
        "build": args.build,
        "results": results,
    }
    if args.engine:
        entry["engine"] = args.engine
    if args.commit:
        entry["commit"] = args.commit

    entries = trajectory.setdefault("entries", [])
    baseline = None
    if args.baseline:
        matches = [e for e in entries if e["label"] == args.baseline]
        if not matches:
            sys.exit("baseline label not found: " + args.baseline)
        baseline = matches[-1]
    elif entries:
        baseline = entries[-1]
    if baseline is not None:
        speedups = {"baseline": baseline["label"]}
        for name, res in results.items():
            base = baseline["results"].get(name)
            if base and base["unit"] == res["unit"] and res["real_time"] > 0:
                speedups[name] = round(base["real_time"] / res["real_time"], 2)
        entry["speedup_vs"] = speedups

    if args.check_regression is not None:
        # Gate on throughput of the end-to-end cluster benchmark: the
        # one number every engine change must not silently regress.
        if baseline is None:
            sys.exit("--check-regression needs a baseline entry")
        base_res = baseline["results"].get(CLUSTER_BENCH, {})
        base_jps = base_res.get("jobs_per_sec")
        new_jps = results.get(CLUSTER_BENCH, {}).get("jobs_per_sec")
        if base_jps and new_jps:
            floor = base_jps * (1.0 - args.check_regression / 100.0)
            verdict = "OK" if new_jps >= floor else "REGRESSION"
            print(
                f"{CLUSTER_BENCH}: {new_jps} jobs/sec vs baseline "
                f"'{baseline['label']}' {base_jps} "
                f"(floor {floor:.0f}, -{args.check_regression}%): {verdict}"
            )
            if new_jps < floor:
                sys.exit(1)
        else:
            print(
                f"--check-regression: no jobs_per_sec to compare "
                f"(baseline: {base_jps}, new: {new_jps}); skipping gate"
            )

    if args.latency_regression is not None:
        # Gate on the lower-is-better headline latencies: each one
        # present in both the baseline and this run must stay within
        # PCT% of its recorded value. Latency on shared runners is far
        # noisier than throughput, so CI passes a wide margin here.
        if baseline is None:
            sys.exit("--latency-regression needs a baseline entry")
        compared = 0
        failed = []
        for name, res in sorted(results.items()):
            if not is_headline_latency(name):
                continue
            base = baseline["results"].get(name)
            if not base or base["unit"] != res["unit"]:
                continue
            compared += 1
            ceiling = base["real_time"] * (1.0 + args.latency_regression / 100.0)
            verdict = "OK" if res["real_time"] <= ceiling else "REGRESSION"
            print(
                f"{name}: {res['real_time']} {res['unit']} vs baseline "
                f"'{baseline['label']}' {base['real_time']} "
                f"(ceiling {ceiling:.3f}, +{args.latency_regression}%): "
                f"{verdict}"
            )
            if res["real_time"] > ceiling:
                failed.append(name)
        if compared == 0:
            print("--latency-regression: no headline latency benchmarks "
                  "to compare; skipping gate")
        if failed:
            sys.exit(1)

    if args.dry_run:
        json.dump(entry, sys.stdout, indent=2)
        print()
        return
    entries.append(entry)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended '{args.label}' to {trajectory_path}")


if __name__ == "__main__":
    main()
