#!/usr/bin/env python3
"""Gate the health layer's acquire-p99 cost from bench rounds files.

The serving p99 microbenchmarks report the batch p99 as their iteration
time (see bench/micro_serving.cpp), so each benchmark's minimum
real_time over the rounds IS its least-contended tail-latency estimate.
Two checks, both same-runner so they avoid the cross-run noise that
forces bench_to_json.py's --latency-regression gate to use a wide
margin:

1. A/B gate (with --ab-baseline): for every benchmark name present in
   both rounds files, the candidate minimum must stay within
   --ab-max-ratio of the baseline minimum. CI interleaves rounds of the
   base-ref binary and the PR binary, so this enforces the acceptance
   bound "acquire p99 unchanged (<= 1.01x) with the health layer
   compiled in but configured off".

2. Idle-tax guard (always): within the candidate file,
   BM_ServingAcquireP99Health (health on but idle: every acquire arms a
   release deadline that never expires) vs BM_ServingAcquireP99LeastLoad
   (same stack, health off). Arming is O(1) — a ring store plus two
   counter bumps — but it does touch the deadline ring and a per-machine
   counter, so the measured tax is a few tens of ns of cache traffic at
   n = 10^4. The default ceiling (--idle-max-ratio 1.5) leaves room for
   that while still failing loudly if the per-acquire work ever becomes
   O(machines) or O(in-flight), which shows up as a 10-100x ratio.

Usage:
    python3 scripts/check_health_overhead.py new_rounds.jsonl \
        [--ab-baseline base_rounds.jsonl] [--ab-max-ratio 1.01] \
        [--idle-max-ratio 1.5]

Only Python's standard library is used.
"""

import argparse
import json
import sys
from pathlib import Path

BASELINE_BENCH = "BM_ServingAcquireP99LeastLoad"
HEALTH_BENCH = "BM_ServingAcquireP99Health"


def parse_runs(path):
    """Yield google-benchmark JSON documents from a file that may hold
    several of them back to back."""
    text = Path(path).read_text()
    decoder = json.JSONDecoder()
    pos = 0
    while True:
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            return
        doc, end = decoder.raw_decode(text, pos)
        yield doc
        pos = end


def collect_minima(path):
    """name -> {"real_time": min over rounds, "unit": ...}."""
    minima = {}
    for doc in parse_runs(path):
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            entry = minima.setdefault(
                bench["name"],
                {"real_time": float("inf"), "unit": bench["time_unit"]},
            )
            entry["real_time"] = min(entry["real_time"], bench["real_time"])
    return minima


def gate_ratio(label, value, baseline, ceiling, unit):
    ratio = value / baseline
    verdict = "OK" if ratio <= ceiling else "REGRESSION"
    print(f"{label}: {value} vs {baseline} {unit} -> "
          f"ratio {ratio:.4f} (ceiling {ceiling}): {verdict}")
    return ratio <= ceiling


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="candidate rounds file (google-"
                                      "benchmark JSON runs, concatenated)")
    parser.add_argument("--ab-baseline", default=None, metavar="ROUNDS",
                        help="rounds file from the base-ref binary; every "
                             "benchmark present in both files is gated")
    parser.add_argument("--ab-max-ratio", type=float, default=1.01,
                        help="A/B ceiling per benchmark (default: "
                             "%(default)s)")
    parser.add_argument("--idle-max-ratio", type=float, default=1.5,
                        help="ceiling on p99(health idle) / p99(health "
                             "off) within the candidate file (default: "
                             "%(default)s)")
    args = parser.parse_args()

    new = collect_minima(args.input)
    ok = True

    if args.ab_baseline is not None:
        base = collect_minima(args.ab_baseline)
        common = sorted(set(new) & set(base))
        if not common:
            sys.exit(f"--ab-baseline: no common benchmarks between "
                     f"{args.ab_baseline} and {args.input}")
        for name in common:
            if base[name]["unit"] != new[name]["unit"]:
                sys.exit(f"{name}: unit mismatch "
                         f"({base[name]['unit']} vs {new[name]['unit']})")
            if base[name]["real_time"] <= 0.0:
                sys.exit(f"{name}: non-positive baseline p99")
            ok &= gate_ratio(f"A/B {name}", new[name]["real_time"],
                             base[name]["real_time"], args.ab_max_ratio,
                             new[name]["unit"])

    off = [v for k, v in new.items() if k.split("/")[0] == BASELINE_BENCH]
    idle = [v for k, v in new.items() if k.split("/")[0] == HEALTH_BENCH]
    if not off or not idle:
        sys.exit(f"need both {BASELINE_BENCH} and {HEALTH_BENCH} in "
                 f"{args.input}")
    if off[0]["unit"] != idle[0]["unit"]:
        sys.exit(f"unit mismatch: {off[0]['unit']} vs {idle[0]['unit']}")
    if off[0]["real_time"] <= 0.0:
        sys.exit("non-positive health-off baseline p99")
    ok &= gate_ratio(f"idle-tax {HEALTH_BENCH}", idle[0]["real_time"],
                     off[0]["real_time"], args.idle_max_ratio,
                     off[0]["unit"])

    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
