#!/usr/bin/env python3
"""Plot hetsched bench output.

Every bench binary prints its tables as CSV when run with --csv; this
script turns those CSV blocks into line plots resembling the paper's
figures.

Usage:
    ./build/bench/fig5_system_load --csv > fig5.txt
    python3 scripts/plot_results.py fig5.txt -o fig5.png

The parser extracts each "[csv]" block from the bench output; the first
column becomes the x axis and every remaining column a series. Cells of
the form "1.234 ±0.056" are split into value and error bars.

Requires matplotlib (only for this optional plotting step; the C++
library and benches have no Python dependency).
"""

import argparse
import re
import sys

CI_RE = re.compile(r"^\s*(-?\d+(?:\.\d+)?)\s*(?:±\s*(\d+(?:\.\d+)?))?\s*$")


def parse_blocks(text):
    """Yield (headers, rows) for each CSV block in bench output."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == "[csv]":
            headers = [h.strip() for h in lines[i + 1].split(",")]
            rows = []
            j = i + 2
            while j < len(lines) and "," in lines[j]:
                rows.append([c.strip() for c in lines[j].split(",")])
                j += 1
            blocks.append((headers, rows))
            i = j
        else:
            i += 1
    return blocks


def to_value_err(cell):
    match = CI_RE.match(cell)
    if not match:
        return None, None
    value = float(match.group(1))
    err = float(match.group(2)) if match.group(2) else 0.0
    return value, err


def plot_block(ax, headers, rows, logy=False):
    xs = []
    series = {h: ([], []) for h in headers[1:]}
    for row in rows:
        x, _ = to_value_err(row[0])
        if x is None:
            continue
        xs.append(x)
        for h, cell in zip(headers[1:], row[1:]):
            value, err = to_value_err(cell)
            series[h][0].append(value)
            series[h][1].append(err)
    for label, (values, errs) in series.items():
        if all(v is None for v in values):
            continue
        ax.errorbar(xs, values, yerr=errs, marker="o", capsize=3,
                    label=label)
    ax.set_xlabel(headers[0])
    ax.grid(True, alpha=0.3)
    if logy:
        ax.set_yscale("log")
    ax.legend(fontsize=8)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", help="bench output captured with --csv")
    parser.add_argument("-o", "--output", default="plot.png")
    parser.add_argument("--logy", action="store_true",
                        help="logarithmic y axis")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    with open(args.input, encoding="utf-8") as f:
        text = f.read()
    blocks = parse_blocks(text)
    if not blocks:
        sys.exit("no [csv] blocks found — run the bench with --csv")

    fig, axes = plt.subplots(1, len(blocks),
                             figsize=(6 * len(blocks), 4.5), squeeze=False)
    for ax, (headers, rows) in zip(axes[0], blocks):
        plot_block(ax, headers, rows, logy=args.logy)
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output} ({len(blocks)} panel(s))")


if __name__ == "__main__":
    main()
