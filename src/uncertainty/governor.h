// Guarded re-allocation: hysteresis between estimating and acting.
//
// Re-solving Algorithm 1 from fresh estimates is cheap; *acting* on
// every re-solve is how adaptive systems oscillate. Estimation noise
// makes successive proposals jitter around the optimum, and each commit
// perturbs the very queues the estimators are watching. The
// ReallocationGovernor sits between the estimator bank and the live
// allocation and commits a proposal only if it clears, in order:
//
//   1. improvement  — the believed objective F(α) (Definition 1) must
//                     drop by at least `min_improvement` relative to the
//                     current allocation's believed objective;
//   2. dwell        — at least `min_dwell` seconds since the last commit;
//   3. budget       — at most `window_budget` commits per trailing
//                     `budget_window` seconds;
//   4. flap guard   — if commits still pile up (more than
//                     `flap_threshold` in a trailing `flap_window`), the
//                     governor declares the system flapping and freezes:
//                     no further commits for `freeze_duration` seconds
//                     (0 = frozen for the rest of the run).
//
// The state machine (documented in docs/UNCERTAINTY.md) mirrors the
// circuit breaker's spirit: prefer a stale-but-stable allocation over a
// perfectly fresh one that never stops changing. Defaults are chosen so
// dwell × flap_threshold > flap_window — a governor that respects its
// own dwell time can never trip its own flap guard.
#pragma once

#include <cstdint>
#include <vector>

namespace hs::uncertainty {

struct GovernorConfig {
  /// Minimum relative drop in believed objective to commit:
  /// (F_cur − F_prop)/F_cur ≥ min_improvement.
  double min_improvement = 0.05;
  /// Minimum seconds between commits.
  double min_dwell = 2000.0;
  /// At most this many commits per trailing `budget_window` seconds.
  uint32_t window_budget = 4;
  double budget_window = 20000.0;
  /// More than this many commits inside a trailing `flap_window` trips
  /// the freeze. With the defaults, min_dwell · flap_threshold = 12000 s
  /// > flap_window = 10000 s, so the guard is unreachable unless dwell
  /// is loosened — it protects misconfigured deployments, not the
  /// defaults.
  uint32_t flap_threshold = 6;
  double flap_window = 10000.0;
  /// Seconds a freeze lasts; 0 = frozen until reset (end of run).
  double freeze_duration = 0.0;

  /// Throws util::CheckError on out-of-range fields.
  void validate() const;
};

/// Why a proposal was (not) committed.
enum class GovernorVerdict : uint8_t {
  kCommit,         // proposal accepted; allocation should be swapped
  kNoImprovement,  // believed objective gain below min_improvement
  kDwell,          // too soon after the previous commit
  kBudgetExhausted,  // window_budget spent for this budget_window
  kFrozen,         // flap guard active (or tripped by this proposal)
};

[[nodiscard]] const char* governor_verdict_name(GovernorVerdict verdict);

/// Decides whether a proposed re-allocation may be committed. Pure
/// bookkeeping — it never touches the allocation itself, so the caller
/// (GovernedAdaptiveDispatcher) owns the swap and the trace records.
class ReallocationGovernor {
 public:
  explicit ReallocationGovernor(GovernorConfig config = {});

  /// Evaluate a proposal at time `now`: `current_objective` and
  /// `proposed_objective` are believed F(α) values (+inf allowed for a
  /// saturated current allocation — any finite proposal then counts as
  /// full relative improvement).
  [[nodiscard]] GovernorVerdict consider(double now,
                                         double current_objective,
                                         double proposed_objective);

  [[nodiscard]] uint64_t proposals() const { return proposals_; }
  [[nodiscard]] uint64_t commits() const { return commits_; }
  /// Proposals rejected for any reason (including while frozen).
  [[nodiscard]] uint64_t rejections() const { return proposals_ - commits_; }
  /// Times the flap guard tripped a freeze.
  [[nodiscard]] uint64_t freezes() const { return freezes_; }
  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] double last_commit_time() const { return last_commit_; }
  [[nodiscard]] const GovernorConfig& config() const { return config_; }

  void reset();

 private:
  /// Commits inside the trailing window ending at `now`.
  [[nodiscard]] uint32_t commits_in_window(double now, double window) const;

  GovernorConfig config_;
  std::vector<double> commit_times_;  // pruned to the longest window
  double last_commit_ = 0.0;
  bool has_committed_ = false;
  bool frozen_ = false;
  double frozen_until_ = 0.0;
  uint64_t proposals_ = 0;
  uint64_t commits_ = 0;
  uint64_t freezes_ = 0;
};

}  // namespace hs::uncertainty
