// Governed adaptive re-allocation: re-solve Algorithm 1 from online
// estimates, commit only through the ReallocationGovernor.
//
// This is the closed loop the paper stops short of: it assumes λ and sᵢ
// are known and shows the optimized allocation is fragile to getting
// them wrong (§5.4). GovernedAdaptiveDispatcher starts from whatever
// the operator *believes* (possibly biased and noisy — see
// uncertainty/config.h), then re-estimates both from the scheduler's own
// observations (uncertainty/estimators.h), periodically re-solves the
// allocation (alloc::solve_from_estimates), and swaps it in only when
// the ReallocationGovernor agrees the believed improvement is real and
// the change budget allows it. The inner dispatcher is the smoothed
// round-robin of Algorithm 2, so a committed re-allocation changes the
// weights, not the mechanism.
//
// Composition: the dispatcher masks natively (set_available_mask
// rebuilds over survivors immediately, the PR1 path), so
// FaultAwareDispatcher and overload::CircuitBreakerDispatcher both wrap
// it without rebuild shims; while any machine is masked out, governor
// proposals are suspended — the fault layer owns routing until the
// cluster heals. Deterministic by construction: no RNG draws, and the
// re-allocation timeline (time, assumed ρ̂, fractions) is recorded and
// reproducible seed-for-seed (pinned by the golden determinism tests).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "alloc/allocation.h"
#include "alloc/optimized.h"
#include "dispatch/dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "obs/trace.h"
#include "uncertainty/estimators.h"
#include "uncertainty/governor.h"

namespace hs::uncertainty {

/// Which allocation scheme re-solves are run through.
enum class AdaptiveScheme : uint8_t {
  kWeighted,   // αᵢ = ŝᵢ/Σŝ — insensitive to λ̂, fixes speed error only
  kOptimized,  // Algorithm 1 from (λ̂, ŝ) — the full re-solve
};

struct AdaptiveOptions {
  AdaptiveScheme scheme = AdaptiveScheme::kOptimized;
  /// Long-run mean job size in base-speed seconds (§4.1's one workload
  /// constant the operator must supply).
  double mean_job_size = 76.8;
  /// Estimator memory τ in seconds (arrival and service estimators).
  double time_constant = 2000.0;
  /// Overestimate the implied load slightly (§5.4's advice).
  double safety_factor = 1.05;
  /// Arrivals between re-estimation ticks (each tick may propose).
  uint64_t reestimate_every = 256;
  /// Clamp range for the assumed utilization of a re-solve.
  double min_rho = 0.02;
  double max_rho = 0.98;
  GovernorConfig governor;

  void validate() const;
};

/// One committed re-allocation (for determinism tests and analysis).
struct ReallocEvent {
  double time = 0.0;
  double assumed_rho = 0.0;
  std::vector<double> fractions;
};

class GovernedAdaptiveDispatcher final : public dispatch::Dispatcher {
 public:
  /// `believed_speeds` / `believed_rho` are the operator's (possibly
  /// wrong) initial beliefs — see uncertainty::derive_beliefs. They seed
  /// the initial allocation and remain the estimator fallbacks until
  /// warm-up.
  GovernedAdaptiveDispatcher(std::vector<double> believed_speeds,
                             double believed_rho,
                             AdaptiveOptions options = {});

  void on_arrival(double now) override;
  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] size_t machine_count() const override {
    return believed_speeds_.size();
  }

  /// Departure reports feed the per-machine service-rate estimators.
  /// The sized form is the real input (completed work is what makes the
  /// speed estimate tail-robust); the unsized fallbacks substitute the
  /// configured mean job size, and the untimed one additionally uses the
  /// last arrival instant.
  void on_departure_report(size_t machine) override;
  void on_departure_report(size_t machine, double now) override;
  void on_departure_report(size_t machine, double now, double work) override;
  [[nodiscard]] bool uses_feedback() const override { return true; }

  /// Rejected dispatches never entered service: undo their busy-time
  /// contribution so bounded queues don't depress the speed estimates.
  void on_dispatch_result(size_t machine, bool accepted,
                          double now) override;
  [[nodiscard]] bool uses_overload_feedback() const override { return true; }

  /// Native fault-layer blacklist: rebuild over survivors immediately
  /// from the current estimates (bypasses the governor — availability
  /// changes are not optional). An all-false mask counts as all-true.
  bool set_available_mask(const std::vector<bool>& available) override;

  /// Record estimate updates and governor decisions here (nullptr = off).
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Checkpoint: the learned state — ρ̂, estimator bank, availability,
  /// committed fractions, inner round-robin cadence — so a restarted
  /// process resumes with learned rates instead of cold priors. The
  /// governor's dwell/budget bookkeeping deliberately restarts fresh: it
  /// is a rate limiter, not learned state, and restarting it conservative
  /// (the first post-restore re-allocation waits out a full dwell).
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

  // ---- Inspection (gauges, tests, benches) ----
  [[nodiscard]] const alloc::Allocation& allocation() const;
  [[nodiscard]] double assumed_rho() const { return assumed_rho_; }
  [[nodiscard]] const ReallocationGovernor& governor() const {
    return governor_;
  }
  [[nodiscard]] const EstimatorBank& bank() const { return bank_; }
  /// Believed λ̂ (0 until warmed up).
  [[nodiscard]] double lambda_hat() const { return bank_.lambda_hat(0.0); }
  /// Believed ŝ of one machine (initial belief until warmed up).
  [[nodiscard]] double speed_hat(size_t machine) const {
    return bank_.speed_hat(machine, believed_speeds_[machine]);
  }
  /// Committed re-allocations, in commit order.
  [[nodiscard]] const std::vector<ReallocEvent>& timeline() const {
    return timeline_;
  }
  /// Survivor rebuilds triggered by availability masks (not governed).
  [[nodiscard]] uint64_t mask_rebuilds() const { return mask_rebuilds_; }

 private:
  [[nodiscard]] bool mask_active() const;
  /// Solve the configured scheme for (speeds, rho). Checks Σαᵢ = 1.
  [[nodiscard]] alloc::Allocation solve(const std::vector<double>& speeds,
                                        double rho) const;
  /// Allocation-free solve: raw (un-normalized) scheme fractions into
  /// `fractions`, every intermediate in reused scratch.
  void solve_into(std::span<const double> speeds, double rho,
                  std::vector<double>& fractions);
  /// Commit a solved allocation: move-assign into the live Allocation
  /// and re-weight the live inner dispatcher (no reconstruction).
  void install(alloc::Allocation allocation);
  /// Commit raw solver fractions in place — one normalization inside
  /// Allocation::assign, zero heap traffic once buffers are warm.
  void install_raw(std::span<const double> fractions);
  /// Point the inner round-robin at the current allocation_ (building
  /// it on first use, re-weighting it in place afterwards).
  void install_inner();
  /// Re-estimate, propose, and maybe commit (one tick).
  void maybe_reallocate(double now);
  /// Rebuild over the currently-available machines (mask path).
  void rebuild_for_mask();

  std::vector<double> believed_speeds_;
  double believed_rho_;
  AdaptiveOptions options_;
  EstimatorBank bank_;
  ReallocationGovernor governor_;
  obs::TraceSink* trace_ = nullptr;

  double assumed_rho_;
  double last_now_ = 0.0;
  uint64_t arrivals_since_tick_ = 0;
  uint64_t mask_rebuilds_ = 0;
  std::vector<bool> available_;
  std::vector<ReallocEvent> timeline_;
  std::unique_ptr<alloc::Allocation> allocation_;
  std::unique_ptr<dispatch::SmoothRoundRobinDispatcher> inner_;

  // Scratch for the mask-rebuild path (reused across flips so survivor
  // re-allocation under faults touches the allocator zero times).
  std::vector<double> speeds_hat_scratch_;
  std::vector<double> survivor_speeds_scratch_;
  std::vector<double> survivor_fractions_scratch_;
  std::vector<double> fractions_scratch_;
  alloc::SolverScratch solver_scratch_;
};

}  // namespace hs::uncertainty
