#include "uncertainty/config.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.h"
#include "rng/rng.h"
#include "util/check.h"

namespace hs::uncertainty {

const char* drift_kind_name(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone:     return "none";
    case DriftKind::kStep:     return "step";
    case DriftKind::kRamp:     return "ramp";
    case DriftKind::kPeriodic: return "periodic";
  }
  return "unknown";
}

double DriftTimeline::factor_at(double t) const {
  switch (kind) {
    case DriftKind::kNone:
      return 1.0;
    case DriftKind::kStep: {
      double factor = 1.0;
      for (const auto& step : steps) {
        if (step.time > t) {
          break;
        }
        factor = step.factor;
      }
      return factor;
    }
    case DriftKind::kRamp: {
      if (t <= ramp_start) {
        return start_factor;
      }
      if (t >= ramp_end) {
        return end_factor;
      }
      const double frac = (t - ramp_start) / (ramp_end - ramp_start);
      return start_factor + frac * (end_factor - start_factor);
    }
    case DriftKind::kPeriodic: {
      constexpr double kTwoPi = 6.283185307179586;
      return 1.0 + amplitude * std::sin(kTwoPi * t / period + phase);
    }
  }
  return 1.0;
}

double DriftTimeline::mean_factor(double horizon) const {
  if (horizon <= 0.0) {
    return factor_at(0.0);
  }
  switch (kind) {
    case DriftKind::kNone:
      return 1.0;
    case DriftKind::kStep: {
      // Piecewise-constant integral: factor 1 until the first step.
      double integral = 0.0;
      double prev_time = 0.0;
      double prev_factor = 1.0;
      for (const auto& step : steps) {
        const double until = std::min(step.time, horizon);
        if (until > prev_time) {
          integral += prev_factor * (until - prev_time);
          prev_time = until;
        }
        if (step.time >= horizon) {
          break;
        }
        prev_time = step.time;
        prev_factor = step.factor;
      }
      integral += prev_factor * (horizon - prev_time);
      return integral / horizon;
    }
    case DriftKind::kRamp: {
      // Integrate the three linear pieces, each clipped to [0, horizon].
      const double flat_head = std::min(horizon, std::max(0.0, ramp_start));
      double integral = start_factor * flat_head;
      const double seg_lo = std::clamp(ramp_start, 0.0, horizon);
      const double seg_hi = std::clamp(ramp_end, 0.0, horizon);
      if (seg_hi > seg_lo) {
        const double f_lo = factor_at(seg_lo);
        const double f_hi = factor_at(seg_hi);
        integral += 0.5 * (f_lo + f_hi) * (seg_hi - seg_lo);
      }
      if (horizon > ramp_end) {
        integral += end_factor * (horizon - ramp_end);
      }
      return integral / horizon;
    }
    case DriftKind::kPeriodic: {
      constexpr double kTwoPi = 6.283185307179586;
      const double omega = kTwoPi / period;
      const double sine_integral =
          (std::cos(phase) - std::cos(omega * horizon + phase)) / omega;
      return 1.0 + amplitude * sine_integral / horizon;
    }
  }
  return 1.0;
}

void DriftTimeline::validate(double sim_time) const {
  switch (kind) {
    case DriftKind::kNone:
      break;
    case DriftKind::kStep: {
      HS_CHECK(!steps.empty(), "step drift requires at least one step");
      double prev = -1.0;
      for (size_t i = 0; i < steps.size(); ++i) {
        HS_CHECK(std::isfinite(steps[i].time) && steps[i].time >= 0.0,
                 "drift step[" << i << "].time must be finite and >= 0, got "
                               << steps[i].time);
        HS_CHECK(steps[i].time > prev,
                 "drift step times must be strictly increasing: step["
                     << i << "].time = " << steps[i].time
                     << " does not follow " << prev);
        HS_CHECK(std::isfinite(steps[i].factor) && steps[i].factor > 0.0,
                 "drift step[" << i << "].factor must be finite and > 0, got "
                               << steps[i].factor);
        prev = steps[i].time;
      }
      HS_CHECK(steps.front().time < sim_time,
               "first drift step at t = " << steps.front().time
                                          << " is not before sim_time = "
                                          << sim_time);
      break;
    }
    case DriftKind::kRamp:
      HS_CHECK(std::isfinite(ramp_start) && ramp_start >= 0.0,
               "ramp_start must be finite and >= 0, got " << ramp_start);
      HS_CHECK(std::isfinite(ramp_end) && ramp_end > ramp_start,
               "ramp_end must be finite and > ramp_start (" << ramp_start
                                                            << "), got "
                                                            << ramp_end);
      HS_CHECK(std::isfinite(start_factor) && start_factor > 0.0,
               "start_factor must be finite and > 0, got " << start_factor);
      HS_CHECK(std::isfinite(end_factor) && end_factor > 0.0,
               "end_factor must be finite and > 0, got " << end_factor);
      break;
    case DriftKind::kPeriodic:
      HS_CHECK(std::isfinite(period) && period > 0.0,
               "drift period must be finite and > 0, got " << period);
      HS_CHECK(std::isfinite(amplitude) && amplitude >= 0.0 &&
                   amplitude < 1.0,
               "drift amplitude must be in [0, 1) so the rate stays "
               "positive, got "
                   << amplitude);
      HS_CHECK(std::isfinite(phase), "drift phase must be finite, got "
                                         << phase);
      break;
  }
}

void StalenessConfig::validate(double sim_time) const {
  HS_CHECK(std::isfinite(update_interval) && update_interval >= 0.0,
           "staleness update_interval must be finite and >= 0 (0 = off), "
           "got "
               << update_interval);
  if (enabled()) {
    HS_CHECK(update_interval < sim_time,
             "staleness update_interval = "
                 << update_interval
                 << " must be smaller than sim_time = " << sim_time
                 << " (no snapshot would ever fire)");
    HS_CHECK(std::isfinite(report_delay) && report_delay >= 0.0,
             "staleness report_delay must be finite and >= 0, got "
                 << report_delay);
  }
}

namespace {

void validate_param_error(const ParamError& error, const char* field) {
  HS_CHECK(std::isfinite(error.bias) && error.bias > 0.0,
           field << ".bias must be finite and > 0 (a negative or zero bias "
                    "would imply a non-positive believed parameter), got "
                 << error.bias);
  HS_CHECK(std::isfinite(error.noise_cv) && error.noise_cv >= 0.0,
           field << ".noise_cv must be finite and >= 0 (0 = no noise "
                    "stream draws), got "
                 << error.noise_cv);
}

/// Lognormal factor with mean 1 and coefficient of variation cv:
/// exp(σZ − σ²/2) with σ² = ln(1 + cv²).
double noise_factor(double cv, rng::Xoshiro256& gen) {
  const double sigma_sq = std::log1p(cv * cv);
  const double sigma = std::sqrt(sigma_sq);
  return std::exp(sigma * rng::sample_standard_normal(gen) -
                  0.5 * sigma_sq);
}

}  // namespace

void UncertaintyConfig::validate(double sim_time) const {
  validate_param_error(lambda_error, "lambda_error");
  validate_param_error(speed_error, "speed_error");
  drift.validate(sim_time);
  staleness.validate(sim_time);
}

BelievedParams derive_beliefs(const UncertaintyConfig& config,
                              const std::vector<double>& speeds, double rho,
                              uint64_t seed) {
  BelievedParams beliefs;
  beliefs.speeds = speeds;
  beliefs.rho = rho;
  beliefs.lambda_factor = config.lambda_error.bias;

  const bool needs_noise = config.lambda_error.noise_cv > 0.0 ||
                           config.speed_error.noise_cv > 0.0;
  rng::Xoshiro256 belief_gen(needs_noise
                                 ? rng::derive_seed(seed, 0, rng::Stream::kBelief)
                                 : 0);
  if (config.lambda_error.noise_cv > 0.0) {
    beliefs.lambda_factor *=
        noise_factor(config.lambda_error.noise_cv, belief_gen);
  }
  for (double& speed : beliefs.speeds) {
    speed *= config.speed_error.bias;
    if (config.speed_error.noise_cv > 0.0) {
      speed *= noise_factor(config.speed_error.noise_cv, belief_gen);
    }
  }

  // The believed utilization is the one implied by the believed arrival
  // rate against the believed capacity: λ̂·E[size]/Σŝ =
  // ρ_true·lambda_factor·Σs/Σŝ.
  const double true_total =
      std::accumulate(speeds.begin(), speeds.end(), 0.0);
  const double believed_total =
      std::accumulate(beliefs.speeds.begin(), beliefs.speeds.end(), 0.0);
  HS_CHECK(believed_total > 0.0,
           "believed total speed must be > 0, got " << believed_total);
  beliefs.rho = rho * beliefs.lambda_factor * true_total / believed_total;
  return beliefs;
}

}  // namespace hs::uncertainty
