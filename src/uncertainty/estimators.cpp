#include "uncertainty/estimators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hs::uncertainty {

RateEstimator::RateEstimator(double time_constant, uint64_t warmup_events)
    : time_constant_(time_constant), warmup_(warmup_events) {
  HS_CHECK(std::isfinite(time_constant) && time_constant > 0.0,
           "rate estimator time_constant must be finite and > 0, got "
               << time_constant);
}

void RateEstimator::observe(double now) {
  if (count_ > 0) {
    const double gap = std::max(0.0, now - last_event_);
    const double decay = std::exp(-gap / time_constant_);
    discounted_count_ = discounted_count_ * decay + 1.0;
    discounted_time_ = discounted_time_ * decay + gap;
  } else {
    discounted_count_ = 1.0;
  }
  last_event_ = now;
  ++count_;
}

double RateEstimator::rate(double fallback) const {
  if (!warmed_up() || discounted_time_ <= 0.0) {
    return fallback;
  }
  return discounted_count_ / discounted_time_;
}

void RateEstimator::reset() {
  discounted_count_ = 0.0;
  discounted_time_ = 0.0;
  last_event_ = 0.0;
  count_ = 0;
}

ServiceRateEstimator::ServiceRateEstimator(uint64_t warmup_departures)
    : warmup_(warmup_departures) {}

void ServiceRateEstimator::advance(double now) {
  const double gap = std::max(0.0, now - last_update_);
  if (gap > 0.0) {
    if (outstanding_ > 0) {
      busy_ += gap;
    }
    last_update_ = now;
  }
}

void ServiceRateEstimator::observe_dispatch(double now) {
  advance(now);
  ++outstanding_;
}

void ServiceRateEstimator::observe_departure(double now, double work) {
  advance(now);
  work_ += std::max(0.0, work);
  if (outstanding_ > 0) {
    --outstanding_;
  }
  ++departures_;
}

void ServiceRateEstimator::forget_outstanding(uint64_t attempts) {
  outstanding_ -= std::min(outstanding_, attempts);
}

double ServiceRateEstimator::speed(double fallback) const {
  if (!warmed_up() || busy_ <= 0.0) {
    return fallback;
  }
  return work_ / busy_;
}

void ServiceRateEstimator::reset() {
  work_ = 0.0;
  busy_ = 0.0;
  last_update_ = 0.0;
  outstanding_ = 0;
  departures_ = 0;
}

EstimatorBank::EstimatorBank(size_t machines, double mean_job_size,
                             double time_constant)
    : mean_job_size_(mean_job_size), arrival_rate_(time_constant) {
  service_.reserve(machines);
  for (size_t i = 0; i < machines; ++i) {
    service_.emplace_back();
  }
}

void EstimatorBank::observe_dispatch(size_t machine, double now) {
  service_[machine].observe_dispatch(now);
}

void EstimatorBank::observe_departure(size_t machine, double now,
                                      double work) {
  service_[machine].observe_departure(now, work);
}

void EstimatorBank::forget_dispatch(size_t machine) {
  service_[machine].forget_outstanding(1);
}

void EstimatorBank::forget_all_outstanding(size_t machine) {
  service_[machine].forget_outstanding(service_[machine].outstanding());
}

double EstimatorBank::speed_hat(size_t machine, double fallback) const {
  return service_[machine].speed(fallback);
}

std::vector<double> EstimatorBank::speeds_hat(
    const std::vector<double>& fallbacks) const {
  std::vector<double> speeds(service_.size());
  for (size_t i = 0; i < service_.size(); ++i) {
    speeds[i] = service_[i].speed(fallbacks[i]);
  }
  return speeds;
}

void EstimatorBank::speeds_hat_into(const std::vector<double>& fallbacks,
                                    std::vector<double>& out) const {
  out.resize(service_.size());
  for (size_t i = 0; i < service_.size(); ++i) {
    out[i] = service_[i].speed(fallbacks[i]);
  }
}

double EstimatorBank::rho_hat(const std::vector<double>& speed_fallbacks,
                              double rho_fallback) const {
  if (!warmed_up()) {
    return rho_fallback;
  }
  double total = 0.0;
  for (size_t i = 0; i < service_.size(); ++i) {
    total += service_[i].speed(speed_fallbacks[i]);
  }
  if (total <= 0.0) {
    return rho_fallback;
  }
  return arrival_rate_.rate(0.0) * mean_job_size_ / total;
}

void EstimatorBank::reset() {
  arrival_rate_.reset();
  for (auto& estimator : service_) {
    estimator.reset();
  }
}

namespace {

/// True when `v` round-trips through a double as an exact non-negative
/// integer (counts are < 2^53 in any feasible session).
bool is_count(double v) {
  return v >= 0.0 && v <= 0x1p53 && v == std::floor(v);
}

}  // namespace

size_t RateEstimator::save_state(std::vector<double>& out) const {
  out.push_back(discounted_count_);
  out.push_back(discounted_time_);
  out.push_back(last_event_);
  out.push_back(static_cast<double>(count_));
  return 4;
}

size_t RateEstimator::restore_state(std::span<const double> state) {
  if (state.size() < 4 || !std::isfinite(state[0]) || state[0] < 0.0 ||
      !std::isfinite(state[1]) || state[1] < 0.0 ||
      !std::isfinite(state[2]) || !is_count(state[3])) {
    return 0;
  }
  discounted_count_ = state[0];
  discounted_time_ = state[1];
  last_event_ = state[2];
  count_ = static_cast<uint64_t>(state[3]);
  return 4;
}

size_t ServiceRateEstimator::save_state(std::vector<double>& out) const {
  out.push_back(work_);
  out.push_back(busy_);
  out.push_back(last_update_);
  out.push_back(static_cast<double>(outstanding_));
  out.push_back(static_cast<double>(departures_));
  return 5;
}

size_t ServiceRateEstimator::restore_state(std::span<const double> state) {
  if (state.size() < 5 || !std::isfinite(state[0]) || state[0] < 0.0 ||
      !std::isfinite(state[1]) || state[1] < 0.0 ||
      !std::isfinite(state[2]) || !is_count(state[3]) ||
      !is_count(state[4])) {
    return 0;
  }
  work_ = state[0];
  busy_ = state[1];
  last_update_ = state[2];
  outstanding_ = static_cast<uint64_t>(state[3]);
  departures_ = static_cast<uint64_t>(state[4]);
  return 5;
}

size_t EstimatorBank::save_state(std::vector<double>& out) const {
  size_t written = arrival_rate_.save_state(out);
  for (const auto& estimator : service_) {
    written += estimator.save_state(out);
  }
  return written;
}

size_t EstimatorBank::restore_state(std::span<const double> state) {
  const size_t need = 4 + 5 * service_.size();
  if (state.size() < need) {
    return 0;
  }
  // Two-phase: validate everything on scratch copies first so a corrupt
  // payload cannot leave the bank half-restored.
  RateEstimator arrival = arrival_rate_;
  if (arrival.restore_state(state.first(4)) != 4) {
    return 0;
  }
  std::vector<ServiceRateEstimator> service = service_;
  size_t offset = 4;
  for (auto& estimator : service) {
    if (estimator.restore_state(state.subspan(offset, 5)) != 5) {
      return 0;
    }
    offset += 5;
  }
  arrival_rate_ = arrival;
  service_ = std::move(service);
  return need;
}

}  // namespace hs::uncertainty
