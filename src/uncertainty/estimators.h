// Streaming parameter re-estimation from scheduler-observable events.
//
// The adaptive layer must recover the true (λ, sᵢ) from what a central
// scheduler can actually see — arrival instants, its own dispatch
// decisions, and (delayed) departure reports — without clock access to
// the machines. Two time-constant EWMA estimators do that:
//
//  * RateEstimator — discounted count-over-time estimate of an event
//    rate (arrivals per second). Both the event count and the elapsed
//    time are discounted with exp(−Δt/τ), which avoids the length-bias
//    of averaging interarrival gaps directly and tracks drifting rates
//    with a memory of roughly τ seconds (the same scheme as
//    core::UtilizationEstimator, factored here for reuse on any stream).
//  * ServiceRateEstimator — per-machine believed speed ŝᵢ from the
//    *work* completed while busy: a PS machine of speed s processes s
//    base-speed seconds of work per busy second regardless of how many
//    jobs share it, so ŝᵢ = cumulative completed work / cumulative busy
//    time, with each departure report carrying the work the job
//    consumed (a machine can meter a finished job's CPU). Two choices
//    here are deliberate consequences of the paper's heavy-tailed
//    sizes. Counting completed work — not completed jobs scaled by the
//    long-run E[size] — because any finite window completes mostly
//    small jobs and a job-count throughput overestimates speeds
//    severalfold. And *cumulative* — not EWMA-discounted — because a
//    job whose service time exceeds the decay memory credits its whole
//    work in one lump after the busy time it consumed has already
//    decayed, inflating the ratio by ~(service time / τ); machine
//    speeds do not drift in this model, so an unwindowed ratio is both
//    unbiased and the lowest-variance choice. Busy time is inferred
//    from the scheduler's own outstanding-dispatch count (sent minus
//    reported-departed), which is exactly the information a real
//    front-end has.
//
// Estimates respect whatever delay the feedback path imposes: they are
// fed the *report* times, not the true departure times, so detection
// delay shows up as estimation lag rather than being quietly bypassed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hs::uncertainty {

/// Discounted count-over-time rate estimator with memory ~τ seconds.
class RateEstimator {
 public:
  explicit RateEstimator(double time_constant, uint64_t warmup_events = 16);

  /// Record one event at time `now` (non-decreasing).
  void observe(double now);

  /// Events per second; `fallback` until `warmup_events` are seen.
  [[nodiscard]] double rate(double fallback = 0.0) const;
  [[nodiscard]] bool warmed_up() const { return count_ >= warmup_; }
  [[nodiscard]] uint64_t observed() const { return count_; }

  void reset();

  /// Checkpoint: the discounted accumulators and event count (4 values),
  /// same append/consume convention as Dispatcher::save_state. A restored
  /// estimator continues the EWMA sequence bit-identically.
  size_t save_state(std::vector<double>& out) const;
  size_t restore_state(std::span<const double> state);

 private:
  double time_constant_;
  uint64_t warmup_;
  double discounted_count_ = 0.0;  // Σ e^{−age/τ} over past events
  double discounted_time_ = 0.0;   // Σ e^{−age/τ}·gap
  double last_event_ = 0.0;
  uint64_t count_ = 0;
};

/// Per-machine believed-speed estimator from work completed while busy.
/// Feed it the scheduler's view: observe_dispatch when a job is sent,
/// observe_departure when the (possibly delayed) report arrives with the
/// work the job consumed, and forget_outstanding when attempts are known
/// lost (crash, masked machine) so phantom busy time does not depress
/// the estimate forever.
class ServiceRateEstimator {
 public:
  explicit ServiceRateEstimator(uint64_t warmup_departures = 8);

  void observe_dispatch(double now);
  /// One departure report: the job consumed `work` base-speed seconds.
  void observe_departure(double now, double work);
  /// Drop `attempts` outstanding dispatches without counting a departure
  /// (jobs lost to a crash or rerouted away from a masked machine).
  void forget_outstanding(uint64_t attempts);

  /// Believed speed ŝ; `fallback` until enough departures are seen.
  [[nodiscard]] double speed(double fallback) const;
  [[nodiscard]] bool warmed_up() const { return departures_ >= warmup_; }
  [[nodiscard]] uint64_t outstanding() const { return outstanding_; }

  void reset();

  /// Checkpoint: work/busy accumulators plus the outstanding and
  /// departure counts (5 values).
  size_t save_state(std::vector<double>& out) const;
  size_t restore_state(std::span<const double> state);

 private:
  /// Accrue busy time up to `now`.
  void advance(double now);

  uint64_t warmup_;
  double work_ = 0.0;  // base-speed seconds completed
  double busy_ = 0.0;  // seconds the machine was plausibly busy
  double last_update_ = 0.0;
  uint64_t outstanding_ = 0;  // dispatches not yet reported departed
  uint64_t departures_ = 0;
};

/// The full estimator bank one adaptive dispatcher carries: cluster
/// arrival rate plus one service-rate estimator per machine, with the
/// derived believed utilization ρ̂ = λ̂·E[size]/Σŝᵢ.
class EstimatorBank {
 public:
  EstimatorBank(size_t machines, double mean_job_size,
                double time_constant);

  void observe_arrival(double now) { arrival_rate_.observe(now); }
  void observe_dispatch(size_t machine, double now);
  void observe_departure(size_t machine, double now, double work);
  /// One dispatch attempt bounced without entering service (rejected by
  /// a bounded queue): undo its observe_dispatch.
  void forget_dispatch(size_t machine);
  /// All outstanding attempts on `machine` are gone (crash, masked out).
  void forget_all_outstanding(size_t machine);

  [[nodiscard]] double lambda_hat(double fallback) const {
    return arrival_rate_.rate(fallback);
  }
  /// Believed speed of `machine`, falling back to `fallback` until its
  /// estimator warms up.
  [[nodiscard]] double speed_hat(size_t machine, double fallback) const;
  /// Believed speeds for all machines (per-machine fallbacks).
  [[nodiscard]] std::vector<double> speeds_hat(
      const std::vector<double>& fallbacks) const;
  /// Allocation-free speeds_hat(): writes into `out`, reusing its
  /// capacity (the adaptive rebuild paths call this per mask flip).
  void speeds_hat_into(const std::vector<double>& fallbacks,
                       std::vector<double>& out) const;
  /// ρ̂ implied by λ̂ and the believed speeds.
  [[nodiscard]] double rho_hat(const std::vector<double>& speed_fallbacks,
                               double rho_fallback) const;
  [[nodiscard]] bool warmed_up() const { return arrival_rate_.warmed_up(); }
  [[nodiscard]] uint64_t observed_arrivals() const {
    return arrival_rate_.observed();
  }
  [[nodiscard]] double mean_job_size() const { return mean_job_size_; }

  void reset();

  /// Checkpoint: the arrival estimator followed by every per-machine
  /// service estimator (4 + 5n values) — restoring lets a restarted
  /// process resume with learned rates instead of cold priors.
  size_t save_state(std::vector<double>& out) const;
  size_t restore_state(std::span<const double> state);

 private:
  double mean_job_size_;
  RateEstimator arrival_rate_;
  std::vector<ServiceRateEstimator> service_;
};

}  // namespace hs::uncertainty
