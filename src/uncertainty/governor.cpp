#include "uncertainty/governor.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hs::uncertainty {

void GovernorConfig::validate() const {
  HS_CHECK(std::isfinite(min_improvement) && min_improvement >= 0.0 &&
               min_improvement < 1.0,
           "governor min_improvement must be in [0, 1), got "
               << min_improvement);
  HS_CHECK(std::isfinite(min_dwell) && min_dwell >= 0.0,
           "governor min_dwell must be finite and >= 0, got " << min_dwell);
  HS_CHECK(window_budget >= 1,
           "governor window_budget must be >= 1, got " << window_budget);
  HS_CHECK(std::isfinite(budget_window) && budget_window > 0.0,
           "governor budget_window must be finite and > 0, got "
               << budget_window);
  HS_CHECK(flap_threshold >= 1,
           "governor flap_threshold must be >= 1, got " << flap_threshold);
  HS_CHECK(std::isfinite(flap_window) && flap_window > 0.0,
           "governor flap_window must be finite and > 0, got "
               << flap_window);
  HS_CHECK(std::isfinite(freeze_duration) && freeze_duration >= 0.0,
           "governor freeze_duration must be finite and >= 0 (0 = frozen "
           "until reset), got "
               << freeze_duration);
}

const char* governor_verdict_name(GovernorVerdict verdict) {
  switch (verdict) {
    case GovernorVerdict::kCommit:          return "commit";
    case GovernorVerdict::kNoImprovement:   return "no-improvement";
    case GovernorVerdict::kDwell:           return "dwell";
    case GovernorVerdict::kBudgetExhausted: return "budget-exhausted";
    case GovernorVerdict::kFrozen:          return "frozen";
  }
  return "unknown";
}

ReallocationGovernor::ReallocationGovernor(GovernorConfig config)
    : config_(config) {
  config_.validate();
}

uint32_t ReallocationGovernor::commits_in_window(double now,
                                                 double window) const {
  uint32_t count = 0;
  for (double t : commit_times_) {
    if (t > now - window) {
      ++count;
    }
  }
  return count;
}

GovernorVerdict ReallocationGovernor::consider(double now,
                                               double current_objective,
                                               double proposed_objective) {
  ++proposals_;

  if (frozen_) {
    if (config_.freeze_duration > 0.0 && now >= frozen_until_) {
      frozen_ = false;
    } else {
      return GovernorVerdict::kFrozen;
    }
  }

  // Relative believed improvement. A saturated (infinite) current
  // objective counts as fully improvable by any finite proposal.
  double improvement = 0.0;
  if (std::isinf(current_objective)) {
    improvement = std::isfinite(proposed_objective) ? 1.0 : 0.0;
  } else if (current_objective > 0.0 &&
             std::isfinite(proposed_objective)) {
    improvement =
        (current_objective - proposed_objective) / current_objective;
  }
  if (improvement < config_.min_improvement) {
    return GovernorVerdict::kNoImprovement;
  }

  if (has_committed_ && now - last_commit_ < config_.min_dwell) {
    return GovernorVerdict::kDwell;
  }

  if (commits_in_window(now, config_.budget_window) >=
      config_.window_budget) {
    return GovernorVerdict::kBudgetExhausted;
  }

  // Flap guard: would this commit push the trailing flap_window count
  // past the threshold?
  if (commits_in_window(now, config_.flap_window) + 1 >
      config_.flap_threshold) {
    frozen_ = true;
    frozen_until_ = now + config_.freeze_duration;
    ++freezes_;
    return GovernorVerdict::kFrozen;
  }

  // Commit. Prune times that no longer matter for either window.
  const double horizon =
      std::max(config_.budget_window, config_.flap_window);
  std::erase_if(commit_times_,
                [&](double t) { return t <= now - horizon; });
  commit_times_.push_back(now);
  last_commit_ = now;
  has_committed_ = true;
  ++commits_;
  return GovernorVerdict::kCommit;
}

void ReallocationGovernor::reset() {
  commit_times_.clear();
  last_commit_ = 0.0;
  has_committed_ = false;
  frozen_ = false;
  frozen_until_ = 0.0;
  proposals_ = 0;
  commits_ = 0;
  freezes_ = 0;
}

}  // namespace hs::uncertainty
