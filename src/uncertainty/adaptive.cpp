#include "uncertainty/adaptive.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "util/check.h"
#include "util/math_util.h"

namespace hs::uncertainty {

void AdaptiveOptions::validate() const {
  HS_CHECK(std::isfinite(mean_job_size) && mean_job_size > 0.0,
           "adaptive mean_job_size must be finite and > 0, got "
               << mean_job_size);
  HS_CHECK(std::isfinite(time_constant) && time_constant > 0.0,
           "adaptive time_constant must be finite and > 0, got "
               << time_constant);
  HS_CHECK(std::isfinite(safety_factor) && safety_factor > 0.0,
           "adaptive safety_factor must be finite and > 0, got "
               << safety_factor);
  HS_CHECK(reestimate_every >= 1,
           "adaptive reestimate_every must be >= 1, got "
               << reestimate_every);
  HS_CHECK(min_rho > 0.0 && min_rho <= max_rho && max_rho < 1.0,
           "adaptive rho clamp range out of order: [" << min_rho << ", "
                                                      << max_rho << "]");
  governor.validate();
}

GovernedAdaptiveDispatcher::GovernedAdaptiveDispatcher(
    std::vector<double> believed_speeds, double believed_rho,
    AdaptiveOptions options)
    : believed_speeds_(std::move(believed_speeds)),
      believed_rho_(believed_rho),
      options_(options),
      bank_(believed_speeds_.size(), options.mean_job_size,
            options.time_constant),
      governor_(options.governor),
      assumed_rho_(0.0) {
  HS_CHECK(!believed_speeds_.empty(),
           "governed adaptive dispatcher needs at least one machine");
  for (double s : believed_speeds_) {
    HS_CHECK(std::isfinite(s) && s > 0.0,
             "believed machine speed must be finite and > 0, got " << s);
  }
  HS_CHECK(std::isfinite(believed_rho) && believed_rho > 0.0,
           "believed rho must be finite and > 0, got " << believed_rho);
  options_.validate();
  assumed_rho_ =
      std::clamp(believed_rho_, options_.min_rho, options_.max_rho);
  available_.assign(believed_speeds_.size(), true);
  install(solve(believed_speeds_, assumed_rho_));
}

std::string GovernedAdaptiveDispatcher::name() const {
  return options_.scheme == AdaptiveScheme::kOptimized ? "governed-orr"
                                                       : "governed-wrr";
}

bool GovernedAdaptiveDispatcher::mask_active() const {
  bool any_down = false;
  bool any_up = false;
  for (const bool up : available_) {
    any_down = any_down || !up;
    any_up = any_up || up;
  }
  return any_down && any_up;
}

alloc::Allocation GovernedAdaptiveDispatcher::solve(
    const std::vector<double>& speeds, double rho) const {
  if (options_.scheme == AdaptiveScheme::kOptimized) {
    return alloc::OptimizedAllocation().compute(speeds, rho);
  }
  return alloc::WeightedAllocation().compute(speeds, rho);
}

void GovernedAdaptiveDispatcher::solve_into(std::span<const double> speeds,
                                            double rho,
                                            std::vector<double>& fractions) {
  if (options_.scheme == AdaptiveScheme::kOptimized) {
    alloc::OptimizedAllocation().compute_into(speeds, rho, fractions,
                                              solver_scratch_);
  } else {
    alloc::WeightedAllocation().compute_into(speeds, rho, fractions);
  }
}

void GovernedAdaptiveDispatcher::install(alloc::Allocation allocation) {
  // The governor's sanity guard: whatever the estimates were, the
  // committed fractions must form a distribution.
  double sum = 0.0;
  for (size_t i = 0; i < allocation.size(); ++i) {
    sum += allocation[i];
  }
  HS_CHECK(std::abs(sum - 1.0) <= 1e-9,
           "re-allocation fractions must sum to 1, got " << sum);
  if (allocation_ == nullptr) {
    allocation_ = std::make_unique<alloc::Allocation>(std::move(allocation));
  } else {
    *allocation_ = std::move(allocation);
  }
  install_inner();
}

void GovernedAdaptiveDispatcher::install_raw(
    std::span<const double> fractions) {
  // Allocation::assign validates and normalizes exactly once — the same
  // single normalization the solve()→Allocation chain applies, so the
  // committed fractions are bit-identical to the reconstructing path.
  if (allocation_ == nullptr) {
    allocation_ = std::make_unique<alloc::Allocation>(
        std::vector<double>(fractions.begin(), fractions.end()));
  } else {
    allocation_->assign(fractions);
  }
  install_inner();
}

void GovernedAdaptiveDispatcher::install_inner() {
  if (inner_ == nullptr) {
    inner_ =
        std::make_unique<dispatch::SmoothRoundRobinDispatcher>(*allocation_);
  } else {
    // Fresh construction and in-place rebuild produce identical cadence
    // state (rebuild() copies the fractions bit-for-bit and resets).
    inner_->rebuild(*allocation_);
  }
}

void GovernedAdaptiveDispatcher::on_arrival(double now) {
  last_now_ = now;
  bank_.observe_arrival(now);
  if (++arrivals_since_tick_ >= options_.reestimate_every) {
    arrivals_since_tick_ = 0;
    maybe_reallocate(now);
  }
}

void GovernedAdaptiveDispatcher::maybe_reallocate(double now) {
  if (!bank_.warmed_up()) {
    return;
  }
  const double lambda_hat = bank_.lambda_hat(0.0);
  if (lambda_hat <= 0.0) {
    return;
  }
  const std::vector<double> speeds_hat = bank_.speeds_hat(believed_speeds_);
  const double total_hat = util::kahan_sum(speeds_hat);
  const double rho_raw =
      lambda_hat * options_.mean_job_size / total_hat;
  if (trace_ != nullptr) {
    trace_->record(now, obs::TraceEventKind::kEstimateUpdate,
                   obs::TraceSink::kNoJob, obs::TraceSink::kScheduler, 0,
                   rho_raw);
  }
  if (mask_active()) {
    // The fault layer owns routing while machines are blacklisted; the
    // estimators keep accruing and proposals resume on full health.
    return;
  }

  double assumed = 0.0;
  alloc::Allocation proposed = [&] {
    if (options_.scheme == AdaptiveScheme::kOptimized) {
      auto solved = alloc::solve_from_estimates(
          speeds_hat, lambda_hat, options_.mean_job_size,
          options_.safety_factor, options_.min_rho, options_.max_rho);
      assumed = solved.assumed_rho;
      return std::move(solved.allocation);
    }
    assumed = std::clamp(rho_raw * options_.safety_factor,
                         options_.min_rho, options_.max_rho);
    return alloc::WeightedAllocation().compute(speeds_hat, assumed);
  }();

  // Both objectives are believed F(α) (Definition 1) under the *same*
  // fresh estimates: how suboptimal has the live allocation become, and
  // how much would the proposal recover?
  const double f_current =
      alloc::objective_value(*allocation_, speeds_hat, assumed);
  const double f_proposed =
      alloc::objective_value(proposed, speeds_hat, assumed);

  const uint64_t freezes_before = governor_.freezes();
  const GovernorVerdict verdict =
      governor_.consider(now, f_current, f_proposed);
  if (verdict == GovernorVerdict::kCommit) {
    const double improvement =
        std::isinf(f_current) ? 1.0 : (f_current - f_proposed) / f_current;
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceEventKind::kReallocCommit,
                     obs::TraceSink::kNoJob, obs::TraceSink::kScheduler,
                     static_cast<uint16_t>(
                         std::min<uint64_t>(governor_.commits(), 0xffff)),
                     improvement);
    }
    assumed_rho_ = assumed;
    ReallocEvent event;
    event.time = now;
    event.assumed_rho = assumed;
    event.fractions.reserve(proposed.size());
    for (size_t i = 0; i < proposed.size(); ++i) {
      event.fractions.push_back(proposed[i]);
    }
    timeline_.push_back(std::move(event));
    install(std::move(proposed));
    return;
  }
  if (trace_ != nullptr) {
    trace_->record(now, obs::TraceEventKind::kReallocReject,
                   obs::TraceSink::kNoJob, obs::TraceSink::kScheduler, 0,
                   static_cast<double>(verdict));
    if (governor_.freezes() > freezes_before) {
      trace_->record(now, obs::TraceEventKind::kGovernorFreeze,
                     obs::TraceSink::kNoJob, obs::TraceSink::kScheduler, 0,
                     static_cast<double>(governor_.freezes()));
    }
  }
}

size_t GovernedAdaptiveDispatcher::pick(rng::Xoshiro256& gen) {
  const size_t machine = inner_->pick(gen);
  bank_.observe_dispatch(machine, last_now_);
  return machine;
}

void GovernedAdaptiveDispatcher::on_departure_report(size_t machine) {
  on_departure_report(machine, last_now_);
}

void GovernedAdaptiveDispatcher::on_departure_report(size_t machine,
                                                     double now) {
  on_departure_report(machine, now, options_.mean_job_size);
}

void GovernedAdaptiveDispatcher::on_departure_report(size_t machine,
                                                     double now,
                                                     double work) {
  HS_CHECK(machine < believed_speeds_.size(),
           "machine index out of range: " << machine);
  bank_.observe_departure(machine, now, work);
}

void GovernedAdaptiveDispatcher::on_dispatch_result(size_t machine,
                                                    bool accepted,
                                                    double /*now*/) {
  if (!accepted) {
    bank_.forget_dispatch(machine);
  }
}

bool GovernedAdaptiveDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  HS_CHECK(available.size() == believed_speeds_.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << believed_speeds_.size());
  if (available == available_) {
    return true;
  }
  for (size_t i = 0; i < available.size(); ++i) {
    if (available_[i] && !available[i]) {
      // Newly down: its outstanding dispatches died with it — without
      // this, phantom busy time would depress its speed estimate forever.
      bank_.forget_all_outstanding(i);
    }
  }
  available_ = available;
  rebuild_for_mask();
  ++mask_rebuilds_;
  return true;
}

void GovernedAdaptiveDispatcher::rebuild_for_mask() {
  // Availability changes are mandatory: rebuild immediately from the
  // freshest estimates (believed values until warm-up), bypassing the
  // governor — the PR1 survivor-reallocation path. Every intermediate
  // lives in a reused scratch buffer, so mask flips at a fixed cluster
  // size touch the allocator zero times once warm.
  if (bank_.warmed_up()) {
    bank_.speeds_hat_into(believed_speeds_, speeds_hat_scratch_);
  } else {
    speeds_hat_scratch_.assign(believed_speeds_.begin(),
                               believed_speeds_.end());
  }
  const std::vector<double>& speeds_hat = speeds_hat_scratch_;
  const double lambda_hat = bank_.lambda_hat(0.0);
  const double total = util::kahan_sum(speeds_hat);
  const double rho_base =
      lambda_hat > 0.0 ? lambda_hat * options_.mean_job_size / total
                       : believed_rho_;
  const double assumed =
      std::clamp(rho_base * options_.safety_factor, options_.min_rho,
                 options_.max_rho);
  if (!mask_active()) {
    assumed_rho_ = assumed;
    solve_into(speeds_hat, assumed, fractions_scratch_);
    install_raw(fractions_scratch_);
    return;
  }
  // Survivors absorb the whole stream: scale the assumed utilization by
  // total/survivor capacity, clamped (past max_rho the optimized scheme
  // approaches the weighted one anyway).
  survivor_speeds_scratch_.clear();
  for (size_t i = 0; i < speeds_hat.size(); ++i) {
    if (available_[i]) {
      survivor_speeds_scratch_.push_back(speeds_hat[i]);
    }
  }
  const double survivor_total = util::kahan_sum(survivor_speeds_scratch_);
  const double effective =
      std::clamp(assumed * total / survivor_total, options_.min_rho,
                 options_.max_rho);
  solve_into(survivor_speeds_scratch_, effective,
             survivor_fractions_scratch_);
  // Normalize the survivor solve (the Allocation the reconstructing
  // path built from it), then expand with zeros; install_raw's single
  // normalization reproduces the outer Allocation bit-identically.
  alloc::Allocation::normalize(survivor_fractions_scratch_);
  fractions_scratch_.assign(speeds_hat.size(), 0.0);
  size_t next_survivor = 0;
  for (size_t i = 0; i < speeds_hat.size(); ++i) {
    if (available_[i]) {
      fractions_scratch_[i] = survivor_fractions_scratch_[next_survivor++];
    }
  }
  assumed_rho_ = effective;
  install_raw(fractions_scratch_);
}

void GovernedAdaptiveDispatcher::reset() {
  bank_.reset();
  governor_.reset();
  timeline_.clear();
  arrivals_since_tick_ = 0;
  mask_rebuilds_ = 0;
  last_now_ = 0.0;
  available_.assign(believed_speeds_.size(), true);
  assumed_rho_ =
      std::clamp(believed_rho_, options_.min_rho, options_.max_rho);
  install(solve(believed_speeds_, assumed_rho_));
}

const alloc::Allocation& GovernedAdaptiveDispatcher::allocation() const {
  return *allocation_;
}

size_t GovernedAdaptiveDispatcher::save_state(std::vector<double>& out) const {
  const size_t n = believed_speeds_.size();
  out.push_back(assumed_rho_);
  out.push_back(last_now_);
  out.push_back(static_cast<double>(arrivals_since_tick_));
  for (size_t i = 0; i < n; ++i) {
    out.push_back(available_.empty() || available_[i] ? 1.0 : 0.0);
  }
  size_t written = 3 + n + bank_.save_state(out);
  const auto& f = allocation_->fractions();
  out.insert(out.end(), f.begin(), f.end());
  return written + n + inner_->save_state(out);
}

size_t GovernedAdaptiveDispatcher::restore_state(
    std::span<const double> state) {
  const size_t n = believed_speeds_.size();
  const size_t bank_len = 4 + 5 * n;
  const size_t own = 3 + n + bank_len + n;
  if (state.size() < own) {
    return 0;
  }
  const double rho = state[0];
  const double ticks = state[2];
  if (!(rho > 0.0 && rho < 1.0) || !std::isfinite(state[1]) ||
      !(ticks >= 0.0 && ticks <= 0x1p53) || ticks != std::floor(ticks)) {
    return 0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!(state[3 + i] == 0.0 || state[3 + i] == 1.0)) {
      return 0;
    }
  }
  if (bank_.restore_state(state.subspan(3 + n, bank_len)) != bank_len) {
    return 0;
  }
  assumed_rho_ = rho;
  last_now_ = state[1];
  arrivals_since_tick_ = static_cast<uint64_t>(ticks);
  available_.assign(n, true);
  for (size_t i = 0; i < n; ++i) {
    available_[i] = state[3 + i] == 1.0;
  }
  allocation_->assign_exact(state.subspan(3 + n + bank_len, n));
  return own + inner_->restore_state(state.subspan(own));
}

}  // namespace hs::uncertainty
