#include "rng/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>

#include "util/check.h"

namespace hs::rng {

double Distribution::cv() const {
  const double m = mean();
  HS_CHECK(m > 0.0, "cv() undefined for non-positive mean " << m);
  const double v = variance();
  if (!std::isfinite(v)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::sqrt(v) / m;
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  HS_CHECK(rate > 0.0, "exponential rate must be positive, got " << rate);
}

double Exponential::sample(Xoshiro256& gen) const {
  return -std::log(gen.next_double_open0()) / rate_;
}

std::string Exponential::name() const {
  std::ostringstream oss;
  oss << "Exponential(rate=" << rate_ << ")";
  return oss.str();
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  HS_CHECK(lo < hi, "uniform bounds reversed: [" << lo << ", " << hi << ")");
}

double Uniform::sample(Xoshiro256& gen) const { return gen.uniform(lo_, hi_); }

std::string Uniform::name() const {
  std::ostringstream oss;
  oss << "Uniform[" << lo_ << ", " << hi_ << ")";
  return oss.str();
}

// -------------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {
  HS_CHECK(value >= 0.0, "deterministic value must be >= 0, got " << value);
}

double Deterministic::sample(Xoshiro256& /*gen*/) const { return value_; }

std::string Deterministic::name() const {
  std::ostringstream oss;
  oss << "Deterministic(" << value_ << ")";
  return oss.str();
}

// -------------------------------------------------------- HyperExponential2

HyperExponential2::HyperExponential2(double p, double rate1, double rate2)
    : p_(p), rate1_(rate1), rate2_(rate2) {
  HS_CHECK(p >= 0.0 && p <= 1.0, "branch probability out of range: " << p);
  HS_CHECK(rate1 > 0.0 && rate2 > 0.0,
           "H2 rates must be positive: " << rate1 << ", " << rate2);
}

HyperExponential2 HyperExponential2::fit_mean_cv(double mean, double cv) {
  HS_CHECK(mean > 0.0, "H2 mean must be positive, got " << mean);
  HS_CHECK(cv >= 1.0, "H2 cannot represent CV < 1, got " << cv);
  // Balanced-means fit (Allen): p·m1 = (1−p)·m2 = mean/2 with
  //   p = (1 + sqrt((cv²−1)/(cv²+1))) / 2.
  const double c2 = cv * cv;
  const double p = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
  // Branch means m1 = mean/(2p), m2 = mean/(2(1−p)); rates are reciprocals.
  if (p >= 1.0) {
    // cv == inf edge; degenerate to exponential to stay well-defined.
    return HyperExponential2(1.0, 1.0 / mean, 1.0 / mean);
  }
  const double rate1 = 2.0 * p / mean;
  const double rate2 = 2.0 * (1.0 - p) / mean;
  return HyperExponential2(p, rate1, rate2);
}

double HyperExponential2::sample(Xoshiro256& gen) const {
  const double rate = gen.next_double() < p_ ? rate1_ : rate2_;
  return -std::log(gen.next_double_open0()) / rate;
}

double HyperExponential2::mean() const {
  return p_ / rate1_ + (1.0 - p_) / rate2_;
}

double HyperExponential2::variance() const {
  const double second_moment =
      2.0 * p_ / (rate1_ * rate1_) + 2.0 * (1.0 - p_) / (rate2_ * rate2_);
  const double m = mean();
  return second_moment - m * m;
}

std::string HyperExponential2::name() const {
  std::ostringstream oss;
  oss << "HyperExp2(p=" << p_ << ", rate1=" << rate1_ << ", rate2=" << rate2_
      << ")";
  return oss.str();
}

// -------------------------------------------------------------- BoundedPareto

BoundedPareto::BoundedPareto(double lower, double upper, double alpha)
    : lower_(lower), upper_(upper), alpha_(alpha) {
  HS_CHECK(lower > 0.0, "Bounded Pareto lower bound must be > 0: " << lower);
  HS_CHECK(upper > lower,
           "Bounded Pareto needs upper > lower: " << upper << " vs " << lower);
  HS_CHECK(alpha > 0.0, "Bounded Pareto alpha must be > 0: " << alpha);
}

double BoundedPareto::sample(Xoshiro256& gen) const {
  // Inverse transform of F(x) = (1 − (k/x)^α) / (1 − (k/p)^α).
  const double u = gen.next_double();
  const double kp_alpha = std::pow(lower_ / upper_, alpha_);
  const double x =
      lower_ / std::pow(1.0 - u * (1.0 - kp_alpha), 1.0 / alpha_);
  // Clamp for floating point edge cases at u -> 1.
  return std::fmin(x, upper_);
}

double BoundedPareto::moment(int r) const {
  HS_CHECK(r >= 1, "moment order must be >= 1, got " << r);
  const double k = lower_, p = upper_, a = alpha_;
  const double norm = std::pow(k, a) / (1.0 - std::pow(k / p, a));
  const double rd = static_cast<double>(r);
  if (std::fabs(a - rd) < 1e-12) {
    // ∫ α k^α x^{r-α-1} dx with r == α gives a log.
    return norm * a * std::log(p / k);
  }
  return norm * a / (rd - a) *
         (std::pow(p, rd - a) - std::pow(k, rd - a));
}

double BoundedPareto::mean() const { return moment(1); }

double BoundedPareto::variance() const {
  const double m = mean();
  return moment(2) - m * m;
}

std::string BoundedPareto::name() const {
  std::ostringstream oss;
  oss << "BoundedPareto(k=" << lower_ << ", p=" << upper_
      << ", alpha=" << alpha_ << ")";
  return oss.str();
}

// --------------------------------------------------------------------- Erlang

Erlang::Erlang(int k, double rate) : k_(k), rate_(rate) {
  HS_CHECK(k >= 1, "Erlang stage count must be >= 1, got " << k);
  HS_CHECK(rate > 0.0, "Erlang rate must be positive, got " << rate);
}

double Erlang::sample(Xoshiro256& gen) const {
  // Product of uniforms trick: sum of k Exp(rate) = −log(Π uᵢ)/rate.
  double product = 1.0;
  for (int i = 0; i < k_; ++i) {
    product *= gen.next_double_open0();
  }
  return -std::log(product) / rate_;
}

std::string Erlang::name() const {
  std::ostringstream oss;
  oss << "Erlang(k=" << k_ << ", rate=" << rate_ << ")";
  return oss.str();
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  HS_CHECK(shape > 0.0, "Weibull shape must be positive, got " << shape);
  HS_CHECK(scale > 0.0, "Weibull scale must be positive, got " << scale);
}

double Weibull::sample(Xoshiro256& gen) const {
  return scale_ *
         std::pow(-std::log(gen.next_double_open0()), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::name() const {
  std::ostringstream oss;
  oss << "Weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return oss.str();
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu_log, double sigma_log)
    : mu_log_(mu_log), sigma_log_(sigma_log) {
  HS_CHECK(sigma_log >= 0.0, "lognormal sigma must be >= 0: " << sigma_log);
}

double sample_standard_normal(Xoshiro256& gen) {
  const double u1 = gen.next_double_open0();
  const double u2 = gen.next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double LogNormal::sample(Xoshiro256& gen) const {
  return std::exp(mu_log_ + sigma_log_ * sample_standard_normal(gen));
}

double LogNormal::mean() const {
  return std::exp(mu_log_ + 0.5 * sigma_log_ * sigma_log_);
}

double LogNormal::variance() const {
  const double s2 = sigma_log_ * sigma_log_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_log_ + s2);
}

std::string LogNormal::name() const {
  std::ostringstream oss;
  oss << "LogNormal(mu=" << mu_log_ << ", sigma=" << sigma_log_ << ")";
  return oss.str();
}

// ------------------------------------------------------------- DiscreteChoice

void DiscreteChoice::rebuild(std::span<const double> weights) {
  HS_CHECK(!weights.empty(), "discrete choice needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    HS_CHECK(w >= 0.0, "negative weight " << w);
    total += w;
  }
  HS_CHECK(total > 0.0, "weights must not all be zero");
  cumulative_.resize(weights.size());
  probabilities_.resize(weights.size());
  double running = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    running += weights[i] / total;
    cumulative_[i] = running;
    probabilities_[i] = weights[i] / total;
  }
  cumulative_.back() = 1.0;
}

size_t DiscreteChoice::sample(Xoshiro256& gen) const {
  const double u = gen.next_double();
  // First cumulative weight > u; cumulative_.back() == 1.0 > u always,
  // so the iterator never lands on end(). Identical result to the old
  // hand-rolled binary search.
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<size_t>(it - cumulative_.begin());
}

double DiscreteChoice::probability(size_t i) const {
  HS_CHECK(i < probabilities_.size(), "index out of range: " << i);
  return probabilities_[i];
}

}  // namespace hs::rng
