#include "rng/alias_table.h"

#include <bit>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace hs::rng {

namespace {

/// Acceptance probability -> fixed-point threshold in 2^-threshold_bits
/// units. Saturates at all-ones: the 2^-threshold_bits sliver past a
/// full column falls to its alias, which full columns point at
/// themselves.
uint32_t to_threshold(double probability, uint32_t threshold_bits) {
  const double full =
      static_cast<double>((uint64_t{1} << threshold_bits) - 1);
  const double scaled =
      probability * static_cast<double>(uint64_t{1} << threshold_bits);
  return scaled >= full ? static_cast<uint32_t>(full)
                        : static_cast<uint32_t>(scaled);
}

}  // namespace

void AliasTable::rebuild(std::span<const double> weights) {
  HS_CHECK(!weights.empty(), "alias table needs at least one weight");
  HS_CHECK(weights.size() <= (size_t{1} << 31),
           "alias table supports at most 2^31 outcomes, got "
               << weights.size());
  double total = 0.0;
  for (double w : weights) {
    HS_CHECK(std::isfinite(w) && w >= 0.0, "negative weight " << w);
    total += w;
  }
  HS_CHECK(total > 0.0, "weights must not all be zero");

  const size_t n = weights.size();
  size_ = n;
  alias_bits_ = n > 1 ? static_cast<uint32_t>(std::bit_width(n - 1)) : 1;
  alias_mask_ = static_cast<uint32_t>((uint64_t{1} << alias_bits_) - 1);
  const uint32_t threshold_bits = 32 - alias_bits_;
  entries_.resize(n);
  probabilities_.resize(n);
  scaled_.resize(n);
  small_.clear();
  large_.clear();
  small_.reserve(n);
  large_.reserve(n);

  // Vose's method: scale each probability by n so the average column
  // holds exactly 1.0 of mass, then repeatedly top up an under-full
  // column from an over-full one. Every pairing fills one column with
  // its own threshold plus a single alias.
  for (size_t i = 0; i < n; ++i) {
    const double p = weights[i] / total;
    probabilities_[i] = p;
    scaled_[i] = p * static_cast<double>(n);
    if (scaled_[i] < 1.0) {
      small_.push_back(static_cast<uint32_t>(i));
    } else {
      large_.push_back(static_cast<uint32_t>(i));
    }
  }
  // alias_bits_ is in [1, 31], so this never shifts by zero or 32.
  const uint32_t full = 0xFFFFFFFFu >> alias_bits_;
  const auto pack = [this](uint32_t threshold, uint32_t alias) {
    return (threshold << alias_bits_) | alias;
  };
  while (!small_.empty() && !large_.empty()) {
    const uint32_t s = small_.back();
    small_.pop_back();
    const uint32_t l = large_.back();
    large_.pop_back();
    entries_[s] = pack(to_threshold(scaled_[s], threshold_bits), l);
    // The donor keeps whatever mass the (1 − scaled_[s]) top-up left.
    scaled_[l] = (scaled_[l] + scaled_[s]) - 1.0;
    if (scaled_[l] < 1.0) {
      small_.push_back(l);
    } else {
      large_.push_back(l);
    }
  }
  // Leftovers on either stack hold exactly 1.0 up to rounding noise:
  // saturate them so the fractional test below always accepts.
  while (!large_.empty()) {
    const uint32_t l = large_.back();
    large_.pop_back();
    entries_[l] = pack(full, l);
  }
  while (!small_.empty()) {
    const uint32_t s = small_.back();
    small_.pop_back();
    entries_[s] = pack(full, s);
  }
}

double AliasTable::probability(size_t i) const {
  HS_CHECK(i < probabilities_.size(), "index out of range: " << i);
  return probabilities_[i];
}

}  // namespace hs::rng
