// Deterministic pseudo-random number generation.
//
// The paper's methodology (§4.1) averages each data point over 10
// independent runs with different random number streams. We implement
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, with a
// jump() function that advances 2^128 steps so replications and workload
// components draw from provably non-overlapping streams.
#pragma once

#include <array>
#include <cstdint>

namespace hs::rng {

/// SplitMix64 — used to expand a 64-bit seed into generator state.
/// Also a valid (if weaker) generator in its own right.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next();

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0. Fast, high-quality, 256-bit state, period 2^256 − 1.
class Xoshiro256 {
 public:
  /// Seed via SplitMix64 so that low-entropy seeds (0, 1, 2, …) still
  /// produce well-distributed state.
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniformly distributed bits. Inline: the draw is on every
  /// hot path in the engine (dispatch picks, arrival/size generation),
  /// and the ~4-cycle state update is the loop-carried chain that
  /// out-of-order cores overlap cache misses behind — an out-of-line
  /// call would serialize it through memory.
  uint64_t next_u64() {
    const uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    // Top 53 bits scaled by 2^-53: uniform on [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — never returns 0, safe for log() transforms.
  double next_double_open0() {
    // 1 - [0,1) gives (0,1]; log() of the result is always finite.
    return 1.0 - next_double();
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t next_below(uint64_t n);

  /// Advance 2^128 steps. Partitions the sequence into non-overlapping
  /// streams of length 2^128 — call k times to reach stream k.
  void jump();

  /// A generator k jump-lengths ahead of *this (stream #k relative to it).
  [[nodiscard]] Xoshiro256 stream(unsigned k) const;

  /// UniformRandomBitGenerator interface (lets <random> adaptors work too).
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  /// Raw 256-bit state, for checkpoint/restore. A generator constructed
  /// with any seed and then set_state(s) continues the exact sequence the
  /// donor of `s` would have produced — the serving snapshot layer relies
  /// on this for bit-identical resume after a restart.
  [[nodiscard]] const std::array<uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<uint64_t, 4>& state) { state_ = state; }


 private:
  static constexpr uint64_t rotl_(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_;
};

/// Deterministic per-(experiment, replication, component) seed derivation.
/// Produces well-separated 64-bit seeds by hashing the triple; components
/// are things like "arrival process" vs "job sizes" vs "message delays".
[[nodiscard]] uint64_t derive_seed(uint64_t base_seed, uint64_t replication,
                                   uint64_t component);

/// Named RNG stream components. Every subsystem that derives a seed does
/// so through one of these — a new subsystem claims the next free value
/// here instead of scattering magic numbers across draw sites. The
/// numeric values are frozen: they feed derive_seed(), so renumbering
/// would silently change every golden output.
enum class Stream : uint64_t {
  kArrival = 0,         // interarrival gaps (workload source)
  kJobSize = 1,         // job service demands
  kDispatch = 2,        // dispatcher tie-breaks / probabilistic picks
  kMessageDelay = 3,    // §4.2 feedback-report delays (completions)
  kSchedulerSplit = 4,  // multi-scheduler arrival splitting
  kFaultDelay = 5,      // crash/loss detection delays
  kOverload = 6,        // admission-control coin flips
  kBelief = 7,          // parameter-uncertainty belief noise
  kNetwork = 8,         // network fault model (loss/delay/dup/heartbeats)
  kFaultTimeline = 32,  // + machine index: per-machine crash timelines
  kReplication = 100,   // per-replication base-seed derivation
};

/// derive_seed with a named component. `offset` is added to the stream's
/// base value for per-entity sub-streams (e.g. kFaultTimeline + machine).
[[nodiscard]] inline uint64_t derive_seed(uint64_t base_seed,
                                          uint64_t replication, Stream s,
                                          uint64_t offset = 0) {
  return derive_seed(base_seed, replication,
                     static_cast<uint64_t>(s) + offset);
}

}  // namespace hs::rng
