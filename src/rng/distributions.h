// Random variate distributions for the workload model.
//
// The paper's simulation (§4.1) needs:
//  * Bounded Pareto B(k, p, α) job sizes (heavy-tailed, k=10 s, p=21600 s,
//    α=1.0 → mean 76.8 s),
//  * two-stage hyperexponential inter-arrival times fit to a target mean
//    and coefficient of variation (CV = 3.0),
//  * exponential message transfer delays (mean 0.05 s) and U(0,1)
//    departure detection delays for the Dynamic Least-Load baseline.
// Exponential sizes/arrivals are also provided to validate the simulator
// against M/M/1-PS closed forms, plus a few extra shapes (Erlang, Weibull,
// lognormal) for sensitivity studies.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace hs::rng {

/// Abstract real-valued distribution. Implementations are immutable after
/// construction; all state lives in the caller-supplied generator, so one
/// distribution object can serve many independent streams.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draw one variate.
  [[nodiscard]] virtual double sample(Xoshiro256& gen) const = 0;
  /// Analytic mean (used to size workloads so the target utilization is hit).
  [[nodiscard]] virtual double mean() const = 0;
  /// Analytic variance; may be infinity for heavy tails with α <= 2.
  [[nodiscard]] virtual double variance() const = 0;
  /// Human-readable description for logs and reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Coefficient of variation σ/μ (infinity if the variance diverges).
  [[nodiscard]] double cv() const;
};

/// Exponential(rate): mean 1/rate.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override {
    return 1.0 / (rate_ * rate_);
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
};

/// Uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override {
    return (hi_ - lo_) * (hi_ - lo_) / 12.0;
  }
  [[nodiscard]] std::string name() const override;

 private:
  double lo_;
  double hi_;
};

/// Point mass at `value` (CV = 0); useful for deterministic experiments.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override { return value_; }
  [[nodiscard]] double variance() const override { return 0.0; }
  [[nodiscard]] std::string name() const override;

 private:
  double value_;
};

/// Two-stage hyperexponential H2: with probability p draw Exp(rate1), else
/// Exp(rate2). Models bursty (CV > 1) inter-arrival processes.
class HyperExponential2 final : public Distribution {
 public:
  HyperExponential2(double p, double rate1, double rate2);

  /// Balanced-means fit: the unique H2 with p·(1/rate1) = (1−p)·(1/rate2)
  /// matching the given mean and CV (requires cv >= 1).
  static HyperExponential2 fit_mean_cv(double mean, double cv);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] double rate1() const { return rate1_; }
  [[nodiscard]] double rate2() const { return rate2_; }

 private:
  double p_;
  double rate1_;
  double rate2_;
};

/// Bounded Pareto B(k, p, α) with density
///   f(x) = α k^α / (1 − (k/p)^α) · x^(−α−1),  k <= x <= p.
/// The paper's job-size model: B(10 s, 21600 s, 1.0), mean 76.8 s.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double lower, double upper, double alpha);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double lower() const { return lower_; }
  [[nodiscard]] double upper() const { return upper_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Raw moment E[X^r].
  [[nodiscard]] double moment(int r) const;

 private:
  double lower_;
  double upper_;
  double alpha_;
};

/// Erlang-k (sum of k exponentials), CV = 1/sqrt(k) < 1.
class Erlang final : public Distribution {
 public:
  Erlang(int k, double rate);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override {
    return static_cast<double>(k_) / rate_;
  }
  [[nodiscard]] double variance() const override {
    return static_cast<double>(k_) / (rate_ * rate_);
  }
  [[nodiscard]] std::string name() const override;

 private:
  int k_;
  double rate_;
};

/// Weibull(shape, scale).
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double shape_;
  double scale_;
};

/// Lognormal with the given mean and sigma of the underlying normal.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu_log, double sigma_log);

  [[nodiscard]] double sample(Xoshiro256& gen) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double mu_log_;
  double sigma_log_;
};

/// Standard normal variate via Box–Muller (polar form avoided for
/// statelessness; both values of the pair are not cached).
[[nodiscard]] double sample_standard_normal(Xoshiro256& gen);

/// Weighted discrete choice: returns index i with probability weights[i]/Σ.
/// Weights must be non-negative with a positive sum. Default-constructed
/// choices are empty; rebuild() before sampling. For an O(1) alternative
/// see rng::AliasTable (alias_table.h).
class DiscreteChoice {
 public:
  DiscreteChoice() = default;
  explicit DiscreteChoice(const std::vector<double>& weights) {
    rebuild(weights);
  }

  /// Rebuild for new weights in place, reusing cumulative_/probabilities_
  /// capacity: allocation-free once built for a size >= the new one.
  void rebuild(std::span<const double> weights);

  [[nodiscard]] size_t sample(Xoshiro256& gen) const;
  [[nodiscard]] size_t size() const { return cumulative_.size(); }
  /// Normalized probability of index i.
  [[nodiscard]] double probability(size_t i) const;

 private:
  std::vector<double> cumulative_;  // normalized cumulative sums, back()==1
  std::vector<double> probabilities_;
};

}  // namespace hs::rng
