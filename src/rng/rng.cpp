#include "rng/rng.h"

#include "util/check.h"

namespace hs::rng {

namespace {

constexpr uint64_t rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64::next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) {
    word = sm.next();
  }
}

uint64_t Xoshiro256::next_below(uint64_t n) {
  HS_CHECK(n > 0, "next_below(0)");
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

void Xoshiro256::jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAull,
                                       0xD5A61266F0C9392Cull,
                                       0xA9582618E03FC9AAull,
                                       0x39ABDC4529B1661Cull};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ull << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next_u64();
    }
  }
  state_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::stream(unsigned k) const {
  Xoshiro256 copy = *this;
  for (unsigned i = 0; i < k; ++i) {
    copy.jump();
  }
  return copy;
}

uint64_t derive_seed(uint64_t base_seed, uint64_t replication,
                     uint64_t component) {
  // Mix the triple through SplitMix64 twice; adjacent triples map to
  // statistically unrelated seeds.
  SplitMix64 sm(base_seed ^ (replication * 0x9E3779B97F4A7C15ull) ^
                (component * 0xC2B2AE3D27D4EB4Full));
  sm.next();
  return sm.next();
}

}  // namespace hs::rng
