// Walker/Vose alias method — O(1) weighted sampling for million-machine
// dispatch.
//
// DiscreteChoice answers "index i with probability wᵢ/Σw" with an
// O(log n) binary search over cumulative sums; the alias method answers
// it with one table lookup: split the probability mass into n equal-size
// columns, each holding at most two outcomes (the column's own index and
// one "alias"). A single uniform draw then selects a column (integer
// part) and a side of its threshold (fractional part) — constant time
// regardless of n, which is what keeps per-pick dispatch cost flat as
// the cluster grows (ROADMAP item 2).
//
// The table is rebuildable in place: rebuild() reuses every internal
// buffer, so the survivor-reallocation paths (fault/breaker rebuilds,
// governed adaptive re-allocations) can re-weight a live sampler without
// touching the allocator. One rebuild costs O(n); a construction-quality
// evaluation harness lives in bench/eval_sampling.cpp.
//
// Determinism: sample() consumes exactly one next_u64() per draw — the
// same generator-state budget as DiscreteChoice's one next_double() —
// but maps it differently, so the two samplers produce different
// (individually reproducible) pick sequences; the alias path carries
// its own golden pin in tests/test_determinism_golden.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng.h"

namespace hs::rng {

/// O(1) weighted discrete sampler (Walker/Vose alias method). Weights
/// must be non-negative with a positive sum. Default-constructed tables
/// are empty; rebuild() before sampling.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights) { rebuild(weights); }

  /// Rebuild the table for new weights. Reuses all internal buffers:
  /// allocation-free once the table has been built for a size >= the new
  /// one (pinned by tests/test_sampler_alloc.cpp).
  void rebuild(std::span<const double> weights);

  /// Index i with probability weights[i]/Σ. One uniform draw, O(1).
  /// Inline: one u64 draw serves both decisions — r·n is a 128-bit
  /// fixed-point number whose integer part (the high 64 bits) is the
  /// column, exactly floor(r/2^64 · n), always < n, no clamp; the
  /// fractional part's top bits are the position within the column,
  /// compared against the packed fixed-point threshold. All-integer
  /// arithmetic keeps the load address off any FP-convert chain, and
  /// inlining keeps the pick small enough that out-of-order cores
  /// overlap several large-table cache misses.
  [[nodiscard]] size_t sample(Xoshiro256& gen) const {
    const uint64_t r = gen.next_u64();
    const auto product = static_cast<unsigned __int128>(r) * size_;
    const auto column = static_cast<size_t>(product >> 64);
    const auto frac =
        static_cast<uint32_t>(static_cast<uint64_t>(product) >> 32);
    const uint32_t word = entries_[column];
    return (frac >> alias_bits_) < (word >> alias_bits_)
               ? column
               : word & alias_mask_;
  }

  [[nodiscard]] size_t size() const { return size_; }
  /// Normalized target probability of index i (same contract as
  /// DiscreteChoice::probability).
  [[nodiscard]] double probability(size_t i) const;

 private:
  // Threshold and alternate outcome packed into ONE 32-bit word: the
  // alias index takes the low bit_width(n-1) bits, the fixed-point
  // acceptance threshold the rest. One sample is then a single 4-byte
  // load — the n = 10⁶ table is 4 MB, small enough that its ~1k pages
  // stay TLB-resident and per-pick cost stays flat (the 8- and 16-byte
  // layouts measured ~1.7× slower at 10⁶ purely from TLB walks).
  // Quantizing the threshold moves each column's split point by at most
  // 2^-(32-bit_width(n-1)) — 2⁻¹² at n = 10⁶ — orders of magnitude
  // under the sampling noise any realistic draw count can resolve
  // (bounded by bench/eval_sampling), and the error never leaks mass
  // into zero-weight outcomes (aliases are always over-full columns).
  size_t size_ = 0;
  uint32_t alias_bits_ = 1;   // low bits of a word: alias index
  uint32_t alias_mask_ = 1;   // (1 << alias_bits_) - 1
  std::vector<uint32_t> entries_;
  std::vector<double> probabilities_;  // normalized targets (inspection)
  // Construction scratch, retained across rebuilds.
  std::vector<double> scaled_;
  std::vector<uint32_t> small_;
  std::vector<uint32_t> large_;
};

}  // namespace hs::rng
