#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hs::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  HS_CHECK(q > 0.0 && q < 1.0, "quantile must be in (0,1): " << q);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add_initial(double x) {
  heights_[count_] = x;
  ++count_;
  if (count_ == 5) {
    std::sort(heights_.begin(), heights_.end());
    for (size_t i = 0; i < 5; ++i) {
      positions_[i] = static_cast<double>(i + 1);
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto idx = static_cast<size_t>(
        std::clamp(q_ * static_cast<double>(count_ - 1), 0.0,
                   static_cast<double>(count_ - 1)));
    return sorted[idx];
  }
  return heights_[2];
}

}  // namespace hs::stats
