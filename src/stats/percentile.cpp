#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hs::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  HS_CHECK(q > 0.0 && q < 1.0, "quantile must be in (0,1): " << q);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = positions_[static_cast<size_t>(i + 1)];
  const double nc = positions_[static_cast<size_t>(i)];
  const double nm = positions_[static_cast<size_t>(i - 1)];
  const double hp = heights_[static_cast<size_t>(i + 1)];
  const double hc = heights_[static_cast<size_t>(i)];
  const double hm = heights_[static_cast<size_t>(i - 1)];
  return hc + d / (np - nm) *
                  ((nc - nm + d) * (hp - hc) / (np - nc) +
                   (np - nc - d) * (hc - hm) / (nc - nm));
}

double P2Quantile::linear(int i, double d) const {
  const auto ci = static_cast<size_t>(i);
  const auto ni = static_cast<size_t>(i + static_cast<int>(d));
  return heights_[ci] + d * (heights_[ni] - heights_[ci]) /
                            (positions_[ni] - positions_[ci]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  ++count_;
  size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }
  for (size_t i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (size_t i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }
  for (int i = 1; i <= 3; ++i) {
    const auto ui = static_cast<size_t>(i);
    const double d = desired_[ui] - positions_[ui];
    if ((d >= 1.0 && positions_[ui + 1] - positions_[ui] > 1.0) ||
        (d <= -1.0 && positions_[ui - 1] - positions_[ui] < -1.0)) {
      const double step = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[ui - 1] < candidate && candidate < heights_[ui + 1]) {
        heights_[ui] = candidate;
      } else {
        heights_[ui] = linear(i, step);
      }
      positions_[ui] += step;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto idx = static_cast<size_t>(
        std::clamp(q_ * static_cast<double>(count_ - 1), 0.0,
                   static_cast<double>(count_ - 1)));
    return sorted[idx];
  }
  return heights_[2];
}

}  // namespace hs::stats
