// P² (piecewise-parabolic) streaming quantile estimator.
//
// Jain & Chlamtac (1985). Tracks a single quantile in O(1) space without
// storing observations — used to report tail response times (p95/p99)
// alongside the paper's mean-based metrics.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace hs::stats {

class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double q);

  /// Inline: runs once per tracked quantile per completed job. The
  /// marker bookkeeping uses branchless conditional adds (adding 0.0 is
  /// exact, so the results match the plain loop bit for bit).
  void add(double x) {
    if (count_ < 5) [[unlikely]] {
      add_initial(x);
      return;
    }
    ++count_;
    // Branchless cell search. Marker heights are sorted, so the cell
    // index is the count of interior markers at or below x; the extreme
    // markers absorb outliers via min/max, which write back the same
    // values the guarded updates would.
    heights_[0] = x < heights_[0] ? x : heights_[0];
    heights_[4] = x >= heights_[4] ? x : heights_[4];
    const size_t k = static_cast<size_t>(x >= heights_[1]) +
                     static_cast<size_t>(x >= heights_[2]) +
                     static_cast<size_t>(x >= heights_[3]);
    positions_[1] += static_cast<double>(k < 1);
    positions_[2] += static_cast<double>(k < 2);
    positions_[3] += static_cast<double>(k < 3);
    positions_[4] += 1.0;
    desired_[1] += increments_[1];
    desired_[2] += increments_[2];
    desired_[3] += increments_[3];
    desired_[4] += increments_[4];
    for (int i = 1; i <= 3; ++i) {
      const auto ui = static_cast<size_t>(i);
      const double d = desired_[ui] - positions_[ui];
      if ((d >= 1.0 && positions_[ui + 1] - positions_[ui] > 1.0) ||
          (d <= -1.0 && positions_[ui - 1] - positions_[ui] < -1.0)) {
        const double step = d >= 0 ? 1.0 : -1.0;
        double candidate = parabolic(i, step);
        if (heights_[ui - 1] < candidate && candidate < heights_[ui + 1]) {
          heights_[ui] = candidate;
        } else {
          heights_[ui] = linear(i, step);
        }
        positions_[ui] += step;
      }
    }
  }

  /// Current estimate. Exact while fewer than 5 observations have been
  /// seen (falls back to the sorted sample).
  [[nodiscard]] double value() const;

  [[nodiscard]] uint64_t count() const { return count_; }

 private:
  /// Fill-phase add (first five observations).
  void add_initial(double x);

  [[nodiscard]] double parabolic(int i, double d) const {
    const double np = positions_[static_cast<size_t>(i + 1)];
    const double nc = positions_[static_cast<size_t>(i)];
    const double nm = positions_[static_cast<size_t>(i - 1)];
    const double hp = heights_[static_cast<size_t>(i + 1)];
    const double hc = heights_[static_cast<size_t>(i)];
    const double hm = heights_[static_cast<size_t>(i - 1)];
    return hc + d / (np - nm) *
                    ((nc - nm + d) * (hp - hc) / (np - nc) +
                     (np - nc - d) * (hc - hm) / (nc - nm));
  }

  [[nodiscard]] double linear(int i, double d) const {
    const auto ci = static_cast<size_t>(i);
    const auto ni = static_cast<size_t>(i + static_cast<int>(d));
    return heights_[ci] + d * (heights_[ni] - heights_[ci]) /
                              (positions_[ni] - positions_[ci]);
  }

  double q_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // marker positions (1-based)
  std::array<double, 5> desired_{};    // desired positions
  std::array<double, 5> increments_{};
};

}  // namespace hs::stats
