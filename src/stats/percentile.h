// P² (piecewise-parabolic) streaming quantile estimator.
//
// Jain & Chlamtac (1985). Tracks a single quantile in O(1) space without
// storing observations — used to report tail response times (p95/p99)
// alongside the paper's mean-based metrics.
#pragma once

#include <array>
#include <cstdint>

namespace hs::stats {

class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate. Exact while fewer than 5 observations have been
  /// seen (falls back to the sorted sample).
  [[nodiscard]] double value() const;

  [[nodiscard]] uint64_t count() const { return count_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // marker positions (1-based)
  std::array<double, 5> desired_{};    // desired positions
  std::array<double, 5> increments_{};
};

}  // namespace hs::stats
