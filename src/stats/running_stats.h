// Single-pass moment accumulation (Welford / Chan parallel update).
//
// The simulator processes millions of jobs per run; response times and
// response ratios are accumulated online without storing samples. The
// fairness metric of §4.1 — the standard deviation of the response ratio —
// falls straight out of the second central moment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace hs::stats {

/// Numerically stable streaming mean/variance/min/max.
class RunningStats {
 public:
  /// Inline: runs several times per completed job in the simulator's
  /// metrics path.
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator (Chan et al. pairwise update); used to
  /// combine statistics across simulation replications or sub-streams.
  void merge(const RunningStats& other);

  void reset();

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n−1); 0 for n < 2.
  [[nodiscard]] double variance() const;
  /// Population variance (n); 0 for n < 1.
  [[nodiscard]] double population_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double population_stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hs::stats
