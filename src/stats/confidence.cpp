#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::stats {

double inverse_normal_cdf(double p) {
  HS_CHECK(p > 0.0 && p < 1.0, "inverse normal CDF needs p in (0,1): " << p);
  // Peter Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley refinement against the normal CDF.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double t_quantile(double p, unsigned df) {
  HS_CHECK(p > 0.0 && p < 1.0, "t quantile needs p in (0,1): " << p);
  HS_CHECK(df >= 1, "t quantile needs df >= 1");
  if (p == 0.5) {
    return 0.0;
  }
  // Exact closed forms for very small df where expansions are weakest.
  if (df == 1) {
    return std::tan(M_PI * (p - 0.5));
  }
  if (df == 2) {
    const double alpha = 2.0 * p - 1.0;
    return alpha * std::sqrt(2.0 / (1.0 - alpha * alpha));
  }
  // Cornish–Fisher expansion around the normal quantile.
  const double z = inverse_normal_cdf(p);
  const double n = static_cast<double>(df);
  const double z2 = z * z;
  const double g1 = (z2 + 1.0) * z / 4.0;
  const double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
  const double g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
  const double g4 =
      ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z /
      92160.0;
  return z + g1 / n + g2 / (n * n) + g3 / (n * n * n) +
         g4 / (n * n * n * n);
}

double ConfidenceInterval::relative_half_width() const {
  if (mean == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return half_width / std::fabs(mean);
}

ConfidenceInterval mean_confidence_interval(std::span<const double> samples,
                                            double confidence) {
  HS_CHECK(!samples.empty(), "confidence interval needs at least one sample");
  HS_CHECK(confidence > 0.0 && confidence < 1.0,
           "confidence must be in (0,1): " << confidence);
  ConfidenceInterval ci;
  ci.n = static_cast<unsigned>(samples.size());
  ci.mean = util::mean(samples);
  ci.stddev = util::sample_stddev(samples);
  if (samples.size() >= 2) {
    const double t =
        t_quantile(0.5 + confidence / 2.0, ci.n - 1);
    ci.half_width = t * ci.stddev / std::sqrt(static_cast<double>(ci.n));
  }
  return ci;
}

}  // namespace hs::stats
