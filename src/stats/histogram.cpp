#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace hs::stats {

Histogram::Histogram(double lo, double hi, size_t bins, Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(bins, 0) {
  HS_CHECK(bins >= 1, "histogram needs at least one bin");
  HS_CHECK(lo < hi, "histogram bounds reversed: [" << lo << ", " << hi << ")");
  if (scale_ == Scale::kLog) {
    HS_CHECK(lo > 0.0, "log-scale histogram needs lo > 0, got " << lo);
    log_lo_ = std::log(lo);
    log_hi_ = std::log(hi);
  }
}

double Histogram::position(double x) const {
  if (scale_ == Scale::kLinear) {
    return (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  }
  return (std::log(x) - log_lo_) / (log_hi_ - log_lo_) *
         static_cast<double>(counts_.size());
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<size_t>(position(x));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  HS_CHECK(lo_ == other.lo_ && hi_ == other.hi_,
           "merging histograms with different bounds: ["
               << lo_ << ", " << hi_ << ") vs [" << other.lo_ << ", "
               << other.hi_ << ")");
  HS_CHECK(counts_.size() == other.counts_.size(),
           "merging histograms with different bin counts: "
               << counts_.size() << " vs " << other.counts_.size());
  HS_CHECK(scale_ == other.scale_,
           "merging histograms with different scales");
  for (size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

uint64_t Histogram::count(size_t bin) const {
  HS_CHECK(bin < counts_.size(), "bin index out of range: " << bin);
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_range(size_t bin) const {
  HS_CHECK(bin < counts_.size(), "bin index out of range: " << bin);
  const double n = static_cast<double>(counts_.size());
  if (scale_ == Scale::kLinear) {
    const double width = (hi_ - lo_) / n;
    return {lo_ + width * static_cast<double>(bin),
            lo_ + width * static_cast<double>(bin + 1)};
  }
  const double lw = (log_hi_ - log_lo_) / n;
  return {std::exp(log_lo_ + lw * static_cast<double>(bin)),
          std::exp(log_lo_ + lw * static_cast<double>(bin + 1))};
}

double Histogram::quantile(double q) const {
  HS_CHECK(total_ > 0, "quantile of empty histogram");
  HS_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: " << q);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) {
    return lo_;
  }
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const auto [bin_lo, bin_hi] = bin_range(b);
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[b]);
      return bin_lo + frac * (bin_hi - bin_lo);
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(size_t max_width) const {
  std::ostringstream oss;
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  for (size_t b = 0; b < counts_.size(); ++b) {
    const auto [bin_lo, bin_hi] = bin_range(b);
    const auto bar_len = static_cast<size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    oss << "[" << bin_lo << ", " << bin_hi << "): "
        << std::string(bar_len, '#') << " " << counts_[b] << '\n';
  }
  if (underflow_ > 0) {
    oss << "underflow: " << underflow_ << '\n';
  }
  if (overflow_ > 0) {
    oss << "overflow: " << overflow_ << '\n';
  }
  return oss.str();
}

}  // namespace hs::stats
