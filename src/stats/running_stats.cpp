#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace hs::stats {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const {
  if (count_ < 1) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_stddev() const {
  return std::sqrt(population_variance());
}

}  // namespace hs::stats
