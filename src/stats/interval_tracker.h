// Per-interval workload allocation deviation (Figure 2 metric).
//
// The paper compares dispatching strategies by the "workload allocation
// deviation" Σᵢ(αᵢ − αᵢ′)² measured over consecutive fixed-length
// intervals, where αᵢ is the expected fraction for machine i and αᵢ′ the
// fraction of jobs actually dispatched to it within the interval. This
// tracker consumes (time, machine) dispatch events online and emits the
// deviation series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hs::stats {

class IntervalDeviationTracker {
 public:
  /// `expected_fractions` are the αᵢ; `interval_length` is in seconds
  /// (paper uses 120 s).
  IntervalDeviationTracker(std::vector<double> expected_fractions,
                           double interval_length);

  /// Record a dispatch of one job to `machine` at time `t`.
  /// Times must be non-decreasing.
  void record(double t, size_t machine);

  /// Close the interval containing `t` and everything before it, so that
  /// deviations() includes all data up to `t`.
  void flush_until(double t);

  /// Deviation value per completed interval, in time order. Intervals
  /// with zero arrivals contribute Σαᵢ² (all fractions missed).
  [[nodiscard]] const std::vector<double>& deviations() const {
    return deviations_;
  }

  [[nodiscard]] size_t machine_count() const { return expected_.size(); }
  [[nodiscard]] double interval_length() const { return interval_length_; }

 private:
  void close_interval();

  std::vector<double> expected_;
  double interval_length_;
  size_t current_interval_ = 0;
  std::vector<uint64_t> counts_;  // dispatches per machine this interval
  uint64_t interval_total_ = 0;
  std::vector<double> deviations_;
  double last_time_ = 0.0;
};

}  // namespace hs::stats
