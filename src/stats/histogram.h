// Fixed-bin and logarithmic histograms for response-time distributions.
//
// Bench binaries report mean metrics (as the paper does) but the
// histograms let examples and tests inspect whole distributions — e.g.
// the heavy tail of Bounded Pareto response times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hs::stats {

/// Histogram over [lo, hi) with uniform or logarithmic bins, plus
/// underflow/overflow counters.
class Histogram {
 public:
  enum class Scale { kLinear, kLog };

  /// For kLog, lo must be > 0.
  Histogram(double lo, double hi, size_t bins, Scale scale = Scale::kLinear);

  void add(double x);

  /// Fold `other` into this histogram (counts, underflow, overflow,
  /// total all add). Both histograms must have identical binning —
  /// same bounds, bin count and scale. Mirrors RunningStats::merge:
  /// per-replication histograms filled on worker threads can be
  /// combined into one distribution afterwards.
  void merge(const Histogram& other);

  [[nodiscard]] size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] uint64_t count(size_t bin) const;
  [[nodiscard]] uint64_t underflow() const { return underflow_; }
  [[nodiscard]] uint64_t overflow() const { return overflow_; }
  [[nodiscard]] uint64_t total() const { return total_; }

  /// [lower, upper) edges of a bin.
  [[nodiscard]] std::pair<double, double> bin_range(size_t bin) const;

  /// Approximate quantile by linear interpolation within the bin.
  /// q in [0, 1]. Requires total() > 0.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (for example programs).
  [[nodiscard]] std::string render(size_t max_width = 60) const;

 private:
  [[nodiscard]] double position(double x) const;  // fractional bin index

  double lo_;
  double hi_;
  Scale scale_;
  double log_lo_ = 0.0;
  double log_hi_ = 0.0;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace hs::stats
