#include "stats/interval_tracker.h"

#include <cmath>

#include "util/check.h"

namespace hs::stats {

IntervalDeviationTracker::IntervalDeviationTracker(
    std::vector<double> expected_fractions, double interval_length)
    : expected_(std::move(expected_fractions)),
      interval_length_(interval_length),
      counts_(expected_.size(), 0) {
  HS_CHECK(!expected_.empty(), "tracker needs at least one machine");
  HS_CHECK(interval_length > 0.0,
           "interval length must be positive: " << interval_length);
  double sum = 0.0;
  for (double f : expected_) {
    HS_CHECK(f >= 0.0, "negative expected fraction " << f);
    sum += f;
  }
  HS_CHECK(std::fabs(sum - 1.0) < 1e-6,
           "expected fractions must sum to 1, got " << sum);
}

void IntervalDeviationTracker::close_interval() {
  double deviation = 0.0;
  for (size_t i = 0; i < expected_.size(); ++i) {
    const double actual =
        interval_total_ == 0
            ? 0.0
            : static_cast<double>(counts_[i]) /
                  static_cast<double>(interval_total_);
    const double d = expected_[i] - actual;
    deviation += d * d;
    counts_[i] = 0;
  }
  interval_total_ = 0;
  deviations_.push_back(deviation);
  ++current_interval_;
}

void IntervalDeviationTracker::record(double t, size_t machine) {
  HS_CHECK(machine < expected_.size(), "machine index out of range: " << machine);
  HS_CHECK(t >= last_time_, "dispatch times must be non-decreasing: " << t
                                                                      << " < "
                                                                      << last_time_);
  last_time_ = t;
  const auto interval = static_cast<size_t>(t / interval_length_);
  while (current_interval_ < interval) {
    close_interval();
  }
  ++counts_[machine];
  ++interval_total_;
}

void IntervalDeviationTracker::flush_until(double t) {
  HS_CHECK(t >= last_time_, "flush time before last record: " << t);
  last_time_ = t;
  const auto interval = static_cast<size_t>(t / interval_length_);
  while (current_interval_ < interval) {
    close_interval();
  }
}

}  // namespace hs::stats
