// Confidence intervals for replicated simulation experiments.
//
// Each data point in the paper's plots is the average of 10 independent
// runs (§4.1); we attach Student-t confidence intervals to the
// replication means so bench output reports both the point estimate and
// its statistical precision.
#pragma once

#include <span>

namespace hs::stats {

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// relative error < 1.15e-9). p in (0, 1).
[[nodiscard]] double inverse_normal_cdf(double p);

/// Upper quantile of Student's t with `df` degrees of freedom:
/// returns t such that P(T <= t) = p. Uses Hill's approximation refined by
/// the Cornish–Fisher expansion; accurate to ~1e-4 for df >= 1.
[[nodiscard]] double t_quantile(double p, unsigned df);

/// Result of a replication analysis.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // CI is [mean - hw, mean + hw]
  double stddev = 0.0;      // sample stddev across replications
  unsigned n = 0;

  [[nodiscard]] double lower() const { return mean - half_width; }
  [[nodiscard]] double upper() const { return mean + half_width; }
  /// Relative half width (hw / |mean|); infinity for mean == 0.
  [[nodiscard]] double relative_half_width() const;
};

/// Student-t confidence interval for the mean of `samples` at the given
/// confidence level (default 95%). One sample => zero-width interval.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(
    std::span<const double> samples, double confidence = 0.95);

}  // namespace hs::stats
