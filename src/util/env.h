// Environment-variable helpers shared by tests, CI jobs, and demo
// binaries.
//
// The repo's randomized suites (chaos soak, explorer search) all follow
// one convention: the seed comes from an environment variable, is
// validated loudly (a typo'd seed must not silently fall back and "pass"
// with the wrong randomness), and is printed in a uniform
// "rerun with NAME=value" line so any red run can be replayed exactly by
// exporting the logged value. seed_from_env() is that convention in one
// place.
#pragma once

#include <cstdint>
#include <string>

namespace hs::util {

/// Read a 64-bit seed from environment variable `name`.
///
///  * unset or empty      → `fallback`
///  * a decimal uint64    → that value
///  * anything else (non-numeric, trailing garbage, negative, overflow)
///    → util::CheckError, so a malformed seed never silently degrades a
///    reproduction attempt into a different run
///
/// Always prints one line to stdout — `[seed] rerun with NAME=value` —
/// for the value actually used, before returning it.
[[nodiscard]] uint64_t seed_from_env(const std::string& name,
                                     uint64_t fallback);

}  // namespace hs::util
