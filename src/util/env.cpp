#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace hs::util {

uint64_t seed_from_env(const std::string& name, uint64_t fallback) {
  uint64_t seed = fallback;
  const char* raw = std::getenv(name.c_str());
  if (raw != nullptr && raw[0] != '\0') {
    // strtoull accepts leading whitespace, a sign, and hex prefixes —
    // none of which we want in a seed that must round-trip through a
    // log line — so insist on pure decimal digits first.
    for (const char* p = raw; *p != '\0'; ++p) {
      HS_CHECK(std::isdigit(static_cast<unsigned char>(*p)),
               name << " must be a decimal seed, got \"" << raw << "\"");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    HS_CHECK(errno != ERANGE, name << " overflows 64 bits: \"" << raw
                                   << "\"");
    HS_CHECK(end != nullptr && *end == '\0',
             name << " has trailing garbage: \"" << raw << "\"");
    seed = static_cast<uint64_t>(value);
  }
  std::printf("[seed] rerun with %s=%llu\n", name.c_str(),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  return seed;
}

}  // namespace hs::util
