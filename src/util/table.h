// Aligned plain-text table rendering for bench output.
//
// Every bench binary reproduces one table or figure from the paper; the
// TablePrinter renders the rows/series it reports in a stable, diffable
// layout (and optionally CSV for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hs::util {

/// Column-aligned text table. Cells are strings; numeric convenience
/// overloads format with a fixed precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Start a new row. Subsequent cell() calls append to it.
  void begin_row();
  void cell(const std::string& value);
  void cell(double value, int precision = 4);
  void cell(long value);

  /// Append a fully formed row (must match the header width).
  void add_row(std::vector<std::string> row);

  [[nodiscard]] size_t row_count() const { return rows_.size(); }

  /// Render with aligned columns.
  void print(std::ostream& os) const;
  /// Render as CSV (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace hs::util
