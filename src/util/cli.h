// Minimal command-line argument parser for bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` arguments
// with typed accessors and defaults. Unknown arguments are an error, so a
// typo in a sweep script fails loudly instead of silently running with
// defaults.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hs::util {

/// Declarative CLI parser. Register options first, then parse().
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Register a string-valued option (also used for numeric options).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Register a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing help) if --help was given.
  /// Throws std::invalid_argument on unknown or malformed arguments.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_long(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Render the help text (program description plus option table).
  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };

  const Option& find(const std::string& name) const;

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace hs::util
