// Crash-consistent file replacement.
//
// A plain ofstream write is torn by a crash at any point: the target
// path transitions through every partial length, and a reader (or a
// restarted process) can observe a half-written file with a valid
// header. write_file_atomic() gives the POSIX publish idiom instead —
// write the full payload to a temporary in the same directory, fsync it
// so the *data* is durable before the name is, then rename() onto the
// target (atomic within a filesystem), and finally fsync the directory
// so the new name itself survives a power cut. A reader therefore sees
// either the complete old file or the complete new file, never a mix —
// the property the HSTRACE1/HSSNAP1 persistence layers (serving/) rely
// on for "a crash mid-write never leaves a torn file".
#pragma once

#include <cstddef>
#include <string>

namespace hs::util {

/// Atomically replace `path` with `size` bytes at `data`. The temporary
/// is `path` + ".tmp" in the same directory (same filesystem, so the
/// rename is atomic); concurrent writers to one path must be externally
/// serialized, which the serving layer's with_exclusive() provides.
/// Throws util::CheckError on any I/O failure (the temporary is
/// unlinked best-effort before throwing).
void write_file_atomic(const std::string& path, const void* data,
                       size_t size);

namespace testing {

/// Test-only fault injection for write_file_atomic's syscalls. The
/// failure paths this function promises — "throws CheckError and leaves
/// no temporary or partial file" — involve disk-full, I/O-error, and
/// permission conditions that cannot be provoked portably from a test
/// (CI runs as root, where chmod is advisory), so the tests flip these
/// knobs instead. All fields default to "off", in which state the
/// wrappers forward to the real syscalls; production code never touches
/// this struct.
struct AtomicFileFailureInjection {
  /// Cap each write() at this many bytes, exercising the short-write
  /// retry loop on the success path. < 0 = no cap.
  long short_write_limit = -1;
  /// Fail write() with ENOSPC once this many bytes have been written in
  /// total (the classic mid-payload disk-full). < 0 = never.
  long fail_write_after = -1;
  bool fail_fsync = false;   // fsync() on the temporary fails with EIO
  bool fail_rename = false;  // rename() fails with EACCES
                             // (unwritable target directory)

  void reset() { *this = AtomicFileFailureInjection{}; }
};

/// The process-wide injection state (tests are single-threaded here).
extern AtomicFileFailureInjection atomic_file_failures;

}  // namespace testing

}  // namespace hs::util
