#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace hs::util {

namespace testing {
AtomicFileFailureInjection atomic_file_failures;
}  // namespace testing

namespace {

/// write() with the test-only failure injection applied: an optional
/// per-call byte cap (short writes) and an optional total-bytes budget
/// after which the call fails as if the disk filled.
ssize_t checked_write(int fd, const char* data, size_t size,
                      size_t total_written) {
  const auto& inject = testing::atomic_file_failures;
  if (inject.fail_write_after >= 0) {
    const size_t budget = static_cast<size_t>(inject.fail_write_after);
    if (total_written >= budget) {
      errno = ENOSPC;
      return -1;
    }
    // Short-write up to the budget first, so the partial payload the
    // failure leaves behind is realistic.
    size = std::min(size, budget - total_written);
  }
  if (inject.short_write_limit >= 0 &&
      size > static_cast<size_t>(inject.short_write_limit)) {
    size = static_cast<size_t>(inject.short_write_limit);
    if (size == 0) {
      errno = ENOSPC;
      return -1;
    }
  }
  return ::write(fd, data, size);
}

/// Write the whole buffer, riding out short writes and EINTR.
bool write_all(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (size > 0) {
    const ssize_t n = checked_write(fd, data, size, written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
    written += static_cast<size_t>(n);
  }
  return true;
}

/// fsync()/rename() with the test-only failure injection applied.
int checked_fsync(int fd) {
  if (testing::atomic_file_failures.fail_fsync) {
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

int checked_rename(const char* from, const char* to) {
  if (testing::atomic_file_failures.fail_rename) {
    errno = EACCES;
    return -1;
  }
  return ::rename(from, to);
}

}  // namespace

void write_file_atomic(const std::string& path, const void* data,
                       size_t size) {
  HS_CHECK(!path.empty(), "atomic write needs a non-empty path");
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  HS_CHECK(fd >= 0, "cannot open temporary file for writing: "
                        << tmp << " (" << std::strerror(errno) << ")");

  // Data first, durably: fsync before rename orders "payload on disk"
  // before "name points at payload" — the whole point of the idiom.
  const bool written = write_all(fd, static_cast<const char*>(data), size);
  const bool synced = written && checked_fsync(fd) == 0;
  const int saved_errno = errno;
  ::close(fd);
  if (!written || !synced) {
    ::unlink(tmp.c_str());
    HS_CHECK(false, "cannot write temporary file: "
                        << tmp << " (" << std::strerror(saved_errno) << ")");
  }

  if (checked_rename(tmp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    ::unlink(tmp.c_str());
    HS_CHECK(false, "cannot rename " << tmp << " -> " << path << " ("
                                     << std::strerror(rename_errno) << ")");
  }

  // Durability of the rename itself requires fsyncing the directory.
  // Best-effort: a failure here (exotic filesystems reject O_DIRECTORY
  // fsync) downgrades the guarantee from power-cut-safe to
  // process-crash-safe, which is not worth failing the save over.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace hs::util
