#include "util/math_util.h"

#include <cmath>

#include "util/check.h"

namespace hs::util {

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double carry = 0.0;
  for (double v : values) {
    const double y = v - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  return kahan_sum(values) / static_cast<double>(values.size());
}

double sample_stddev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) {
    ss += (v - m) * (v - m);
  }
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) {
    return true;
  }
  return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

double squared_deviation(std::span<const double> a, std::span<const double> b) {
  HS_CHECK(a.size() == b.size(),
           "size mismatch: " << a.size() << " vs " << b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

std::vector<double> linspace(double lo, double hi, size_t count) {
  HS_CHECK(count >= 2, "linspace needs at least 2 points, got " << count);
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;
  return out;
}

}  // namespace hs::util
