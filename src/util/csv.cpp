#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hs::util {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream iss(line);
  while (std::getline(iss, field, ',')) {
    fields.push_back(field);
  }
  if (!line.empty() && line.back() == ',') {
    fields.emplace_back();
  }
  return fields;
}

std::vector<std::vector<double>> read_numeric_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open CSV file: " + path);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<double> row;
    for (const std::string& field : split_csv_line(line)) {
      try {
        size_t pos = 0;
        row.push_back(std::stod(field, &pos));
        if (pos != field.size()) {
          throw std::invalid_argument(field);
        }
      } catch (const std::exception&) {
        throw std::runtime_error(path + ":" + std::to_string(lineno) +
                                 ": non-numeric field '" + field + "'");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_numeric_csv(const std::string& path,
                       const std::vector<std::vector<double>>& rows,
                       const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write CSV file: " + path);
  }
  if (!header_comment.empty()) {
    out << "# " << header_comment << '\n';
  }
  out.precision(17);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      out << row[i];
    }
    out << '\n';
  }
  if (!out) {
    throw std::runtime_error("I/O error while writing: " + path);
  }
}

}  // namespace hs::util
