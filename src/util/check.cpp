#include "util/check.h"

namespace hs::util {

void throw_check_error(const char* expr, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream oss;
  oss << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    oss << " — " << msg;
  }
  throw CheckError(oss.str());
}

}  // namespace hs::util
