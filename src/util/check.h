// Runtime invariant checking for hetsched.
//
// HS_CHECK is used at public API boundaries and for internal invariants
// that must hold regardless of build type (they guard simulation
// correctness, not performance-critical inner loops). Violations throw
// hs::util::CheckError carrying the failing expression and a message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hs::util {

/// Exception thrown when an HS_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void throw_check_error(const char* expr, const char* file,
                                    int line, const std::string& msg);

}  // namespace hs::util

/// Check `cond`; on failure throw CheckError with the stringized expression,
/// source location, and the streamed message (usable as
/// `HS_CHECK(x > 0, "x must be positive, got " << x)`).
#define HS_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream hs_check_oss_;                                  \
      hs_check_oss_ << msg; /* NOLINT */                                 \
      ::hs::util::throw_check_error(#cond, __FILE__, __LINE__,           \
                                    hs_check_oss_.str());                \
    }                                                                    \
  } while (false)
