// Small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hs::util {

/// Compensated (Kahan) summation. Deterministic and accurate for the long
/// metric accumulations done by the simulator.
[[nodiscard]] double kahan_sum(std::span<const double> values);

/// Arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
[[nodiscard]] double sample_stddev(std::span<const double> values);

/// Relative approximate equality with an absolute floor for values near 0.
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol = 1e-9,
                                double abs_tol = 1e-12);

/// Sum of squared differences between two equal-length vectors: Σ(aᵢ−bᵢ)².
/// Used for the workload allocation deviation metric of Figure 2.
[[nodiscard]] double squared_deviation(std::span<const double> a,
                                       std::span<const double> b);

/// Linearly spaced values from lo to hi inclusive (count >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, size_t count);

}  // namespace hs::util
