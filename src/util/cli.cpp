#include "util/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace hs::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  HS_CHECK(!options_.contains(name), "duplicate option --" << name);
  options_[name] = Option{default_value, help, /*is_flag=*/false, {}};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  HS_CHECK(!options_.contains(name), "duplicate flag --" << name);
  options_[name] = Option{"false", help, /*is_flag=*/true, {}};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown argument --" + name + "\n" +
                                  help_text());
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (has_inline_value) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      opt.value = "true";
    } else if (has_inline_value) {
      opt.value = value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + name);
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  auto it = options_.find(name);
  HS_CHECK(it != options_.end(), "option --" << name << " was not registered");
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  const Option& opt = find(name);
  return opt.value.value_or(opt.default_value);
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  size_t pos = 0;
  double result = std::stod(text, &pos);
  if (pos != text.size()) {
    throw std::invalid_argument("--" + name + ": not a number: " + text);
  }
  return result;
}

long ArgParser::get_long(const std::string& name) const {
  const std::string text = get_string(name);
  size_t pos = 0;
  long result = std::stol(text, &pos);
  if (pos != text.size()) {
    throw std::invalid_argument("--" + name + ": not an integer: " + text);
  }
  return result;
}

bool ArgParser::get_flag(const std::string& name) const {
  const Option& opt = find(name);
  HS_CHECK(opt.is_flag, "--" << name << " is an option, not a flag");
  return opt.value.has_value();
}

std::string ArgParser::help_text() const {
  std::ostringstream oss;
  oss << description_ << "\n\noptions:\n";
  for (const std::string& name : order_) {
    const Option& opt = options_.at(name);
    oss << "  --" << name;
    if (!opt.is_flag) {
      oss << " <value> (default: " << opt.default_value << ")";
    }
    oss << "\n      " << opt.help << "\n";
  }
  return oss.str();
}

}  // namespace hs::util
