// Tiny CSV reader/writer used by the trace record/replay facility.
//
// This is deliberately a minimal dialect: comma-separated numeric fields,
// '#' comment lines, no quoting — traces are machine-generated.
#pragma once

#include <string>
#include <vector>

namespace hs::util {

/// Parse a CSV file of doubles. Each returned row is one data line.
/// Lines starting with '#' and blank lines are skipped.
/// Throws std::runtime_error on I/O failure or non-numeric fields.
[[nodiscard]] std::vector<std::vector<double>> read_numeric_csv(
    const std::string& path);

/// Write rows of doubles as CSV with an optional '#'-prefixed header comment.
void write_numeric_csv(const std::string& path,
                       const std::vector<std::vector<double>>& rows,
                       const std::string& header_comment = "");

/// Split one line on commas (no quoting).
[[nodiscard]] std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace hs::util
