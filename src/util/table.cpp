#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace hs::util {

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::begin_row() { rows_.emplace_back(); }

void TablePrinter::cell(const std::string& value) {
  HS_CHECK(!rows_.empty(), "cell() before begin_row()");
  HS_CHECK(rows_.back().size() < headers_.size(),
           "row already has " << headers_.size() << " cells");
  rows_.back().push_back(value);
}

void TablePrinter::cell(double value, int precision) {
  cell(format_double(value, precision));
}

void TablePrinter::cell(long value) { cell(std::to_string(value)); }

void TablePrinter::add_row(std::vector<std::string> row) {
  HS_CHECK(row.size() == headers_.size(),
           "row width " << row.size() << " != header width "
                        << headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << value;
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace hs::util
