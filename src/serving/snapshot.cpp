#include "serving/snapshot.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "util/atomic_file.h"
#include "util/check.h"

namespace hs::serving {

namespace {

constexpr char kMagic[8] = {'H', 'S', 'S', 'N', 'A', 'P', '1', '\0'};
constexpr uint32_t kVersion = 1;
// magic + version + machine_count + 5×u64 + f64 + 4×u64 RNG state.
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 5 * 8 + 8 + 4 * 8;
constexpr size_t kHealthRecordBytes = 4 + 4 + 8 + 8 + 8 + 8;
// Snapshots describe a live cluster, not arbitrary data — a machine
// count beyond this is a corrupt header, not a big deployment.
constexpr uint32_t kMaxMachines = 1u << 24;
constexpr uint32_t kMaxPolicyName = 4096;

void put_u32(std::vector<char>& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.insert(out.end(), buf, buf + 4);
}

void put_u64(std::vector<char>& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.insert(out.end(), buf, buf + 8);
}

void put_f64(std::vector<char>& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.insert(out.end(), buf, buf + 8);
}

uint32_t get_u32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t get_u64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double get_f64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Cursor over the loaded byte buffer; every read is bounds-checked so
/// a lying length field fails with CheckError instead of reading past
/// the end.
class Reader {
 public:
  Reader(const char* data, size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  const char* take(size_t n) {
    HS_CHECK(n <= size_ - pos_,
             "snapshot truncated: need " << n << " more bytes at offset "
                                         << pos_ << ": " << path_);
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  uint32_t u32() { return get_u32(take(4)); }
  uint64_t u64() { return get_u64(take(8)); }
  double f64() { return get_f64(take(8)); }
  [[nodiscard]] size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  const std::string& path_;
};

}  // namespace

void save_snapshot_binary(const std::string& path,
                          const ServingSnapshot& snapshot) {
  const size_t machines = snapshot.machine_count();
  HS_CHECK(machines >= 1 && machines <= kMaxMachines,
           "snapshot must cover at least one machine");
  HS_CHECK(snapshot.health.empty() || snapshot.health.size() == machines,
           "snapshot health section must be empty or one record per "
           "machine, got "
               << snapshot.health.size() << " for " << machines
               << " machines");
  HS_CHECK(snapshot.policy.size() <= kMaxPolicyName,
           "snapshot policy name too long: " << snapshot.policy.size());

  std::vector<char> out;
  out.reserve(kHeaderBytes + snapshot.policy.size() +
              8 + 8 * snapshot.policy_state.size() + 4 * machines +
              kHealthRecordBytes * snapshot.health.size() + 16);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kVersion);
  put_u32(out, static_cast<uint32_t>(machines));
  put_u64(out, snapshot.seed);
  put_u64(out, snapshot.captured_unix_nanos);
  put_u64(out, snapshot.acquired);
  put_u64(out, snapshot.released);
  put_u64(out, snapshot.timeouts);
  put_f64(out, snapshot.session_time);
  for (uint64_t word : snapshot.rng_state) {
    put_u64(out, word);
  }

  // Variable sections, each length-prefixed.
  put_u64(out, snapshot.sheds);
  put_u32(out, static_cast<uint32_t>(snapshot.policy.size()));
  out.insert(out.end(), snapshot.policy.begin(), snapshot.policy.end());
  put_u64(out, snapshot.policy_state.size());
  for (double v : snapshot.policy_state) {
    put_f64(out, v);
  }
  for (uint32_t count : snapshot.outstanding) {
    put_u32(out, count);
  }
  put_u32(out, snapshot.health.empty() ? 0u : 1u);
  for (const MachineHealthRecord& rec : snapshot.health) {
    put_u32(out, rec.state);
    put_u32(out, rec.consecutive_failures);
    put_f64(out, rec.suspected_at);
    put_f64(out, rec.last_heartbeat);
    put_f64(out, rec.heartbeat_mean);
    put_u64(out, rec.heartbeats);
  }

  // Atomic publish (temp + fsync + rename), same discipline as the
  // HSTRACE1 writer: a crash mid-save never leaves a torn snapshot.
  util::write_file_atomic(path, out.data(), out.size());
}

ServingSnapshot load_snapshot_binary(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  HS_CHECK(file.good(), "cannot open snapshot file: " << path);
  const auto file_size = static_cast<size_t>(file.tellg());
  HS_CHECK(file_size >= kHeaderBytes,
           "snapshot file too short (" << file_size << " bytes): " << path);
  file.seekg(0);
  std::vector<char> bytes(file_size);
  file.read(bytes.data(), static_cast<std::streamsize>(file_size));
  HS_CHECK(file.good(), "read failed for snapshot file: " << path);

  HS_CHECK(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
           "bad magic — not a hetsched snapshot file: " << path);
  Reader in(bytes.data(), file_size, path);
  in.take(8);  // magic, already checked
  const uint32_t version = in.u32();
  HS_CHECK(version == kVersion, "unsupported snapshot format version "
                                    << version << " in " << path);
  const uint32_t machines = in.u32();
  HS_CHECK(machines >= 1 && machines <= kMaxMachines,
           "snapshot machine count out of range: " << machines << " in "
                                                   << path);

  ServingSnapshot snap;
  snap.seed = in.u64();
  snap.captured_unix_nanos = in.u64();
  snap.acquired = in.u64();
  snap.released = in.u64();
  snap.timeouts = in.u64();
  snap.session_time = in.f64();
  HS_CHECK(std::isfinite(snap.session_time) && snap.session_time >= 0.0,
           "snapshot session time corrupt: " << snap.session_time << " in "
                                             << path);
  HS_CHECK(snap.released <= snap.acquired,
           "snapshot counters violate conservation: released "
               << snap.released << " > acquired " << snap.acquired << " in "
               << path);
  for (uint64_t& word : snap.rng_state) {
    word = in.u64();
  }

  snap.sheds = in.u64();
  const uint32_t name_len = in.u32();
  HS_CHECK(name_len <= kMaxPolicyName,
           "snapshot policy name length corrupt: " << name_len << " in "
                                                   << path);
  const char* name = in.take(name_len);
  snap.policy.assign(name, name_len);

  const uint64_t state_len = in.u64();
  // Each value is 8 bytes, so the remaining byte count bounds the
  // plausible length — reject before reserving memory for a lie.
  HS_CHECK(state_len <= in.remaining() / 8,
           "snapshot policy state length corrupt: " << state_len << " in "
                                                    << path);
  snap.policy_state.reserve(state_len);
  for (uint64_t i = 0; i < state_len; ++i) {
    const double v = in.f64();
    HS_CHECK(!std::isnan(v),
             "snapshot policy state holds NaN at index " << i << ": "
                                                         << path);
    snap.policy_state.push_back(v);
  }

  snap.outstanding.reserve(machines);
  uint64_t outstanding_total = 0;
  for (uint32_t m = 0; m < machines; ++m) {
    const uint32_t count = in.u32();
    outstanding_total += count;
    snap.outstanding.push_back(count);
  }
  const uint64_t in_flight = snap.acquired - snap.released;
  HS_CHECK(outstanding_total == in_flight,
           "snapshot per-machine outstanding sums to "
               << outstanding_total << " but counters say " << in_flight
               << " in flight: " << path);

  const uint32_t has_health = in.u32();
  HS_CHECK(has_health <= 1,
           "snapshot health flag corrupt: " << has_health << " in " << path);
  if (has_health == 1) {
    snap.health.reserve(machines);
    for (uint32_t m = 0; m < machines; ++m) {
      MachineHealthRecord rec;
      rec.state = in.u32();
      rec.consecutive_failures = in.u32();
      rec.suspected_at = in.f64();
      rec.last_heartbeat = in.f64();
      rec.heartbeat_mean = in.f64();
      rec.heartbeats = in.u64();
      HS_CHECK(rec.state <= 1, "snapshot health state corrupt for machine "
                                   << m << ": " << rec.state << " in "
                                   << path);
      HS_CHECK(std::isfinite(rec.suspected_at) &&
                   std::isfinite(rec.last_heartbeat) &&
                   std::isfinite(rec.heartbeat_mean) &&
                   rec.heartbeat_mean >= 0.0,
               "snapshot health record corrupt for machine " << m << ": "
                                                             << path);
      snap.health.push_back(rec);
    }
  }
  HS_CHECK(in.remaining() == 0, "snapshot has " << in.remaining()
                                                << " trailing bytes: "
                                                << path);
  return snap;
}

}  // namespace hs::serving
