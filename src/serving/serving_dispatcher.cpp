#include "serving/serving_dispatcher.h"

#include <chrono>
#include <cmath>
#include <span>

#include "util/check.h"

namespace hs::serving {

namespace {
// Degradation-mode codes: bit in degraded_modes() and |aux| of the
// kDegraded trace record (sign = engage/disengage).
constexpr uint32_t kModeBrownout = 1;
constexpr uint32_t kModeFailStatic = 2;
constexpr uint32_t kModeNeverEmpty = 4;
}  // namespace

const char* to_string(ServingStatus status) {
  switch (status) {
    case ServingStatus::kOk:
      return "ok";
    case ServingStatus::kShed:
      return "shed";
    case ServingStatus::kInvalidMachine:
      return "invalid-machine";
    case ServingStatus::kNotInFlight:
      return "not-in-flight";
  }
  return "unknown";
}

void DegradationConfig::validate(size_t machine_count,
                                 bool health_enabled) const {
  HS_CHECK(std::isfinite(brownout_below) && brownout_below >= 0.0 &&
               brownout_below <= 1.0,
           "brownout_below must be in [0,1], got " << brownout_below);
  if (brownout_below > 0.0) {
    HS_CHECK(brownout_policy != nullptr,
             "brownout needs an admission policy (brownout_policy)");
    HS_CHECK(health_enabled,
             "brownout engages on health state — enable ServingConfig::health");
  }
  HS_CHECK(std::isfinite(fail_static_after) && fail_static_after >= 0.0,
           "fail_static_after must be finite and >= 0, got "
               << fail_static_after);
  if (fail_static_after > 0.0) {
    HS_CHECK(fail_static_fractions.size() == machine_count,
             "fail-static fractions size " << fail_static_fractions.size()
                                           << " != machine count "
                                           << machine_count);
    double sum = 0.0;
    for (double f : fail_static_fractions) {
      HS_CHECK(std::isfinite(f) && f >= 0.0,
               "fail-static fraction out of range: " << f);
      sum += f;
    }
    HS_CHECK(std::fabs(sum - 1.0) < 1e-6,
             "fail-static fractions must sum to 1, got " << sum);
  }
  if (never_empty) {
    HS_CHECK(health_enabled,
             "never-empty routing needs health state — enable "
             "ServingConfig::health");
  }
}

ServingDispatcher::ServingDispatcher(dispatch::Dispatcher& inner,
                                     ServingConfig config)
    : inner_(inner),
      gen_(config.seed),
      machine_count_(inner.machine_count()),
      seed_(config.seed),
      trace_(config.trace),
      healthy_machines_(inner.machine_count()),
      degradation_(std::move(config.degradation)) {
  if (config.clock != nullptr) {
    clock_ = config.clock;
  } else {
    owned_clock_ = std::make_unique<WallClock>();
    clock_ = owned_clock_.get();
  }
  unix_nanos_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  degradation_.validate(machine_count_, config.health.enabled());
  if (config.health.enabled()) {
    health_ = std::make_unique<HealthTracker>(machine_count_, config.health);
    health_->set_trace_sink(trace_);
  }
  // All records are preallocated here; the hot path only ever indexes.
  records_.resize(config.record_capacity);
  outstanding_.assign(machine_count_, 0);
  // Under steady traffic releases keep the staging buffer near-empty;
  // it only fills during a long release-free stretch, and then the
  // inline settle is noise against the pile-up itself.
  staged_.assign(1024, 0);
}

void ServingDispatcher::drain_staged_locked() {
  for (size_t i = 0; i < staged_count_; ++i) {
    ++outstanding_[staged_[i]];
  }
  staged_count_ = 0;
}

void ServingDispatcher::set_mode_locked(uint32_t mode, bool engaged,
                                        double now) {
  const uint32_t cur = degraded_modes_.load(std::memory_order_relaxed);
  degraded_modes_.store(engaged ? (cur | mode) : (cur & ~mode),
                        std::memory_order_relaxed);
  if (trace_ != nullptr) {
    trace_->record(now, obs::TraceEventKind::kDegraded, obs::TraceSink::kNoJob,
                   obs::TraceSink::kScheduler, 0,
                   engaged ? static_cast<double>(mode)
                           : -static_cast<double>(mode));
  }
}

void ServingDispatcher::drain_health_locked(double now) {
  const auto transitions = health_->transitions();
  if (!transitions.empty()) {
    for (const HealthTransition& t : transitions) {
      // The same signal the simulator's fault layer delivers:
      // FaultAware masks the machine out, CircuitBreaker trips it.
      inner_.on_machine_state_report(t.machine, t.up);
      if (trace_ != nullptr) {
        trace_->record(now,
                       t.up ? obs::TraceEventKind::kRecovery
                            : obs::TraceEventKind::kSuspect,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(t.machine), 0, t.aux);
      }
    }
    health_->clear_transitions();
  }
  const size_t healthy = health_->healthy_count();
  healthy_machines_.store(healthy, std::memory_order_relaxed);
  timeouts_.store(timeout_base_ + health_->timeouts(),
                  std::memory_order_relaxed);
  all_suspect_ = healthy == 0;
  if (degradation_.brownout_below > 0.0) {
    const bool engage =
        static_cast<double>(healthy) <
        degradation_.brownout_below * static_cast<double>(machine_count_);
    if (engage != brownout_engaged_) {
      brownout_engaged_ = engage;
      set_mode_locked(kModeBrownout, engage, now);
    }
  }
  if (degradation_.never_empty) {
    const bool was =
        (degraded_modes_.load(std::memory_order_relaxed) & kModeNeverEmpty) !=
        0;
    if (all_suspect_ != was) {
      set_mode_locked(kModeNeverEmpty, all_suspect_, now);
    }
  }
}

size_t ServingDispatcher::route_locked(double now, double size) {
  if (health_ != nullptr && health_->deadline_pending(now)) {
    // Opportunistic expiry: one compare when nothing expired, so the
    // health layer costs the hot path a single branch while quiet.
    health_->tick(now, /*scan_heartbeats=*/false);
    drain_health_locked(now);
  }
  inner_.on_arrival(now);
  size_t machine;
  if (all_suspect_ && degradation_.never_empty) {
    // Every backend is Suspect: a fully-masked stack has no good answer,
    // so route to the one suspected longest ago — most likely to have
    // quietly recovered, and its release/timeout refreshes the verdict.
    machine = health_->least_recently_suspected();
  } else {
    machine = inner_.pick_sized(gen_, size);
  }
  // The per-machine in-flight count is a read-modify-write at a
  // pick-dependent index — at large n that cache line is rarely
  // resident, and the load miss was measured as the single biggest tax
  // this wrapper could add to the routing tail. Stage the pick with a
  // sequential append instead; release() settles the counts when it
  // needs them. The buffer is fixed-size: on overflow (a long stretch
  // with no release) settle inline and start over.
  if (staged_count_ == staged_.size()) {
    drain_staged_locked();
  }
  staged_[staged_count_++] = static_cast<uint32_t>(machine);
  if (health_ != nullptr) {
    health_->on_acquire(machine, now);
  }
  if (!records_.empty()) {
    const uint64_t count = record_count_.load(std::memory_order_relaxed);
    if (count < records_.size()) {
      records_[count] = ArrivalRecord{now, size};
      record_count_.store(count + 1, std::memory_order_relaxed);
    } else {
      record_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  acquired_.fetch_add(1, std::memory_order_relaxed);
  return machine;
}

size_t ServingDispatcher::acquire(double size) {
  HS_CHECK(size > 0.0, "acquire size must be positive, got " << size);
  SpinLockGuard guard(lock_);
  return route_locked(clock_->now(), size);
}

ServingStatus ServingDispatcher::try_acquire(double size, size_t& machine) {
  HS_CHECK(size > 0.0, "acquire size must be positive, got " << size);
  SpinLockGuard guard(lock_);
  const double now = clock_->now();
  if (brownout_engaged_) {
    // Judged before the stack is touched: a shed request consumes one
    // admission draw from the dispatch RNG stream but perturbs no
    // routing state and no estimator. The context carries only what
    // serving mode knows — time and size; per-machine fields are
    // defaults (the request has no routed-to machine yet).
    overload::AdmissionContext ctx;
    ctx.now = now;
    ctx.job_size = size;
    if (!degradation_.brownout_policy->admit(ctx, gen_)) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceEventKind::kShed, obs::TraceSink::kNoJob,
                       obs::TraceSink::kScheduler, 0, size);
      }
      return ServingStatus::kShed;
    }
  }
  machine = route_locked(now, size);
  return ServingStatus::kOk;
}

ServingStatus ServingDispatcher::release(size_t machine, double work) {
  if (machine >= machine_count_) {
    return ServingStatus::kInvalidMachine;
  }
  SpinLockGuard guard(lock_);
  drain_staged_locked();
  if (outstanding_[machine] == 0) {
    // Double release, or a stray release for a request some crashed
    // predecessor owned: rejecting it (instead of blindly feeding the
    // policy a departure) is what keeps one buggy client from draining
    // Least-Load queue estimates below reality for everyone else.
    return ServingStatus::kNotInFlight;
  }
  --outstanding_[machine];
  const double now = clock_->now();
  inner_.on_departure_report(machine, now, work);
  released_.fetch_add(1, std::memory_order_relaxed);
  last_feedback_ = now;
  if (fail_static_engaged_) {
    // Feedback resumed: un-pin. The adaptive layers re-learn from the
    // live reports, so there is nothing to restore.
    fail_static_engaged_ = false;
    set_mode_locked(kModeFailStatic, false, now);
  }
  if (health_ != nullptr) {
    health_->on_release(machine, now);
    drain_health_locked(now);
  }
  return ServingStatus::kOk;
}

ServingStatus ServingDispatcher::report_result(size_t machine,
                                               bool accepted) {
  if (machine >= machine_count_) {
    return ServingStatus::kInvalidMachine;
  }
  SpinLockGuard guard(lock_);
  const double now = clock_->now();
  inner_.on_dispatch_result(machine, accepted, now);
  if (health_ != nullptr) {
    health_->on_result(machine, accepted, now);
    drain_health_locked(now);
  }
  return ServingStatus::kOk;
}

ServingStatus ServingDispatcher::report_heartbeat(size_t machine) {
  if (machine >= machine_count_) {
    return ServingStatus::kInvalidMachine;
  }
  if (health_ == nullptr) {
    return ServingStatus::kOk;  // no detector configured — a no-op
  }
  SpinLockGuard guard(lock_);
  const double now = clock_->now();
  health_->on_heartbeat(machine, now);
  drain_health_locked(now);
  return ServingStatus::kOk;
}

void ServingDispatcher::tick() {
  SpinLockGuard guard(lock_);
  const double now = clock_->now();
  if (health_ != nullptr) {
    health_->tick(now, /*scan_heartbeats=*/true);
    drain_health_locked(now);
  }
  if (degradation_.fail_static_after > 0.0 && !fail_static_engaged_ &&
      in_flight() > 0 &&
      now - last_feedback_ > degradation_.fail_static_after) {
    // Estimates are stale: work is outstanding but no release has
    // arrived for the whole staleness budget. Pin the stack to the
    // last-known-good fractions (best effort — a stack that cannot
    // reweight in place keeps its current routing).
    fail_static_engaged_ = true;
    inner_.rebuild_fractions(degradation_.fail_static_fractions);
    set_mode_locked(kModeFailStatic, true, now);
  }
}

RecordedTrace ServingDispatcher::snapshot() const {
  RecordedTrace recorded;
  recorded.seed = seed_;
  recorded.recorded_unix_nanos = unix_nanos_;
  std::vector<queueing::Job> jobs;
  {
    SpinLockGuard guard(lock_);
    const uint64_t count = record_count_.load(std::memory_order_relaxed);
    jobs.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      jobs.push_back(queueing::Job{i, records_[i].time, records_[i].size});
    }
  }
  recorded.trace = workload::JobTrace(std::move(jobs));
  return recorded;
}

ServingSnapshot ServingDispatcher::capture_snapshot() {
  ServingSnapshot snap;
  snap.seed = seed_;
  snap.captured_unix_nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  SpinLockGuard guard(lock_);
  snap.session_time = clock_->now();
  snap.acquired = acquired_.load(std::memory_order_relaxed);
  snap.released = released_.load(std::memory_order_relaxed);
  snap.timeouts =
      timeout_base_ + (health_ != nullptr ? health_->timeouts() : 0);
  snap.sheds = sheds_.load(std::memory_order_relaxed);
  snap.rng_state = gen_.state();
  snap.policy = inner_.name();
  inner_.save_state(snap.policy_state);
  drain_staged_locked();
  snap.outstanding = outstanding_;
  if (health_ != nullptr) {
    snap.health.reserve(machine_count_);
    for (size_t m = 0; m < machine_count_; ++m) {
      snap.health.push_back(health_->record(m));
    }
  }
  if (trace_ != nullptr) {
    trace_->record(snap.session_time, obs::TraceEventKind::kSnapshot,
                   obs::TraceSink::kNoJob, obs::TraceSink::kScheduler, 0,
                   static_cast<double>(snap.acquired));
  }
  return snap;
}

void ServingDispatcher::restore(const ServingSnapshot& snap) {
  HS_CHECK(snap.machine_count() == machine_count_,
           "snapshot covers " << snap.machine_count()
                              << " machines but this stack has "
                              << machine_count_);
  SpinLockGuard guard(lock_);
  HS_CHECK(snap.policy == inner_.name(),
           "snapshot was captured from policy '"
               << snap.policy << "' but this stack is '" << inner_.name()
               << "'");
  // The stack either consumes its whole saved vector or declines
  // untouched (dispatch/dispatcher.h contract) — a partial count means
  // the stack shape changed since capture.
  const size_t consumed = inner_.restore_state(
      std::span<const double>(snap.policy_state));
  HS_CHECK(consumed == snap.policy_state.size(),
           "policy stack consumed " << consumed << " of "
                                    << snap.policy_state.size()
                                    << " saved state values — stack shape "
                                       "does not match the snapshot");
  gen_.set_state(snap.rng_state);
  seed_ = snap.seed;
  acquired_.store(snap.acquired, std::memory_order_relaxed);
  released_.store(snap.released, std::memory_order_relaxed);
  sheds_.store(snap.sheds, std::memory_order_relaxed);
  outstanding_ = snap.outstanding;
  staged_count_ = 0;
  // Recording deliberately continues fresh: the snapshot carries no
  // arrival records (persist those separately as HSTRACE1).
  if (health_ != nullptr && !snap.health.empty()) {
    for (size_t m = 0; m < machine_count_; ++m) {
      HS_CHECK(health_->restore(m, snap.health[m]),
               "snapshot health record for machine " << m << " is invalid");
    }
  }
  const uint64_t observed = health_ != nullptr ? health_->timeouts() : 0;
  timeout_base_ = snap.timeouts >= observed ? snap.timeouts - observed : 0;
  // Feedback silence is measured from the restore point, not from the
  // dead process's last release — otherwise fail-static could engage on
  // the very first tick.
  last_feedback_ = snap.session_time;
  if (health_ != nullptr) {
    // Re-derive the mode flags (and trace the flips) from the restored
    // health state; there are no pending transitions, the stack learned
    // its masks from its own restored state.
    drain_health_locked(snap.session_time);
  } else {
    timeouts_.store(timeout_base_, std::memory_order_relaxed);
  }
}

void ServingDispatcher::register_gauges(obs::MetricsRegistry& registry) const {
  registry.register_atomic_counter("serving.acquired", &acquired_);
  registry.register_atomic_counter("serving.released", &released_);
  registry.register_gauge("serving.in_flight", [this] {
    return static_cast<double>(in_flight());
  });
  registry.register_atomic_counter("serving.recorded", &record_count_);
  registry.register_atomic_counter("serving.record_dropped",
                                   &record_dropped_);
  registry.register_atomic_counter("serving.sheds", &sheds_);
  registry.register_atomic_counter("serving.timeouts", &timeouts_);
  registry.register_gauge("serving.healthy_machines", [this] {
    return static_cast<double>(healthy_machines());
  });
  registry.register_gauge("serving.degraded_modes", [this] {
    return static_cast<double>(degraded_modes());
  });
  // Dispatch-lock contention: lock acquisitions that found the lock
  // held and had to spin. The ratio against serving.acquired is the
  // saturation signal for the single-lock design.
  registry.register_gauge("serving.lock_stalls", [this] {
    return static_cast<double>(lock_.stalls());
  });
}

double ServingDispatcher::session_seconds() {
  SpinLockGuard guard(lock_);
  return clock_->now();
}

}  // namespace hs::serving
