#include "serving/serving_dispatcher.h"

#include <chrono>

#include "util/check.h"

namespace hs::serving {

ServingDispatcher::ServingDispatcher(dispatch::Dispatcher& inner,
                                     ServingConfig config)
    : inner_(inner),
      gen_(config.seed),
      seed_(config.seed),
      machine_count_(inner.machine_count()) {
  if (config.clock != nullptr) {
    clock_ = config.clock;
  } else {
    owned_clock_ = std::make_unique<WallClock>();
    clock_ = owned_clock_.get();
  }
  unix_nanos_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // All records are preallocated here; the hot path only ever indexes.
  records_.resize(config.record_capacity);
}

size_t ServingDispatcher::acquire(double size) {
  HS_CHECK(size > 0.0, "acquire size must be positive, got " << size);
  size_t machine;
  {
    SpinLockGuard guard(lock_);
    const double now = clock_->now();
    inner_.on_arrival(now);
    machine = inner_.pick_sized(gen_, size);
    if (!records_.empty()) {
      const uint64_t count = record_count_.load(std::memory_order_relaxed);
      if (count < records_.size()) {
        records_[count] = ArrivalRecord{now, size};
        record_count_.store(count + 1, std::memory_order_relaxed);
      } else {
        record_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    acquired_.fetch_add(1, std::memory_order_relaxed);
  }
  return machine;
}

void ServingDispatcher::release(size_t machine, double work) {
  HS_CHECK(machine < machine_count_,
           "release machine index out of range: " << machine);
  SpinLockGuard guard(lock_);
  inner_.on_departure_report(machine, clock_->now(), work);
  released_.fetch_add(1, std::memory_order_relaxed);
}

void ServingDispatcher::report_result(size_t machine, bool accepted) {
  HS_CHECK(machine < machine_count_,
           "report machine index out of range: " << machine);
  SpinLockGuard guard(lock_);
  inner_.on_dispatch_result(machine, accepted, clock_->now());
}

RecordedTrace ServingDispatcher::snapshot() const {
  RecordedTrace recorded;
  recorded.seed = seed_;
  recorded.recorded_unix_nanos = unix_nanos_;
  std::vector<queueing::Job> jobs;
  {
    SpinLockGuard guard(lock_);
    const uint64_t count = record_count_.load(std::memory_order_relaxed);
    jobs.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      jobs.push_back(queueing::Job{i, records_[i].time, records_[i].size});
    }
  }
  recorded.trace = workload::JobTrace(std::move(jobs));
  return recorded;
}

void ServingDispatcher::register_gauges(obs::MetricsRegistry& registry) const {
  registry.register_atomic_counter("serving.acquired", &acquired_);
  registry.register_atomic_counter("serving.released", &released_);
  registry.register_gauge("serving.in_flight", [this] {
    return static_cast<double>(in_flight());
  });
  registry.register_atomic_counter("serving.recorded", &record_count_);
  registry.register_atomic_counter("serving.record_dropped",
                                   &record_dropped_);
}

double ServingDispatcher::session_seconds() {
  SpinLockGuard guard(lock_);
  return clock_->now();
}

}  // namespace hs::serving
