// Test-and-test-and-set spinlock for the serving hot path.
//
// The critical section it guards (one dispatch decision plus a trace
// record append) runs in well under a microsecond, which is the regime
// where a spinlock beats std::mutex: an uncontended acquire is one
// atomic RMW, and a contended waiter burns a few dozen nanoseconds of
// pause loops instead of taking a futex syscall and a scheduler round
// trip that both dwarf the critical section. Waiters spin on a plain
// load (test) and only retry the RMW (test-and-set) when the lock looks
// free, so contention does not ping-pong the cache line.
//
// ThreadSanitizer understands the acquire/release pairing on the
// atomic_flag, so everything published under the lock is properly
// synchronized in its model too.
#pragma once

#include <atomic>

namespace hs::serving {

class SpinLock {
 public:
  void lock() noexcept {
    if (!flag_.test_and_set(std::memory_order_acquire)) {
      return;  // uncontended fast path: one RMW, no counter traffic
    }
    stalls_.fetch_add(1, std::memory_order_relaxed);
    do {
      while (flag_.test(std::memory_order_relaxed)) {
        cpu_relax();
      }
    } while (flag_.test_and_set(std::memory_order_acquire));
  }

  void unlock() noexcept { flag_.clear(std::memory_order_release); }

  /// Number of lock() calls that found the lock held and had to spin.
  /// Counted once per stalled acquisition (not per pause iteration), only
  /// on the contended path, so the uncontended fast path is unchanged.
  /// A rising stall rate is the earliest signal that dispatch decisions
  /// are queueing behind each other.
  [[nodiscard]] uint64_t stalls() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::atomic<uint64_t> stalls_{0};
};

/// Scoped lock ownership (std::lock_guard works too; this avoids the
/// <mutex> include on the hot path's header).
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinLockGuard() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace hs::serving
