#include "serving/health.h"

#include <cmath>

#include "util/check.h"

namespace hs::serving {

void HealthConfig::validate() const {
  HS_CHECK(std::isfinite(release_deadline) && release_deadline >= 0.0,
           "health: release_deadline must be finite and >= 0, got "
               << release_deadline);
  HS_CHECK(timeout_threshold >= 1,
           "health: timeout_threshold must be >= 1, got "
               << timeout_threshold);
  HS_CHECK(max_tracked >= 1,
           "health: max_tracked must be >= 1, got " << max_tracked);
  heartbeat.validate();
}

HealthTracker::HealthTracker(size_t machines, const HealthConfig& config)
    : config_(config) {
  HS_CHECK(machines >= 1, "health tracker needs at least one machine");
  config_.validate();
  ring_.resize(config_.max_tracked);
  state_.assign(machines, MachineHealth::kHealthy);
  consecutive_failures_.assign(machines, 0);
  armed_.assign(machines, 0);
  absorb_.assign(machines, 0);
  suspected_at_.assign(machines, 0.0);
  last_heartbeat_.assign(machines, 0.0);
  heartbeat_mean_.assign(machines, 0.0);
  heartbeats_.assign(machines, 0);
  // 2n flips can accumulate between consume points only if every
  // machine is suspected *and* recovered without the dispatcher
  // draining — it drains after every mutation, so this never fills in
  // practice; overflow is counted, not UB.
  transitions_.resize(2 * machines);
  healthy_count_ = machines;
}

void HealthTracker::push_transition(size_t machine, bool up, double now,
                                    double aux) {
  if (transition_count_ == transitions_.size()) {
    ++transition_drops_;
    return;
  }
  transitions_[transition_count_++] =
      HealthTransition{static_cast<uint32_t>(machine), up, now, aux};
}

void HealthTracker::success(size_t machine, double now) {
  consecutive_failures_[machine] = 0;
  if (state_[machine] == MachineHealth::kSuspect) {
    state_[machine] = MachineHealth::kHealthy;
    ++healthy_count_;
    push_transition(machine, /*up=*/true, now, 0.0);
  }
}

void HealthTracker::failure(size_t machine, double now, double aux) {
  const uint32_t failures = ++consecutive_failures_[machine];
  if (state_[machine] == MachineHealth::kHealthy &&
      failures >= config_.timeout_threshold) {
    state_[machine] = MachineHealth::kSuspect;
    --healthy_count_;
    suspected_at_[machine] = now;
    push_transition(machine, /*up=*/false, now, aux);
  }
}

void HealthTracker::on_acquire(size_t machine, double now) {
  if (config_.release_deadline <= 0.0) {
    return;
  }
  if (ring_count_ == ring_.size()) {
    ++arm_drops_;  // saturated: this request goes untracked
    return;
  }
  size_t slot = ring_head_ + ring_count_;
  if (slot >= ring_.size()) {
    slot -= ring_.size();
  }
  ring_[slot] = Arm{now + config_.release_deadline,
                    static_cast<uint32_t>(machine)};
  ++ring_count_;
  ++armed_[machine];
}

void HealthTracker::on_release(size_t machine, double now) {
  if (armed_[machine] > 0) {
    // FIFO match: this release satisfies the machine's oldest armed
    // deadline; tick() will skip that entry when it expires.
    --armed_[machine];
    ++absorb_[machine];
  }
  success(machine, now);
}

void HealthTracker::on_result(size_t machine, bool accepted, double now) {
  if (accepted) {
    success(machine, now);
  } else {
    failure(machine, now,
            static_cast<double>(consecutive_failures_[machine] + 1));
  }
}

void HealthTracker::on_heartbeat(size_t machine, double now) {
  if (heartbeats_[machine] == 0) {
    last_heartbeat_[machine] = now;
    // Seed the mean with the configured interval so the very first
    // silence window already has a timeout to compare against.
    heartbeat_mean_[machine] = config_.heartbeat.interval;
  } else {
    const double gap = now - last_heartbeat_[machine];
    if (gap >= 0.0) {
      const double alpha = config_.heartbeat.ewma_alpha;
      heartbeat_mean_[machine] =
          (1.0 - alpha) * heartbeat_mean_[machine] + alpha * gap;
      last_heartbeat_[machine] = now;
    }
  }
  ++heartbeats_[machine];
  // A heartbeat is a liveness proof: it recovers a Suspect backend and
  // resets the failure streak.
  success(machine, now);
}

void HealthTracker::tick(double now, bool scan_heartbeats) {
  // Deadline expiry: pop the FIFO head while expired. Each pop is a
  // satisfied arm (skip) or a timeout (failure signal).
  while (ring_count_ > 0 && ring_[ring_head_].deadline <= now) {
    const Arm arm = ring_[ring_head_];
    ring_head_ = ring_head_ + 1 == ring_.size() ? 0 : ring_head_ + 1;
    --ring_count_;
    if (absorb_[arm.machine] > 0) {
      --absorb_[arm.machine];  // released in time — not a timeout
      continue;
    }
    --armed_[arm.machine];
    ++timeouts_;
    if (trace_ != nullptr) {
      trace_->record(now, obs::TraceEventKind::kTimeout,
                     obs::TraceSink::kNoJob,
                     static_cast<int32_t>(arm.machine), 0, arm.deadline);
    }
    failure(arm.machine, now,
            static_cast<double>(consecutive_failures_[arm.machine] + 1));
  }

  if (!scan_heartbeats || !config_.heartbeat.enabled()) {
    return;
  }
  // Phi-accrual silence scan — O(n), so only the explicit watchdog tick
  // runs it (detection latency for idle backends is therefore bounded
  // by the watchdog cadence plus the phi timeout).
  for (size_t m = 0; m < state_.size(); ++m) {
    if (state_[m] != MachineHealth::kHealthy || heartbeats_[m] < 2) {
      continue;  // never emitted enough to establish a cadence
    }
    const double silence = now - last_heartbeat_[m];
    if (silence > config_.heartbeat.timeout(heartbeat_mean_[m])) {
      // Suspect regardless of the failure streak: silence is its own
      // threshold (φ* encodes the confidence).
      consecutive_failures_[m] =
          static_cast<uint32_t>(config_.timeout_threshold);
      state_[m] = MachineHealth::kSuspect;
      --healthy_count_;
      suspected_at_[m] = now;
      push_transition(m, /*up=*/false, now, silence);
    }
  }
}

size_t HealthTracker::least_recently_suspected() const {
  size_t best = 0;
  for (size_t m = 1; m < suspected_at_.size(); ++m) {
    if (suspected_at_[m] < suspected_at_[best]) {
      best = m;
    }
  }
  return best;
}

MachineHealthRecord HealthTracker::record(size_t machine) const {
  MachineHealthRecord rec;
  rec.state = static_cast<uint32_t>(state_[machine]);
  rec.consecutive_failures = consecutive_failures_[machine];
  rec.suspected_at = suspected_at_[machine];
  rec.last_heartbeat = last_heartbeat_[machine];
  rec.heartbeat_mean = heartbeat_mean_[machine];
  rec.heartbeats = heartbeats_[machine];
  return rec;
}

bool HealthTracker::restore(size_t machine, const MachineHealthRecord& rec) {
  if (rec.state > 1 || !std::isfinite(rec.suspected_at) ||
      !std::isfinite(rec.last_heartbeat) ||
      !std::isfinite(rec.heartbeat_mean) || rec.heartbeat_mean < 0.0) {
    return false;
  }
  const MachineHealth new_state = static_cast<MachineHealth>(rec.state);
  if (state_[machine] == MachineHealth::kHealthy &&
      new_state == MachineHealth::kSuspect) {
    --healthy_count_;
  } else if (state_[machine] == MachineHealth::kSuspect &&
             new_state == MachineHealth::kHealthy) {
    ++healthy_count_;
  }
  state_[machine] = new_state;
  consecutive_failures_[machine] = rec.consecutive_failures;
  suspected_at_[machine] = rec.suspected_at;
  last_heartbeat_[machine] = rec.last_heartbeat;
  heartbeat_mean_[machine] = rec.heartbeat_mean;
  heartbeats_[machine] = rec.heartbeats;
  return true;
}

}  // namespace hs::serving
