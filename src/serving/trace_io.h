// Binary arrival-trace persistence: the record half of record/replay.
//
// A serving session's arrival stream — (time, size) per acquire(), on
// the session clock — is the complete input of a simulation replay:
// feeding it to cluster::run_trace_replay() turns a live serving
// session into a reproducible experiment cell for capacity planning and
// policy A/B. The format is binary because replay must be bit-identical
// to a direct simulation of the same arrivals: text round-trips lose
// low-order double bits, binary preserves every one.
//
// File layout (little-endian, no padding):
//
//   offset  size  field
//   0       8     magic "HSTRACE1"
//   8       4     format version (uint32, currently 1)
//   12      4     reserved (uint32, written 0, ignored on read)
//   16      8     seed (uint64) — the recording session's dispatch seed
//   24      8     recorded_unix_nanos (uint64) — system_clock at the
//                 start of the recording session
//   32      8     job_count (uint64)
//   40      16·k  job_count × { arrival_time : f64, size : f64 }
//
// Arrival times are seconds on the session clock (0 = session start)
// and non-decreasing; sizes are service demands in base-speed seconds,
// exactly as queueing::Job defines them.
#pragma once

#include <cstdint>
#include <string>

#include "workload/trace.h"

namespace hs::serving {

/// A recorded serving session: the arrival trace plus the provenance
/// stamps that make a replay attributable to its origin.
struct RecordedTrace {
  /// Dispatch-stream seed of the session that recorded the trace.
  uint64_t seed = 0;
  /// std::chrono::system_clock nanoseconds at the start of recording.
  uint64_t recorded_unix_nanos = 0;
  workload::JobTrace trace;
};

/// Write `recorded` to `path` in the binary format above. Throws
/// util::CheckError on I/O failure.
void save_trace_binary(const std::string& path, const RecordedTrace& recorded);

/// Read a trace written by save_trace_binary(). Validates the magic,
/// version, and that the payload length matches the header's job count;
/// throws util::CheckError on any mismatch or I/O failure.
[[nodiscard]] RecordedTrace load_trace_binary(const std::string& path);

}  // namespace hs::serving
