#include "serving/replay.h"

#include <algorithm>

#include "util/check.h"

namespace hs::serving {

cluster::SimulationConfig replay_config(const RecordedTrace& recorded,
                                        std::vector<double> speeds) {
  HS_CHECK(!recorded.trace.empty(), "cannot replay an empty recording");
  cluster::SimulationConfig config;
  config.speeds = std::move(speeds);
  // The horizon is the last recorded arrival; jobs arriving exactly at
  // sim_time are still admitted (<= comparison in the trace scheduler),
  // and the run drains resident jobs afterwards. A one-job session has
  // horizon 0, so keep sim_time strictly positive.
  config.sim_time = std::max(recorded.trace.horizon(), 1e-9);
  config.warmup_frac = 0.0;
  config.seed = recorded.seed;
  return config;
}

cluster::SimulationResult replay(const RecordedTrace& recorded,
                                 const std::vector<double>& speeds,
                                 dispatch::Dispatcher& dispatcher) {
  const cluster::SimulationConfig config = replay_config(recorded, speeds);
  return cluster::run_trace_replay(config, recorded.trace, dispatcher);
}

}  // namespace hs::serving
