// The replay half of record/replay: a recorded serving session becomes
// a reproducible simulator experiment.
//
// Serving mode and the simulator share the policy objects and the
// arrival representation, so bridging them is exact: the recorded
// (time, size) stream drives cluster::run_trace_replay() verbatim, the
// virtual clock spans exactly the recorded horizon, and nothing is
// discarded as warm-up (a recorded session is measured whole by
// convention — it has no artificial empty-system transient to skip,
// because it starts from whatever state the real system was in).
// Replaying the same RecordedTrace against the same speeds and
// dispatcher is bit-identical run to run, and bit-identical to a direct
// simulation of the same arrival sequence — the property pinned by
// tests/test_serving.cpp.
#pragma once

#include <vector>

#include "cluster/sim.h"
#include "dispatch/dispatcher.h"
#include "serving/trace_io.h"

namespace hs::serving {

/// The simulation config a recorded session replays under: arrivals
/// come verbatim from the recording (the caller passes recorded.trace
/// to cluster::run_trace_replay), sim_time = the recorded horizon,
/// warmup_frac = 0, seed = the recorded session's dispatch seed.
/// Callers may adjust the returned config (discipline, observability,
/// robustness layers) before running — that is the "what-if" in
/// what-if analysis.
[[nodiscard]] cluster::SimulationConfig replay_config(
    const RecordedTrace& recorded, std::vector<double> speeds);

/// Replay `recorded` through `dispatcher` on machines of the given
/// speeds and return the simulated metrics.
[[nodiscard]] cluster::SimulationResult replay(
    const RecordedTrace& recorded, const std::vector<double>& speeds,
    dispatch::Dispatcher& dispatcher);

}  // namespace hs::serving
