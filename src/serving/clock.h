// Time sources for the serving runtime.
//
// The dispatch core (dispatch::Dispatcher) never reads a clock: every
// interface that needs time — on_arrival, on_departure_report,
// on_dispatch_result — takes `now` as an argument. That is the property
// that lets the *identical* policy objects run inside the discrete-event
// simulator (where `now` is sim::Simulator's virtual time) and inside
// the serving runtime (where `now` is wall-clock seconds) without
// modification. ClockSource is the serving layer's half of that
// contract: ServingDispatcher stamps arrivals and departure reports with
// clock->now() and never observes time any other way, so tests and
// deterministic trace recordings swap in a ManualClock while production
// uses the monotonic WallClock.
#pragma once

#include <chrono>

namespace hs::serving {

/// Source of the serving runtime's notion of "now", in seconds.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// Current time in seconds, non-decreasing across ordered calls.
  /// ServingDispatcher only calls it under its dispatch lock, so the
  /// monotonicity of recorded timestamps follows directly from the
  /// monotonicity of the source itself.
  [[nodiscard]] virtual double now() = 0;
};

/// Monotonic wall-clock seconds since construction. Backed by
/// std::chrono::steady_clock, so it is immune to NTP steps and costs
/// ~20 ns per call on current hardware — small against even the fastest
/// O(1) dispatch decision.
class WallClock final : public ClockSource {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         origin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Hand-advanced clock for tests and deterministic trace recordings.
/// Not internally synchronized: advance it only while no other thread is
/// inside the owning ServingDispatcher (single-threaded recording
/// sessions — its use case — satisfy this trivially).
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(double start = 0.0) : now_(start) {}

  [[nodiscard]] double now() override { return now_; }
  void advance(double dt) { now_ += dt; }
  void set(double t) { now_ = t; }

 private:
  double now_;
};

}  // namespace hs::serving
