// Crash-consistent serving-state snapshots (HSSNAP1).
//
// A long-lived load balancer accumulates state that is expensive to
// relearn after a restart: adaptive policies hold warmed-up rate
// estimators, Least-Load holds queue estimates, circuit breakers hold
// trip records, the health layer holds suspicion state, and the RNG has
// advanced. ServingDispatcher::capture_snapshot() freezes all of it
// under the dispatch lock into a ServingSnapshot; restore() loads it
// into a freshly constructed, identically shaped stack, after which the
// process continues the session bit-identically — same picks, same RNG
// draws, same conservation counters (pinned by the chaos suite).
//
// The on-disk format mirrors HSTRACE1 (serving/trace_io.h): a fixed
// little-endian header (magic "HSSNAP1\0", version, machine count,
// seed, capture timestamp, session time, conservation counters, RNG
// state) followed by length-prefixed variable sections (policy name,
// the Dispatcher::save_state vector, per-machine outstanding counts,
// optional per-machine health records). Binary because restore is
// specified bit-identical; saved via util::write_file_atomic so a crash
// mid-save never leaves a torn file; every length is validated on load
// so a corrupted file is rejected with util::CheckError, never UB.
//
// Deliberately NOT captured: the arrival recording (persist it
// separately as HSTRACE1 — a restore starts a fresh recording) and
// in-flight requests (they were owned by the process that died; their
// releases will never arrive, so restoring their deadline arms would
// only manufacture timeouts).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serving/health.h"

namespace hs::serving {

struct ServingSnapshot {
  uint64_t seed = 0;
  /// system_clock nanos at capture (provenance, like RecordedTrace).
  uint64_t captured_unix_nanos = 0;
  /// Session-clock seconds at capture.
  double session_time = 0.0;

  // Conservation counters at capture. acquired − released is the
  // in-flight count the dying process stranded (their releases are
  // accepted after restore thanks to `outstanding`).
  uint64_t acquired = 0;
  uint64_t released = 0;
  uint64_t timeouts = 0;
  uint64_t sheds = 0;

  /// Dispatch RNG state — restoring continues the draw sequence exactly.
  std::array<uint64_t, 4> rng_state{};

  /// Dispatcher::name() at capture; restore() refuses a mismatched
  /// policy stack.
  std::string policy;
  /// Dispatcher::save_state() vector (fractions, cadences, estimates,
  /// breaker records — whatever the stack serializes). Empty when the
  /// stack opted out.
  std::vector<double> policy_state;

  /// Per-machine in-flight counts at capture (size = machine count).
  std::vector<uint32_t> outstanding;

  /// Per-machine health records; empty when the health layer was off.
  std::vector<MachineHealthRecord> health;

  [[nodiscard]] size_t machine_count() const { return outstanding.size(); }
};

/// Serialize + atomically publish (temp + fsync + rename). Throws
/// util::CheckError on I/O failure or an empty machine set.
void save_snapshot_binary(const std::string& path,
                          const ServingSnapshot& snapshot);

/// Load + validate. Throws util::CheckError on any structural problem —
/// bad magic, version, truncation, section-length mismatch, value
/// out of domain.
[[nodiscard]] ServingSnapshot load_snapshot_binary(const std::string& path);

}  // namespace hs::serving
