#include "serving/trace_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/check.h"

namespace hs::serving {

namespace {

constexpr char kMagic[8] = {'H', 'S', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 40;
constexpr size_t kRecordBytes = 16;  // f64 arrival_time + f64 size

void put_u32(std::vector<char>& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.insert(out.end(), buf, buf + 4);
}

void put_u64(std::vector<char>& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.insert(out.end(), buf, buf + 8);
}

void put_f64(std::vector<char>& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.insert(out.end(), buf, buf + 8);
}

uint32_t get_u32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t get_u64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double get_f64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

void save_trace_binary(const std::string& path,
                       const RecordedTrace& recorded) {
  const auto& jobs = recorded.trace.jobs();
  std::vector<char> out;
  out.reserve(kHeaderBytes + kRecordBytes * jobs.size());
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, recorded.seed);
  put_u64(out, recorded.recorded_unix_nanos);
  put_u64(out, jobs.size());
  for (const auto& job : jobs) {
    put_f64(out, job.arrival_time);
    put_f64(out, job.size);
  }

  // Atomic publish (temp + fsync + rename): a crash mid-save leaves
  // either the previous file or the complete new one, never a torn mix.
  util::write_file_atomic(path, out.data(), out.size());
}

RecordedTrace load_trace_binary(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  HS_CHECK(file.good(), "cannot open trace file: " << path);
  const auto file_size = static_cast<size_t>(file.tellg());
  HS_CHECK(file_size >= kHeaderBytes,
           "trace file too short (" << file_size << " bytes): " << path);
  file.seekg(0);
  std::vector<char> bytes(file_size);
  file.read(bytes.data(), static_cast<std::streamsize>(file_size));
  HS_CHECK(file.good(), "read failed for trace file: " << path);

  HS_CHECK(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
           "bad magic — not a hetsched trace file: " << path);
  const uint32_t version = get_u32(bytes.data() + 8);
  HS_CHECK(version == kVersion, "unsupported trace format version "
                                    << version << " in " << path);
  RecordedTrace recorded;
  recorded.seed = get_u64(bytes.data() + 16);
  recorded.recorded_unix_nanos = get_u64(bytes.data() + 24);
  const uint64_t count = get_u64(bytes.data() + 32);
  // Bound first so the length identity below cannot wrap on a corrupt
  // (astronomical) count before it is compared.
  HS_CHECK(count <= (file_size - kHeaderBytes) / kRecordBytes,
           "trace header claims more records than the file could hold: "
               << count << " in " << path);
  HS_CHECK(file_size == kHeaderBytes + kRecordBytes * count,
           "trace payload length mismatch: header claims "
               << count << " records but file holds "
               << (file_size - kHeaderBytes) / kRecordBytes << ": " << path);

  std::vector<queueing::Job> jobs;
  jobs.reserve(count);
  const char* p = bytes.data() + kHeaderBytes;
  for (uint64_t i = 0; i < count; ++i, p += kRecordBytes) {
    jobs.push_back(queueing::Job{i, get_f64(p), get_f64(p + 8)});
  }
  // JobTrace's constructor re-validates ordering and positivity, so a
  // corrupted payload that passes the length check still fails loudly.
  recorded.trace = workload::JobTrace(std::move(jobs));
  return recorded;
}

}  // namespace hs::serving
