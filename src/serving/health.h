// Real-time backend health detection for the serving runtime.
//
// The simulator's robustness layers (PR 1/4/6) learn about failures
// from events the harness injects; a live load balancer has to *infer*
// them from what it can observe on its own clock. HealthTracker derives
// a per-backend Healthy/Suspect state machine from three such signals:
//
//  * Release deadlines — every acquire() arms a wall-clock deadline
//    `release_deadline` seconds out; a release that does not arrive in
//    time counts as a timeout, and `timeout_threshold` consecutive
//    timeouts make the backend Suspect. Because every deadline is
//    armed as now + release_deadline with `now` monotone under the
//    dispatch lock, the armed deadlines are FIFO-ordered by expiry —
//    so a preallocated ring buffer IS a deadline queue, and both
//    arming and expiry are O(1) with zero allocation (no wheel or
//    heap needed).
//  * Explicit outcomes — report_result(rejected) feeds the same
//    consecutive-failure counter; report_result(accepted) and any
//    in-time release reset it (and recover a Suspect backend).
//  * Heartbeats — backends that emit report_heartbeat() get the PR 6
//    phi-accrual detector re-driven by wall time: an EWMA of heartbeat
//    interarrivals per backend, suspicion once the silence exceeds
//    φ*·mean·ln 10 (cluster::HeartbeatConfig::timeout). This catches
//    idle backends that time out nothing because nothing was sent.
//
// Timeouts never un-arm a request: a release that arrives after its
// deadline still counts as a success signal (the backend is slow, not
// dead) and recovers the Suspect state. Releases are matched to armed
// deadlines FIFO per machine — acquire() returns no ticket, so the
// oldest outstanding arm is the canonical (conservative) match.
//
// The tracker is passive: it never reads a clock and never locks.
// ServingDispatcher drives it under the dispatch lock — on_acquire /
// on_release / on_result / on_heartbeat from the hot path, tick() from
// acquire() (deadline ring only, O(expired)) and from an explicit
// ServingDispatcher::tick() a watchdog thread calls (adds the O(n)
// heartbeat scan). State transitions are buffered and consumed by the
// dispatcher, which forwards them to the policy stack's existing
// on_machine_state_report channel — the same signal the simulator's
// fault layer delivers, so FaultAware/CircuitBreaker stacks route
// around a suspected backend with zero new plumbing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/netfaults.h"
#include "obs/trace.h"

namespace hs::serving {

struct HealthConfig {
  /// Seconds after acquire() within which release() is expected;
  /// 0 disables deadline tracking.
  double release_deadline = 0.0;
  /// Consecutive timeouts (or rejected results) that make a backend
  /// Suspect.
  size_t timeout_threshold = 3;
  /// Armed-deadline ring capacity. When more requests than this are in
  /// flight, the excess acquires are not deadline-tracked (counted in
  /// arm_drops()) — detection degrades gracefully instead of allocating.
  size_t max_tracked = size_t{1} << 16;
  /// Phi-accrual heartbeat detection (interval 0 = off). `interval` is
  /// only the EWMA seed hint in serving mode — the observed interarrival
  /// mean drives the timeout.
  cluster::HeartbeatConfig heartbeat;

  [[nodiscard]] bool enabled() const {
    return release_deadline > 0.0 || heartbeat.enabled();
  }
  /// Throws util::CheckError on out-of-range fields.
  void validate() const;
};

enum class MachineHealth : uint8_t { kHealthy, kSuspect };

/// One Healthy <-> Suspect flip, buffered for the dispatcher to forward
/// to the policy stack (up == false: suspected; true: recovered).
struct HealthTransition {
  uint32_t machine = 0;
  bool up = false;
  double time = 0.0;
  /// Suspicion: silence seconds (heartbeat) or consecutive failures
  /// (deadline/result path). Recovery: 0.
  double aux = 0.0;
};

/// Per-machine state as captured into / restored from an HSSNAP1
/// snapshot (serving/snapshot.h). In-flight deadline arms are *not*
/// part of it: requests owned by a crashed process are moot after a
/// restore.
struct MachineHealthRecord {
  uint32_t state = 0;  // MachineHealth code
  uint32_t consecutive_failures = 0;
  double suspected_at = 0.0;     // session time of the last suspicion
  double last_heartbeat = 0.0;   // session time of the last heartbeat
  double heartbeat_mean = 0.0;   // EWMA interarrival estimate
  uint64_t heartbeats = 0;       // heartbeats observed
};

class HealthTracker {
 public:
  /// Preallocates everything (the ring, per-machine arrays, the
  /// transition buffer); no method below allocates.
  HealthTracker(size_t machines, const HealthConfig& config);

  // ---- Signals (driven under the dispatch lock; `now` monotone) ----

  /// A request was routed to `machine`: arm its release deadline.
  void on_acquire(size_t machine, double now);
  /// A release arrived — success signal; absorbs the oldest armed
  /// deadline for `machine` (FIFO matching).
  void on_release(size_t machine, double now);
  /// An explicit dispatch outcome (report_result channel).
  void on_result(size_t machine, bool accepted, double now);
  /// A liveness heartbeat from `machine`.
  void on_heartbeat(size_t machine, double now);

  // ---- Advancing ----

  /// True when at least one armed deadline has expired by `now` — the
  /// one-compare gate the acquire hot path uses to skip tick() work.
  [[nodiscard]] bool deadline_pending(double now) const {
    return ring_count_ > 0 && ring_[ring_head_].deadline <= now;
  }

  /// Process expired deadlines (O(expired)); with `scan_heartbeats`,
  /// also run the O(n) phi-accrual silence scan. Appends Healthy <->
  /// Suspect flips to transitions(). Records kTimeout per expired
  /// deadline on the attached trace sink.
  void tick(double now, bool scan_heartbeats);

  /// Transitions accumulated since the last clear_transitions() —
  /// consume and forward to the policy stack, then clear.
  [[nodiscard]] std::span<const HealthTransition> transitions() const {
    return {transitions_.data(), transition_count_};
  }
  void clear_transitions() { transition_count_ = 0; }

  // ---- State queries ----

  [[nodiscard]] size_t machine_count() const { return state_.size(); }
  [[nodiscard]] MachineHealth state(size_t machine) const {
    return state_[machine];
  }
  [[nodiscard]] size_t healthy_count() const { return healthy_count_; }
  /// Deadline expiries observed (monotone).
  [[nodiscard]] uint64_t timeouts() const { return timeouts_; }
  /// Acquires that could not be deadline-tracked (ring full).
  [[nodiscard]] uint64_t arm_drops() const { return arm_drops_; }
  /// With every machine Suspect: the one suspected longest ago — the
  /// most likely to have quietly recovered (never-empty routing).
  [[nodiscard]] size_t least_recently_suspected() const;

  /// Trace kTimeout records here (nullptr = off).
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  // ---- Snapshot plumbing (serving/snapshot.h) ----

  [[nodiscard]] MachineHealthRecord record(size_t machine) const;
  /// Restore one machine's state from a snapshot record. Returns false
  /// (leaving the machine unchanged) on an invalid record. Deadline
  /// arms are dropped — see MachineHealthRecord.
  bool restore(size_t machine, const MachineHealthRecord& rec);

 private:
  struct Arm {
    double deadline = 0.0;
    uint32_t machine = 0;
  };

  void success(size_t machine, double now);
  void failure(size_t machine, double now, double aux);
  void push_transition(size_t machine, bool up, double now, double aux);

  HealthConfig config_;
  obs::TraceSink* trace_ = nullptr;

  // Armed-deadline FIFO ring (deadline-sorted by monotonicity of now).
  std::vector<Arm> ring_;
  size_t ring_head_ = 0;
  size_t ring_count_ = 0;

  // Per-machine state, indexed by machine.
  std::vector<MachineHealth> state_;
  std::vector<uint32_t> consecutive_failures_;
  std::vector<uint32_t> armed_;   // deadlines outstanding in the ring
  std::vector<uint32_t> absorb_;  // releases waiting to cancel an arm
  std::vector<double> suspected_at_;
  std::vector<double> last_heartbeat_;
  std::vector<double> heartbeat_mean_;
  std::vector<uint64_t> heartbeats_;

  std::vector<HealthTransition> transitions_;  // capacity 2n, see .cpp
  size_t transition_count_ = 0;
  size_t healthy_count_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t arm_drops_ = 0;
  uint64_t transition_drops_ = 0;
};

}  // namespace hs::serving
