// The dispatcher as a live, thread-safe, fault-tolerant load balancer.
//
// Seven PRs of simulator layers built policy objects — ORR, Least-Load,
// adaptive, and the FaultAware/CircuitBreaker/GovernedAdaptive/Hedged
// decorator stacks — whose picks are O(1)/O(log n) and allocation-free.
// ServingDispatcher is the front-end that runs those *identical* objects
// against wall-clock time as an in-process load balancer:
//
//   const size_t machine = serving.acquire(size_estimate);
//   ... send the request to `machine`, await its completion ...
//   serving.release(machine, measured_work);
//
// acquire() picks a machine (stamping the arrival with the session
// clock, see serving/clock.h), release() feeds the sized departure
// report back into the policy — the exact signal the simulator delivers,
// so dynamic policies (Least-Load queue estimates, online rate
// re-estimation, governed re-allocation) work unmodified in live mode.
// report_result() forwards accept/reject outcomes for circuit-breaker
// stacks.
//
// ## Health detection (off by default)
//
// With ServingConfig::health enabled, every acquire arms a release
// deadline and backends may emit report_heartbeat(); a HealthTracker
// (serving/health.h) turns missed deadlines, rejected results, and
// heartbeat silence into per-backend Healthy/Suspect transitions. Each
// transition is forwarded to the policy stack through the *existing*
// on_machine_state_report channel — the same signal the simulator's
// fault layer delivers — so FaultAware/CircuitBreaker stacks route
// around a suspected backend with zero new plumbing. Deadline expiry is
// processed opportunistically on the acquire path (one compare when
// nothing expired) and exhaustively by tick(), which a watchdog thread
// should call periodically (tick() also runs the O(n) heartbeat scan;
// detection latency for idle backends is bounded by the watchdog
// cadence).
//
// ## Graceful degradation (each mode off by default)
//
//  * Brownout — while the healthy fraction is below
//    DegradationConfig::brownout_below, try_acquire() consults the
//    configured AdmissionPolicy *before* touching the policy stack and
//    may shed the request (kShed; counted, traced, never routed).
//    acquire() keeps its always-routes contract regardless.
//  * Fail-static — when feedback goes silent (no release for
//    fail_static_after seconds with requests in flight), tick() pins
//    the stack to the last-known-good fractions via rebuild_fractions;
//    the first fresh release disengages and lets adaptive layers
//    re-learn.
//  * Never-empty — with every backend Suspect, route to the one
//    suspected longest ago instead of whatever a fully-masked stack
//    would do. The request is still armed, so a dead backend keeps
//    timing out while a recovered one proves itself.
//
// With every knob at its default the hot path is bit-identical to the
// health-free build: no tracker, no extra branches taken, same RNG
// stream, same picks (pinned by the golden serving tests).
//
// ## Crash-consistent snapshots
//
// capture_snapshot() freezes the whole learned state under the dispatch
// lock — conservation counters, RNG, the policy stack's save_state
// vector, per-machine outstanding counts, health records — into a
// ServingSnapshot (persist with serving/snapshot.h). restore() loads it
// into an identically shaped fresh stack, which then continues the
// session bit-identically. Designed for deliberate checkpoint cadences:
// the atomic writer guarantees a crash leaves the previous complete
// snapshot, so a restart resumes from the last checkpoint with learned
// rates instead of relearning from zero.
//
// ## Threading contract
//
// Dispatchers are not internally synchronized (see
// dispatch/dispatcher.h): every pick mutates policy state.
// ServingDispatcher serializes the entire policy interaction — pick,
// feedback, health bookkeeping, RNG draw, trace record — behind one
// spinlock (serving/spinlock.h), which keeps the hot path
// allocation-free and its critical section under a microsecond even at
// n = 10⁴ machines. Concurrent acquire()/release()/report_result()/
// report_heartbeat()/tick() from any number of threads are safe;
// administrative operations (mask updates, fraction rebuilds) go
// through with_exclusive(), which runs caller code under the same lock.
// The conservation counters are plain relaxed atomics so monitoring
// reads never touch the lock.
//
// ## Hardened feedback path
//
// release() and report_result() return a ServingStatus instead of
// trusting the caller: an out-of-range index or a release without a
// matching acquire (double release, release after restore of a crashed
// peer's request) is reported and *ignored* — no counter moves, no
// policy state is touched — because one buggy client must not be able
// to corrupt the queue estimates every other client routes by.
//
// ## Recording
//
// With record_capacity > 0, every routed acquire appends (session time,
// size) to a buffer preallocated at construction — recording adds two
// stores to the hot path and never allocates. When the buffer fills,
// recording stops and keeps the prefix (a prefix of an arrival sequence
// is itself a valid trace); overflow is counted in record_dropped().
// Shed requests are not recorded: the trace is what the policy stack
// actually saw, so it replays bit-identically in the simulator.
// snapshot() materializes the recording as a seed- and
// timestamp-stamped RecordedTrace for serving/trace_io.h persistence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dispatch/dispatcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "overload/admission.h"
#include "rng/rng.h"
#include "serving/clock.h"
#include "serving/health.h"
#include "serving/snapshot.h"
#include "serving/spinlock.h"
#include "serving/trace_io.h"

namespace hs::serving {

/// One recorded arrival: when it hit acquire() (seconds on the session
/// clock) and the size estimate the caller passed.
struct ArrivalRecord {
  double time = 0.0;
  double size = 0.0;
};

/// Outcome of a hardened serving call. Everything except kOk leaves the
/// dispatcher's state untouched.
enum class ServingStatus : uint8_t {
  kOk = 0,
  /// try_acquire only: brownout admission refused the request; it was
  /// never routed and needs no release.
  kShed,
  /// Machine index out of range.
  kInvalidMachine,
  /// release() for a machine with no outstanding acquire (double
  /// release, or a stray release for a pre-crash request after
  /// restore()).
  kNotInFlight,
};

[[nodiscard]] const char* to_string(ServingStatus status);

/// Graceful-degradation knobs. Every mode is off by default; brownout
/// and never-empty act on health state and therefore require
/// ServingConfig::health to be enabled.
struct DegradationConfig {
  /// Engage brownout while healthy_machines < brownout_below * n
  /// (0 disables). Requires brownout_policy.
  double brownout_below = 0.0;
  /// Admission policy consulted by try_acquire() while browned out
  /// (e.g. overload::ProbabilisticShed). Caller-owned, must outlive the
  /// dispatcher; only touched under the dispatch lock.
  overload::AdmissionPolicy* brownout_policy = nullptr;

  /// Pin the stack to fail_static_fractions after this many seconds
  /// without a release while requests are in flight (0 disables).
  double fail_static_after = 0.0;
  /// Last-known-good fractions (typically the planned ORR allocation);
  /// size must equal the machine count when fail-static is enabled.
  std::vector<double> fail_static_fractions;

  /// With every backend Suspect, route to the least recently suspected
  /// one instead of consulting the fully-masked stack.
  bool never_empty = false;

  [[nodiscard]] bool enabled() const {
    return brownout_below > 0.0 || fail_static_after > 0.0 || never_empty;
  }
  /// Throws util::CheckError on inconsistent settings.
  void validate(size_t machine_count, bool health_enabled) const;
};

struct ServingConfig {
  /// Seed of the dispatch decision stream (random policies draw from
  /// it; deterministic policies never touch it). Stamped into recorded
  /// traces so a replay is attributable to its origin session.
  uint64_t seed = 1;

  /// Arrival records preallocated at construction; 0 disables
  /// recording entirely (the hot path then skips the record branch).
  size_t record_capacity = 0;

  /// Session time source; nullptr selects an internal WallClock whose
  /// origin is the construction instant. A non-null source stays owned
  /// by the caller and must outlive the dispatcher.
  ClockSource* clock = nullptr;

  /// Real-time failure detection (off by default — see
  /// HealthConfig::enabled()).
  HealthConfig health;

  /// Degradation modes (all off by default).
  DegradationConfig degradation;

  /// Event sink for kTimeout/kSuspect/kRecovery/kShed/kDegraded/
  /// kSnapshot records (nullptr = no tracing). Caller-owned; recorded
  /// under the dispatch lock.
  obs::TraceSink* trace = nullptr;
};

class ServingDispatcher {
 public:
  /// Wraps `inner`, which stays owned by the caller and must outlive
  /// this object. Any policy or decorator stack works; the wrapper
  /// takes over all interaction with it.
  explicit ServingDispatcher(dispatch::Dispatcher& inner,
                             ServingConfig config = {});

  ServingDispatcher(const ServingDispatcher&) = delete;
  ServingDispatcher& operator=(const ServingDispatcher&) = delete;

  // ---- Hot path: thread-safe, allocation-free ----

  /// Pick the destination machine for one arriving request. `size` is
  /// the request's estimated service demand in base-speed seconds
  /// (positive; pass 1.0 when no estimate exists — size-oblivious
  /// policies ignore it, and recorded traces replay with this value).
  /// Always routes, even under brownout (use try_acquire to shed).
  [[nodiscard]] size_t acquire(double size = 1.0);

  /// Brownout-aware acquire: while degraded, the configured admission
  /// policy may refuse the request, in which case `machine` is left
  /// untouched and kShed is returned (the request was never routed —
  /// do not release it). Otherwise identical to acquire().
  [[nodiscard]] ServingStatus try_acquire(double size, size_t& machine);

  /// Report that the request sent to `machine` completed, carrying the
  /// work it actually consumed in base-speed seconds (feeds Least-Load
  /// queue estimates and online rate re-estimation; size-oblivious
  /// policies ignore it). Returns kInvalidMachine / kNotInFlight —
  /// leaving all state untouched — instead of trusting the caller.
  [[nodiscard]] ServingStatus release(size_t machine, double work);

  /// Report a dispatch outcome (accepted == false when the backend
  /// refused or dropped the request) — the circuit-breaker feedback
  /// channel, and a health failure signal. Returns kInvalidMachine on a
  /// bad index.
  [[nodiscard]] ServingStatus report_result(size_t machine, bool accepted);

  /// A liveness heartbeat from `machine` (ignored unless heartbeat
  /// detection is configured). Returns kInvalidMachine on a bad index.
  [[nodiscard]] ServingStatus report_heartbeat(size_t machine);

  /// Watchdog entry point: process expired release deadlines, run the
  /// heartbeat silence scan, and evaluate fail-static staleness. Call
  /// periodically from a monitoring thread — the cadence bounds the
  /// detection latency for idle backends. Cheap no-op when health and
  /// degradation are off.
  void tick();

  // ---- Conservation counters (relaxed atomics; exact whenever the
  //      system is quiescent, monitoring-grade under churn) ----

  [[nodiscard]] uint64_t acquired() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t released() const {
    return released_.load(std::memory_order_relaxed);
  }
  /// acquired() − released(). Both counters move under the dispatch
  /// lock, so at quiescence this is the exact number of requests whose
  /// release is outstanding.
  [[nodiscard]] int64_t in_flight() const {
    return static_cast<int64_t>(acquired()) - static_cast<int64_t>(released());
  }
  [[nodiscard]] uint64_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t record_dropped() const {
    return record_dropped_.load(std::memory_order_relaxed);
  }
  /// Requests refused by brownout admission (try_acquire → kShed).
  [[nodiscard]] uint64_t sheds() const {
    return sheds_.load(std::memory_order_relaxed);
  }
  /// Release deadlines that expired (health layer; 0 when off).
  [[nodiscard]] uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  /// Backends currently believed Healthy (== machine_count() when the
  /// health layer is off).
  [[nodiscard]] size_t healthy_machines() const {
    return healthy_machines_.load(std::memory_order_relaxed);
  }
  /// Bitmask of engaged degradation modes (1 = brownout, 2 =
  /// fail-static, 4 = never-empty); 0 when fully healthy.
  [[nodiscard]] uint32_t degraded_modes() const {
    return degraded_modes_.load(std::memory_order_relaxed);
  }

  // ---- Administration and introspection (cold path) ----

  /// Run `fn(dispatch::Dispatcher&)` holding the dispatch lock — the
  /// escape hatch for administrative operations (set_available_mask,
  /// rebuild_fractions, reset) that must not interleave with picks.
  /// Keep the callback short: every acquire on every thread waits.
  template <typename Fn>
  auto with_exclusive(Fn&& fn) {
    SpinLockGuard guard(lock_);
    return std::forward<Fn>(fn)(inner_);
  }

  /// Materialize the recording so far (locks, allocates — cold path).
  [[nodiscard]] RecordedTrace snapshot() const;

  /// Freeze the complete serving state — counters, RNG, policy stack
  /// state, per-machine outstanding counts, health records — under the
  /// dispatch lock (locks, allocates — cold path). Persist with
  /// serving/snapshot.h::save_snapshot_binary.
  [[nodiscard]] ServingSnapshot capture_snapshot();

  /// Load a snapshot captured from an identically shaped stack (same
  /// machine count, same policy name — anything else throws
  /// util::CheckError, leaving this object unusable only if the policy
  /// stack itself was partially restored, which the save/restore
  /// contract forbids). The session then continues bit-identically:
  /// same picks, same RNG draws, same conservation counters. Releases
  /// for requests the snapshotted process had in flight are accepted
  /// (outstanding counts are restored); their deadline arms are not —
  /// a crashed peer's requests are moot.
  void restore(const ServingSnapshot& snap);

  /// Register the live-mode gauge set on `registry`, prefixed
  /// "serving." — conservation counters, recording occupancy/overflow,
  /// health and degradation state, and dispatch-lock contention
  /// (acquisitions that had to spin). Gauges read relaxed atomics only,
  /// so a sampler thread never contends with the hot path.
  void register_gauges(obs::MetricsRegistry& registry) const;

  [[nodiscard]] size_t machine_count() const { return machine_count_; }
  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] uint64_t recorded_unix_nanos() const { return unix_nanos_; }
  /// Seconds elapsed on the session clock (takes the lock — the clock
  /// itself need not be thread-safe).
  [[nodiscard]] double session_seconds();
  /// The health tracker, or nullptr when the health layer is off.
  [[nodiscard]] const HealthTracker* health() const { return health_.get(); }

 private:
  size_t route_locked(double now, double size);
  void drain_health_locked(double now);
  void drain_staged_locked();
  void set_mode_locked(uint32_t mode, bool engaged, double now);

  // Declaration order is deliberate: everything the acquire hot path
  // touches (lock, clock, RNG, staging, records, health pointer, mode
  // flags) packs into the leading cache lines; snapshot/degradation
  // configuration — cold except for flag mirrors — trails the atomics.
  dispatch::Dispatcher& inner_;
  std::unique_ptr<WallClock> owned_clock_;  // engaged when config.clock null
  ClockSource* clock_;                      // never null after construction
  rng::Xoshiro256 gen_;
  std::unique_ptr<HealthTracker> health_;  // engaged when health.enabled()
  mutable SpinLock lock_;
  bool brownout_engaged_ = false;
  bool fail_static_engaged_ = false;
  bool all_suspect_ = false;
  // Per-machine in-flight counts, maintained lazily: acquire appends
  // the picked machine to staged_ (a sequential, cache-hot write) and
  // the counts are settled on the release path, which needs them
  // anyway. This keeps the pick-dependent random-index write off the
  // routing tail; outstanding_ is exact only after drain_staged_locked.
  std::vector<uint32_t> staged_;  // fixed-size append buffer of picks
  size_t staged_count_ = 0;       // staged_[0..staged_count_) is live
  std::vector<ArrivalRecord> records_;  // preallocated, size == capacity
  std::vector<uint32_t> outstanding_;

  size_t machine_count_;
  uint64_t seed_;
  uint64_t unix_nanos_;
  obs::TraceSink* trace_;
  double last_feedback_ = 0.0;  // session time of the last release
  uint64_t timeout_base_ = 0;   // timeouts carried in by restore()

  std::atomic<uint64_t> acquired_{0};
  std::atomic<uint64_t> released_{0};
  std::atomic<uint64_t> record_count_{0};
  std::atomic<uint64_t> record_dropped_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<size_t> healthy_machines_;
  std::atomic<uint32_t> degraded_modes_{0};

  DegradationConfig degradation_;
};

}  // namespace hs::serving
