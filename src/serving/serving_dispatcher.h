// The dispatcher as a live, thread-safe load-balancing library.
//
// Seven PRs of simulator layers built policy objects — ORR, Least-Load,
// adaptive, and the FaultAware/CircuitBreaker/GovernedAdaptive/Hedged
// decorator stacks — whose picks are O(1)/O(log n) and allocation-free.
// ServingDispatcher is the front-end that runs those *identical* objects
// against wall-clock time as an in-process load balancer:
//
//   const size_t machine = serving.acquire(size_estimate);
//   ... send the request to `machine`, await its completion ...
//   serving.release(machine, measured_work);
//
// acquire() picks a machine (stamping the arrival with the session
// clock, see serving/clock.h), release() feeds the sized departure
// report back into the policy — the exact signal the simulator delivers,
// so dynamic policies (Least-Load queue estimates, online rate
// re-estimation, governed re-allocation) work unmodified in live mode.
// report_result() forwards accept/reject outcomes for circuit-breaker
// stacks.
//
// ## Threading contract
//
// Dispatchers are not internally synchronized (see
// dispatch/dispatcher.h): every pick mutates policy state.
// ServingDispatcher serializes the entire policy interaction — pick,
// feedback, RNG draw, trace record — behind one spinlock
// (serving/spinlock.h), which keeps the hot path allocation-free and
// its critical section under a microsecond even at n = 10⁴ machines.
// Concurrent acquire()/release()/report_result() from any number of
// threads are safe; administrative operations (mask updates, fraction
// rebuilds) go through with_exclusive(), which runs caller code under
// the same lock. The conservation counters are plain relaxed atomics so
// monitoring reads never touch the lock.
//
// ## Recording
//
// With record_capacity > 0, every acquire appends (session time, size)
// to a buffer preallocated at construction — recording adds two stores
// to the hot path and never allocates. When the buffer fills, recording
// stops and keeps the prefix (a prefix of an arrival sequence is itself
// a valid trace); overflow is counted in record_dropped(). snapshot()
// materializes the recording as a seed- and timestamp-stamped
// RecordedTrace for serving/trace_io.h persistence and simulator replay.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dispatch/dispatcher.h"
#include "obs/metrics.h"
#include "rng/rng.h"
#include "serving/clock.h"
#include "serving/spinlock.h"
#include "serving/trace_io.h"

namespace hs::serving {

/// One recorded arrival: when it hit acquire() (seconds on the session
/// clock) and the size estimate the caller passed.
struct ArrivalRecord {
  double time = 0.0;
  double size = 0.0;
};

struct ServingConfig {
  /// Seed of the dispatch decision stream (random policies draw from
  /// it; deterministic policies never touch it). Stamped into recorded
  /// traces so a replay is attributable to its origin session.
  uint64_t seed = 1;

  /// Arrival records preallocated at construction; 0 disables
  /// recording entirely (the hot path then skips the record branch).
  size_t record_capacity = 0;

  /// Session time source; nullptr selects an internal WallClock whose
  /// origin is the construction instant. A non-null source stays owned
  /// by the caller and must outlive the dispatcher.
  ClockSource* clock = nullptr;
};

class ServingDispatcher {
 public:
  /// Wraps `inner`, which stays owned by the caller and must outlive
  /// this object. Any policy or decorator stack works; the wrapper
  /// takes over all interaction with it.
  explicit ServingDispatcher(dispatch::Dispatcher& inner,
                             ServingConfig config = {});

  ServingDispatcher(const ServingDispatcher&) = delete;
  ServingDispatcher& operator=(const ServingDispatcher&) = delete;

  // ---- Hot path: thread-safe, allocation-free ----

  /// Pick the destination machine for one arriving request. `size` is
  /// the request's estimated service demand in base-speed seconds
  /// (positive; pass 1.0 when no estimate exists — size-oblivious
  /// policies ignore it, and recorded traces replay with this value).
  [[nodiscard]] size_t acquire(double size = 1.0);

  /// Report that the request sent to `machine` completed, carrying the
  /// work it actually consumed in base-speed seconds (feeds Least-Load
  /// queue estimates and online rate re-estimation; size-oblivious
  /// policies ignore it).
  void release(size_t machine, double work);

  /// Report a dispatch outcome (accepted == false when the backend
  /// refused or dropped the request) — the circuit-breaker feedback
  /// channel.
  void report_result(size_t machine, bool accepted);

  // ---- Conservation counters (relaxed atomics; exact whenever the
  //      system is quiescent, monitoring-grade under churn) ----

  [[nodiscard]] uint64_t acquired() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t released() const {
    return released_.load(std::memory_order_relaxed);
  }
  /// acquired() − released(). Both counters move under the dispatch
  /// lock, so at quiescence this is the exact number of requests whose
  /// release is outstanding.
  [[nodiscard]] int64_t in_flight() const {
    return static_cast<int64_t>(acquired()) - static_cast<int64_t>(released());
  }
  [[nodiscard]] uint64_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t record_dropped() const {
    return record_dropped_.load(std::memory_order_relaxed);
  }

  // ---- Administration and introspection (cold path) ----

  /// Run `fn(dispatch::Dispatcher&)` holding the dispatch lock — the
  /// escape hatch for administrative operations (set_available_mask,
  /// rebuild_fractions, reset) that must not interleave with picks.
  /// Keep the callback short: every acquire on every thread waits.
  template <typename Fn>
  auto with_exclusive(Fn&& fn) {
    SpinLockGuard guard(lock_);
    return std::forward<Fn>(fn)(inner_);
  }

  /// Materialize the recording so far (locks, allocates — cold path).
  [[nodiscard]] RecordedTrace snapshot() const;

  /// Register the live-mode gauge set on `registry`, prefixed
  /// "serving." — acquired/released totals, in-flight, and recording
  /// occupancy/overflow. Gauges read the relaxed counters only, so a
  /// sampler thread never contends with the hot path.
  void register_gauges(obs::MetricsRegistry& registry) const;

  [[nodiscard]] size_t machine_count() const { return machine_count_; }
  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] uint64_t recorded_unix_nanos() const { return unix_nanos_; }
  /// Seconds elapsed on the session clock (takes the lock — the clock
  /// itself need not be thread-safe).
  [[nodiscard]] double session_seconds();

 private:
  dispatch::Dispatcher& inner_;
  std::unique_ptr<WallClock> owned_clock_;  // engaged when config.clock null
  ClockSource* clock_;                      // never null after construction
  rng::Xoshiro256 gen_;
  uint64_t seed_;
  uint64_t unix_nanos_;
  size_t machine_count_;

  mutable SpinLock lock_;
  std::vector<ArrivalRecord> records_;  // preallocated, size == capacity
  std::atomic<uint64_t> acquired_{0};
  std::atomic<uint64_t> released_{0};
  std::atomic<uint64_t> record_count_{0};
  std::atomic<uint64_t> record_dropped_{0};
};

}  // namespace hs::serving
