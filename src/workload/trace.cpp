#include "workload/trace.h"

#include <cmath>

#include "stats/running_stats.h"
#include "util/check.h"
#include "util/csv.h"

namespace hs::workload {

JobTrace::JobTrace(std::vector<queueing::Job> jobs) : jobs_(std::move(jobs)) {
  validate();
}

void JobTrace::validate() const {
  double last = 0.0;
  for (const auto& job : jobs_) {
    HS_CHECK(job.arrival_time >= last,
             "trace arrival times must be non-decreasing at job " << job.id);
    HS_CHECK(job.size > 0.0, "trace job " << job.id << " has size "
                                          << job.size);
    last = job.arrival_time;
  }
}

JobTrace JobTrace::generate(const WorkloadSpec& spec, double lambda,
                            double horizon, uint64_t seed) {
  HS_CHECK(horizon > 0.0, "horizon must be positive: " << horizon);
  auto arrivals = spec.make_arrivals(lambda);
  const JobSizeModel sizes = spec.make_size_model();
  // Independent streams so the arrival pattern does not depend on how
  // many random draws the size model makes.
  rng::Xoshiro256 arrival_gen(seed);
  rng::Xoshiro256 size_gen = arrival_gen.stream(1);

  std::vector<queueing::Job> jobs;
  jobs.reserve(static_cast<size_t>(lambda * horizon * 1.1) + 16);
  double t = 0.0;
  uint64_t id = 0;
  for (;;) {
    t += arrivals->next_interarrival(arrival_gen);
    if (t > horizon) {
      break;
    }
    jobs.push_back(queueing::Job{id++, t, sizes.sample(size_gen)});
  }
  return JobTrace(std::move(jobs));
}

JobTrace JobTrace::load_csv(const std::string& path) {
  std::vector<queueing::Job> jobs;
  uint64_t id = 0;
  for (const auto& row : util::read_numeric_csv(path)) {
    HS_CHECK(row.size() == 2, "trace rows need 2 fields, got " << row.size());
    jobs.push_back(queueing::Job{id++, row[0], row[1]});
  }
  return JobTrace(std::move(jobs));
}

void JobTrace::save_csv(const std::string& path) const {
  std::vector<std::vector<double>> rows;
  rows.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    rows.push_back({job.arrival_time, job.size});
  }
  util::write_numeric_csv(path, rows, "arrival_time,size");
}

double JobTrace::mean_interarrival() const {
  HS_CHECK(jobs_.size() >= 2, "need >= 2 jobs for inter-arrival stats");
  return (jobs_.back().arrival_time - jobs_.front().arrival_time) /
         static_cast<double>(jobs_.size() - 1);
}

double JobTrace::interarrival_cv() const {
  HS_CHECK(jobs_.size() >= 3, "need >= 3 jobs for inter-arrival CV");
  stats::RunningStats gaps;
  for (size_t i = 1; i < jobs_.size(); ++i) {
    gaps.add(jobs_[i].arrival_time - jobs_[i - 1].arrival_time);
  }
  return gaps.stddev() / gaps.mean();
}

double JobTrace::mean_size() const {
  HS_CHECK(!jobs_.empty(), "empty trace");
  stats::RunningStats sizes;
  for (const auto& job : jobs_) {
    sizes.add(job.size);
  }
  return sizes.mean();
}

double JobTrace::horizon() const {
  return jobs_.empty() ? 0.0 : jobs_.back().arrival_time;
}

}  // namespace hs::workload
