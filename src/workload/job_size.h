// Job size (service demand) models.
//
// §4.1: job sizes in most computing systems are heavy-tailed; the paper
// uses Bounded Pareto B(k=10 s, p=21600 s, α=1.0), mean 76.8 s. Sizes are
// in base-speed seconds: a machine of speed s finishes a size-x job in
// x/s seconds when running it alone.
#pragma once

#include <memory>
#include <string>

#include "rng/distributions.h"

namespace hs::workload {

/// Thin ownership wrapper around a size distribution, carrying the
/// paper's defaults.
class JobSizeModel {
 public:
  explicit JobSizeModel(std::unique_ptr<rng::Distribution> dist);

  [[nodiscard]] double sample(rng::Xoshiro256& gen) const;
  [[nodiscard]] double mean() const { return dist_->mean(); }
  [[nodiscard]] double cv() const { return dist_->cv(); }
  [[nodiscard]] std::string name() const { return dist_->name(); }

  /// The paper's default: BoundedPareto(10, 21600, 1.0), mean 76.8 s.
  static JobSizeModel paper_default();
  /// Bounded Pareto with custom tail index (ablation A3); bounds default
  /// to the paper's.
  static JobSizeModel bounded_pareto(double alpha, double lower = 10.0,
                                     double upper = 21600.0);
  /// Exponential sizes with the given mean (for M/M/1 validation).
  static JobSizeModel exponential(double mean);
  /// Fixed-size jobs (deterministic tests).
  static JobSizeModel deterministic(double size);

 private:
  std::unique_ptr<rng::Distribution> dist_;
};

/// The paper's default mean job size, E[B(10, 21600, 1.0)] ≈ 76.8 s.
[[nodiscard]] double paper_mean_job_size();

}  // namespace hs::workload
