// Job trace recording and replay.
//
// A trace is the materialized arrival stream: (arrival time, size) pairs
// in time order. Traces serve three purposes: byte-identical workload
// replay across policies (variance reduction in comparisons), export for
// external analysis, and substitution for the unavailable 1988 Zhou
// trace the paper references — we generate synthetic traces with the
// same burstiness profile instead.
#pragma once

#include <string>
#include <vector>

#include "queueing/job.h"
#include "workload/spec.h"

namespace hs::workload {

class JobTrace {
 public:
  JobTrace() = default;
  explicit JobTrace(std::vector<queueing::Job> jobs);

  /// Generate a trace from a workload spec: jobs arriving at rate
  /// `lambda` until `horizon` seconds.
  static JobTrace generate(const WorkloadSpec& spec, double lambda,
                           double horizon, uint64_t seed);

  /// CSV persistence: rows of `arrival_time,size`.
  static JobTrace load_csv(const std::string& path);
  void save_csv(const std::string& path) const;

  [[nodiscard]] const std::vector<queueing::Job>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }

  /// Measured statistics of the trace.
  [[nodiscard]] double mean_interarrival() const;
  [[nodiscard]] double interarrival_cv() const;
  [[nodiscard]] double mean_size() const;
  [[nodiscard]] double horizon() const;

 private:
  void validate() const;

  std::vector<queueing::Job> jobs_;
};

}  // namespace hs::workload
