#include "workload/spec.h"

#include <cmath>
#include <sstream>

#include "rng/distributions.h"
#include "util/check.h"

namespace hs::workload {

WorkloadSpec WorkloadSpec::paper_default() { return WorkloadSpec{}; }

double WorkloadSpec::mean_job_size() const {
  switch (size_kind) {
    case SizeKind::kBoundedPareto:
      return rng::BoundedPareto(pareto_lower, pareto_upper, pareto_alpha)
          .mean();
    case SizeKind::kExponential:
    case SizeKind::kDeterministic:
      return fixed_or_mean_size;
  }
  HS_CHECK(false, "unreachable size kind");
  return 0.0;
}

JobSizeModel WorkloadSpec::make_size_model() const {
  switch (size_kind) {
    case SizeKind::kBoundedPareto:
      return JobSizeModel::bounded_pareto(pareto_alpha, pareto_lower,
                                          pareto_upper);
    case SizeKind::kExponential:
      return JobSizeModel::exponential(fixed_or_mean_size);
    case SizeKind::kDeterministic:
      return JobSizeModel::deterministic(fixed_or_mean_size);
  }
  HS_CHECK(false, "unreachable size kind");
  return JobSizeModel::deterministic(1.0);
}

std::unique_ptr<ArrivalProcess> WorkloadSpec::make_arrivals(
    double lambda) const {
  HS_CHECK(lambda > 0.0, "arrival rate must be positive: " << lambda);
  switch (arrival_kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(lambda);
    case ArrivalKind::kHyperExp:
      return std::make_unique<HyperExpArrivals>(1.0 / lambda, arrival_cv);
    case ArrivalKind::kDeterministic:
      return std::make_unique<DeterministicArrivals>(1.0 / lambda);
  }
  HS_CHECK(false, "unreachable arrival kind");
  return nullptr;
}

double WorkloadSpec::arrival_rate_for(double rho, double total_speed) const {
  // ρ ≥ 1 is legal: overload experiments deliberately offer more work
  // than the cluster can serve (the queueing system then has no steady
  // state, which is the point).
  HS_CHECK(std::isfinite(rho) && rho > 0.0,
           "rho must be finite and > 0: " << rho);
  HS_CHECK(total_speed > 0.0, "total speed must be positive: " << total_speed);
  return rho * total_speed / mean_job_size();
}

std::string WorkloadSpec::describe() const {
  std::ostringstream oss;
  switch (arrival_kind) {
    case ArrivalKind::kPoisson:
      oss << "Poisson arrivals";
      break;
    case ArrivalKind::kHyperExp:
      oss << "HyperExp arrivals (cv=" << arrival_cv << ")";
      break;
    case ArrivalKind::kDeterministic:
      oss << "deterministic arrivals";
      break;
  }
  oss << ", ";
  switch (size_kind) {
    case SizeKind::kBoundedPareto:
      oss << "BoundedPareto(" << pareto_lower << ", " << pareto_upper << ", "
          << pareto_alpha << ") sizes";
      break;
    case SizeKind::kExponential:
      oss << "Exponential sizes (mean=" << fixed_or_mean_size << ")";
      break;
    case SizeKind::kDeterministic:
      oss << "fixed sizes (" << fixed_or_mean_size << ")";
      break;
  }
  return oss.str();
}

}  // namespace hs::workload
