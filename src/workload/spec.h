// Declarative workload specification.
//
// A WorkloadSpec pins down everything random about one experiment's
// demand side: how jobs arrive and how large they are. The arrival rate
// is usually *derived* — the paper fixes the system utilization ρ and the
// machine speeds, which determines λ = ρ·Σs/E[size].
#pragma once

#include <memory>
#include <string>

#include "workload/arrival.h"
#include "workload/job_size.h"

namespace hs::workload {

enum class ArrivalKind {
  kPoisson,
  kHyperExp,       // the paper's default, CV = 3
  kDeterministic,
};

enum class SizeKind {
  kBoundedPareto,  // the paper's default
  kExponential,
  kDeterministic,
};

struct WorkloadSpec {
  ArrivalKind arrival_kind = ArrivalKind::kHyperExp;
  double arrival_cv = 3.0;  // used by kHyperExp

  SizeKind size_kind = SizeKind::kBoundedPareto;
  double pareto_alpha = 1.0;       // used by kBoundedPareto
  double pareto_lower = 10.0;      // k, seconds
  double pareto_upper = 21600.0;   // p, seconds
  double fixed_or_mean_size = 76.8;  // kExponential mean / kDeterministic size

  /// The paper's §4.1 defaults: H2 arrivals CV=3, B(10, 21600, 1) sizes.
  static WorkloadSpec paper_default();

  /// Mean job size implied by the size model.
  [[nodiscard]] double mean_job_size() const;

  /// Build the size model.
  [[nodiscard]] JobSizeModel make_size_model() const;

  /// Build the arrival process for a target arrival rate λ.
  [[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrivals(
      double lambda) const;

  /// λ that loads machines of total speed Σs to utilization ρ:
  /// λ = ρ·Σs / E[size].
  [[nodiscard]] double arrival_rate_for(double rho, double total_speed) const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace hs::workload
