#include "workload/arrival.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace hs::workload {

// ------------------------------------------------------------ Poisson

PoissonArrivals::PoissonArrivals(double rate) : interarrival_(rate) {}

double PoissonArrivals::next_interarrival(rng::Xoshiro256& gen) {
  return interarrival_.sample(gen);
}

double PoissonArrivals::mean_interarrival() const {
  return interarrival_.mean();
}

std::string PoissonArrivals::name() const {
  std::ostringstream oss;
  oss << "Poisson(rate=" << interarrival_.rate() << ")";
  return oss.str();
}

// ----------------------------------------------------------- HyperExp

HyperExpArrivals::HyperExpArrivals(double mean_interarrival, double cv)
    : interarrival_(rng::HyperExponential2::fit_mean_cv(mean_interarrival,
                                                        cv)) {}

double HyperExpArrivals::next_interarrival(rng::Xoshiro256& gen) {
  return interarrival_.sample(gen);
}

double HyperExpArrivals::mean_interarrival() const {
  return interarrival_.mean();
}

double HyperExpArrivals::cv() const { return interarrival_.cv(); }

std::string HyperExpArrivals::name() const {
  std::ostringstream oss;
  oss << "HyperExp(mean=" << interarrival_.mean() << ", cv=" << cv() << ")";
  return oss.str();
}

// ------------------------------------------------------ Deterministic

DeterministicArrivals::DeterministicArrivals(double interval)
    : interval_(interval) {
  HS_CHECK(interval > 0.0, "arrival interval must be positive: " << interval);
}

double DeterministicArrivals::next_interarrival(rng::Xoshiro256& /*gen*/) {
  return interval_;
}

std::string DeterministicArrivals::name() const {
  std::ostringstream oss;
  oss << "Deterministic(interval=" << interval_ << ")";
  return oss.str();
}

// -------------------------------------------------------------- MMPP2

Mmpp2Arrivals::Mmpp2Arrivals(double rate1, double rate2, double hold1,
                             double hold2)
    : rate1_(rate1), rate2_(rate2), hold1_(hold1), hold2_(hold2) {
  HS_CHECK(rate1 > 0.0 && rate2 > 0.0,
           "MMPP rates must be positive: " << rate1 << ", " << rate2);
  HS_CHECK(hold1 > 0.0 && hold2 > 0.0,
           "MMPP holding times must be positive: " << hold1 << ", " << hold2);
}

void Mmpp2Arrivals::reset() {
  state_ = 0;
  switch_armed_ = false;
}

double Mmpp2Arrivals::next_interarrival(rng::Xoshiro256& gen) {
  // Competing exponentials: within the current state, the next arrival
  // races against the next state switch; accumulate time across switches
  // until an arrival wins.
  double elapsed = 0.0;
  for (;;) {
    const double rate = state_ == 0 ? rate1_ : rate2_;
    const double hold = state_ == 0 ? hold1_ : hold2_;
    if (!switch_armed_) {
      time_to_switch_ = -std::log(gen.next_double_open0()) * hold;
      switch_armed_ = true;
    }
    const double to_arrival = -std::log(gen.next_double_open0()) / rate;
    if (to_arrival < time_to_switch_) {
      time_to_switch_ -= to_arrival;
      return elapsed + to_arrival;
    }
    elapsed += time_to_switch_;
    state_ = 1 - state_;
    switch_armed_ = false;
  }
}

double Mmpp2Arrivals::mean_interarrival() const {
  // Stationary state probabilities are proportional to holding times;
  // the long-run arrival rate is the probability-weighted rate.
  const double pi1 = hold1_ / (hold1_ + hold2_);
  const double mean_rate = pi1 * rate1_ + (1.0 - pi1) * rate2_;
  return 1.0 / mean_rate;
}

double Mmpp2Arrivals::cv() const {
  // No simple closed form for the interval CV of an MMPP; report the
  // Poisson lower bound. Callers needing the exact value should measure.
  return 1.0;
}

std::string Mmpp2Arrivals::name() const {
  std::ostringstream oss;
  oss << "MMPP2(rates=" << rate1_ << "/" << rate2_ << ", holds=" << hold1_
      << "/" << hold2_ << ")";
  return oss.str();
}

}  // namespace hs::workload
