// Job arrival processes.
//
// The paper stresses that real job arrivals are far from Poisson: the
// trace data of Zhou '88 has inter-arrival CV = 2.64, so the simulation
// uses a two-stage hyperexponential renewal process with CV = 3.0
// (§4.1). A Poisson process is provided for validating against M/M/1
// closed forms, deterministic arrivals for controlled tests, and a
// 2-state MMPP for an even burstier sensitivity study.
#pragma once

#include <memory>
#include <string>

#include "rng/distributions.h"
#include "rng/rng.h"

namespace hs::workload {

/// Stateful generator of the overall job arrival stream.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Time until the next arrival (strictly positive).
  [[nodiscard]] virtual double next_interarrival(rng::Xoshiro256& gen) = 0;
  /// Mean inter-arrival time (1/λ).
  [[nodiscard]] virtual double mean_interarrival() const = 0;
  /// Coefficient of variation of the inter-arrival time.
  [[nodiscard]] virtual double cv() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Restore initial state (MMPP has modulation state; renewal processes
  /// are stateless).
  virtual void reset() {}

  /// Arrival rate λ.
  [[nodiscard]] double rate() const { return 1.0 / mean_interarrival(); }
};

/// Poisson arrivals: exponential inter-arrival times, CV = 1.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);

  [[nodiscard]] double next_interarrival(rng::Xoshiro256& gen) override;
  [[nodiscard]] double mean_interarrival() const override;
  [[nodiscard]] double cv() const override { return 1.0; }
  [[nodiscard]] std::string name() const override;

 private:
  rng::Exponential interarrival_;
};

/// Renewal process with H2 inter-arrival times fit to (mean, CV >= 1).
/// The paper's default: CV = 3.0.
class HyperExpArrivals final : public ArrivalProcess {
 public:
  HyperExpArrivals(double mean_interarrival, double cv);

  [[nodiscard]] double next_interarrival(rng::Xoshiro256& gen) override;
  [[nodiscard]] double mean_interarrival() const override;
  [[nodiscard]] double cv() const override;
  [[nodiscard]] std::string name() const override;

 private:
  rng::HyperExponential2 interarrival_;
};

/// Evenly spaced arrivals (CV = 0), for deterministic unit tests.
class DeterministicArrivals final : public ArrivalProcess {
 public:
  explicit DeterministicArrivals(double interval);

  [[nodiscard]] double next_interarrival(rng::Xoshiro256& gen) override;
  [[nodiscard]] double mean_interarrival() const override { return interval_; }
  [[nodiscard]] double cv() const override { return 0.0; }
  [[nodiscard]] std::string name() const override;

 private:
  double interval_;
};

/// Two-state Markov-modulated Poisson process: alternates between a
/// "calm" state with rate λ₁ and a "burst" state with rate λ₂; state
/// holding times are exponential. Produces correlated (non-renewal)
/// arrival streams for sensitivity studies beyond the paper's H2 model.
class Mmpp2Arrivals final : public ArrivalProcess {
 public:
  /// rate1/rate2: arrival rates in states 1/2; hold1/hold2: mean sojourn
  /// times in each state.
  Mmpp2Arrivals(double rate1, double rate2, double hold1, double hold2);

  [[nodiscard]] double next_interarrival(rng::Xoshiro256& gen) override;
  [[nodiscard]] double mean_interarrival() const override;
  [[nodiscard]] double cv() const override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

 private:
  double rate1_;
  double rate2_;
  double hold1_;
  double hold2_;
  int state_ = 0;
  double time_to_switch_ = 0.0;
  bool switch_armed_ = false;
};

}  // namespace hs::workload
