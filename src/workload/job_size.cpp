#include "workload/job_size.h"

#include "util/check.h"

namespace hs::workload {

JobSizeModel::JobSizeModel(std::unique_ptr<rng::Distribution> dist)
    : dist_(std::move(dist)) {
  HS_CHECK(dist_ != nullptr, "null size distribution");
}

double JobSizeModel::sample(rng::Xoshiro256& gen) const {
  return dist_->sample(gen);
}

JobSizeModel JobSizeModel::paper_default() {
  return bounded_pareto(1.0);
}

JobSizeModel JobSizeModel::bounded_pareto(double alpha, double lower,
                                          double upper) {
  return JobSizeModel(
      std::make_unique<rng::BoundedPareto>(lower, upper, alpha));
}

JobSizeModel JobSizeModel::exponential(double mean) {
  HS_CHECK(mean > 0.0, "mean job size must be positive: " << mean);
  return JobSizeModel(std::make_unique<rng::Exponential>(1.0 / mean));
}

JobSizeModel JobSizeModel::deterministic(double size) {
  return JobSizeModel(std::make_unique<rng::Deterministic>(size));
}

double paper_mean_job_size() {
  return rng::BoundedPareto(10.0, 21600.0, 1.0).mean();
}

}  // namespace hs::workload
