#include "sim/event_queue.h"

#include <utility>

#include "util/check.h"

namespace hs::sim {

EventQueue::EventQueue() : free_head_(0) {}

bool EventQueue::earlier(const HeapEntry& a, const HeapEntry& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.seq < b.seq;
}

EventHandle EventQueue::push(double time, Callback fn) {
  HS_CHECK(fn != nullptr, "null event callback");
  uint32_t slot;
  if (free_head_ != 0) {
    slot = free_head_ - 1;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(fn);
  s.generation |= 1u;  // mark live (odd)
  heap_.push_back(HeapEntry{time, next_seq_++, slot, s.generation});
  sift_up(heap_.size() - 1);
  ++live_count_;
  ++total_scheduled_;
  return EventHandle{slot, s.generation};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[handle.slot];
  if (s.generation != handle.generation || (s.generation & 1u) == 0) {
    return false;  // already fired, cancelled, or slot reused
  }
  // Free the slot; the heap entry becomes stale and is skipped lazily.
  s.callback = nullptr;
  s.generation += 1;  // even = free
  s.next_free = free_head_;
  free_head_ = handle.slot + 1;
  --live_count_;
  ++total_cancelled_;
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.generation == top.generation && (s.generation & 1u) != 0) {
      return;  // live
    }
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      sift_down(0);
    }
  }
}

double EventQueue::next_time() const {
  HS_CHECK(live_count_ > 0, "next_time() on empty queue");
  const HeapEntry& top = heap_.front();
  const Slot& s = slots_[top.slot];
  if (s.generation == top.generation && (s.generation & 1u) != 0) {
    return top.time;
  }
  // Slow path: find the earliest live entry by scanning. This happens only
  // when the queue head was cancelled and nothing was popped since.
  const HeapEntry* best = nullptr;
  for (const HeapEntry& entry : heap_) {
    const Slot& slot = slots_[entry.slot];
    if (slot.generation == entry.generation && (slot.generation & 1u) != 0) {
      if (best == nullptr || earlier(entry, *best)) {
        best = &entry;
      }
    }
  }
  HS_CHECK(best != nullptr, "live_count_ inconsistent with heap contents");
  return best->time;
}

std::pair<double, EventQueue::Callback> EventQueue::pop() {
  HS_CHECK(live_count_ > 0, "pop() on empty queue");
  drop_dead_top();
  HS_CHECK(!heap_.empty(), "heap empty despite live events");
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    sift_down(0);
  }
  Slot& s = slots_[top.slot];
  Callback fn = std::move(s.callback);
  s.callback = nullptr;
  s.generation += 1;  // even = free
  s.next_free = free_head_;
  free_head_ = top.slot + 1;
  --live_count_;
  return {top.time, std::move(fn)};
}

void EventQueue::sift_up(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < n && earlier(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < n && earlier(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace hs::sim
