#include "sim/event_queue.h"

namespace hs::sim {

// The per-event machinery (push/pop/cancel/reschedule and the sifts) is
// defined inline in the header so event loops can absorb it; only the
// cold setup paths live here.

EventQueue::EventQueue() : free_head_(0) {}

void EventQueue::reserve(size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  heap_index_.reserve(events);
}

}  // namespace hs::sim
