#include "sim/simulator.h"

#include <utility>

#include "util/check.h"

namespace hs::sim {

EventHandle Simulator::schedule_in(double delay, EventQueue::Callback fn) {
  HS_CHECK(delay >= 0.0, "cannot schedule in the past: delay=" << delay);
  return queue_.push(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(double time, EventQueue::Callback fn) {
  HS_CHECK(time >= now_, "cannot schedule in the past: time=" << time
                                                              << " now=" << now_);
  return queue_.push(time, std::move(fn));
}

void Simulator::run_until(double end_time) {
  HS_CHECK(end_time >= now_, "end_time " << end_time << " before now " << now_);
  while (!queue_.empty() && queue_.next_time() <= end_time) {
    auto [time, fn] = queue_.pop();
    now_ = time;
    ++events_fired_;
    fn();
  }
  if (now_ < end_time) {
    now_ = end_time;
  }
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    auto [time, fn] = queue_.pop();
    now_ = time;
    ++events_fired_;
    fn();
  }
}

}  // namespace hs::sim
