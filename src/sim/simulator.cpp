#include "sim/simulator.h"

#include "util/check.h"

namespace hs::sim {

EventHandle Simulator::schedule_in(double delay, EventTarget& target,
                                   uint32_t kind, const EventArgs& args) {
  HS_CHECK(delay >= 0.0, "cannot schedule in the past: delay=" << delay);
  return queue_.push(now_ + delay, target, kind, args);
}

EventHandle Simulator::schedule_at(double time, EventTarget& target,
                                   uint32_t kind, const EventArgs& args) {
  HS_CHECK(time >= now_, "cannot schedule in the past: time=" << time
                                                              << " now=" << now_);
  return queue_.push(time, target, kind, args);
}

EventHandle Simulator::schedule_in(double delay, EventTarget& target,
                                   uint32_t kind) {
  HS_CHECK(delay >= 0.0, "cannot schedule in the past: delay=" << delay);
  return queue_.push(now_ + delay, target, kind);
}

EventHandle Simulator::schedule_at(double time, EventTarget& target,
                                   uint32_t kind) {
  HS_CHECK(time >= now_, "cannot schedule in the past: time=" << time
                                                              << " now=" << now_);
  return queue_.push(time, target, kind);
}

bool Simulator::reschedule_in(EventHandle handle, double delay) {
  HS_CHECK(delay >= 0.0, "cannot reschedule into the past: delay=" << delay);
  return queue_.reschedule(handle, now_ + delay);
}

bool Simulator::reschedule_at(EventHandle handle, double time) {
  HS_CHECK(time >= now_, "cannot reschedule into the past: time="
                             << time << " now=" << now_);
  return queue_.reschedule(handle, time);
}

void Simulator::run_until(double end_time) {
  HS_CHECK(end_time >= now_, "end_time " << end_time << " before now " << now_);
  while (!queue_.empty() && queue_.next_time() <= end_time) {
    EventQueue::Fired event = queue_.pop();
    now_ = event.time;
    ++events_fired_;
    event.fire();
  }
  if (now_ < end_time) {
    now_ = end_time;
  }
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    EventQueue::Fired event = queue_.pop();
    now_ = event.time;
    ++events_fired_;
    event.fire();
  }
}

}  // namespace hs::sim
