// The discrete-event simulator clock and scheduling interface.
//
// Single-threaded, deterministic. Model components (servers, schedulers,
// workload sources) schedule typed events — or cold-path callbacks —
// at absolute or relative times; the simulator fires them in
// (time, scheduling order). This mirrors the simulator described in
// §4.1 of the paper.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "sim/event_queue.h"
#include "util/check.h"

namespace hs::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedule a typed event `delay >= 0` seconds from now (hot path,
  /// allocation-free).
  EventHandle schedule_in(double delay, EventTarget& target, uint32_t kind,
                          const EventArgs& args);

  /// Schedule a typed event at absolute time `time >= now()`.
  EventHandle schedule_at(double time, EventTarget& target, uint32_t kind,
                          const EventArgs& args);

  /// Argument-less typed event variants (timer ticks and the like):
  /// skip the argument-blob copy on the hottest scheduling path.
  EventHandle schedule_in(double delay, EventTarget& target, uint32_t kind);
  EventHandle schedule_at(double time, EventTarget& target, uint32_t kind);

  /// Schedule a callback `delay >= 0` seconds from now (cold-path
  /// fallback; small trivially-copyable captures stay allocation-free).
  template <typename F,
            std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>, int> = 0>
  EventHandle schedule_in(double delay, F&& fn) {
    HS_CHECK(delay >= 0.0, "cannot schedule in the past: delay=" << delay);
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule a callback at absolute time `time >= now()`.
  template <typename F,
            std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>, int> = 0>
  EventHandle schedule_at(double time, F&& fn) {
    HS_CHECK(time >= now_, "cannot schedule in the past: time="
                               << time << " now=" << now_);
    return queue_.push(time, std::forward<F>(fn));
  }

  /// Cancel a pending event; safe to call on already-fired handles.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Move a pending event to `delay >= 0` seconds from now, in place
  /// (same tie-break order as cancel + schedule_in). Returns false if
  /// the handle already fired or was cancelled; callers then schedule a
  /// fresh event.
  bool reschedule_in(EventHandle handle, double delay);

  /// Move a pending event to absolute time `time >= now()`, in place.
  bool reschedule_at(EventHandle handle, double time);

  /// Run until the event queue empties or the clock would pass `end_time`.
  /// Events scheduled exactly at end_time still fire. Afterwards the clock
  /// reads min(end_time, last event time ≥ previous now).
  void run_until(double end_time);

  /// Run until the queue is empty.
  void run_all();

  /// True if any live events are pending.
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }

  /// Pre-size the event queue for `events` concurrently-pending events.
  void reserve_events(size_t events) { queue_.reserve(events); }

  /// Number of events fired so far.
  [[nodiscard]] uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  uint64_t events_fired_ = 0;
};

}  // namespace hs::sim
