// The discrete-event simulator clock and scheduling interface.
//
// Single-threaded, deterministic. Model components (servers, schedulers,
// workload sources) schedule callbacks at absolute or relative times; the
// simulator fires them in (time, scheduling order). This mirrors the
// simulator described in §4.1 of the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"

namespace hs::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedule `fn` to run `delay >= 0` seconds from now.
  EventHandle schedule_in(double delay, EventQueue::Callback fn);

  /// Schedule `fn` at absolute time `time >= now()`.
  EventHandle schedule_at(double time, EventQueue::Callback fn);

  /// Cancel a pending event; safe to call on already-fired handles.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Run until the event queue empties or the clock would pass `end_time`.
  /// Events scheduled exactly at end_time still fire. Afterwards the clock
  /// reads min(end_time, last event time ≥ previous now).
  void run_until(double end_time);

  /// Run until the queue is empty.
  void run_all();

  /// True if any live events are pending.
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }

  /// Number of events fired so far.
  [[nodiscard]] uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  uint64_t events_fired_ = 0;
};

}  // namespace hs::sim
