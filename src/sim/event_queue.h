// Pending-event set for the discrete-event simulator.
//
// A 4-ary min-heap ordered by (time, sequence number). Sequence numbers
// make the order of simultaneous events deterministic (FIFO in
// scheduling order), which is essential for reproducible replications.
// Payloads are typed events (sim/event.h): a target + kind tag + inline
// argument blob, so steady-state scheduling performs zero heap
// allocations; an SBO callback fallback covers cold paths.
//
// Every live slot records its heap position, so cancel() removes its
// entry eagerly in O(log n) — no lazy-deleted dead entries accumulate —
// and reschedule() sifts the existing entry to its new time in place
// instead of the cancel+push dance the PS server performs on every
// arrival. A rescheduled event draws a fresh sequence number, so its
// tie-break rank among equal-time events is identical to what
// cancel+push would have produced (bit-identical replication order
// before/after the in-place optimization).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "util/check.h"

namespace hs::sim {

/// Opaque handle to a scheduled event. Default-constructed handles are
/// invalid. A handle stays unique even after its slot is reused because it
/// embeds a generation counter.
struct EventHandle {
  uint32_t slot = 0;
  uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return generation != 0; }
  friend bool operator==(const EventHandle&, const EventHandle&) = default;
};

/// Min-heap of typed events with deterministic tie-breaking, O(log n)
/// eager cancellation, and in-place reschedule. Not thread-safe; the
/// simulator is single-threaded by design (parallelism in experiments
/// comes from independent replications).
class EventQueue {
 public:
  EventQueue();

  /// A popped event, ready to fire. Typed events carry (target, kind,
  /// args); fallback events carry `callback`.
  struct Fired {
    double time = 0.0;
    EventTarget* target = nullptr;
    uint32_t kind = 0;
    EventArgs args;
    InlineFn callback;

    void fire() {
      if (target != nullptr) {
        target->on_event(kind, args);
      } else {
        callback();
      }
    }
  };

  /// Schedule a typed event at absolute time `time`. Times may repeat;
  /// equal times fire in scheduling order. Allocation-free once the
  /// queue's backing arrays have grown to the run's working depth.
  EventHandle push(double time, EventTarget& target, uint32_t kind,
                   const EventArgs& args);

  /// Argument-less typed event (server timers and the like): skips the
  /// argument-blob copy entirely. The target sees a default EventArgs
  /// whose bytes are unspecified.
  EventHandle push(double time, EventTarget& target, uint32_t kind);

  /// Schedule a callback at absolute time `time` (cold-path fallback;
  /// small trivially-copyable captures are still allocation-free).
  template <typename F,
            std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>, int> = 0>
  EventHandle push(double time, F&& fn) {
    const uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.target = nullptr;
    s.has_args = false;
    s.callback.emplace(std::forward<F>(fn));
    return push_entry(time, slot);
  }

  /// Cancel a pending event, removing its heap entry eagerly. Returns
  /// false if the event already fired or was cancelled (both are safe to
  /// attempt).
  bool cancel(EventHandle handle);

  /// Move a pending event to absolute time `new_time`, sifting the
  /// existing heap entry in place. The event keeps its payload and
  /// handle but draws a fresh sequence number (same tie-break order as
  /// cancel + push). Returns false — leaving the queue untouched — if
  /// the event already fired or was cancelled; callers then push anew.
  bool reschedule(EventHandle handle, double new_time);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] size_t size() const {
    return heap_.size() - static_cast<size_t>(hole_);
  }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] double next_time() const;

  /// Remove and return the earliest live event. Precondition: !empty().
  /// The slot is freed before returning, so the caller may fire() the
  /// result and let it schedule new events (including slot reuse).
  Fired pop();

  /// Pre-size the backing arrays for `events` concurrently-pending
  /// events so a run's steady state never grows them.
  void reserve(size_t events);

  /// Total push() calls over the queue's lifetime (throughput statistics).
  [[nodiscard]] uint64_t total_scheduled() const { return total_scheduled_; }
  /// Total events cancelled before firing.
  [[nodiscard]] uint64_t total_cancelled() const { return total_cancelled_; }
  /// Total in-place reschedules.
  [[nodiscard]] uint64_t total_rescheduled() const {
    return total_rescheduled_;
  }

 private:
  static constexpr size_t kArity = 4;
  /// Heap entries are 16 bytes — half the sift-path bandwidth of a
  /// three-field entry, and a full 4-child group spans one cache line.
  /// The (time, seq) heap order is encoded so one branchless 128-bit
  /// integer compare decides it:
  ///  - `tbits` is the event time's IEEE-754 bits, sign-flip-encoded so
  ///    unsigned integer order equals numeric order for every non-NaN
  ///    double (negative zero is canonicalized to +0 first so equal
  ///    times always encode equally). Sift comparisons on random times
  ///    mispredict constantly as floating-point branches; as integer
  ///    compares they cost a fixed few cycles.
  ///  - `key` packs (seq, slot): sequence numbers get the high 40 bits
  ///    (~10^12 events per queue, checked), slots the low 24 (16M
  ///    concurrently-pending events, checked). Sequence numbers are
  ///    unique, so comparing keys compares sequence numbers.
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint64_t kMaxSlots = uint64_t{1} << kSlotBits;
  static constexpr uint64_t kMaxSeq = uint64_t{1} << (64 - kSlotBits);

  struct HeapEntry {
    uint64_t tbits;  // sign-flip-encoded time bits
    uint64_t key;    // (seq << kSlotBits) | slot

    [[nodiscard]] uint32_t slot() const {
      return static_cast<uint32_t>(key & (kMaxSlots - 1));
    }
  };
  static_assert(sizeof(HeapEntry) == 16);

  /// Monotone bijection double -> uint64 (except -0.0, mapped onto +0.0
  /// so ties between them keep FIFO order): flip all bits of negatives,
  /// flip only the sign bit of non-negatives.
  [[nodiscard]] static uint64_t encode_time(double time);
  [[nodiscard]] static double decode_time(uint64_t tbits);

  /// Cold payload: only touched once at push and once at pop/cancel.
  /// Heap-position bookkeeping lives in the dense heap_index_ array
  /// instead, so sifting never drags these wide slots through the cache.
  struct Slot {
    EventTarget* target = nullptr;
    uint32_t kind = 0;
    uint32_t generation = 0;  // odd = live, even = free
    uint32_t next_free = 0;
    bool has_args = false;  // pop() skips the args copy for timer events
    EventArgs args;
    InlineFn callback;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b);
  /// Hide the (cold, wide) top slot's cache-miss latency behind the work
  /// between heap operations: on deep heaps the slot pop() will touch
  /// next is effectively random, and every heap mutation can change it.
  void prefetch_top_slot() const {
    if (!hole_ && !heap_.empty()) {
      __builtin_prefetch(&slots_[heap_[0].slot()], 1);
    }
  }
  /// Fill the root hole a pop() left behind (see `hole_`) by moving the
  /// bottom entry up and sifting it down — the classic pop completion,
  /// deferred in the hope that a push arrives first and fills the hole
  /// for free.
  void resolve_hole() {
    hole_ = false;
    const size_t last = heap_.size() - 1;
    if (last == 0) {
      heap_.pop_back();
      return;
    }
    heap_[0] = heap_[last];
    heap_.pop_back();
    sift_down(0);
  }
  /// Take a free slot (marking it live) or grow the slot array.
  uint32_t acquire_slot();
  /// Append a heap entry for `slot` at `time` and sift it into place.
  EventHandle push_entry(double time, uint32_t slot);
  /// Return `slot` to the free list (clearing its payload).
  void release_slot(uint32_t slot);
  /// Remove the heap entry at index `i`, restoring the heap property.
  void remove_at(size_t i);
  void sift_up(size_t i);
  void sift_down(size_t i);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> heap_index_;  // slot -> position in heap_ while live
  /// pop() removes the minimum but defers restructuring: it marks the
  /// root entry dead instead of moving the bottom entry up immediately.
  /// A push that follows (the dominant pattern: fired handlers schedule
  /// their next event) then writes its entry straight into the root and
  /// sifts down — one sift per push+pop pair instead of a sift-up and a
  /// sift-down. Every public entry point either resolves the hole first
  /// or is written to tolerate it; while the hole is live the dead root
  /// entry still carries the popped minimum's rank, so it compares as a
  /// floor and no sift from below can ever cross index 0. Pop ORDER is
  /// unaffected by any of this: ranks are strictly totally ordered, so
  /// every valid heap over the same live set pops identically.
  bool hole_ = false;
  uint32_t free_head_;  // index+1 into slots_, 0 = none
  uint64_t next_seq_ = 0;
  uint64_t total_scheduled_ = 0;
  uint64_t total_cancelled_ = 0;
  uint64_t total_rescheduled_ = 0;
};

// ---------------------------------------------------------------------------
// Inline implementation. These run once or more per simulated event —
// defining them here lets every translation unit inline the whole
// push/pop/sift machinery into its event loop.

inline uint64_t EventQueue::encode_time(double time) {
  const uint64_t bits = std::bit_cast<uint64_t>(time + 0.0);  // -0 -> +0
  const uint64_t sign = bits >> 63;
  return bits ^ (sign != 0 ? ~uint64_t{0} : uint64_t{1} << 63);
}

inline double EventQueue::decode_time(uint64_t tbits) {
  const uint64_t sign = tbits >> 63;
  return std::bit_cast<double>(tbits ^
                               (sign != 0 ? uint64_t{1} << 63 : ~uint64_t{0}));
}

inline bool EventQueue::earlier(const HeapEntry& a, const HeapEntry& b) {
  // One branchless 128-bit compare: (tbits, key) lexicographic order is
  // exactly the (time, seq) heap order (unique seqs break ties FIFO).
  const auto rank = [](const HeapEntry& e) {
    return (static_cast<unsigned __int128>(e.tbits) << 64) | e.key;
  };
  return rank(a) < rank(b);
}

inline uint32_t EventQueue::acquire_slot() {
  uint32_t slot;
  if (free_head_ != 0) {
    slot = free_head_ - 1;
    free_head_ = slots_[slot].next_free;
  } else {
    HS_CHECK(slots_.size() < kMaxSlots, "too many pending events");
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    heap_index_.push_back(0);
  }
  slots_[slot].generation |= 1u;  // mark live (odd)
  return slot;
}

inline void EventQueue::release_slot(uint32_t slot) {
  Slot& s = slots_[slot];
  // `target` is deliberately left stale: every acquire path overwrites
  // it before the slot can be observed again.
  s.callback.reset();
  s.generation += 1;  // even = free
  s.next_free = free_head_;
  free_head_ = slot + 1;
}

inline EventHandle EventQueue::push_entry(double time, uint32_t slot) {
  HS_CHECK(next_seq_ < kMaxSeq, "event sequence numbers exhausted");
  const HeapEntry entry{encode_time(time), (next_seq_++ << kSlotBits) | slot};
  if (hole_) {
    // The previous pop left the root dead: drop the new entry straight
    // in and sift down — no bottom-entry shuffle, no sift-up.
    hole_ = false;
    heap_[0] = entry;
    sift_down(0);
  } else {
    heap_.push_back(entry);
    sift_up(heap_.size() - 1);
  }
  prefetch_top_slot();
  ++total_scheduled_;
  return EventHandle{slot, slots_[slot].generation};
}

inline EventHandle EventQueue::push(double time, EventTarget& target,
                                    uint32_t kind, const EventArgs& args) {
  const uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.target = &target;
  s.kind = kind;
  s.has_args = true;
  s.args = args;
  return push_entry(time, slot);
}

inline EventHandle EventQueue::push(double time, EventTarget& target,
                                    uint32_t kind) {
  const uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.target = &target;
  s.kind = kind;
  s.has_args = false;
  return push_entry(time, slot);
}

inline bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[handle.slot];
  if (s.generation != handle.generation || (s.generation & 1u) == 0) {
    return false;  // already fired, cancelled, or slot reused
  }
  if (hole_) {
    resolve_hole();
  }
  const size_t i = heap_index_[handle.slot];
  release_slot(handle.slot);
  remove_at(i);
  prefetch_top_slot();
  ++total_cancelled_;
  return true;
}

inline bool EventQueue::reschedule(EventHandle handle, double new_time) {
  if (!handle.valid() || handle.slot >= slots_.size()) {
    return false;
  }
  const Slot& s = slots_[handle.slot];
  if (s.generation != handle.generation || (s.generation & 1u) == 0) {
    return false;  // already fired, cancelled, or slot reused
  }
  HS_CHECK(next_seq_ < kMaxSeq, "event sequence numbers exhausted");
  if (hole_) {
    // The new time may rank above the dead root entry, and a sift-up
    // must never cross into the hole — restore the heap first.
    resolve_hole();
  }
  const size_t i = heap_index_[handle.slot];
  heap_[i].tbits = encode_time(new_time);
  // A fresh sequence number keeps FIFO tie-breaking identical to
  // cancel + push: among equal-time events the rescheduled one is the
  // most recently scheduled.
  heap_[i].key = (next_seq_++ << kSlotBits) | handle.slot;
  if (i > 0 && earlier(heap_[i], heap_[(i - 1) / kArity])) {
    sift_up(i);
  } else {
    sift_down(i);
  }
  prefetch_top_slot();
  ++total_rescheduled_;
  return true;
}

inline double EventQueue::next_time() const {
  HS_CHECK(!empty(), "next_time() on empty queue");
  if (!hole_) {
    return decode_time(heap_.front().tbits);
  }
  // With the root dead the minimum is one of its children (the heap
  // below the root is intact); only the earliest *time* is needed, so
  // comparing tbits alone suffices.
  const size_t n = heap_.size();
  uint64_t best = heap_[1].tbits;
  for (size_t c = 2; c <= kArity && c < n; ++c) {
    best = std::min(best, heap_[c].tbits);
  }
  return decode_time(best);
}

inline EventQueue::Fired EventQueue::pop() {
  if (hole_) {
    resolve_hole();  // two pops in a row: finish the first one now
  }
  HS_CHECK(!heap_.empty(), "pop() on empty queue");
  const HeapEntry top = heap_.front();
  const uint32_t slot = top.slot();
  Slot& s = slots_[slot];
  Fired fired;
  fired.time = decode_time(top.tbits);
  fired.target = s.target;
  if (s.target != nullptr) {
    fired.kind = s.kind;
    if (s.has_args) {
      fired.args = s.args;
    }
  } else {
    fired.callback = std::move(s.callback);
  }
  release_slot(slot);
  if (heap_.size() == 1) {
    heap_.pop_back();
  } else {
    hole_ = true;  // defer restructuring; see `hole_`
  }
  prefetch_top_slot();
  return fired;
}

inline void EventQueue::remove_at(size_t i) {
  const size_t last = heap_.size() - 1;
  if (i != last) {
    heap_[i] = heap_[last];
    heap_.pop_back();
    // The moved entry came from the bottom but may still belong above
    // `i` when `i`'s subtree is unrelated to its old position.
    if (i > 0 && earlier(heap_[i], heap_[(i - 1) / kArity])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  } else {
    heap_.pop_back();
  }
}

inline void EventQueue::sift_up(size_t i) {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    heap_index_[heap_[i].slot()] = static_cast<uint32_t>(i);
    i = parent;
  }
  heap_[i] = entry;
  heap_index_[entry.slot()] = static_cast<uint32_t>(i);
}

inline void EventQueue::sift_down(size_t i) {
  const HeapEntry entry = heap_[i];
  const size_t n = heap_.size();
  // Once the heap outgrows the near caches, the next level's candidate
  // groups are prefetched while the current tournament runs; on small
  // heaps the extra instructions only cost.
  const bool deep = n > 4096;
  for (;;) {
    const size_t first = kArity * i + 1;
    if (first >= n) {
      break;
    }
    if (deep) {
      const size_t grandchild = kArity * first + 1;
      if (grandchild < n) {
        __builtin_prefetch(&heap_[grandchild]);
        __builtin_prefetch(&heap_[std::min(grandchild + 4, n - 1)]);
        __builtin_prefetch(&heap_[std::min(grandchild + 8, n - 1)]);
        __builtin_prefetch(&heap_[std::min(grandchild + 12, n - 1)]);
      }
    }
    size_t best = first;
    if (first + kArity <= n) {
      // Full 4-child group (one cache line of 16-byte entries): compare
      // without per-child bound checks.
      if (earlier(heap_[first + 1], heap_[best])) best = first + 1;
      if (earlier(heap_[first + 2], heap_[best])) best = first + 2;
      if (earlier(heap_[first + 3], heap_[best])) best = first + 3;
    } else {
      for (size_t c = first + 1; c < n; ++c) {
        if (earlier(heap_[c], heap_[best])) {
          best = c;
        }
      }
    }
    if (!earlier(heap_[best], entry)) {
      break;
    }
    heap_[i] = heap_[best];
    heap_index_[heap_[i].slot()] = static_cast<uint32_t>(i);
    i = best;
  }
  heap_[i] = entry;
  heap_index_[entry.slot()] = static_cast<uint32_t>(i);
}

}  // namespace hs::sim
