// Pending-event set for the discrete-event simulator.
//
// A binary min-heap ordered by (time, sequence number). Sequence numbers
// make the order of simultaneous events deterministic (FIFO in scheduling
// order), which is essential for reproducible replications. Cancellation
// is O(1) via generation-checked handles with lazy removal from the heap:
// the PS server reschedules its next-departure event on every arrival, so
// cancel must be cheap.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace hs::sim {

/// Opaque handle to a scheduled event. Default-constructed handles are
/// invalid. A handle stays unique even after its slot is reused because it
/// embeds a generation counter.
struct EventHandle {
  uint32_t slot = 0;
  uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return generation != 0; }
  friend bool operator==(const EventHandle&, const EventHandle&) = default;
};

/// Min-heap of (time, callback) with deterministic tie-breaking and O(1)
/// cancellation. Not thread-safe; the simulator is single-threaded by
/// design (parallelism in experiments comes from independent replications).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  /// Schedule `fn` at absolute time `time`. Times may repeat; equal times
  /// fire in scheduling order.
  EventHandle push(double time, Callback fn);

  /// Cancel a pending event. Returns false if the event already fired or
  /// was cancelled (both are safe to attempt).
  bool cancel(EventHandle handle);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] size_t size() const { return live_count_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] double next_time() const;

  /// Remove and return the earliest live event's (time, callback).
  /// Precondition: !empty().
  std::pair<double, Callback> pop();

  /// Total push() calls over the queue's lifetime (throughput statistics).
  [[nodiscard]] uint64_t total_scheduled() const { return total_scheduled_; }
  /// Total events cancelled before firing.
  [[nodiscard]] uint64_t total_cancelled() const { return total_cancelled_; }

 private:
  struct HeapEntry {
    double time;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };
  struct Slot {
    Callback callback;
    uint32_t generation = 0;  // odd = live, even = free
    uint32_t next_free = 0;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b);
  void sift_up(size_t i);
  void sift_down(size_t i);
  /// Pop dead (cancelled) entries off the heap top.
  void drop_dead_top();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_;  // index+1 into slots_, 0 = none
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  uint64_t total_scheduled_ = 0;
  uint64_t total_cancelled_ = 0;
};

}  // namespace hs::sim
