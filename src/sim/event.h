// Typed, allocation-free event payloads for the discrete-event engine.
//
// The hot simulation paths (server departures, arrivals, feedback
// messages) schedule millions of events per run. Storing a
// std::function per event would put an allocator round-trip and a
// virtual dispatch on every one of them; instead the engine stores a
// small trivially-copyable payload: a target object implementing
// EventTarget, an event-kind tag the target interprets, and a fixed-size
// inline argument blob (EventArgs). For cold paths — tests, benches,
// one-off hooks — InlineFn provides a small-buffer-optimized callback
// fallback that still avoids the heap for small trivially-copyable
// captures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace hs::sim {

/// Fixed-size, trivially-copyable argument blob carried by a typed
/// event. Pack/unpack round-trips any trivially-copyable T up to
/// kCapacity bytes (a queueing::Job, a machine index + speed pair, …).
struct EventArgs {
  static constexpr size_t kCapacity = 48;

  /// Bytes past the packed value's size are unspecified — unpack<T>()
  /// reads only sizeof(T), and nothing may compare blobs byte-wise.
  alignas(8) unsigned char bytes[kCapacity];

  template <typename T>
  [[nodiscard]] static EventArgs pack(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "event arguments must be trivially copyable");
    static_assert(sizeof(T) <= kCapacity, "event arguments too large");
    static_assert(alignof(T) <= 8, "event arguments over-aligned");
    EventArgs args;
    std::memcpy(args.bytes, &value, sizeof(T));
    return args;
  }

  template <typename T>
  [[nodiscard]] T unpack() const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "event arguments must be trivially copyable");
    static_assert(sizeof(T) <= kCapacity, "event arguments too large");
    T value;
    std::memcpy(&value, bytes, sizeof(T));
    return value;
  }
};

/// Receiver of typed events. A component that schedules events against
/// itself (a server's departure timer, the cluster simulation's arrival
/// and fault machinery) implements this once; `kind` disambiguates the
/// component's own event types and `args` carries the inline payload it
/// packed at scheduling time.
class EventTarget {
 public:
  virtual ~EventTarget() = default;

  virtual void on_event(uint32_t kind, const EventArgs& args) = 0;
};

/// Small-buffer-optimized move-only callable. Callables that are
/// trivially copyable, trivially destructible, and at most
/// kInlineCapacity bytes live inside the object (no heap); anything
/// larger or fancier (e.g. a std::function, a capture with a
/// destructor) falls back to a heap allocation — acceptable on cold
/// paths, which are the only intended users.
class InlineFn {
 public:
  static constexpr size_t kInlineCapacity = 48;

  InlineFn() = default;

  template <typename F,
            std::enable_if_t<std::is_invocable_v<std::decay_t<F>&> &&
                                 !std::is_same_v<std::decay_t<F>, InlineFn>,
                             int> = 0>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(fn));
  }

  /// Replace the held callable, constructing the new one in place (no
  /// temporary InlineFn, no move).
  template <typename F,
            std::enable_if_t<std::is_invocable_v<std::decay_t<F>&> &&
                                 !std::is_same_v<std::decay_t<F>, InlineFn>,
                             int> = 0>
  void emplace(F&& fn) {
    reset();
    init(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& other) noexcept { steal(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() {
    HS_CHECK(invoke_ != nullptr, "invoking an empty InlineFn");
    invoke_(payload());
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void reset() {
    if (destroy_ != nullptr) {
      destroy_(payload());
    }
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  template <typename F>
  void init(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* payload) { (*static_cast<Fn*>(payload))(); };
      // A captureless callable has no state worth moving; steal() skips
      // the buffer copy for it (copying zero bytes is a valid copy of an
      // empty trivially-copyable object).
      has_state_ = !std::is_empty_v<Fn>;
    } else {
      Fn* heap = new Fn(std::forward<F>(fn));
      std::memcpy(buf_, &heap, sizeof(heap));
      invoke_ = [](void* payload) { (*static_cast<Fn*>(payload))(); };
      destroy_ = [](void* payload) { delete static_cast<Fn*>(payload); };
      has_state_ = true;  // buf_ holds the heap pointer
    }
  }

  [[nodiscard]] void* payload() {
    if (destroy_ != nullptr) {
      void* heap = nullptr;
      std::memcpy(&heap, buf_, sizeof(heap));
      return heap;
    }
    return static_cast<void*>(buf_);
  }

  void steal(InlineFn& other) {
    if (other.invoke_ != nullptr) {
      if (other.has_state_) {
        std::memcpy(buf_, other.buf_, kInlineCapacity);
      }
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      has_state_ = other.has_state_;
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;  // non-null => buf_ holds a heap pointer
  bool has_state_ = false;  // false => buf_ is dead weight, moves skip it
};

}  // namespace hs::sim
