#include "overload/retry_budget.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hs::overload {

void RetryBudgetConfig::validate() const {
  if (!enabled) {
    return;
  }
  HS_CHECK(std::isfinite(tokens_per_admission) && tokens_per_admission >= 0.0,
           "retry budget tokens_per_admission must be finite and >= 0, got "
               << tokens_per_admission);
  HS_CHECK(std::isfinite(burst) && burst > 0.0,
           "retry budget burst must be finite and > 0, got " << burst);
  HS_CHECK(std::isfinite(initial_tokens) && initial_tokens >= 0.0,
           "retry budget initial_tokens must be finite and >= 0, got "
               << initial_tokens);
}

RetryBudget::RetryBudget(const RetryBudgetConfig& config) : config_(config) {
  config_.validate();
  reset();
}

void RetryBudget::on_admission() {
  tokens_ = std::min(config_.burst, tokens_ + config_.tokens_per_admission);
}

bool RetryBudget::try_spend() {
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  ++funded_;
  return true;
}

void RetryBudget::reset() {
  tokens_ = std::min(config_.initial_tokens, config_.burst);
  denied_ = 0;
  funded_ = 0;
}

}  // namespace hs::overload
