// Admission control / load shedding at the cluster boundary.
//
// Bounded queues (queueing/server.h) protect a machine *after* routing;
// admission control refuses work *before* it is dispatched, which is
// both cheaper (no retry traffic for a job the cluster cannot serve)
// and honest (the client learns immediately). A shed is terminal: the
// job is counted and traced (kShed) but never dispatched or retried —
// see docs/FAULT_MODEL.md §6 for the full taxonomy.
//
// Policies:
//  * AlwaysAdmit    — the null policy (and the default).
//  * QueueBoundShed — shed when the routed-to machine already holds at
//                     least `queue_bound` jobs. A cruder, model-free
//                     guard than bounded queues: it fires on the
//                     *believed* queue depth at dispatch time.
//  * DeadlineShed   — shed (with configurable probability) when the
//                     estimated response time on the routed-to machine
//                     exceeds an SLO budget. The estimate blends the
//                     §2.3 analytic per-machine prediction at the
//                     configured utilization (alloc/analytic_model.h,
//                     the same closed form Algorithm 1's square-root
//                     rule optimizes) with an instantaneous queue-depth
//                     term, so it tracks both the planned operating
//                     point and the current backlog.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace hs::overload {

struct OverloadConfig;

/// Everything a policy may consult about the job it is judging. The
/// dispatcher has already routed the job — `machine` is where it would
/// run if admitted.
struct AdmissionContext {
  double now = 0.0;           // current simulation time
  size_t machine = 0;         // routed-to machine index
  size_t queue_length = 0;    // jobs resident on that machine right now
  size_t queue_capacity = 0;  // its configured bound (0 = unbounded)
  double speed = 1.0;         // its current speed
  double job_size = 0.0;      // base-speed seconds of work
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// True admits the job; false sheds it. `gen` is the overload decision
  /// stream — only probabilistic policies draw from it.
  [[nodiscard]] virtual bool admit(const AdmissionContext& ctx,
                                   rng::Xoshiro256& gen) = 0;

  /// Restore the initial state (start of a new replication).
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Admit everything (the null policy).
class AlwaysAdmit final : public AdmissionPolicy {
 public:
  [[nodiscard]] bool admit(const AdmissionContext& ctx,
                           rng::Xoshiro256& gen) override;
  [[nodiscard]] std::string name() const override { return "always-admit"; }
};

/// Shed when the target machine's resident-job count is >= queue_bound.
class QueueBoundShed final : public AdmissionPolicy {
 public:
  explicit QueueBoundShed(size_t queue_bound);

  [[nodiscard]] bool admit(const AdmissionContext& ctx,
                           rng::Xoshiro256& gen) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] size_t queue_bound() const { return queue_bound_; }

 private:
  size_t queue_bound_;
};

/// Shed with a fixed probability, independent of system state — the
/// brownout primitive. On its own it is a blunt instrument; the serving
/// layer (serving/serving_dispatcher.h) engages it only while the
/// healthy-backend fraction is below a configured floor, turning it
/// into "shed p% of traffic while degraded", the classic brownout
/// contract: bounded load on the survivors at the cost of explicit,
/// client-visible refusals.
class ProbabilisticShed final : public AdmissionPolicy {
 public:
  explicit ProbabilisticShed(double shed_probability);

  [[nodiscard]] bool admit(const AdmissionContext& ctx,
                           rng::Xoshiro256& gen) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double shed_probability() const { return shed_probability_; }

 private:
  double shed_probability_;
};

/// Shed with probability `shed_probability` when the estimated response
/// time of the job on its routed-to machine exceeds `slo_budget`.
class DeadlineShed final : public AdmissionPolicy {
 public:
  /// `speeds`/`rho`/`mean_job_size` parameterize the analytic baseline:
  /// the per-machine §2.3 prediction under the optimized allocation at
  /// min(rho, 0.9) — an SLO-feasibility floor at a sustainable reference
  /// utilization; beyond it the instantaneous term carries the overload
  /// signal (see kMaxBaselineRho in admission.cpp).
  DeadlineShed(double slo_budget, double shed_probability,
               const std::vector<double>& speeds, double rho,
               double mean_job_size);

  [[nodiscard]] bool admit(const AdmissionContext& ctx,
                           rng::Xoshiro256& gen) override;
  [[nodiscard]] std::string name() const override;

  /// The current response-time estimate for a job of `job_size` joining
  /// machine `machine` behind `queue_length` residents (exposed for
  /// tests).
  [[nodiscard]] double estimate(size_t machine, size_t queue_length,
                                double job_size, double speed) const;

 private:
  double slo_budget_;
  double shed_probability_;
  double mean_job_size_;
  std::vector<double> baseline_;  // analytic T̄ᵢ at the planned load
};

/// Build the policy an OverloadConfig asks for. `speeds`, `rho` and
/// `mean_job_size` describe the cluster (used only by DeadlineShed).
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const OverloadConfig& config, const std::vector<double>& speeds,
    double rho, double mean_job_size);

}  // namespace hs::overload
