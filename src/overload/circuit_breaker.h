// Circuit-breaking dispatching decorator.
//
// Sibling of dispatch::FaultAwareDispatcher: where that decorator
// consumes the fault layer's explicit crash/recovery reports, this one
// infers machine health from dispatch *outcomes*. A machine that keeps
// rejecting (bounded queue full) or losing (crashed but not yet
// reported) jobs trips its breaker Open after `trip_threshold`
// consecutive failures and is routed around, using the same two
// composition modes as the fault decorator — native masking for
// Least-Load-style dispatchers, survivor-reallocation Rebuilder for the
// static paper policies. After `cooldown` simulated seconds an Open
// breaker Half-Opens: the machine rejoins the routing set, and
// `probe_successes` consecutive accepted jobs close the breaker while a
// single failure re-opens it (restarting the cooldown).
//
//            trip_threshold consecutive failures
//   CLOSED ────────────────────────────────────────► OPEN
//     ▲                                                │ cooldown elapsed
//     │ probe_successes consecutive accepts            ▼
//     └──────────────────────────────────────────── HALF-OPEN
//                         (one failure: back to OPEN, cooldown restarts)
//
// When every breaker is open the decorator keeps the previous routing —
// jobs fail fast and feed the half-open probes (mirrors the fault
// decorator's all-down behavior). core::make_circuit_breaker_dispatcher
// wires the rebuilder for the paper's policies; docs/FAULT_MODEL.md §6
// discusses the semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dispatch/dispatcher.h"
#include "obs/trace.h"

namespace hs::overload {

struct CircuitBreakerConfig {
  /// Consecutive rejections/losses on one machine that trip it Open.
  size_t trip_threshold = 5;
  /// Simulated seconds an Open breaker waits before Half-Opening.
  double cooldown = 30.0;
  /// Consecutive Half-Open accepts that Close the breaker.
  size_t probe_successes = 3;

  /// Throws util::CheckError on out-of-range fields.
  void validate() const;
};

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* breaker_state_name(BreakerState state);

class CircuitBreakerDispatcher final : public dispatch::Dispatcher {
 public:
  /// Builds a fresh dispatcher routing only to machines with
  /// available[i] == true (same contract as FaultAwareDispatcher's
  /// Rebuilder; with every breaker open it is not called).
  using Rebuilder = std::function<std::unique_ptr<dispatch::Dispatcher>(
      const std::vector<bool>&)>;

  /// Computes survivor allocation fractions into its output buffer (same
  /// contract as FaultAwareDispatcher::Reweighter): when supplied, trips
  /// and closes re-weight the existing inner dispatcher in place via
  /// Dispatcher::rebuild_fractions() — allocation-free — with the
  /// Rebuilder as fallback.
  using Reweighter =
      std::function<void(const std::vector<bool>&, std::vector<double>&)>;

  /// Native-masking mode: `inner` must accept set_available_mask.
  CircuitBreakerDispatcher(std::unique_ptr<dispatch::Dispatcher> inner,
                           const CircuitBreakerConfig& config);

  /// Rebuild mode: `rebuilder` produces replacements as breakers trip
  /// and close. The optional `reweighter` upgrades those transitions to
  /// in-place, allocation-free reweights of the existing inner.
  CircuitBreakerDispatcher(std::unique_ptr<dispatch::Dispatcher> inner,
                           const CircuitBreakerConfig& config,
                           Rebuilder rebuilder, Reweighter reweighter = {});

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  [[nodiscard]] size_t pick_sized(rng::Xoshiro256& gen,
                                  double size) override;
  [[nodiscard]] size_t pick_hedge(rng::Xoshiro256& gen, double size,
                                  size_t exclude) override;
  [[nodiscard]] bool uses_size() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] size_t machine_count() const override;

  void on_arrival(double now) override;
  void on_departure_report(size_t machine) override;
  void on_departure_report(size_t machine, double now) override;
  void on_departure_report(size_t machine, double now, double work) override;
  void on_load_report(size_t machine, uint64_t queue_length) override;
  [[nodiscard]] bool uses_feedback() const override;

  void on_dispatch_result(size_t machine, bool accepted, double now) override;
  [[nodiscard]] bool uses_overload_feedback() const override { return true; }

  /// Also treat fault-layer crash reports as instant trips (a crashed
  /// machine should not wait for trip_threshold rejected probes), and
  /// recovery reports as instant Half-Opens (skip the remaining
  /// cooldown; the probe jobs confirm the recovery).
  void on_machine_state_report(size_t machine, bool up) override;
  [[nodiscard]] bool uses_fault_feedback() const override {
    return inner_->uses_fault_feedback();
  }

  /// Native masking on behalf of an *outer* decorator (a fault layer or
  /// hedging wrapper stacked on top): the outer mask is ANDed with the
  /// breaker's own routable set before being pushed down, so
  /// Hedged/FaultAware/CircuitBreaker compose in any order. Always
  /// returns true — the decorator absorbs the mask even when the inner
  /// dispatcher needs the rebuilder.
  bool set_available_mask(const std::vector<bool>& available) override;

  /// Attach a trace sink for kBreakerOpen/kBreakerHalfOpen/kBreakerClose
  /// records (null detaches).
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Checkpoint: per-machine breaker records (state, failure/probe
  /// counters, reopen deadline) plus the reopen schedule, then the inner
  /// dispatcher's state — a stack serializes outside-in.
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

  [[nodiscard]] BreakerState state(size_t machine) const;
  [[nodiscard]] size_t open_count() const;
  /// Breaker trips (Closed/Half-Open → Open) since construction/reset.
  [[nodiscard]] uint64_t trips() const { return trips_; }
  [[nodiscard]] uint64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] const dispatch::Dispatcher& inner() const { return *inner_; }
  /// Mutable access for decorator-aware wiring; stable only in native-
  /// masking mode (rebuild mode replaces the inner dispatcher).
  [[nodiscard]] dispatch::Dispatcher& inner() { return *inner_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    size_t consecutive_failures = 0;
    size_t probe_successes = 0;
    double reopen_at = 0.0;  // when an Open breaker may Half-Open
  };

  void init(std::unique_ptr<dispatch::Dispatcher> inner);
  void trip(size_t machine, double now);
  void transition(size_t machine, BreakerState to, double now);
  void apply_mask();
  void maybe_half_open(double now);

  std::unique_ptr<dispatch::Dispatcher> inner_;
  CircuitBreakerConfig config_;
  Rebuilder rebuilder_;
  Reweighter reweighter_;
  std::vector<Breaker> breakers_;
  std::vector<bool> routable_;    // state != kOpen
  std::vector<bool> outer_mask_;  // restriction imposed from above
  std::vector<bool> effective_;   // scratch: routable_ AND outer_mask_
  std::vector<double> fractions_scratch_;  // reweighter output buffer
  obs::TraceSink* trace_ = nullptr;
  // Earliest reopen_at over Open breakers (+inf when none are open):
  // lets on_arrival() skip the scan in the common all-closed case.
  double next_reopen_time_ = 0.0;
  double last_now_ = 0.0;  // most recent time seen through any hook
  bool native_mask_ = false;
  uint64_t trips_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace hs::overload
