#include "overload/circuit_breaker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace hs::overload {

namespace {
constexpr double kNoReopen = std::numeric_limits<double>::infinity();
}  // namespace

void CircuitBreakerConfig::validate() const {
  HS_CHECK(trip_threshold >= 1,
           "breaker trip_threshold must be >= 1, got " << trip_threshold);
  HS_CHECK(std::isfinite(cooldown) && cooldown > 0.0,
           "breaker cooldown must be finite and > 0, got " << cooldown);
  HS_CHECK(probe_successes >= 1,
           "breaker probe_successes must be >= 1, got " << probe_successes);
}

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:   return "closed";
    case BreakerState::kOpen:     return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreakerDispatcher::CircuitBreakerDispatcher(
    std::unique_ptr<dispatch::Dispatcher> inner,
    const CircuitBreakerConfig& config)
    : CircuitBreakerDispatcher(std::move(inner), config, Rebuilder{}) {}

CircuitBreakerDispatcher::CircuitBreakerDispatcher(
    std::unique_ptr<dispatch::Dispatcher> inner,
    const CircuitBreakerConfig& config, Rebuilder rebuilder,
    Reweighter reweighter)
    : config_(config),
      rebuilder_(std::move(rebuilder)),
      reweighter_(std::move(reweighter)) {
  config_.validate();
  init(std::move(inner));
}

void CircuitBreakerDispatcher::init(
    std::unique_ptr<dispatch::Dispatcher> inner) {
  inner_ = std::move(inner);
  HS_CHECK(inner_ != nullptr, "circuit breaker needs a dispatcher");
  breakers_.assign(inner_->machine_count(), Breaker{});
  routable_.assign(inner_->machine_count(), true);
  outer_mask_.assign(inner_->machine_count(), true);
  next_reopen_time_ = kNoReopen;
  native_mask_ = inner_->set_available_mask(routable_);
  HS_CHECK(native_mask_ || rebuilder_,
           "inner dispatcher \""
               << inner_->name()
               << "\" does not support masking and no rebuilder was given");
}

size_t CircuitBreakerDispatcher::pick(rng::Xoshiro256& gen) {
  return inner_->pick(gen);
}

size_t CircuitBreakerDispatcher::pick_sized(rng::Xoshiro256& gen,
                                            double size) {
  return inner_->pick_sized(gen, size);
}

size_t CircuitBreakerDispatcher::pick_hedge(rng::Xoshiro256& gen, double size,
                                            size_t exclude) {
  return inner_->pick_hedge(gen, size, exclude);
}

bool CircuitBreakerDispatcher::uses_size() const {
  return inner_->uses_size();
}

void CircuitBreakerDispatcher::reset() {
  breakers_.assign(breakers_.size(), Breaker{});
  routable_.assign(routable_.size(), true);
  outer_mask_.assign(outer_mask_.size(), true);
  next_reopen_time_ = kNoReopen;
  last_now_ = 0.0;
  trips_ = 0;
  rebuilds_ = 0;
  if (native_mask_) {
    inner_->reset();
    inner_->set_available_mask(routable_);
    return;
  }
  if (reweighter_) {
    // In-place restore: full-availability fractions into the existing
    // inner dispatcher (rebuild_fractions resets its routing state).
    reweighter_(routable_, fractions_scratch_);
    inner_->reset();
    if (inner_->rebuild_fractions(fractions_scratch_)) {
      return;
    }
  }
  inner_ = rebuilder_(routable_);
  HS_CHECK(inner_ != nullptr, "rebuilder returned null dispatcher");
}

std::string CircuitBreakerDispatcher::name() const {
  return "circuit-breaker(" + inner_->name() + ")";
}

size_t CircuitBreakerDispatcher::machine_count() const {
  return breakers_.size();
}

void CircuitBreakerDispatcher::on_arrival(double now) {
  last_now_ = now;
  // Cooldown expiry check: one compare in the common no-open-breaker
  // case, a scan only when some breaker is actually due.
  if (now >= next_reopen_time_) {
    maybe_half_open(now);
  }
  inner_->on_arrival(now);
}

void CircuitBreakerDispatcher::maybe_half_open(double now) {
  next_reopen_time_ = kNoReopen;
  bool changed = false;
  for (size_t i = 0; i < breakers_.size(); ++i) {
    Breaker& b = breakers_[i];
    if (b.state != BreakerState::kOpen) {
      continue;
    }
    if (now >= b.reopen_at) {
      transition(i, BreakerState::kHalfOpen, now);
      changed = true;
    } else {
      next_reopen_time_ = std::min(next_reopen_time_, b.reopen_at);
    }
  }
  if (changed) {
    apply_mask();
  }
}

void CircuitBreakerDispatcher::on_departure_report(size_t machine) {
  inner_->on_departure_report(machine);
}

void CircuitBreakerDispatcher::on_departure_report(size_t machine,
                                                   double now) {
  inner_->on_departure_report(machine, now);
}

void CircuitBreakerDispatcher::on_departure_report(size_t machine, double now,
                                                   double work) {
  inner_->on_departure_report(machine, now, work);
}

void CircuitBreakerDispatcher::on_load_report(size_t machine,
                                              uint64_t queue_length) {
  inner_->on_load_report(machine, queue_length);
}

bool CircuitBreakerDispatcher::uses_feedback() const {
  return inner_->uses_feedback();
}

void CircuitBreakerDispatcher::on_dispatch_result(size_t machine,
                                                  bool accepted, double now) {
  HS_CHECK(machine < breakers_.size(),
           "machine index out of range: " << machine);
  last_now_ = now;
  Breaker& b = breakers_[machine];
  if (accepted) {
    b.consecutive_failures = 0;
    if (b.state == BreakerState::kHalfOpen) {
      if (++b.probe_successes >= config_.probe_successes) {
        transition(machine, BreakerState::kClosed, now);
        apply_mask();
      }
    }
    return;
  }
  switch (b.state) {
    case BreakerState::kClosed:
      if (++b.consecutive_failures >= config_.trip_threshold) {
        trip(machine, now);
      }
      break;
    case BreakerState::kHalfOpen:
      // One failed probe re-opens immediately (cooldown restarts).
      trip(machine, now);
      break;
    case BreakerState::kOpen:
      // A straggler outcome from before the trip — already open.
      break;
  }
}

void CircuitBreakerDispatcher::on_machine_state_report(size_t machine,
                                                       bool up) {
  // Forward to the inner dispatcher (Least-Load under a breaker may
  // still want crash reports); an explicit crash report also trips the
  // breaker instantly — no need to burn trip_threshold probe jobs on a
  // machine known to be down.
  inner_->on_machine_state_report(machine, up);
  HS_CHECK(machine < breakers_.size(),
           "machine index out of range: " << machine);
  if (!up && breakers_[machine].state == BreakerState::kClosed) {
    // The report interface carries no timestamp; the last time observed
    // through on_arrival/on_dispatch_result is current enough (reports
    // are delivered between arrivals, never before the first one).
    trip(machine, last_now_);
  } else if (up && breakers_[machine].state == BreakerState::kOpen) {
    // An explicit recovery report is as authoritative as the crash
    // report that tripped the breaker: skip the remaining cooldown and
    // Half-Open immediately — the machine rejoins routing and the probe
    // jobs confirm (or refute) the recovery. Keeps the routing mask
    // identical whichever side of a FaultAwareDispatcher this decorator
    // sits on.
    transition(machine, BreakerState::kHalfOpen, last_now_);
    apply_mask();
  }
}

void CircuitBreakerDispatcher::trip(size_t machine, double now) {
  transition(machine, BreakerState::kOpen, now);
  ++trips_;
  apply_mask();
}

void CircuitBreakerDispatcher::transition(size_t machine, BreakerState to,
                                          double now) {
  Breaker& b = breakers_[machine];
  b.state = to;
  b.consecutive_failures = 0;
  b.probe_successes = 0;
  switch (to) {
    case BreakerState::kOpen:
      b.reopen_at = now + config_.cooldown;
      routable_[machine] = false;
      next_reopen_time_ = std::min(next_reopen_time_, b.reopen_at);
      if (trace_ != nullptr) [[unlikely]] {
        trace_->record(now, obs::TraceEventKind::kBreakerOpen,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(machine));
      }
      break;
    case BreakerState::kHalfOpen:
      routable_[machine] = true;
      if (trace_ != nullptr) [[unlikely]] {
        trace_->record(now, obs::TraceEventKind::kBreakerHalfOpen,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(machine));
      }
      break;
    case BreakerState::kClosed:
      routable_[machine] = true;
      if (trace_ != nullptr) [[unlikely]] {
        trace_->record(now, obs::TraceEventKind::kBreakerClose,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(machine));
      }
      break;
  }
}

bool CircuitBreakerDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  HS_CHECK(available.size() == routable_.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << routable_.size());
  outer_mask_ = available;
  apply_mask();
  return true;
}

void CircuitBreakerDispatcher::apply_mask() {
  effective_.assign(routable_.size(), false);
  size_t usable = 0;
  for (size_t i = 0; i < routable_.size(); ++i) {
    effective_[i] = routable_[i] && outer_mask_[i];
    usable += effective_[i] ? 1 : 0;
  }
  if (native_mask_) {
    inner_->set_available_mask(effective_);
    return;
  }
  if (usable == 0) {
    // Every breaker is open (or masked from above): nothing useful to
    // rebuild over. Keep the previous routing — jobs fail fast and their
    // outcomes drive the half-open probes (mirrors
    // FaultAwareDispatcher's all-down case).
    return;
  }
  if (reweighter_) {
    // Allocation-free path: survivor fractions into the scratch buffer,
    // then re-weight the live inner dispatcher in place.
    reweighter_(effective_, fractions_scratch_);
    if (inner_->rebuild_fractions(fractions_scratch_)) {
      ++rebuilds_;
      return;
    }
  }
  inner_ = rebuilder_(effective_);
  HS_CHECK(inner_ != nullptr, "rebuilder returned null dispatcher");
  ++rebuilds_;
}

BreakerState CircuitBreakerDispatcher::state(size_t machine) const {
  HS_CHECK(machine < breakers_.size(),
           "machine index out of range: " << machine);
  return breakers_[machine].state;
}

size_t CircuitBreakerDispatcher::open_count() const {
  return static_cast<size_t>(
      std::count_if(breakers_.begin(), breakers_.end(), [](const Breaker& b) {
        return b.state == BreakerState::kOpen;
      }));
}

size_t CircuitBreakerDispatcher::save_state(std::vector<double>& out) const {
  const size_t n = breakers_.size();
  out.reserve(out.size() + 4 * n + 2);
  for (const Breaker& b : breakers_) {
    out.push_back(static_cast<double>(b.state));
    out.push_back(static_cast<double>(b.consecutive_failures));
    out.push_back(static_cast<double>(b.probe_successes));
    out.push_back(b.reopen_at);  // +inf while not Open — round-trips fine
  }
  out.push_back(next_reopen_time_);
  out.push_back(last_now_);
  return 4 * n + 2 + inner_->save_state(out);
}

size_t CircuitBreakerDispatcher::restore_state(std::span<const double> state) {
  const size_t n = breakers_.size();
  const size_t own = 4 * n + 2;
  if (state.size() < own) {
    return 0;
  }
  // Validate before mutating: counters are exact small integers, states
  // are enum codes, deadlines are non-NaN (infinity is the idle value).
  for (size_t i = 0; i < n; ++i) {
    const double s = state[4 * i];
    const double cf = state[4 * i + 1];
    const double ps = state[4 * i + 2];
    const double at = state[4 * i + 3];
    if (!(s == 0.0 || s == 1.0 || s == 2.0) ||
        !(cf >= 0.0 && cf <= 0x1p53) || cf != std::floor(cf) ||
        !(ps >= 0.0 && ps <= 0x1p53) || ps != std::floor(ps) ||
        std::isnan(at)) {
      return 0;
    }
  }
  if (std::isnan(state[4 * n]) || !std::isfinite(state[4 * n + 1])) {
    return 0;
  }
  for (size_t i = 0; i < n; ++i) {
    Breaker& b = breakers_[i];
    b.state = static_cast<BreakerState>(
        static_cast<uint8_t>(state[4 * i]));
    b.consecutive_failures = static_cast<size_t>(state[4 * i + 1]);
    b.probe_successes = static_cast<size_t>(state[4 * i + 2]);
    b.reopen_at = state[4 * i + 3];
    routable_[i] = b.state != BreakerState::kOpen;
  }
  next_reopen_time_ = state[4 * n];
  last_now_ = state[4 * n + 1];
  // Re-derive the routing mask (rebuild mode may swap the inner
  // dispatcher here) *before* restoring inner state, so the restored
  // state lands in the dispatcher that will serve the next pick.
  apply_mask();
  return own + inner_->restore_state(state.subspan(own));
}

}  // namespace hs::overload
