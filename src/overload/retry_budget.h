// Cluster-wide retry budget (token bucket).
//
// PR 1's retry policy bounds attempts *per job*; under a correlated
// failure (half the cluster crashes, or every survivor's queue is full)
// per-job bounds still let the aggregate retry stream grow to a large
// multiple of the admitted traffic — a retry storm that keeps the
// survivors saturated long after the original overload subsides. The
// retry budget caps the *ratio*: each first-attempt admission earns a
// fraction of a token (e.g. 0.2 → retries ≤ 20% of admitted traffic),
// each retry spends a whole one, and a retry with no token available is
// dropped immediately (traced as kRetryBudgetExhausted) instead of
// re-queued. The bucket is capped so a long quiet period cannot bank an
// unbounded burst.
#pragma once

#include <cstdint>

namespace hs::overload {

struct RetryBudgetConfig {
  /// Enables the budget. Off, retries are limited only by the per-job
  /// retry policy (PR 1 semantics).
  bool enabled = false;
  /// Tokens earned per admitted first-attempt job. 0.2 caps sustained
  /// retry traffic at 20% of admitted traffic.
  double tokens_per_admission = 0.2;
  /// Bucket capacity: the largest retry burst the budget will fund.
  double burst = 10.0;
  /// Tokens in the bucket at t = 0 (clamped to `burst`).
  double initial_tokens = 10.0;

  /// Throws util::CheckError on out-of-range fields.
  void validate() const;
};

/// Deterministic token bucket; no clock, no RNG — driven purely by the
/// admission/retry call sequence, so it cannot perturb replay.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetConfig& config);

  /// An admitted first-attempt job: earn tokens_per_admission.
  void on_admission();

  /// Ask to fund one retry. Returns true (and spends a token) if the
  /// budget allows it; false means the caller must drop the job.
  [[nodiscard]] bool try_spend();

  /// Restore the initial bucket (start of a new replication).
  void reset();

  [[nodiscard]] double tokens() const { return tokens_; }
  /// Retries denied since construction/reset.
  [[nodiscard]] uint64_t denied() const { return denied_; }
  /// Retries funded since construction/reset.
  [[nodiscard]] uint64_t funded() const { return funded_; }

 private:
  RetryBudgetConfig config_;
  double tokens_ = 0.0;
  uint64_t denied_ = 0;
  uint64_t funded_ = 0;
};

}  // namespace hs::overload
