// Overload-protection configuration.
//
// The paper's M/M/1-PS model assumes infinite queues and ρ < 1, so every
// policy survives any traffic. A production cluster does not get that
// luxury: traffic spikes push ρ past 1, a crash concentrates load on the
// survivors, and retry traffic can amplify an outage into a storm. This
// module configures the opt-in overload-protection layer:
//
//  * bounded per-machine queues — a full machine *rejects* an arriving
//    job instead of enqueueing it (queueing/server.h);
//  * admission control at the cluster boundary — an AdmissionPolicy may
//    *shed* a job before it is dispatched (overload/admission.h);
//  * a cluster-wide retry budget — a token bucket that caps retry
//    traffic as a fraction of admitted traffic (overload/retry_budget.h);
//  * circuit-breaking dispatch — a decorator that trips persistently
//    rejecting machines out of the routing set (overload/circuit_breaker.h).
//
// Default-constructed, everything is off and a simulation behaves
// bit-identically to builds that predate the overload layer (no extra
// RNG draws, no extra events) — pinned by the golden determinism tests.
// docs/FAULT_MODEL.md §6 specifies the semantics and the
// rejection/loss/shed/drop taxonomy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "overload/retry_budget.h"

namespace hs::overload {

/// Which admission policy guards the cluster boundary.
enum class AdmissionKind : uint8_t {
  kAlwaysAdmit,    // no shedding (the default)
  kQueueBoundShed, // shed when the target machine's queue is too deep
  kDeadlineShed,   // shed when the estimated response time busts an SLO
};

[[nodiscard]] const char* admission_kind_name(AdmissionKind kind);

/// Opt-in overload protection for one simulation run. Plain data, safe
/// to copy across the experiment runner's worker threads; the run
/// materializes the policy objects itself.
struct OverloadConfig {
  /// Per-machine resident-job bound (running + queued). 0 = unbounded.
  /// Applies to every machine unless `machine_capacity` overrides it.
  size_t queue_capacity = 0;
  /// Optional per-machine capacities (empty = use `queue_capacity` for
  /// all). When non-empty it must have one entry >= 1 per machine.
  std::vector<size_t> machine_capacity;

  /// Cluster-boundary load shedding.
  AdmissionKind admission = AdmissionKind::kAlwaysAdmit;
  /// kQueueBoundShed: shed when the target's queue length is >= this.
  size_t admission_queue_bound = 64;
  /// kDeadlineShed: the SLO budget in seconds of response time.
  double slo_budget = 0.0;
  /// kDeadlineShed: probability of shedding a job whose estimated
  /// response time exceeds the budget (1 = always shed).
  double shed_probability = 1.0;

  /// Cluster-wide retry budget (disabled by default).
  RetryBudgetConfig retry_budget;

  /// True if any overload feature is on. When false the simulation takes
  /// no overload branches, draws no overload RNG, and replays
  /// bit-identically to pre-overload builds.
  [[nodiscard]] bool enabled() const;

  /// Throws util::CheckError on out-of-range fields.
  void validate(size_t machine_count) const;
};

}  // namespace hs::overload
