#include "overload/config.h"

#include <cmath>

#include "util/check.h"

namespace hs::overload {

const char* admission_kind_name(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kAlwaysAdmit:    return "always-admit";
    case AdmissionKind::kQueueBoundShed: return "queue-bound-shed";
    case AdmissionKind::kDeadlineShed:   return "deadline-shed";
  }
  return "unknown";
}

bool OverloadConfig::enabled() const {
  return queue_capacity != 0 || !machine_capacity.empty() ||
         admission != AdmissionKind::kAlwaysAdmit || retry_budget.enabled;
}

void OverloadConfig::validate(size_t machine_count) const {
  HS_CHECK(machine_capacity.empty() ||
               machine_capacity.size() == machine_count,
           "machine_capacity must be empty or one entry per machine: got "
               << machine_capacity.size() << " entries for " << machine_count
               << " machines");
  for (size_t i = 0; i < machine_capacity.size(); ++i) {
    HS_CHECK(machine_capacity[i] >= 1, "machine_capacity[" << i
                                           << "] must be >= 1 (use an empty "
                                              "vector for unbounded), got "
                                           << machine_capacity[i]);
  }
  switch (admission) {
    case AdmissionKind::kAlwaysAdmit:
      break;
    case AdmissionKind::kQueueBoundShed:
      HS_CHECK(admission_queue_bound >= 1,
               "admission_queue_bound must be >= 1, got "
                   << admission_queue_bound);
      break;
    case AdmissionKind::kDeadlineShed:
      HS_CHECK(std::isfinite(slo_budget) && slo_budget > 0.0,
               "slo_budget must be finite and > 0, got " << slo_budget);
      HS_CHECK(shed_probability > 0.0 && shed_probability <= 1.0,
               "shed_probability out of (0,1]: " << shed_probability);
      break;
  }
  retry_budget.validate();
}

}  // namespace hs::overload
