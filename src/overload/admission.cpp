#include "overload/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "alloc/analytic_model.h"
#include "alloc/optimized.h"
#include "overload/config.h"
#include "util/check.h"

namespace hs::overload {

namespace {
// DeadlineShed's analytic baseline needs a stable operating point; when
// the actual traffic is at or beyond saturation the §2.3 closed form has
// no finite answer (and arbitrarily close to saturation it predicts
// arbitrarily large times, which would floor every estimate above any
// usable SLO). The baseline is therefore an SLO-feasibility floor
// evaluated at this sustainable reference utilization: a machine whose
// predicted steady-state response already exceeds the budget at 90%
// load can never meet the deadline under overload. The instantaneous
// queue-depth term carries the actual overload signal.
constexpr double kMaxBaselineRho = 0.9;
}  // namespace

bool AlwaysAdmit::admit(const AdmissionContext& ctx, rng::Xoshiro256& gen) {
  (void)ctx;
  (void)gen;
  return true;
}

QueueBoundShed::QueueBoundShed(size_t queue_bound)
    : queue_bound_(queue_bound) {
  HS_CHECK(queue_bound_ >= 1,
           "queue-bound shed threshold must be >= 1, got " << queue_bound_);
}

bool QueueBoundShed::admit(const AdmissionContext& ctx,
                           rng::Xoshiro256& gen) {
  (void)gen;
  return ctx.queue_length < queue_bound_;
}

std::string QueueBoundShed::name() const {
  return "queue-bound-shed(" + std::to_string(queue_bound_) + ")";
}

ProbabilisticShed::ProbabilisticShed(double shed_probability)
    : shed_probability_(shed_probability) {
  HS_CHECK(shed_probability_ > 0.0 && shed_probability_ <= 1.0,
           "probabilistic-shed probability out of (0,1]: "
               << shed_probability_);
}

bool ProbabilisticShed::admit(const AdmissionContext& ctx,
                              rng::Xoshiro256& gen) {
  (void)ctx;
  return gen.next_double() >= shed_probability_;
}

std::string ProbabilisticShed::name() const {
  return "probabilistic-shed(" + std::to_string(shed_probability_) + ")";
}

DeadlineShed::DeadlineShed(double slo_budget, double shed_probability,
                           const std::vector<double>& speeds, double rho,
                           double mean_job_size)
    : slo_budget_(slo_budget),
      shed_probability_(shed_probability),
      mean_job_size_(mean_job_size) {
  HS_CHECK(std::isfinite(slo_budget_) && slo_budget_ > 0.0,
           "deadline-shed SLO budget must be finite and > 0, got "
               << slo_budget_);
  HS_CHECK(shed_probability_ > 0.0 && shed_probability_ <= 1.0,
           "deadline-shed probability out of (0,1]: " << shed_probability_);
  HS_CHECK(std::isfinite(mean_job_size_) && mean_job_size_ > 0.0,
           "mean job size must be finite and > 0, got " << mean_job_size_);

  // Analytic baseline: the per-machine §2.3 prediction under the
  // square-root-rule allocation at the planned (stable) operating point.
  alloc::SystemParameters params;
  params.speeds = speeds;
  params.rho = std::min(rho, kMaxBaselineRho);
  params.mean_job_size = mean_job_size;
  params.validate();
  const alloc::OptimizedAllocation scheme;
  const alloc::Allocation alloc = scheme.compute(speeds, params.rho);
  baseline_ = alloc::predicted_machine_response_times(params, alloc);
  // Machines Algorithm 1 excludes report 0; give them the bare service
  // time of a mean job so an estimate there is never "free".
  for (size_t i = 0; i < baseline_.size(); ++i) {
    if (baseline_[i] <= 0.0) {
      baseline_[i] = mean_job_size / speeds[i];
    }
  }
}

double DeadlineShed::estimate(size_t machine, size_t queue_length,
                              double job_size, double speed) const {
  HS_CHECK(machine < baseline_.size(),
           "machine index out of range: " << machine);
  if (speed <= 0.0) {
    // A stopped machine cannot finish anything — infinite estimate.
    return std::numeric_limits<double>::infinity();
  }
  // Instantaneous term: under processor sharing the new job shares the
  // CPU with queue_length residents, so it needs roughly
  // (q+1)·size/speed seconds; approximate the residents' sizes by the
  // mean. The planned-load analytic T̄ᵢ is the floor — the machine never
  // looks faster than its steady-state operating point.
  const double backlog =
      (static_cast<double>(queue_length) * mean_job_size_ + job_size) /
      speed;
  return std::max(baseline_[machine], backlog);
}

bool DeadlineShed::admit(const AdmissionContext& ctx, rng::Xoshiro256& gen) {
  const double est =
      estimate(ctx.machine, ctx.queue_length, ctx.job_size, ctx.speed);
  if (est <= slo_budget_) {
    return true;
  }
  if (shed_probability_ >= 1.0) {
    return false;
  }
  return gen.next_double() >= shed_probability_;
}

std::string DeadlineShed::name() const {
  return "deadline-shed(slo=" + std::to_string(slo_budget_) + ")";
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const OverloadConfig& config, const std::vector<double>& speeds,
    double rho, double mean_job_size) {
  switch (config.admission) {
    case AdmissionKind::kAlwaysAdmit:
      return std::make_unique<AlwaysAdmit>();
    case AdmissionKind::kQueueBoundShed:
      return std::make_unique<QueueBoundShed>(config.admission_queue_bound);
    case AdmissionKind::kDeadlineShed:
      return std::make_unique<DeadlineShed>(config.slo_budget,
                                            config.shed_probability, speeds,
                                            rho, mean_job_size);
  }
  HS_CHECK(false, "unknown admission kind");
  return nullptr;  // unreachable
}

}  // namespace hs::overload
