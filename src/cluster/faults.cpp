#include "cluster/faults.h"

#include <algorithm>
#include <cmath>

#include "cluster/choice.h"
#include "rng/rng.h"
#include "util/check.h"

namespace hs::cluster {

namespace {

struct Interval {
  double start;
  double end;  // exclusive; may exceed the horizon
};

double exponential(rng::Xoshiro256& gen, double mean) {
  return -mean * std::log(gen.next_double_open0());
}

/// Draw one up/down duration, letting the hook override it. An override
/// of zero (or garbage) is clamped so the timeline loop always advances.
double duration_draw(rng::Xoshiro256& gen, double mean, ChoiceHook* hook,
                     ChoiceKind kind, size_t machine) {
  double value = exponential(gen, mean);
  if (hook != nullptr) {
    value = hook->on_double(kind, static_cast<uint32_t>(machine), value);
    constexpr double kMinDuration = 1.0e-6;
    if (!std::isfinite(value) || value < kMinDuration) {
      value = kMinDuration;
    }
  }
  return value;
}

}  // namespace

void RetryPolicy::validate() const {
  HS_CHECK(max_attempts >= 1,
           "retry max_attempts must be >= 1, got " << max_attempts);
  HS_CHECK(std::isfinite(backoff_initial) && backoff_initial >= 0.0,
           "retry backoff_initial must be finite and >= 0, got "
               << backoff_initial);
  HS_CHECK(std::isfinite(backoff_factor) && backoff_factor >= 1.0,
           "retry backoff_factor must be finite and >= 1, got "
               << backoff_factor);
  HS_CHECK(std::isfinite(job_timeout) && job_timeout >= 0.0,
           "retry job_timeout must be finite and >= 0, got " << job_timeout);
}

bool FaultConfig::enabled() const {
  if (!outages.empty()) {
    return true;
  }
  for (const MachineProcess& process : processes) {
    if (process.mtbf > 0.0) {
      return true;
    }
  }
  return false;
}

void FaultConfig::validate(size_t machine_count, double sim_time) const {
  if (!processes.empty()) {
    HS_CHECK(processes.size() == machine_count,
             "fault processes size " << processes.size()
                                     << " != machine count " << machine_count);
  }
  for (size_t i = 0; i < processes.size(); ++i) {
    const MachineProcess& process = processes[i];
    HS_CHECK(std::isfinite(process.mtbf) && process.mtbf >= 0.0,
             "fault processes[" << i << "]: mtbf must be finite and >= 0, got "
                                << process.mtbf);
    if (process.mtbf > 0.0) {
      HS_CHECK(std::isfinite(process.mttr) && process.mttr > 0.0,
               "fault processes[" << i << "]: mttr must be finite and > 0 "
                                  << "when mtbf is set, got " << process.mttr);
    }
  }
  for (size_t i = 0; i < outages.size(); ++i) {
    const Outage& outage = outages[i];
    HS_CHECK(outage.machine < machine_count,
             "fault outages[" << i << "]: machine " << outage.machine
                              << " out of range [0, " << machine_count << ")");
    HS_CHECK(std::isfinite(outage.start) && outage.start >= 0.0,
             "fault outages[" << i << "]: start must be finite and >= 0, got "
                              << outage.start);
    HS_CHECK(outage.start <= sim_time,
             "fault outages[" << i << "]: start " << outage.start
                              << " beyond sim_time " << sim_time);
    HS_CHECK(std::isfinite(outage.duration) && outage.duration > 0.0,
             "fault outages[" << i
                              << "]: duration must be finite and > 0, got "
                              << outage.duration);
  }
  retry.validate();
}

std::vector<FaultEvent> build_fault_timeline(const FaultConfig& config,
                                             size_t machine_count,
                                             double horizon, uint64_t seed,
                                             ChoiceHook* hook) {
  config.validate(machine_count, horizon);
  std::vector<FaultEvent> timeline;
  for (size_t m = 0; m < machine_count; ++m) {
    std::vector<Interval> down;
    if (m < config.processes.size() && config.processes[m].mtbf > 0.0) {
      rng::Xoshiro256 gen(
          rng::derive_seed(seed, 0, rng::Stream::kFaultTimeline, m));
      double t = 0.0;
      for (;;) {
        const double crash =
            t + duration_draw(gen, config.processes[m].mtbf, hook,
                              ChoiceKind::kFaultUptime, m);
        if (crash >= horizon) {
          break;
        }
        const double recover =
            crash + duration_draw(gen, config.processes[m].mttr, hook,
                                  ChoiceKind::kFaultDowntime, m);
        down.push_back({crash, recover});
        t = recover;
        if (t >= horizon) {
          break;
        }
      }
    }
    for (const FaultConfig::Outage& outage : config.outages) {
      if (outage.machine == m) {
        down.push_back({outage.start, outage.start + outage.duration});
      }
    }
    if (down.empty()) {
      continue;
    }
    // Merge overlapping/adjacent down-intervals so crash/recovery strictly
    // alternate per machine even when scripted outages overlap stochastic
    // ones.
    std::sort(down.begin(), down.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    std::vector<Interval> merged;
    for (const Interval& interval : down) {
      if (!merged.empty() && interval.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, interval.end);
      } else {
        merged.push_back(interval);
      }
    }
    for (const Interval& interval : merged) {
      if (interval.start > horizon) {
        continue;
      }
      timeline.push_back({interval.start, m, /*up=*/false});
      if (interval.end <= horizon) {
        timeline.push_back({interval.end, m, /*up=*/true});
      }
    }
  }
  // Sort by time; ties resolved by (machine, crash-before-recovery) for a
  // deterministic event order independent of construction order.
  std::sort(timeline.begin(), timeline.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              if (a.machine != b.machine) {
                return a.machine < b.machine;
              }
              return a.up < b.up;
            });
  return timeline;
}

std::vector<double> downtime_from_timeline(
    const std::vector<FaultEvent>& timeline, size_t machine_count,
    double horizon) {
  std::vector<double> downtime(machine_count, 0.0);
  std::vector<double> down_since(machine_count, -1.0);
  for (const FaultEvent& event : timeline) {
    HS_CHECK(event.machine < machine_count,
             "fault event machine out of range: " << event.machine);
    if (!event.up) {
      down_since[event.machine] = event.time;
    } else if (down_since[event.machine] >= 0.0) {
      downtime[event.machine] += event.time - down_since[event.machine];
      down_since[event.machine] = -1.0;
    }
  }
  for (size_t m = 0; m < machine_count; ++m) {
    if (down_since[m] >= 0.0) {
      downtime[m] += horizon - down_since[m];
    }
  }
  return downtime;
}

}  // namespace hs::cluster
