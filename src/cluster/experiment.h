// Replicated experiments: the paper's measurement methodology.
//
// Each plotted data point is the average of independent runs with
// different random number streams (§4.1 uses 10). The runner executes
// replications (in parallel threads — each run owns its simulator) and
// aggregates the three metrics with Student-t confidence intervals.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/sim.h"
#include "stats/confidence.h"
#include "uncertainty/config.h"

namespace hs::cluster {

/// Builds a fresh dispatcher. Called once per worker thread (possibly
/// concurrently), so the factory must be thread-safe; the dispatchers it
/// returns need not be. Each worker reuses its dispatcher across the
/// replications it runs — run_simulation resets it first, so a reused
/// dispatcher replicates bit-identically to a fresh one.
using DispatcherFactory =
    std::function<std::unique_ptr<dispatch::Dispatcher>()>;

/// Opt-in per-replication observability for an experiment. Each
/// replication records into its own sink and registry (replications run
/// on parallel threads, so they cannot share one) and writes its files
/// as soon as it finishes; replication_path() derives the per-rep file
/// names. Disabled when both paths are empty.
struct ExperimentObservability {
  std::string trace_path;    // Chrome trace JSON; empty = tracing off
  std::string metrics_path;  // time-series CSV; empty = sampling off
  double sample_interval = 60.0;  // simulated seconds between samples
  size_t trace_capacity = obs::TraceSink::kDefaultCapacity;

  [[nodiscard]] bool enabled() const {
    return !trace_path.empty() || !metrics_path.empty();
  }
};

/// "out.json" -> "out.rep3.json" for replication 3 (unchanged when the
/// experiment has a single replication).
[[nodiscard]] std::string replication_path(const std::string& path,
                                           unsigned replication,
                                           unsigned replications);

struct ExperimentConfig {
  SimulationConfig simulation;
  unsigned replications = 5;  // paper: 10
  uint64_t base_seed = 20000829;  // replication r runs with a derived seed
  unsigned max_threads = 0;  // 0 = hardware concurrency
  ExperimentObservability observability;

  /// Throws util::CheckError on out-of-range fields (including the
  /// embedded SimulationConfig's). run_experiment calls this first.
  void validate() const;

  /// The operator's believed (ŝᵢ, ρ̂, λ-factor) under
  /// simulation.uncertainty's believed-vs-true split: applies the
  /// configured bias and the seed-derived noise stream (component 7 of
  /// base_seed) to the true speeds and utilization. With no error
  /// configured this returns the truth verbatim. Build adaptive or
  /// mis-parameterized static dispatchers from the result so the whole
  /// experiment shares one belief draw (the factory has no
  /// per-replication seed — beliefs are an operator artifact, not a
  /// per-run random variable).
  [[nodiscard]] uncertainty::BelievedParams believed_params() const;
};

struct ExperimentResult {
  stats::ConfidenceInterval response_time;
  stats::ConfidenceInterval response_ratio;
  stats::ConfidenceInterval fairness;
  /// Measured completions per second of measurement window (availability
  /// headline with fault injection on; see SimulationResult::goodput).
  stats::ConfidenceInterval goodput;
  /// Machine job fractions averaged across replications.
  std::vector<double> mean_machine_fractions;
  /// Machine utilizations averaged across replications.
  std::vector<double> mean_machine_utilizations;
  std::vector<SimulationResult> replications;
  uint64_t total_jobs = 0;
  /// Fault-injection totals summed across replications (zero without
  /// faults).
  uint64_t total_jobs_lost = 0;
  uint64_t total_jobs_retried = 0;
  uint64_t total_jobs_dropped = 0;
  /// Overload totals summed across replications (zero without overload
  /// protection; see SimulationResult's overload metrics).
  uint64_t total_jobs_rejected = 0;
  uint64_t total_jobs_shed = 0;
  uint64_t total_retry_budget_denied = 0;
  /// Adaptation totals summed across replications (zero without a
  /// GovernedAdaptiveDispatcher on scheduler 0).
  uint64_t total_realloc_commits = 0;
  uint64_t total_realloc_rejected = 0;
  uint64_t total_governor_freezes = 0;
  /// Network totals summed across replications (zero without the network
  /// layer; see SimulationResult's network metrics).
  uint64_t total_msgs_lost = 0;
  uint64_t total_msgs_duplicated = 0;
  uint64_t total_hedges_issued = 0;
  uint64_t total_hedges_won = 0;
  uint64_t total_hedges_cancelled = 0;
  uint64_t total_suspicions = 0;
  /// Per-replication response-time p99 aggregated like the headline
  /// metrics (degenerate all-zero interval when the network layer never
  /// enabled tail collection).
  stats::ConfidenceInterval response_time_p99;
};

/// Run `config.replications` independent simulations and aggregate.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config,
                                              const DispatcherFactory& factory);

}  // namespace hs::cluster
