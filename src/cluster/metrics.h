// Per-run metric collection.
//
// The three performance metrics of §4.1:
//  * mean response time      — average completion-minus-arrival time,
//  * mean response ratio     — average of (response time / job size),
//  * fairness                — standard deviation of the response ratio
//                              (smaller is better).
// Plus per-machine accounting used by Table 1 (fraction of jobs per
// machine) and by diagnostics (utilizations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "queueing/job.h"
#include "stats/percentile.h"
#include "stats/running_stats.h"

namespace hs::cluster {

class MetricsCollector {
 public:
  explicit MetricsCollector(size_t machine_count);

  /// Record a dispatched job (before it runs). Counted only when
  /// `in_measurement_window` — jobs arriving during warm-up are excluded
  /// from all statistics, exactly as the paper discards the first quarter
  /// of each run.
  void on_dispatch(size_t machine, bool in_measurement_window);

  /// Record a completed job.
  void on_completion(const queueing::Completion& completion,
                     bool in_measurement_window);

  [[nodiscard]] const stats::RunningStats& response_time() const {
    return response_time_;
  }
  [[nodiscard]] const stats::RunningStats& response_ratio() const {
    return response_ratio_;
  }
  /// Fairness = σ of the response ratio over measured jobs (§4.1).
  [[nodiscard]] double fairness() const {
    return response_ratio_.population_stddev();
  }

  [[nodiscard]] uint64_t measured_dispatches() const;
  [[nodiscard]] uint64_t measured_completions() const {
    return response_time_.count();
  }
  /// Dispatched-job counts per machine within the measurement window.
  [[nodiscard]] const std::vector<uint64_t>& machine_dispatches() const {
    return machine_dispatches_;
  }
  /// Fraction of measured jobs dispatched to each machine (Table 1's
  /// "percentage" column divided by 100).
  [[nodiscard]] std::vector<double> machine_fractions() const;

  /// Tail percentiles of the response ratio (beyond the paper's metrics).
  [[nodiscard]] double response_ratio_p95() const { return p95_.value(); }
  [[nodiscard]] double response_ratio_p99() const { return p99_.value(); }

  /// Opt-in response-TIME p99 (the hedging acceptance metric — tail
  /// latency in seconds, not the dimensionless ratio above). Off by
  /// default: an unconditional extra P² update on the completion path
  /// would eat into the interleaved-A/B budget of the layers-off
  /// configurations, so the network/hedging wiring enables it only when
  /// that layer is active. Reads 0 when never enabled.
  void enable_response_time_p99() { rt_p99_.emplace(0.99); }
  [[nodiscard]] double response_time_p99() const {
    return rt_p99_ ? rt_p99_->value() : 0.0;
  }

  // ---- Fault-injection accounting (cluster/faults.h) ----
  // `measured` refers to the job's original arrival falling inside the
  // measurement window, matching the dispatch/completion convention.

  /// A dispatch attempt was lost to a machine crash.
  void on_job_lost(bool measured);
  /// A lost job was re-dispatched (counted at the retry decision).
  void on_job_retried(bool measured);
  /// A lost job was abandoned (attempts exhausted or deadline exceeded).
  void on_job_dropped(bool measured);

  [[nodiscard]] uint64_t jobs_lost() const { return jobs_lost_; }
  [[nodiscard]] uint64_t jobs_retried() const { return jobs_retried_; }
  [[nodiscard]] uint64_t jobs_dropped() const { return jobs_dropped_; }

  // ---- Overload accounting (src/overload/, docs/FAULT_MODEL.md §6) ----

  /// A dispatch attempt bounced off a full bounded queue (the job then
  /// goes through the retry path — not terminal).
  void on_job_rejected(bool measured);
  /// Admission control refused the job before dispatch (terminal).
  void on_job_shed(bool measured);
  /// The cluster retry budget was empty: a would-be retry became a drop
  /// (also counted by on_job_dropped).
  void on_retry_budget_denied(bool measured);

  [[nodiscard]] uint64_t jobs_rejected() const { return jobs_rejected_; }
  [[nodiscard]] uint64_t jobs_shed() const { return jobs_shed_; }
  [[nodiscard]] uint64_t retry_budget_denied() const {
    return retry_budget_denied_;
  }

  /// Mean response time of measured jobs grouped by retry count: index r
  /// holds the mean over jobs that completed on dispatch attempt r
  /// (0 = never lost). Sized to the largest observed retry count + 1
  /// (empty if nothing completed); counts above kAttemptBuckets-1 share
  /// the last bucket.
  [[nodiscard]] std::vector<double> mean_response_by_attempts() const;
  static constexpr size_t kAttemptBuckets = 8;

 private:
  stats::RunningStats response_time_;
  stats::RunningStats response_ratio_;
  std::vector<uint64_t> machine_dispatches_;
  stats::P2Quantile p95_{0.95};
  stats::P2Quantile p99_{0.99};
  std::optional<stats::P2Quantile> rt_p99_;
  uint64_t jobs_lost_ = 0;
  uint64_t jobs_retried_ = 0;
  uint64_t jobs_dropped_ = 0;
  uint64_t jobs_rejected_ = 0;
  uint64_t jobs_shed_ = 0;
  uint64_t retry_budget_denied_ = 0;
  std::vector<stats::RunningStats> response_by_attempt_;
};

}  // namespace hs::cluster
