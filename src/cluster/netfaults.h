// Network fault model: lossy, slow, duplicating, partitionable links
// between the dispatcher and its machines.
//
// The paper's dispatcher talks to machines over an implicitly perfect
// network — the only communication artifact in the base model is the
// §4.2 detection-interval + message-delay pair on Least-Load feedback
// reports. This module makes the network a first-class, opt-in fault
// domain:
//
//  * LinkFaults — per-direction message loss, extra exponential delay
//    with a heavy-tail knob (hyperexponential: with probability
//    tail_prob the delay mean is multiplied by tail_factor), and
//    duplication. Independent i.i.d. delays reorder messages naturally.
//  * Partition — a timed window during which the dispatcher is cut off
//    from a subset of machines: dispatch messages, reports and
//    heartbeats to/from those machines are dropped at send time. The
//    machines keep running; a partition loses messages, not jobs.
//  * HeartbeatConfig — a phi-accrual-style failure detector replacing
//    PR 1's fixed detection delay: machines emit heartbeats every
//    `interval` seconds over the report link, and the dispatcher
//    suspects a machine once the time since the last heartbeat exceeds
//    phi_threshold · mean-interarrival · ln 10 (the exponential
//    approximation of the accrual score φ(t) = elapsed/(mean·ln 10)).
//    Suspicion and recovery feed FaultAwareDispatcher and the circuit
//    breaker through the same on_machine_state_report channel as crash
//    reports — a false suspicion during a partition trips breakers and
//    reroutes, it does not evict jobs.
//
// Request hedging (the tail-tolerance counterpart) is configured on the
// dispatcher side — see dispatch/hedged.h; it rides the same
// asynchronous dispatch path this module turns on.
//
// All randomness is drawn from the dedicated rng::Stream::kNetwork
// stream and partitions are pre-expanded into a deterministic timeline
// (like faults.h), so runs stay bit-identical and replayable.
// Default-constructed, everything is off: the simulation takes no
// network branches, draws no network RNG, and replays bit-identically
// to pre-network builds. docs/FAULT_MODEL.md §8 specifies the
// semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace hs::cluster {

/// Fault model of one link direction (dispatcher→machine or
/// machine→dispatcher). Applied per message copy.
struct LinkFaults {
  /// Probability a message copy is silently lost in transit.
  double loss = 0.0;
  /// Mean of the extra exponential transit delay (0 = no extra delay;
  /// the §4.2 base feedback delay still applies to reports).
  double delay_mean = 0.0;
  /// Probability a delay draw comes from the heavy tail instead of the
  /// body (hyperexponential two-phase mixture).
  double tail_prob = 0.0;
  /// Tail mean multiplier: tail draws use mean delay_mean · tail_factor.
  double tail_factor = 1.0;
  /// Probability a delivered message arrives twice (the duplicate takes
  /// an independent delay draw; receivers dedup by job id).
  double duplicate = 0.0;

  [[nodiscard]] bool enabled() const {
    return loss > 0.0 || delay_mean > 0.0 || duplicate > 0.0;
  }

  /// One extra-transit-delay draw. Zero (and zero RNG draws) when
  /// delay_mean is 0, so loss-only links perturb no delay stream.
  [[nodiscard]] double sample_delay(rng::Xoshiro256& gen) const;

  /// Throws util::CheckError on out-of-range fields; `link` names the
  /// offending field in messages ("network dispatch_link: ...").
  void validate(const char* link) const;
};

/// A timed partition window: during [start, start + duration) the
/// dispatcher cannot exchange messages with any machine in `machines`.
struct Partition {
  double start = 0.0;
  double duration = 0.0;
  std::vector<size_t> machines;
};

/// Heartbeat-based failure detection (phi-accrual style, exponential
/// approximation). Off when interval == 0; when on, it replaces the
/// out-of-band crash/recovery state reports of PR 1 as the fault signal
/// feeding fault-aware dispatchers and circuit breakers.
struct HeartbeatConfig {
  /// Seconds between heartbeats from each machine (0 = detector off).
  double interval = 0.0;
  /// Suspicion threshold φ*: suspect once φ(t) = elapsed/(mean·ln 10)
  /// reaches this value, i.e. after threshold·mean·ln 10 of silence.
  /// φ* = k means "the accrual score says the miss probability is
  /// 10⁻ᵏ assuming exponential interarrivals".
  double phi_threshold = 8.0;
  /// EWMA weight of the newest heartbeat interarrival in the mean
  /// estimate (higher adapts faster, suspects more eagerly after
  /// jitter).
  double ewma_alpha = 0.1;

  [[nodiscard]] bool enabled() const { return interval > 0.0; }
  void validate() const;

  /// Silence duration at which φ reaches phi_threshold for a given
  /// mean interarrival estimate.
  [[nodiscard]] double timeout(double mean_interarrival) const;
};

/// Everything the network layer may inject into one run. Plain data,
/// safe to copy across the experiment runner's worker threads.
struct NetworkConfig {
  /// §4.2 feedback model (moved here from SimulationConfig so report
  /// delay and dispatch delay come from one place): a feedback message
  /// is seen U(0, detection_interval) + Exp(message_delay_mean) after
  /// the event it reports. The defaults preserve the paper's values
  /// bit-for-bit.
  double detection_interval = 1.0;
  double message_delay_mean = 0.05;

  /// dispatcher → machine link (dispatch messages, hedge copies).
  LinkFaults dispatch_link;
  /// machine → dispatcher link (departure reports, heartbeats).
  LinkFaults report_link;
  /// Timed partitions isolating the dispatcher from machine subsets.
  std::vector<Partition> partitions;
  /// Heartbeat failure detection.
  HeartbeatConfig heartbeat;

  /// True if any network feature is on. When false the simulation takes
  /// no network branches, draws no network RNG, and replays
  /// bit-identically to pre-network builds (pinned by the golden
  /// determinism tests).
  [[nodiscard]] bool enabled() const {
    return dispatch_link.enabled() || report_link.enabled() ||
           !partitions.empty() || heartbeat.enabled();
  }

  /// Throws util::CheckError on out-of-range fields, machine indices
  /// >= machine_count, or overlapping partition windows on the same
  /// machine.
  void validate(size_t machine_count, double sim_time) const;
};

/// One edge of the pre-derived partition timeline.
struct PartitionEvent {
  double time = 0.0;
  size_t machine = 0;
  bool isolated = false;  // true = window opens, false = it closes
};

/// Expand the partition windows into a flat per-machine edge timeline,
/// sorted by (time, machine, close-before-open). A pure function of the
/// config, so the timeline is deterministic and replayable; windows may
/// extend past the horizon (the drain still fires their close edges).
[[nodiscard]] std::vector<PartitionEvent> build_partition_timeline(
    const std::vector<Partition>& partitions);

}  // namespace hs::cluster
