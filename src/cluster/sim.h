// One simulated run of the full system of Figure 1.
//
// A central scheduler receives the overall job stream and routes each
// job to one of n machines using a Dispatcher; machines run jobs to
// completion (no rescheduling) under processor sharing. For the Dynamic
// Least-Load yardstick, departure reports reach the scheduler only after
// a detection delay (the machine polls its load index once per second,
// so U(0,1) s) plus an exponential message transfer delay (mean 0.05 s)
// — the overhead model of §4.2.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/choice.h"
#include "cluster/faults.h"
#include "cluster/metrics.h"
#include "cluster/netfaults.h"
#include "dispatch/dispatcher.h"
#include "obs/observer.h"
#include "overload/config.h"
#include "uncertainty/config.h"
#include "workload/spec.h"
#include "workload/trace.h"

namespace hs::cluster {

enum class ServiceDiscipline {
  kProcessorSharing,  // the paper's model (§4.1)
  kFcfs,              // validation / ablation
  kRoundRobin,        // finite-quantum ablation of the PS idealization
};

struct SimulationConfig {
  std::vector<double> speeds;
  workload::WorkloadSpec workload = workload::WorkloadSpec::paper_default();
  /// Target system utilization. ρ ≥ 1 is allowed — the offered load then
  /// exceeds capacity and the system diverges unless `overload`
  /// protection bounds it (the paper's model and Algorithm 1 still
  /// require ρ < 1; allocation schemes clamp their assumed load).
  double rho = 0.7;
  double sim_time = 1.0e6;    // seconds (paper: 4.0e6)
  double warmup_frac = 0.25;  // fraction of sim_time discarded (paper: 1/4)
  uint64_t seed = 42;

  ServiceDiscipline discipline = ServiceDiscipline::kProcessorSharing;
  double rr_quantum = 0.1;  // seconds, kRoundRobin only

  /// Network model (cluster/netfaults.h). The §4.2 Least-Load feedback
  /// path — detection interval and message transfer delay — lives in
  /// `network.detection_interval` / `network.message_delay_mean` with the
  /// paper's defaults, so a default-constructed config reproduces the
  /// base model bit-for-bit. Everything else in it (link loss/delay/
  /// duplication, partitions, heartbeat failure detection) is off by
  /// default; when off, the run takes no network branches, draws no
  /// network RNG, and dispatch stays synchronous. When any feature is on
  /// (or a dispatch::HedgedDispatcher with hedging enabled is in the
  /// scheduler stack), dispatch becomes an asynchronous message over the
  /// faulty link and the run self-checks the exactly-once identity
  /// below. See docs/FAULT_MODEL.md §8.
  NetworkConfig network;

  /// When non-empty, track the Figure 2 workload allocation deviation
  /// against these expected fractions per `deviation_interval` seconds.
  std::vector<double> deviation_expected;
  double deviation_interval = 120.0;

  /// When set, replay this trace instead of generating arrivals (the
  /// trace supersedes `workload`/`rho`; sim_time still bounds the run).
  const workload::JobTrace* trace = nullptr;

  /// Optional observer invoked for every completed job (after metric
  /// accounting). `measured` is false for warm-up jobs. Lets callers
  /// collect custom statistics (histograms, per-class metrics) without
  /// touching the harness.
  std::function<void(const queueing::Completion&, bool measured)>
      completion_hook;

  /// Scheduled machine speed changes (degradation, failure as speed 0,
  /// recovery), supported by every built-in service discipline. Static
  /// schedulers do not react to these — which is precisely the blind
  /// spot such experiments expose.
  struct SpeedChange {
    double time = 0.0;
    size_t machine = 0;
    double new_speed = 1.0;
  };
  std::vector<SpeedChange> speed_changes;

  /// Opt-in crash/recovery fault injection (cluster/faults.h). Disabled
  /// by default; when disabled the simulation takes no fault-related
  /// RNG draws and schedules no fault events, so results are bit-identical
  /// to runs that predate the fault layer. On a crash, the machine's
  /// resident jobs are lost; each loss is detected by the scheduler after
  /// the §4.2 detection-interval + message-delay model (drawn from a
  /// dedicated stream), then retried under `faults.retry`. Failure-aware
  /// dispatchers (uses_fault_feedback()) additionally receive delayed
  /// machine up/down reports. Retried dispatches count toward
  /// `dispatched_jobs` and the per-machine dispatch fractions.
  FaultConfig faults;

  /// Opt-in overload protection (overload/config.h). Default-constructed
  /// everything is off and the run is bit-identical to builds that
  /// predate the overload layer. With bounded queues, a dispatch onto a
  /// full machine is *rejected* and goes through the fault layer's
  /// retry/backoff/drop path (sharing `faults.retry`, which applies even
  /// when crash injection itself is off); with admission control, a job
  /// may be *shed* before dispatch (terminal — never dispatched or
  /// retried); with a retry budget, retries beyond the budget become
  /// immediate drops. Overload-aware dispatchers
  /// (uses_overload_feedback(), e.g. overload::CircuitBreakerDispatcher)
  /// additionally receive per-dispatch accept/reject outcomes. See
  /// docs/FAULT_MODEL.md §6 for the taxonomy.
  overload::OverloadConfig overload;

  /// Opt-in parameter uncertainty (uncertainty/config.h). Default-
  /// constructed everything is off and the run is bit-identical to
  /// builds that predate the uncertainty layer. With drift enabled, the
  /// *true* arrival rate becomes λ(t) = λ·drift.factor_at(t): each
  /// interarrival gap is divided by the factor at the instant it is
  /// scheduled (no extra RNG draws, so an all-ones timeline replays
  /// draw-for-draw identically to no drift). With staleness enabled,
  /// feedback dispatchers stop receiving per-departure reports; instead
  /// every machine's queue length is snapshotted every Δ =
  /// `staleness.update_interval` seconds and delivered to each feedback
  /// scheduler `report_delay` seconds later via on_load_report(). The
  /// believed-vs-true parameter split (lambda_error / speed_error) does
  /// not act here — the simulation always runs the truth; beliefs enter
  /// through the dispatcher the caller builds (see
  /// ExperimentConfig::believed_params and core::make_adaptive_dispatcher).
  uncertainty::UncertaintyConfig uncertainty;

  /// Opt-in observability (obs/observer.h). Null by default: every
  /// instrumentation site then reduces to one branch on a null pointer
  /// and the run is bit-identical to an unobserved one. With a trace
  /// sink attached, per-job lifecycle events (arrival, dispatch, service
  /// start, preempt/resume, completion, loss/retry/drop, crash/recovery)
  /// are recorded; with a metrics registry attached, the run clears the
  /// registry, registers the standard gauge set and samples it every
  /// `observer->sample_interval` seconds of simulated time (first sample
  /// at t = 0; tick events fire at k·interval <= sim_time, so sampling
  /// adds exactly floor(sim_time/interval) fired events and nothing
  /// else). Caller keeps ownership of the sink and registry.
  obs::Observer* observer = nullptr;

  /// Opt-in choice-point hook (cluster/choice.h). Null by default: every
  /// instrumented stochastic decision then costs one null-pointer branch
  /// and the run is bit-identical to builds that predate the explorer.
  /// Non-null, the hook observes every instrumented draw and may replace
  /// its value — the basis of the src/explore fault-schedule replay.
  /// Caller keeps ownership; the hook must outlive the run.
  ChoiceHook* choice_hook = nullptr;

  /// Implied arrival rate λ = ρ·Σs/E[size].
  [[nodiscard]] double lambda() const;
  [[nodiscard]] double warmup_time() const { return warmup_frac * sim_time; }
  void validate() const;
};

struct SimulationResult {
  double mean_response_time = 0.0;
  double mean_response_ratio = 0.0;
  double fairness = 0.0;  // σ of response ratio
  double response_ratio_p95 = 0.0;
  double response_ratio_p99 = 0.0;
  uint64_t completed_jobs = 0;
  uint64_t dispatched_jobs = 0;  // within measurement window
  std::vector<double> machine_fractions;     // of measured dispatches
  std::vector<double> machine_utilizations;  // busy fraction over sim_time
  std::vector<double> deviations;            // Figure 2 series (if tracked)
  uint64_t events_fired = 0;

  // ---- Availability metrics (populated meaningfully with faults on;
  //      all zero / trivially derived otherwise) ----
  uint64_t jobs_lost = 0;     // dispatch attempts lost to crashes (measured)
  uint64_t jobs_retried = 0;  // re-dispatches of lost jobs (measured)
  uint64_t jobs_dropped = 0;  // lost jobs abandoned by the retry policy
  /// Measured completions per second of measurement window — the run's
  /// goodput (dropped jobs contribute nothing).
  double goodput = 0.0;
  /// Seconds each machine spent crashed within [0, sim_time].
  std::vector<double> machine_downtime;
  /// Mean response time of measured jobs by retry count (index 0 = jobs
  /// never lost). See MetricsCollector::mean_response_by_attempts().
  std::vector<double> mean_response_by_attempts;

  // ---- Overload metrics (populated meaningfully with config.overload
  //      enabled; all zero otherwise). Measured-window counts, matching
  //      the fault metrics' convention. ----
  uint64_t jobs_rejected = 0;  // dispatch attempts refused by a full queue
  uint64_t jobs_shed = 0;      // jobs refused by admission control
  uint64_t retry_budget_denied = 0;  // retries that became drops (budget)

  // ---- Network metrics (populated meaningfully with config.network
  //      enabled and/or a hedged dispatcher; all zero otherwise).
  //      Message counts are whole-run; hedge counts sum over all
  //      schedulers' HedgedDispatcher decorators. ----
  uint64_t msgs_lost = 0;        // message copies dropped in transit
  uint64_t msgs_duplicated = 0;  // message copies delivered twice
  uint64_t hedges_issued = 0;    // hedge copies actually sent
  uint64_t hedges_won = 0;       // hedge copies that beat their primary
  uint64_t hedges_cancelled = 0; // losing copies evicted or deduped
  uint64_t suspicions = 0;       // failure-detector suspicion events
  /// p99 of measured response times (seconds) — the hedging acceptance
  /// metric. 0 unless the network layer enabled its collection.
  double response_time_p99 = 0.0;

  // ---- Adaptation metrics (populated when scheduler 0 carries a
  //      uncertainty::GovernedAdaptiveDispatcher, possibly inside
  //      fault-aware/circuit-breaker decorators; all zero otherwise) ----
  uint64_t realloc_commits = 0;    // governor-approved re-allocations
  uint64_t realloc_rejected = 0;   // proposals the governor refused
  uint64_t governor_freezes = 0;   // flap-guard trips

  // ---- Whole-run accounting (warm-up included), for the conservation
  //      identity: total_arrivals = total_completed + total_shed +
  //      total_dropped + in_flight_at_end. Rejections and losses are
  //      attempt-level events, not terminal outcomes, so they appear on
  //      the retry path rather than in the identity. ----
  uint64_t total_arrivals = 0;
  uint64_t total_completed = 0;
  uint64_t total_shed = 0;
  uint64_t total_dropped = 0;
  /// Jobs still resident on machines after the final drain (only jobs
  /// stranded on machines stopped at speed 0, e.g. crashed forever).
  uint64_t in_flight_at_end = 0;
};

/// Run one replication. The dispatcher is reset() first, so a fresh or a
/// reused dispatcher object behaves identically.
[[nodiscard]] SimulationResult run_simulation(const SimulationConfig& config,
                                              dispatch::Dispatcher& dispatcher);

/// Replay an arrival trace — typically a serving-session recording
/// (serving/trace_io.h) or a generated workload::JobTrace: sets
/// `config.trace` and extends sim_time to the trace horizon when it is
/// shorter, so every recorded arrival is admitted. Everything else in
/// the caller's config applies unchanged — in particular warmup_frac
/// (pass 0 to measure the whole session) and the robustness layers
/// (what-if analysis replays the same arrivals under different fault /
/// overload / network regimes). For a deliberately truncated replay,
/// set config.trace and a shorter sim_time by hand instead.
[[nodiscard]] SimulationResult run_trace_replay(
    SimulationConfig config, const workload::JobTrace& trace,
    dispatch::Dispatcher& dispatcher);

/// How arriving jobs are split across schedulers in the multi-scheduler
/// variant (below).
enum class SchedulerSplit {
  kRandom,      // each job goes to a uniformly random scheduler
  kRoundRobin,  // jobs cycle through the schedulers
};

/// Multi-scheduler variant: the paper assumes one central scheduler
/// (Figure 1), but its own motivating deployments — DNS round-robin and
/// replicated web front-ends — split the request stream across several
/// independent schedulers with no shared state. Each scheduler runs its
/// own dispatcher instance over the same machines and sees only its
/// share of the arrivals (for Dynamic Least-Load, departure reports go
/// only to the scheduler that dispatched the job). With one dispatcher
/// this reduces exactly to run_simulation.
[[nodiscard]] SimulationResult run_simulation_multi(
    const SimulationConfig& config,
    const std::vector<dispatch::Dispatcher*>& schedulers,
    SchedulerSplit split = SchedulerSplit::kRandom);

}  // namespace hs::cluster
