// Cluster configurations, including the paper's experiment setups.
#pragma once

#include <string>
#include <vector>

namespace hs::cluster {

/// A set of machines identified by their relative speeds.
class ClusterConfig {
 public:
  explicit ClusterConfig(std::vector<double> speeds);

  [[nodiscard]] const std::vector<double>& speeds() const { return speeds_; }
  [[nodiscard]] size_t size() const { return speeds_.size(); }
  [[nodiscard]] double total_speed() const;
  [[nodiscard]] double max_speed() const;
  [[nodiscard]] double min_speed() const;
  /// Speed skew: max/min.
  [[nodiscard]] double skewness() const;
  [[nodiscard]] std::string describe() const;

  // ---- The paper's configurations ----

  /// Table 3 base configuration: 15 machines, speeds
  /// {1.0×5, 1.5×4, 2.0×3, 5.0×1, 10.0×1, 12.0×1}, aggregate speed 44.
  static ClusterConfig paper_base();

  /// Table 1 configuration: 7 machines with speeds
  /// {1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0}.
  static ClusterConfig paper_table1();

  /// §5.1 speed-skewness setup: 2 fast machines of speed `fast_speed`
  /// plus 16 slow machines of speed 1.
  static ClusterConfig paper_skewness(double fast_speed);

  /// §5.2 system-size setup: n machines (n even), half of speed 10 and
  /// half of speed 1.
  static ClusterConfig paper_size(size_t n);

  /// n_fast machines of `fast_speed` and n_slow machines of `slow_speed`.
  static ClusterConfig two_class(size_t n_fast, double fast_speed,
                                 size_t n_slow, double slow_speed);

 private:
  std::vector<double> speeds_;
};

}  // namespace hs::cluster
