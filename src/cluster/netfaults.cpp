#include "cluster/netfaults.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hs::cluster {

double LinkFaults::sample_delay(rng::Xoshiro256& gen) const {
  if (delay_mean <= 0.0) {
    return 0.0;
  }
  double mean = delay_mean;
  if (tail_prob > 0.0 && gen.next_double() < tail_prob) {
    mean *= tail_factor;
  }
  return -mean * std::log(gen.next_double_open0());
}

void LinkFaults::validate(const char* link) const {
  HS_CHECK(loss >= 0.0 && loss < 1.0,
           "network " << link << ": loss must be within [0, 1), got " << loss);
  HS_CHECK(std::isfinite(delay_mean) && delay_mean >= 0.0,
           "network " << link << ": delay_mean must be finite and >= 0, got "
                      << delay_mean);
  HS_CHECK(tail_prob >= 0.0 && tail_prob <= 1.0,
           "network " << link << ": tail_prob must be within [0, 1], got "
                      << tail_prob);
  HS_CHECK(std::isfinite(tail_factor) && tail_factor >= 1.0,
           "network " << link << ": tail_factor must be >= 1, got "
                      << tail_factor);
  HS_CHECK(tail_prob == 0.0 || delay_mean > 0.0,
           "network " << link
                      << ": tail_prob without delay_mean has no effect; set "
                         "delay_mean > 0");
  HS_CHECK(duplicate >= 0.0 && duplicate < 1.0,
           "network " << link << ": duplicate must be within [0, 1), got "
                      << duplicate);
}

void HeartbeatConfig::validate() const {
  HS_CHECK(std::isfinite(interval) && interval >= 0.0,
           "network heartbeat: interval must be finite and >= 0, got "
               << interval);
  HS_CHECK(std::isfinite(phi_threshold) && phi_threshold > 0.0,
           "network heartbeat: phi_threshold must be > 0, got "
               << phi_threshold);
  HS_CHECK(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
           "network heartbeat: ewma_alpha must be within (0, 1], got "
               << ewma_alpha);
}

double HeartbeatConfig::timeout(double mean_interarrival) const {
  // φ(t) = elapsed / (mean · ln 10) ≥ φ*  ⇔  elapsed ≥ φ*·mean·ln 10.
  return phi_threshold * mean_interarrival * std::log(10.0);
}

void NetworkConfig::validate(size_t machine_count, double sim_time) const {
  HS_CHECK(std::isfinite(detection_interval) && detection_interval >= 0.0,
           "network detection_interval must be finite and >= 0, got "
               << detection_interval);
  HS_CHECK(std::isfinite(message_delay_mean) && message_delay_mean >= 0.0,
           "network message_delay_mean must be finite and >= 0, got "
               << message_delay_mean);
  dispatch_link.validate("dispatch_link");
  report_link.validate("report_link");
  heartbeat.validate();

  // Per-machine window lists, for the overlap check below.
  std::vector<std::vector<std::pair<double, double>>> windows(machine_count);
  for (size_t i = 0; i < partitions.size(); ++i) {
    const Partition& p = partitions[i];
    HS_CHECK(std::isfinite(p.start) && p.start >= 0.0,
             "network partitions[" << i << "]: start must be >= 0, got "
                                   << p.start);
    HS_CHECK(std::isfinite(p.duration) && p.duration > 0.0,
             "network partitions[" << i << "]: duration must be > 0, got "
                                   << p.duration);
    HS_CHECK(p.start <= sim_time,
             "network partitions[" << i << "]: starts at " << p.start
                                   << ", past sim_time " << sim_time);
    HS_CHECK(!p.machines.empty(),
             "network partitions[" << i << "]: machine set is empty");
    for (size_t m : p.machines) {
      HS_CHECK(m < machine_count, "network partitions["
                                      << i << "]: machine " << m
                                      << " out of range (cluster has "
                                      << machine_count << ")");
      windows[m].emplace_back(p.start, p.start + p.duration);
    }
  }
  for (size_t m = 0; m < machine_count; ++m) {
    auto& w = windows[m];
    std::sort(w.begin(), w.end());
    for (size_t i = 1; i < w.size(); ++i) {
      HS_CHECK(w[i].first >= w[i - 1].second,
               "network partitions: overlapping windows on machine "
                   << m << ": [" << w[i - 1].first << ", " << w[i - 1].second
                   << ") and [" << w[i].first << ", " << w[i].second << ")");
    }
  }
}

std::vector<PartitionEvent> build_partition_timeline(
    const std::vector<Partition>& partitions) {
  std::vector<PartitionEvent> timeline;
  for (const Partition& p : partitions) {
    for (size_t m : p.machines) {
      timeline.push_back({p.start, m, true});
      timeline.push_back({p.start + p.duration, m, false});
    }
  }
  // Close edges sort before open edges at equal (time, machine) so
  // back-to-back windows leave the machine isolated across the touch
  // point.
  std::sort(timeline.begin(), timeline.end(),
            [](const PartitionEvent& a, const PartitionEvent& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              if (a.machine != b.machine) {
                return a.machine < b.machine;
              }
              return !a.isolated && b.isolated;
            });
  return timeline;
}

}  // namespace hs::cluster
