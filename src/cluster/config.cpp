#include "cluster/config.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::cluster {

ClusterConfig::ClusterConfig(std::vector<double> speeds)
    : speeds_(std::move(speeds)) {
  HS_CHECK(!speeds_.empty(), "cluster needs at least one machine");
  for (double s : speeds_) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
}

double ClusterConfig::total_speed() const { return util::kahan_sum(speeds_); }

double ClusterConfig::max_speed() const {
  return *std::max_element(speeds_.begin(), speeds_.end());
}

double ClusterConfig::min_speed() const {
  return *std::min_element(speeds_.begin(), speeds_.end());
}

double ClusterConfig::skewness() const { return max_speed() / min_speed(); }

std::string ClusterConfig::describe() const {
  std::ostringstream oss;
  oss << speeds_.size() << " machines, speeds {";
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << speeds_[i];
  }
  oss << "}, aggregate " << total_speed();
  return oss.str();
}

ClusterConfig ClusterConfig::paper_base() {
  std::vector<double> speeds;
  speeds.insert(speeds.end(), 5, 1.0);
  speeds.insert(speeds.end(), 4, 1.5);
  speeds.insert(speeds.end(), 3, 2.0);
  speeds.push_back(5.0);
  speeds.push_back(10.0);
  speeds.push_back(12.0);
  return ClusterConfig(std::move(speeds));
}

ClusterConfig ClusterConfig::paper_table1() {
  return ClusterConfig({1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0});
}

ClusterConfig ClusterConfig::paper_skewness(double fast_speed) {
  return two_class(2, fast_speed, 16, 1.0);
}

ClusterConfig ClusterConfig::paper_size(size_t n) {
  HS_CHECK(n >= 2 && n % 2 == 0,
           "size experiment needs an even machine count >= 2, got " << n);
  return two_class(n / 2, 10.0, n / 2, 1.0);
}

ClusterConfig ClusterConfig::two_class(size_t n_fast, double fast_speed,
                                       size_t n_slow, double slow_speed) {
  HS_CHECK(n_fast + n_slow >= 1, "cluster needs at least one machine");
  std::vector<double> speeds;
  speeds.insert(speeds.end(), n_fast, fast_speed);
  speeds.insert(speeds.end(), n_slow, slow_speed);
  return ClusterConfig(std::move(speeds));
}

}  // namespace hs::cluster
