// Fault injection: machine crash/recovery processes and job retry policy.
//
// The paper's static policies compute their allocation once from nominal
// speeds; what happens when a machine actually dies is out of scope for
// the paper but central to the deployments it motivates (DNS round-robin,
// replicated web front-ends). This module defines an opt-in fault model
// for the cluster simulation:
//
//  * Each machine alternates up/down either stochastically (exponential
//    mean-time-between-failures / mean-time-to-repair) or on an explicit
//    scripted schedule. Both forms are expanded *up front* into one
//    deterministic event timeline derived from the run's seed, so fault
//    runs replicate bit-identically.
//  * A crash loses every job resident on the machine (in service and
//    queued); the scheduler learns of each loss only after the §4.2
//    detection-interval + message-delay model, then retries the job under
//    a bounded-attempts / exponential-backoff / deadline policy.
//
// Failure-aware routing on top of this model lives in
// dispatch/fault_aware.h; docs/FAULT_MODEL.md has the full semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hs::cluster {

class ChoiceHook;

/// How the scheduler retries a job whose dispatch attempt was lost to a
/// machine crash. A job is dispatched up to `max_attempts` times in
/// total; re-dispatch k (1-based) waits backoff_initial·backoff_factor^(k−1)
/// seconds after the loss is detected. When `job_timeout` > 0, a job is
/// dropped instead of retried if the retry would start more than
/// `job_timeout` seconds after its original arrival.
struct RetryPolicy {
  uint32_t max_attempts = 3;     // total dispatch attempts per job, >= 1
  double backoff_initial = 1.0;  // seconds before the first re-dispatch
  double backoff_factor = 2.0;   // multiplier per further attempt, >= 1
  double job_timeout = 0.0;      // seconds since arrival; 0 = no deadline

  void validate() const;
};

/// Opt-in fault model for one simulation run. Default-constructed, it is
/// disabled and the simulation behaves exactly as without it (no extra
/// RNG draws, no extra events).
struct FaultConfig {
  /// Stochastic crash/recovery for one machine: up-times ~ Exp(mean mtbf),
  /// down-times ~ Exp(mean mttr). mtbf == 0 disables the process.
  struct MachineProcess {
    double mtbf = 0.0;  // mean up-time between crashes, seconds
    double mttr = 0.0;  // mean downtime until recovery, seconds
  };
  /// Either empty (no stochastic faults) or one entry per machine.
  std::vector<MachineProcess> processes;

  /// A scripted outage: `machine` is down during [start, start+duration).
  /// Outages may overlap each other and the stochastic process; the
  /// timeline builder merges overlapping down-intervals.
  struct Outage {
    double start = 0.0;
    double duration = 0.0;
    size_t machine = 0;
  };
  std::vector<Outage> outages;

  RetryPolicy retry;

  /// Test-only planted bug for the explorer harness (src/explore): when
  /// set, a job dropped on its third-or-later attempt is silently leaked
  /// from the whole-run drop counter, breaking the conservation identity
  /// total_arrivals = completed + shed + dropped + in_flight. Exists so
  /// the explorer's find → shrink → replay pipeline has a real, reachable
  /// defect to regress against; never set outside tests.
  bool test_only_drop_leak = false;

  /// True if any crash can occur (stochastic or scripted).
  [[nodiscard]] bool enabled() const;
  void validate(size_t machine_count, double sim_time) const;
};

/// One edge of a machine's availability timeline.
struct FaultEvent {
  double time = 0.0;
  size_t machine = 0;
  bool up = false;  // false = crash, true = recovery
};

/// Expand the fault config into a merged, time-sorted crash/recovery
/// timeline over [0, horizon]. Stochastic draws come from per-machine
/// streams derived from `seed`, so the timeline is a pure function of
/// (config, machine_count, horizon, seed). Per machine, events strictly
/// alternate crash → recovery; a trailing crash with recovery beyond the
/// horizon is kept (the machine stays down through the end of the run)
/// but the recovery itself is dropped.
///
/// `hook`, when non-null, observes/overrides each up-time and down-time
/// draw (ChoiceKind::kFaultUptime / kFaultDowntime, entity = machine);
/// the draw itself still happens so stream positions never shift.
/// Overridden durations are clamped to a small positive epsilon so a
/// zero override cannot stall the timeline loop.
[[nodiscard]] std::vector<FaultEvent> build_fault_timeline(
    const FaultConfig& config, size_t machine_count, double horizon,
    uint64_t seed, ChoiceHook* hook = nullptr);

/// Per-machine total downtime within [0, horizon] implied by `timeline`
/// (a machine down at the last event stays down until the horizon).
[[nodiscard]] std::vector<double> downtime_from_timeline(
    const std::vector<FaultEvent>& timeline, size_t machine_count,
    double horizon);

}  // namespace hs::cluster
