#include "cluster/experiment.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "rng/rng.h"
#include "util/check.h"

namespace hs::cluster {

std::string replication_path(const std::string& path, unsigned replication,
                             unsigned replications) {
  if (replications <= 1) {
    return path;
  }
  const std::string suffix = ".rep" + std::to_string(replication);
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;  // no extension to split
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

void ExperimentConfig::validate() const {
  HS_CHECK(replications >= 1, "need at least one replication");
  // A caller-provided observer cannot be shared by concurrent
  // replications; replicated observation goes through
  // ExperimentConfig::observability (one sink per replication).
  HS_CHECK(simulation.observer == nullptr || replications == 1,
           "set ExperimentConfig::observability instead of "
           "SimulationConfig::observer for replicated experiments");
  HS_CHECK(observability.sample_interval > 0.0,
           "observability sample_interval must be positive: "
               << observability.sample_interval);
  simulation.validate();
}

uncertainty::BelievedParams ExperimentConfig::believed_params() const {
  return uncertainty::derive_beliefs(simulation.uncertainty,
                                     simulation.speeds, simulation.rho,
                                     base_seed);
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const DispatcherFactory& factory) {
  config.validate();

  const unsigned reps = config.replications;
  std::vector<SimulationResult> results(reps);

  unsigned threads = config.max_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, reps);

  std::atomic<unsigned> next_rep{0};
  std::vector<std::exception_ptr> errors(threads);
  auto worker = [&](unsigned worker_index) {
    try {
      // One dispatcher and one config copy per worker, reused across all
      // of its replications: run_simulation resets the dispatcher and
      // only the seed differs between reps, so rebuilding them per rep
      // would just make the replication threads contend on the allocator.
      auto dispatcher = factory();
      HS_CHECK(dispatcher != nullptr, "dispatcher factory returned null");
      SimulationConfig sim = config.simulation;
      const ExperimentObservability& observability = config.observability;
      for (;;) {
        const unsigned r = next_rep.fetch_add(1);
        if (r >= reps) {
          return;
        }
        sim.seed = rng::derive_seed(config.base_seed, r, rng::Stream::kReplication);
        if (observability.enabled()) {
          // Fresh per-replication sink and registry: replications run
          // concurrently, and each writes its own files on completion.
          std::optional<obs::TraceSink> sink;
          obs::MetricsRegistry registry;
          obs::Observer observer;
          if (!observability.trace_path.empty()) {
            sink.emplace(observability.trace_capacity);
            observer.trace = &*sink;
          }
          if (!observability.metrics_path.empty()) {
            observer.metrics = &registry;
            observer.sample_interval = observability.sample_interval;
          }
          sim.observer = &observer;
          results[r] = run_simulation(sim, *dispatcher);
          sim.observer = nullptr;
          if (sink) {
            sink->write_chrome_trace(
                replication_path(observability.trace_path, r, reps),
                sim.speeds);
          }
          if (observer.metrics != nullptr) {
            registry.write_csv(
                replication_path(observability.metrics_path, r, reps));
          }
        } else {
          results[r] = run_simulation(sim, *dispatcher);
        }
      }
    } catch (...) {
      errors[worker_index] = std::current_exception();
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (auto& t : pool) {
      t.join();
    }
  }
  for (const auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }

  ExperimentResult aggregate;
  std::vector<double> rts, rrs, fairs, goodputs, p99s;
  rts.reserve(reps);
  rrs.reserve(reps);
  fairs.reserve(reps);
  goodputs.reserve(reps);
  p99s.reserve(reps);
  const size_t n = config.simulation.speeds.size();
  aggregate.mean_machine_fractions.assign(n, 0.0);
  aggregate.mean_machine_utilizations.assign(n, 0.0);
  for (const SimulationResult& result : results) {
    rts.push_back(result.mean_response_time);
    rrs.push_back(result.mean_response_ratio);
    fairs.push_back(result.fairness);
    goodputs.push_back(result.goodput);
    p99s.push_back(result.response_time_p99);
    aggregate.total_jobs += result.completed_jobs;
    aggregate.total_jobs_lost += result.jobs_lost;
    aggregate.total_jobs_retried += result.jobs_retried;
    aggregate.total_jobs_dropped += result.jobs_dropped;
    aggregate.total_jobs_rejected += result.jobs_rejected;
    aggregate.total_jobs_shed += result.jobs_shed;
    aggregate.total_retry_budget_denied += result.retry_budget_denied;
    aggregate.total_realloc_commits += result.realloc_commits;
    aggregate.total_realloc_rejected += result.realloc_rejected;
    aggregate.total_governor_freezes += result.governor_freezes;
    aggregate.total_msgs_lost += result.msgs_lost;
    aggregate.total_msgs_duplicated += result.msgs_duplicated;
    aggregate.total_hedges_issued += result.hedges_issued;
    aggregate.total_hedges_won += result.hedges_won;
    aggregate.total_hedges_cancelled += result.hedges_cancelled;
    aggregate.total_suspicions += result.suspicions;
    for (size_t i = 0; i < n; ++i) {
      aggregate.mean_machine_fractions[i] += result.machine_fractions[i];
      aggregate.mean_machine_utilizations[i] +=
          result.machine_utilizations[i];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    aggregate.mean_machine_fractions[i] /= static_cast<double>(reps);
    aggregate.mean_machine_utilizations[i] /= static_cast<double>(reps);
  }
  aggregate.response_time = stats::mean_confidence_interval(rts);
  aggregate.response_ratio = stats::mean_confidence_interval(rrs);
  aggregate.fairness = stats::mean_confidence_interval(fairs);
  aggregate.goodput = stats::mean_confidence_interval(goodputs);
  aggregate.response_time_p99 = stats::mean_confidence_interval(p99s);
  aggregate.replications = std::move(results);
  return aggregate;
}

}  // namespace hs::cluster
