// Instrumented stochastic choice points of the robustness layers.
//
// Every randomized decision the fault, overload, and network layers make
// during one run — crash/recovery times, message loss/duplication coin
// flips, transit and detection delays, admission verdicts, hedge
// issuance, interarrival gaps — funnels through one of the named choice
// points below. A run normally resolves each point from its dedicated
// RNG stream exactly as before; installing a ChoiceHook
// (SimulationConfig::choice_hook) lets a caller *observe and override*
// the drawn value at any point, which is what turns the simulator into a
// model checker: the explorer (src/explore) encodes a set of overrides
// as a compact HSSCHED1 fault schedule and replays it bit-identically.
//
// Contract:
//  * The underlying RNG draw always happens first, hook or no hook, so
//    installing a hook never shifts any stream position — an empty
//    schedule replays the unhooked run bit-for-bit.
//  * With choice_hook == nullptr every site is a single null-pointer
//    branch (the same zero-overhead-off discipline as the obs layer);
//    goldens pin that the hookless run is bit-identical to pre-explorer
//    builds.
//  * Hooks must be deterministic: the run's trajectory must be a pure
//    function of (config, seed, schedule) or replay breaks.
//
// docs/FAULT_MODEL.md §9 specifies the choice-point model.
#pragma once

#include <cstdint>

namespace hs::cluster {

/// Every instrumented stochastic decision point. Numeric values are
/// frozen — they appear in serialized HSSCHED1 schedules, so renumbering
/// would silently retarget every committed repro.
enum class ChoiceKind : uint8_t {
  kFaultUptime = 0,   // exp up-time draw, seconds (entity = machine)
  kFaultDowntime = 1, // exp down-time draw, seconds (entity = machine)
  kDispatchLoss = 2,  // bool: dispatch copy lost in transit (entity = machine)
  kDispatchDup = 3,   // bool: dispatch copy duplicated (entity = machine)
  kReportLoss = 4,    // bool: departure report lost (entity = machine)
  kReportDup = 5,     // bool: departure report duplicated (entity = machine)
  kHeartbeatLoss = 6, // bool: heartbeat lost in transit (entity = machine)
  kLinkDelay = 7,     // extra transit delay draw, seconds (entity = machine)
  kFeedbackDelay = 8, // §4.2 detection + message delay, seconds
  kAdmitDecision = 9, // bool: admission verdict (true = admit)
  kHedgeIssue = 10,   // bool: issue the hedge copy when its timer fires
  kArrivalGap = 11,   // interarrival gap, seconds (entity = 0)
  kCount
};

/// Printable name of a kind ("fault_uptime", "dispatch_loss", ...).
[[nodiscard]] const char* choice_kind_name(ChoiceKind kind);

/// Whether a kind resolves to a boolean (vs a non-negative double).
[[nodiscard]] bool choice_kind_is_bool(ChoiceKind kind);

/// Override/observe interface for instrumented choice points. The
/// engine calls exactly one method per point, passing the naturally
/// drawn value; the return value is what the run uses. Implementations
/// must be deterministic and, for on_double, must return a finite
/// non-negative value (durations, delays and gaps; the engine clamps
/// defensively but garbage here makes schedules meaningless).
class ChoiceHook {
 public:
  virtual ~ChoiceHook() = default;
  virtual bool on_bool(ChoiceKind kind, uint32_t entity, bool drawn) = 0;
  virtual double on_double(ChoiceKind kind, uint32_t entity,
                           double drawn) = 0;
};

}  // namespace hs::cluster
