#include "cluster/choice.h"

namespace hs::cluster {

const char* choice_kind_name(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kFaultUptime:
      return "fault_uptime";
    case ChoiceKind::kFaultDowntime:
      return "fault_downtime";
    case ChoiceKind::kDispatchLoss:
      return "dispatch_loss";
    case ChoiceKind::kDispatchDup:
      return "dispatch_dup";
    case ChoiceKind::kReportLoss:
      return "report_loss";
    case ChoiceKind::kReportDup:
      return "report_dup";
    case ChoiceKind::kHeartbeatLoss:
      return "heartbeat_loss";
    case ChoiceKind::kLinkDelay:
      return "link_delay";
    case ChoiceKind::kFeedbackDelay:
      return "feedback_delay";
    case ChoiceKind::kAdmitDecision:
      return "admit_decision";
    case ChoiceKind::kHedgeIssue:
      return "hedge_issue";
    case ChoiceKind::kArrivalGap:
      return "arrival_gap";
    case ChoiceKind::kCount:
      break;
  }
  return "unknown";
}

bool choice_kind_is_bool(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kDispatchLoss:
    case ChoiceKind::kDispatchDup:
    case ChoiceKind::kReportLoss:
    case ChoiceKind::kReportDup:
    case ChoiceKind::kHeartbeatLoss:
    case ChoiceKind::kAdmitDecision:
    case ChoiceKind::kHedgeIssue:
      return true;
    default:
      return false;
  }
}

}  // namespace hs::cluster
