#include "cluster/sim.h"

#include <cmath>
#include <memory>
#include <unordered_map>

#include "queueing/fcfs_server.h"
#include "queueing/ps_server.h"
#include "queueing/rr_server.h"
#include "sim/simulator.h"
#include "stats/interval_tracker.h"
#include "util/check.h"
#include "util/math_util.h"

namespace hs::cluster {

double SimulationConfig::lambda() const {
  return workload.arrival_rate_for(rho, util::kahan_sum(speeds));
}

void SimulationConfig::validate() const {
  HS_CHECK(!speeds.empty(), "simulation needs at least one machine");
  for (double s : speeds) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
  HS_CHECK(rho > 0.0 && rho < 1.0, "rho out of (0,1): " << rho);
  HS_CHECK(sim_time > 0.0, "sim_time must be positive: " << sim_time);
  HS_CHECK(warmup_frac >= 0.0 && warmup_frac < 1.0,
           "warmup fraction out of [0,1): " << warmup_frac);
  HS_CHECK(rr_quantum > 0.0, "rr quantum must be positive: " << rr_quantum);
  HS_CHECK(detection_interval >= 0.0,
           "detection interval must be >= 0: " << detection_interval);
  HS_CHECK(message_delay_mean >= 0.0,
           "message delay mean must be >= 0: " << message_delay_mean);
  if (!deviation_expected.empty()) {
    HS_CHECK(deviation_expected.size() == speeds.size(),
             "deviation fractions size " << deviation_expected.size()
                                         << " != machine count "
                                         << speeds.size());
  }
  for (const SpeedChange& change : speed_changes) {
    HS_CHECK(change.time >= 0.0,
             "speed change time must be >= 0: " << change.time);
    HS_CHECK(change.machine < speeds.size(),
             "speed change machine out of range: " << change.machine);
    HS_CHECK(change.new_speed >= 0.0,
             "speed change target must be >= 0: " << change.new_speed);
  }
}

namespace {

std::unique_ptr<queueing::Server> make_server(const SimulationConfig& config,
                                              sim::Simulator& simulator,
                                              size_t machine) {
  const double speed = config.speeds[machine];
  const int index = static_cast<int>(machine);
  switch (config.discipline) {
    case ServiceDiscipline::kProcessorSharing:
      return std::make_unique<queueing::PsServer>(simulator, speed, index);
    case ServiceDiscipline::kFcfs:
      return std::make_unique<queueing::FcfsServer>(simulator, speed, index);
    case ServiceDiscipline::kRoundRobin:
      return std::make_unique<queueing::RrServer>(simulator, speed, index,
                                                  config.rr_quantum);
  }
  HS_CHECK(false, "unreachable service discipline");
  return nullptr;
}

/// Everything one run needs, wired together before the event loop starts.
class RunContext {
 public:
  RunContext(const SimulationConfig& config,
             std::vector<dispatch::Dispatcher*> schedulers,
             SchedulerSplit split)
      : config_(config),
        schedulers_(std::move(schedulers)),
        split_(split),
        size_model_(config.workload.make_size_model()),
        arrival_gen_(rng::derive_seed(config.seed, 0, 0)),
        size_gen_(rng::derive_seed(config.seed, 0, 1)),
        dispatch_gen_(rng::derive_seed(config.seed, 0, 2)),
        delay_gen_(rng::derive_seed(config.seed, 0, 3)),
        split_gen_(rng::derive_seed(config.seed, 0, 4)),
        metrics_(config.speeds.size()) {
    config.validate();
    HS_CHECK(!schedulers_.empty(), "at least one scheduler is required");
    for (dispatch::Dispatcher* dispatcher : schedulers_) {
      HS_CHECK(dispatcher != nullptr, "null scheduler");
      HS_CHECK(dispatcher->machine_count() == config.speeds.size(),
               "dispatcher machine count " << dispatcher->machine_count()
                                           << " != cluster size "
                                           << config.speeds.size());
      dispatcher->reset();
      any_feedback_ = any_feedback_ || dispatcher->uses_feedback();
    }
    for (size_t i = 0; i < config.speeds.size(); ++i) {
      servers_.push_back(make_server(config, simulator_, i));
      servers_.back()->set_completion_callback(
          [this](const queueing::Completion& c) { on_completion(c); });
    }
    if (!config.deviation_expected.empty()) {
      tracker_.emplace(config.deviation_expected, config.deviation_interval);
    }
    if (config.trace == nullptr) {
      arrivals_ = config.workload.make_arrivals(config.lambda());
      arrivals_->reset();
    }
    for (const SimulationConfig::SpeedChange& change : config.speed_changes) {
      simulator_.schedule_at(change.time, [this, change] {
        servers_[change.machine]->set_speed(change.new_speed);
      });
    }
  }

  SimulationResult run() {
    schedule_first_arrival();
    simulator_.run_until(config_.sim_time);
    // Capture utilizations over the nominal horizon, then drain the jobs
    // still in flight so their completions are measured.
    std::vector<double> utilizations;
    utilizations.reserve(servers_.size());
    for (const auto& server : servers_) {
      utilizations.push_back(server->busy_time() / config_.sim_time);
    }
    simulator_.run_all();

    SimulationResult result;
    result.mean_response_time = metrics_.response_time().mean();
    result.mean_response_ratio = metrics_.response_ratio().mean();
    result.fairness = metrics_.fairness();
    result.response_ratio_p95 = metrics_.response_ratio_p95();
    result.response_ratio_p99 = metrics_.response_ratio_p99();
    result.completed_jobs = metrics_.measured_completions();
    result.dispatched_jobs = metrics_.measured_dispatches();
    result.machine_fractions = metrics_.machine_fractions();
    result.machine_utilizations = std::move(utilizations);
    if (tracker_) {
      tracker_->flush_until(config_.sim_time);
      result.deviations = tracker_->deviations();
    }
    result.events_fired = simulator_.events_fired();
    return result;
  }

 private:
  void schedule_first_arrival() {
    if (config_.trace != nullptr) {
      schedule_next_trace_arrival();
      return;
    }
    const double t = arrivals_->next_interarrival(arrival_gen_);
    if (t <= config_.sim_time) {
      simulator_.schedule_at(t, [this] { on_generated_arrival(); });
    }
  }

  void schedule_next_trace_arrival() {
    const auto& jobs = config_.trace->jobs();
    while (trace_index_ < jobs.size() &&
           jobs[trace_index_].arrival_time <= config_.sim_time) {
      // Schedule one at a time to keep the event heap small.
      const queueing::Job job = jobs[trace_index_++];
      simulator_.schedule_at(job.arrival_time, [this, job] {
        dispatch_job(job);
        schedule_next_trace_arrival();
      });
      return;
    }
  }

  void on_generated_arrival() {
    queueing::Job job;
    job.id = next_job_id_++;
    job.arrival_time = simulator_.now();
    job.size = size_model_.sample(size_gen_);
    dispatch_job(job);
    const double next = simulator_.now() +
                        arrivals_->next_interarrival(arrival_gen_);
    if (next <= config_.sim_time) {
      simulator_.schedule_at(next, [this] { on_generated_arrival(); });
    }
  }

  /// Which scheduler handles the next arriving job.
  size_t next_scheduler() {
    if (schedulers_.size() == 1) {
      return 0;
    }
    if (split_ == SchedulerSplit::kRoundRobin) {
      const size_t s = split_cursor_;
      split_cursor_ = (split_cursor_ + 1) % schedulers_.size();
      return s;
    }
    return split_gen_.next_below(schedulers_.size());
  }

  void dispatch_job(const queueing::Job& job) {
    const size_t scheduler = next_scheduler();
    dispatch::Dispatcher& dispatcher = *schedulers_[scheduler];
    dispatcher.on_arrival(job.arrival_time);
    const size_t machine = dispatcher.pick_sized(dispatch_gen_, job.size);
    const bool measured = job.arrival_time >= config_.warmup_time();
    metrics_.on_dispatch(machine, measured);
    if (tracker_) {
      tracker_->record(job.arrival_time, machine);
    }
    if (any_feedback_) {
      // Departure reports must reach the scheduler that sent the job
      // (schedulers share no state).
      job_scheduler_[job.id] = scheduler;
    }
    servers_[machine]->arrive(job);
  }

  void on_completion(const queueing::Completion& completion) {
    const bool measured =
        completion.job.arrival_time >= config_.warmup_time();
    metrics_.on_completion(completion, measured);
    if (config_.completion_hook) {
      config_.completion_hook(completion, measured);
    }
    if (any_feedback_) {
      const auto it = job_scheduler_.find(completion.job.id);
      HS_CHECK(it != job_scheduler_.end(),
               "completion for untracked job " << completion.job.id);
      dispatch::Dispatcher& dispatcher = *schedulers_[it->second];
      job_scheduler_.erase(it);
      if (dispatcher.uses_feedback()) {
        // §4.2: the machine notices the departure at its next 1 Hz load
        // check — U(0,1) s — then a message reaches the scheduler after
        // an exponential transfer delay of mean 0.05 s.
        double delay = 0.0;
        if (config_.detection_interval > 0.0) {
          delay += delay_gen_.uniform(0.0, config_.detection_interval);
        }
        if (config_.message_delay_mean > 0.0) {
          delay += -std::log(delay_gen_.next_double_open0()) *
                   config_.message_delay_mean;
        }
        const auto machine = static_cast<size_t>(completion.machine);
        simulator_.schedule_in(delay, [&dispatcher, machine] {
          dispatcher.on_departure_report(machine);
        });
      }
    }
  }

  const SimulationConfig& config_;
  std::vector<dispatch::Dispatcher*> schedulers_;
  SchedulerSplit split_;
  bool any_feedback_ = false;
  size_t split_cursor_ = 0;
  std::unordered_map<uint64_t, size_t> job_scheduler_;
  workload::JobSizeModel size_model_;
  rng::Xoshiro256 arrival_gen_;
  rng::Xoshiro256 size_gen_;
  rng::Xoshiro256 dispatch_gen_;
  rng::Xoshiro256 delay_gen_;
  rng::Xoshiro256 split_gen_;
  sim::Simulator simulator_;
  std::vector<std::unique_ptr<queueing::Server>> servers_;
  std::unique_ptr<workload::ArrivalProcess> arrivals_;
  MetricsCollector metrics_;
  std::optional<stats::IntervalDeviationTracker> tracker_;
  uint64_t next_job_id_ = 0;
  size_t trace_index_ = 0;
};

}  // namespace

SimulationResult run_simulation(const SimulationConfig& config,
                                dispatch::Dispatcher& dispatcher) {
  RunContext context(config, {&dispatcher}, SchedulerSplit::kRandom);
  return context.run();
}

SimulationResult run_simulation_multi(
    const SimulationConfig& config,
    const std::vector<dispatch::Dispatcher*>& schedulers,
    SchedulerSplit split) {
  RunContext context(config, schedulers, split);
  return context.run();
}

}  // namespace hs::cluster
