#include "cluster/sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "dispatch/fault_aware.h"
#include "dispatch/hedged.h"
#include "overload/admission.h"
#include "overload/circuit_breaker.h"
#include "overload/retry_budget.h"
#include "uncertainty/adaptive.h"
#include "queueing/fcfs_server.h"
#include "queueing/ps_server.h"
#include "queueing/rr_server.h"
#include "sim/simulator.h"
#include "stats/interval_tracker.h"
#include "util/check.h"
#include "util/math_util.h"

namespace hs::cluster {

double SimulationConfig::lambda() const {
  return workload.arrival_rate_for(rho, util::kahan_sum(speeds));
}

void SimulationConfig::validate() const {
  HS_CHECK(!speeds.empty(), "simulation needs at least one machine");
  for (double s : speeds) {
    HS_CHECK(std::isfinite(s) && s > 0.0,
             "machine speed must be finite and positive, got " << s);
  }
  // ρ ≥ 1 is deliberately legal: overload experiments drive the system
  // past capacity (the allocation schemes still clamp their assumed
  // load below 1; only the arrival rate scales with the true ρ).
  HS_CHECK(std::isfinite(rho) && rho > 0.0,
           "rho must be finite and > 0: " << rho);
  HS_CHECK(std::isfinite(sim_time) && sim_time > 0.0,
           "sim_time must be finite and positive: " << sim_time);
  HS_CHECK(warmup_frac >= 0.0 && warmup_frac < 1.0,
           "warmup fraction out of [0,1): " << warmup_frac);
  HS_CHECK(rr_quantum > 0.0, "rr quantum must be positive: " << rr_quantum);
  if (!deviation_expected.empty()) {
    HS_CHECK(deviation_expected.size() == speeds.size(),
             "deviation fractions size " << deviation_expected.size()
                                         << " != machine count "
                                         << speeds.size());
  }
  for (size_t i = 0; i < speed_changes.size(); ++i) {
    const SpeedChange& change = speed_changes[i];
    HS_CHECK(change.time >= 0.0, "speed_changes[" << i
                                     << "]: time must be >= 0, got "
                                     << change.time);
    HS_CHECK(change.time <= sim_time,
             "speed_changes[" << i << "]: time " << change.time
                              << " beyond sim_time " << sim_time);
    HS_CHECK(change.machine < speeds.size(),
             "speed_changes[" << i << "]: machine " << change.machine
                              << " out of range [0, " << speeds.size()
                              << ")");
    HS_CHECK(change.new_speed >= 0.0,
             "speed_changes[" << i << "]: new_speed must be >= 0, got "
                              << change.new_speed);
  }
  faults.validate(speeds.size(), sim_time);
  network.validate(speeds.size(), sim_time);
  overload.validate(speeds.size());
  uncertainty.validate(sim_time);
  if (observer != nullptr) {
    observer->validate();
  }
}

namespace {

std::unique_ptr<queueing::Server> make_server(const SimulationConfig& config,
                                              sim::Simulator& simulator,
                                              size_t machine) {
  const double speed = config.speeds[machine];
  const int index = static_cast<int>(machine);
  switch (config.discipline) {
    case ServiceDiscipline::kProcessorSharing:
      return std::make_unique<queueing::PsServer>(simulator, speed, index);
    case ServiceDiscipline::kFcfs:
      return std::make_unique<queueing::FcfsServer>(simulator, speed, index);
    case ServiceDiscipline::kRoundRobin:
      return std::make_unique<queueing::RrServer>(simulator, speed, index,
                                                  config.rr_quantum);
  }
  HS_CHECK(false, "unreachable service discipline");
  return nullptr;
}

/// Locate a GovernedAdaptiveDispatcher inside a (possibly decorated)
/// scheduler: the adaptive policy masks natively, so fault-aware and
/// circuit-breaker decorators hold it directly and never rebuild it (the
/// returned pointer is stable for the run).
uncertainty::GovernedAdaptiveDispatcher* find_adaptive(
    dispatch::Dispatcher* dispatcher) {
  if (auto* adaptive =
          dynamic_cast<uncertainty::GovernedAdaptiveDispatcher*>(
              dispatcher)) {
    return adaptive;
  }
  if (auto* fault_aware =
          dynamic_cast<dispatch::FaultAwareDispatcher*>(dispatcher)) {
    return find_adaptive(&fault_aware->inner());
  }
  if (auto* breaker =
          dynamic_cast<overload::CircuitBreakerDispatcher*>(dispatcher)) {
    return find_adaptive(&breaker->inner());
  }
  if (auto* hedged = dynamic_cast<dispatch::HedgedDispatcher*>(dispatcher)) {
    return find_adaptive(&hedged->inner());
  }
  return nullptr;
}

/// Locate a CircuitBreakerDispatcher anywhere in a decorator stack, so
/// breaker transitions reach the trace sink (and the breaker-state
/// gauges) even when hedging or fault-awareness wraps the breaker.
overload::CircuitBreakerDispatcher* find_breaker(
    dispatch::Dispatcher* dispatcher) {
  if (auto* breaker =
          dynamic_cast<overload::CircuitBreakerDispatcher*>(dispatcher)) {
    return breaker;
  }
  if (auto* fault_aware =
          dynamic_cast<dispatch::FaultAwareDispatcher*>(dispatcher)) {
    return find_breaker(&fault_aware->inner());
  }
  if (auto* hedged = dynamic_cast<dispatch::HedgedDispatcher*>(dispatcher)) {
    return find_breaker(&hedged->inner());
  }
  return nullptr;
}

/// Locate a HedgedDispatcher anywhere in a decorator stack (the three
/// robustness decorators compose in any order). At most one per
/// scheduler: the hedge lifecycle keys flights by job id, which a second
/// hedging layer would double-book.
dispatch::HedgedDispatcher* find_hedged(dispatch::Dispatcher* dispatcher) {
  if (auto* hedged = dynamic_cast<dispatch::HedgedDispatcher*>(dispatcher)) {
    return hedged;
  }
  if (auto* fault_aware =
          dynamic_cast<dispatch::FaultAwareDispatcher*>(dispatcher)) {
    return find_hedged(&fault_aware->inner());
  }
  if (auto* breaker =
          dynamic_cast<overload::CircuitBreakerDispatcher*>(dispatcher)) {
    return find_hedged(&breaker->inner());
  }
  return nullptr;
}

/// Everything one run needs, wired together before the event loop starts.
/// All simulation machinery (arrivals, speed changes, faults, delayed
/// feedback) runs on typed events targeting this object, so the steady
/// state of a run schedules events without touching the allocator.
class RunContext : private sim::EventTarget {
 public:
  RunContext(const SimulationConfig& config,
             std::vector<dispatch::Dispatcher*> schedulers,
             SchedulerSplit split)
      : config_(config),
        schedulers_(std::move(schedulers)),
        split_(split),
        size_model_(config.workload.make_size_model()),
        arrival_gen_(rng::derive_seed(config.seed, 0, rng::Stream::kArrival)),
        size_gen_(rng::derive_seed(config.seed, 0, rng::Stream::kJobSize)),
        dispatch_gen_(rng::derive_seed(config.seed, 0, rng::Stream::kDispatch)),
        delay_gen_(rng::derive_seed(config.seed, 0, rng::Stream::kMessageDelay)),
        split_gen_(rng::derive_seed(config.seed, 0, rng::Stream::kSchedulerSplit)),
        fault_delay_gen_(rng::derive_seed(config.seed, 0, rng::Stream::kFaultDelay)),
        hook_(config.choice_hook),
        metrics_(config.speeds.size()) {
    config.validate();
    HS_CHECK(!schedulers_.empty(), "at least one scheduler is required");
    for (dispatch::Dispatcher* dispatcher : schedulers_) {
      HS_CHECK(dispatcher != nullptr, "null scheduler");
      HS_CHECK(dispatcher->machine_count() == config.speeds.size(),
               "dispatcher machine count " << dispatcher->machine_count()
                                           << " != cluster size "
                                           << config.speeds.size());
      dispatcher->reset();
      any_feedback_ = any_feedback_ || dispatcher->uses_feedback();
      any_overload_feedback_ =
          any_overload_feedback_ || dispatcher->uses_overload_feedback();
    }
    for (size_t i = 0; i < config.speeds.size(); ++i) {
      servers_.push_back(make_server(config, simulator_, i));
      servers_.back()->set_completion_callback(
          [this](const queueing::Completion& c) { on_completion(c); });
    }
    if (!config.deviation_expected.empty()) {
      tracker_.emplace(config.deviation_expected, config.deviation_interval);
    }
    if (config.trace == nullptr) {
      arrivals_ = config.workload.make_arrivals(config.lambda());
      arrivals_->reset();
    }
    size_t upfront_events = config.speed_changes.size();
    for (const SimulationConfig::SpeedChange& change : config.speed_changes) {
      simulator_.schedule_at(
          change.time, *this, kSpeedChange,
          sim::EventArgs::pack(SpeedChangeArgs{change.machine,
                                               change.new_speed}));
    }
    if (config.observer != nullptr) {
      trace_ = config.observer->trace;
      for (auto& server : servers_) {
        server->set_trace_sink(trace_);
      }
      if (config.observer->wants_sampling()) {
        registry_ = config.observer->metrics;
        sample_interval_ = config.observer->sample_interval;
        register_standard_gauges();
      }
    }
    if (config.faults.enabled()) {
      faults_on_ = true;
      down_.assign(config.speeds.size(), false);
      nominal_speed_ = config.speeds;
      const std::vector<FaultEvent> timeline = build_fault_timeline(
          config.faults, config.speeds.size(), config.sim_time, config.seed,
          hook_);
      downtime_ = downtime_from_timeline(timeline, config.speeds.size(),
                                         config.sim_time);
      upfront_events += timeline.size();
      for (const FaultEvent& event : timeline) {
        simulator_.schedule_at(event.time, *this, kFaultTransition,
                               sim::EventArgs::pack(event));
      }
    }
    if (config.overload.enabled()) {
      overload_on_ = true;
      const overload::OverloadConfig& ov = config.overload;
      for (size_t i = 0; i < servers_.size(); ++i) {
        servers_[i]->set_capacity(
            ov.machine_capacity.empty() ? ov.queue_capacity
                                        : ov.machine_capacity[i]);
      }
      if (ov.admission != overload::AdmissionKind::kAlwaysAdmit) {
        admission_ = overload::make_admission_policy(
            ov, config.speeds, config.rho, config.workload.mean_job_size());
        // Dedicated decision stream (component 6): probabilistic sheds
        // never perturb the arrival/size/dispatch streams, and with
        // overload off this generator is never even constructed.
        overload_gen_.emplace(rng::derive_seed(config.seed, 0, rng::Stream::kOverload));
      }
      if (ov.retry_budget.enabled) {
        retry_budget_.emplace(ov.retry_budget);
      }
    }
    if (config.uncertainty.enabled()) {
      drift_on_ = config.uncertainty.drift.enabled();
      // The staleness model only changes anything for feedback
      // dispatchers: per-departure reports stop and periodic queue-length
      // snapshots start. Without one there is nothing to degrade.
      stale_feedback_ =
          config.uncertainty.staleness.enabled() && any_feedback_;
    }
    // Network layer (config.network + dispatch::HedgedDispatcher). Any
    // link fault, partition, heartbeat detector, or enabled hedging
    // decorator switches dispatch onto the asynchronous message path;
    // with all of them off, dispatch stays synchronous and the run
    // replays bit-identically to pre-network builds.
    hedged_.assign(schedulers_.size(), nullptr);
    for (size_t s = 0; s < schedulers_.size(); ++s) {
      hedged_[s] = find_hedged(schedulers_[s]);
      if (hedged_[s] != nullptr && hedged_[s]->config().enabled()) {
        net_on_ = true;
      }
    }
    net_on_ = net_on_ || config.network.enabled();
    if (net_on_) {
      net_gen_.emplace(rng::derive_seed(config.seed, 0,
                                        rng::Stream::kNetwork));
      partitioned_.assign(config.speeds.size(), 0);
      // Tail latency is the hedging acceptance metric; the extra P²
      // update per completion is paid only on network runs.
      metrics_.enable_response_time_p99();
      const std::vector<PartitionEvent> timeline =
          build_partition_timeline(config.network.partitions);
      upfront_events += timeline.size();
      for (const PartitionEvent& event : timeline) {
        simulator_.schedule_at(event.time, *this, kPartitionEvent,
                               sim::EventArgs::pack(event));
      }
      if (config.network.heartbeat.enabled()) {
        hb_on_ = true;
        hb_.assign(config.speeds.size(), HeartbeatState{});
        const double interval = config.network.heartbeat.interval;
        for (size_t m = 0; m < config.speeds.size(); ++m) {
          hb_[m].mean = interval;
          if (interval <= config.sim_time) {
            simulator_.schedule_at(
                interval, *this, kHeartbeat,
                sim::EventArgs::pack(
                    HeartbeatArgs{static_cast<uint32_t>(m)}));
          }
          // Arm the detector from t = 0: a machine that never delivers a
          // single heartbeat (e.g. partitioned from the start) still
          // gets suspected.
          simulator_.schedule_at(
              config.network.heartbeat.timeout(interval), *this,
              kSuspectCheck,
              sim::EventArgs::pack(SuspectArgs{static_cast<uint32_t>(m),
                                               /*generation=*/0}));
        }
      }
    }
    adaptive_ = find_adaptive(schedulers_.front());
    if (trace_ != nullptr) {
      // Breaker decorators expose their own sink hook; wire the run's
      // sink in so trip/half-open/close transitions land in the trace.
      // Adaptive dispatchers likewise record estimate updates and
      // governor decisions.
      for (dispatch::Dispatcher* dispatcher : schedulers_) {
        if (auto* breaker = find_breaker(dispatcher)) {
          breaker->set_trace_sink(trace_);
        }
        if (auto* adaptive = find_adaptive(dispatcher)) {
          adaptive->set_trace_sink(trace_);
        }
      }
    }
    // The whole speed-change/fault/partition timeline sits in the heap
    // from t=0; beyond it a run keeps one departure timer per machine,
    // the next arrival, and a handful of in-flight feedback messages.
    // The staleness model adds one in-flight load report per feedback
    // scheduler per machine; the network layer adds in-flight dispatch
    // copies, hedge timers, and one heartbeat chain plus suspect check
    // per machine.
    simulator_.reserve_events(
        upfront_events + 4 * config.speeds.size() + 64 +
        (stale_feedback_
             ? schedulers_.size() * config.speeds.size() + 8
             : 0) +
        (net_on_ ? 4 * config.speeds.size() + 32 : 0));
  }

  SimulationResult run() {
    if (registry_ != nullptr) {
      // Initial state at t = 0, then simulator-driven interval samples.
      registry_->sample(0.0);
      if (sample_interval_ <= config_.sim_time) {
        simulator_.schedule_at(sample_interval_, *this, kMetricsSample);
      }
    }
    if (stale_feedback_) {
      // First snapshot at t = Δ (validate() guarantees Δ < sim_time);
      // subsequent ticks at absolute multiples, like the sampler.
      simulator_.schedule_at(config_.uncertainty.staleness.update_interval,
                             *this, kLoadSnapshot);
    }
    schedule_first_arrival();
    simulator_.run_until(config_.sim_time);
    // Capture utilizations over the nominal horizon, then drain the jobs
    // still in flight so their completions are measured.
    std::vector<double> utilizations;
    utilizations.reserve(servers_.size());
    for (const auto& server : servers_) {
      utilizations.push_back(server->busy_time() / config_.sim_time);
    }
    simulator_.run_all();

    SimulationResult result;
    result.mean_response_time = metrics_.response_time().mean();
    result.mean_response_ratio = metrics_.response_ratio().mean();
    result.fairness = metrics_.fairness();
    result.response_ratio_p95 = metrics_.response_ratio_p95();
    result.response_ratio_p99 = metrics_.response_ratio_p99();
    result.completed_jobs = metrics_.measured_completions();
    result.dispatched_jobs = metrics_.measured_dispatches();
    result.machine_fractions = metrics_.machine_fractions();
    result.machine_utilizations = std::move(utilizations);
    if (tracker_) {
      tracker_->flush_until(config_.sim_time);
      result.deviations = tracker_->deviations();
    }
    result.events_fired = simulator_.events_fired();
    result.jobs_lost = metrics_.jobs_lost();
    result.jobs_retried = metrics_.jobs_retried();
    result.jobs_dropped = metrics_.jobs_dropped();
    const double window = config_.sim_time - config_.warmup_time();
    result.goodput =
        window > 0.0
            ? static_cast<double>(result.completed_jobs) / window
            : 0.0;
    result.machine_downtime =
        faults_on_ ? downtime_
                   : std::vector<double>(config_.speeds.size(), 0.0);
    result.mean_response_by_attempts = metrics_.mean_response_by_attempts();
    result.jobs_rejected = metrics_.jobs_rejected();
    result.jobs_shed = metrics_.jobs_shed();
    result.retry_budget_denied = metrics_.retry_budget_denied();
    result.total_arrivals = total_arrivals_;
    result.total_completed = total_completed_;
    result.total_shed = total_shed_;
    result.total_dropped = total_dropped_;
    if (adaptive_ != nullptr) {
      result.realloc_commits = adaptive_->governor().commits();
      result.realloc_rejected = adaptive_->governor().rejections();
      result.governor_freezes = adaptive_->governor().freezes();
    }
    result.msgs_lost = msgs_lost_;
    result.msgs_duplicated = msgs_duplicated_;
    result.suspicions = suspicions_;
    for (dispatch::HedgedDispatcher* hedged : hedged_) {
      if (hedged != nullptr) {
        result.hedges_issued += hedged->issued();
        result.hedges_won += hedged->won();
        result.hedges_cancelled += hedged->cancelled();
      }
    }
    result.response_time_p99 = metrics_.response_time_p99();
    // After run_all() the only jobs still resident sit on machines
    // stopped at speed 0 (e.g. crashed with no recovery scheduled).
    uint64_t in_flight = 0;
    for (const auto& server : servers_) {
      in_flight += server->queue_length();
    }
    if (net_on_) {
      // A stranded hedged job may sit on two dead machines at once; the
      // conservation identity counts jobs, not copies.
      for (const auto& [id, flight] : flights_) {
        if (flight.resident_mask == 0b11) {
          --in_flight;
        }
      }
    }
    result.in_flight_at_end = in_flight;
    return result;
  }

 private:
  /// RunContext event kinds. Every recurring event in a run is one of
  /// these; the payloads are packed into the event's inline args.
  enum EventKind : uint32_t {
    kGeneratedArrival,  // no args
    kTraceArrival,      // Job
    kSpeedChange,       // SpeedChangeArgs
    kFaultTransition,   // FaultEvent
    kStateReport,       // StateReportArgs (delayed up/down feedback)
    kLossDetected,      // Job (scheduler notices a crash-lost job)
    kRetryDispatch,     // Job (re-dispatch after backoff)
    kDepartureReport,   // DepartureReportArgs (delayed load feedback)
    kMetricsSample,     // no args (observability sampler tick)
    kLoadSnapshot,      // no args (staleness model: sample queue lengths)
    kLoadReport,        // LoadReportArgs (delayed queue-length snapshot)
    // ---- Network layer (config.network; fire only when net_on_) ----
    kPartitionEvent,     // PartitionEvent (a partition window edge)
    kNetDeliverDispatch, // NetMsgArgs (a dispatch copy reaches a machine)
    kNetCopyLost,        // NetMsgArgs (a dead copy's fate is noticed)
    kHedgeTimer,         // Job (hedge deadline for a primary dispatch)
    kHeartbeat,          // HeartbeatArgs (a machine emits a heartbeat)
    kHeartbeatArrival,   // HeartbeatArgs (heartbeat reaches the scheduler)
    kSuspectCheck,       // SuspectArgs (failure-detector timeout check)
  };
  struct SpeedChangeArgs {
    size_t machine;
    double speed;
  };
  struct StateReportArgs {
    uint32_t scheduler;
    uint32_t machine;
    bool up;
  };
  struct DepartureReportArgs {
    uint32_t scheduler;
    uint32_t machine;
    double size;  // work the departed job consumed, base-speed seconds
  };
  struct LoadReportArgs {
    uint32_t scheduler;
    uint32_t machine;
    uint64_t queue_length;
  };
  /// One in-flight dispatch-message copy. `copy` indexes the flight's
  /// copy slot (0 = primary, 1 = hedge); `notify_fail` tells the loss
  /// handler to report a dispatch failure to the scheduler (how a
  /// partition trips circuit breakers without any crash).
  struct NetMsgArgs {
    queueing::Job job;
    uint32_t machine;
    uint8_t copy;
    uint8_t notify_fail;
  };
  struct HeartbeatArgs {
    uint32_t machine;
  };
  struct SuspectArgs {
    uint32_t machine;
    uint64_t generation;  // heartbeat count when the check was armed
  };
  /// One job in flight on the asynchronous dispatch path: up to two
  /// message copies (0 = primary, 1 = hedge) racing to complete it.
  struct Flight {
    queueing::Job job;          // primary payload (id/arrival/size/attempt)
    uint32_t scheduler = 0;
    uint32_t machine[2] = {0, 0};  // destination per copy slot
    uint8_t delivered_mask = 0;    // copies seen at a machine (dedup)
    uint8_t resident_mask = 0;     // copies currently on a server
    uint8_t pending = 0;           // copies whose fate is unsettled
    bool completed = false;
    sim::EventHandle hedge_timer;
  };
  struct HeartbeatState {
    double last_arrival = 0.0;  // when the last heartbeat was seen
    double mean = 0.0;          // EWMA inter-arrival estimate
    bool suspected = false;
    uint64_t generation = 0;    // heartbeats seen (stale-check token)
  };

  void on_event(uint32_t kind, const sim::EventArgs& args) override {
    switch (static_cast<EventKind>(kind)) {
      case kGeneratedArrival:
        on_generated_arrival();
        return;
      case kTraceArrival: {
        // Push the successor arrival before dispatching: the push drops
        // into the root hole this pop just left (one sift total), and
        // the departure reschedule inside dispatch_job() then runs
        // purely in place. Order is observationally identical — the
        // successor's time does not depend on the dispatch, and the two
        // events' relative sequence numbers only matter if their times
        // collide bit-for-bit.
        const auto job = args.unpack<queueing::Job>();
        ++total_arrivals_;
        schedule_next_trace_arrival();
        if (trace_ != nullptr) [[unlikely]] {
          trace_arrival(job);
        }
        dispatch_job(job);
        return;
      }
      case kSpeedChange: {
        const auto change = args.unpack<SpeedChangeArgs>();
        apply_speed_change(change.machine, change.speed);
        return;
      }
      case kFaultTransition:
        on_fault_event(args.unpack<FaultEvent>());
        return;
      case kStateReport: {
        const auto report = args.unpack<StateReportArgs>();
        schedulers_[report.scheduler]->on_machine_state_report(report.machine,
                                                              report.up);
        return;
      }
      case kLossDetected:
        on_loss_detected(args.unpack<queueing::Job>());
        return;
      case kRetryDispatch:
        dispatch_job(args.unpack<queueing::Job>());
        return;
      case kDepartureReport: {
        const auto report = args.unpack<DepartureReportArgs>();
        schedulers_[report.scheduler]->on_departure_report(
            report.machine, simulator_.now(), report.size);
        return;
      }
      case kMetricsSample:
        on_metrics_sample();
        return;
      case kLoadSnapshot:
        on_load_snapshot();
        return;
      case kLoadReport: {
        const auto report = args.unpack<LoadReportArgs>();
        schedulers_[report.scheduler]->on_load_report(report.machine,
                                                      report.queue_length);
        return;
      }
      case kPartitionEvent:
        on_partition_event(args.unpack<PartitionEvent>());
        return;
      case kNetDeliverDispatch:
        net_on_deliver(args.unpack<NetMsgArgs>());
        return;
      case kNetCopyLost:
        net_on_copy_lost(args.unpack<NetMsgArgs>());
        return;
      case kHedgeTimer:
        net_on_hedge_timer(args.unpack<queueing::Job>());
        return;
      case kHeartbeat:
        on_heartbeat(args.unpack<HeartbeatArgs>().machine);
        return;
      case kHeartbeatArrival:
        on_heartbeat_arrival(args.unpack<HeartbeatArgs>().machine);
        return;
      case kSuspectCheck: {
        const auto check = args.unpack<SuspectArgs>();
        on_suspect_check(check.machine, check.generation);
        return;
      }
    }
    HS_CHECK(false, "unknown event kind " << kind);
  }

  // ---- Observability (config.observer; see docs/OBSERVABILITY.md) ----

  /// The standard time-series gauge set. Gauges capture raw pointers
  /// into this run, so the registry is cleared first and must be
  /// re-registered per run (which also makes reuse across replications
  /// safe).
  void register_standard_gauges() {
    registry_->clear();
    for (size_t m = 0; m < servers_.size(); ++m) {
      queueing::Server* server = servers_[m].get();
      const std::string prefix = "m" + std::to_string(m);
      registry_->register_gauge(prefix + ".queue_depth", [server] {
        return static_cast<double>(server->queue_length());
      });
      registry_->register_gauge(prefix + ".utilization",
                                [server] { return server->utilization(); });
      registry_->register_gauge(prefix + ".speed",
                                [server] { return server->speed(); });
      registry_->register_gauge(prefix + ".completed", [server] {
        return static_cast<double>(server->completed_jobs());
      });
    }
    registry_->register_gauge("cluster.in_flight", [this] {
      size_t in_flight = 0;
      for (const auto& server : servers_) {
        in_flight += server->queue_length();
      }
      return static_cast<double>(in_flight);
    });
    registry_->register_counter("cluster.dispatched", &obs_dispatched_);
    registry_->register_gauge("cluster.completed", [this] {
      uint64_t completed = 0;
      for (const auto& server : servers_) {
        completed += server->completed_jobs();
      }
      return static_cast<double>(completed);
    });
    // Fault counters are always present so the CSV schema does not
    // depend on the fault config (all-zero columns without faults).
    registry_->register_gauge("cluster.lost", [this] {
      return static_cast<double>(metrics_.jobs_lost());
    });
    registry_->register_gauge("cluster.retried", [this] {
      return static_cast<double>(metrics_.jobs_retried());
    });
    registry_->register_gauge("cluster.dropped", [this] {
      return static_cast<double>(metrics_.jobs_dropped());
    });
    // Overload gauges are likewise always present (all-zero columns when
    // overload protection is off) so the CSV schema stays stable.
    for (size_t m = 0; m < servers_.size(); ++m) {
      queueing::Server* server = servers_[m].get();
      const std::string prefix = "m" + std::to_string(m);
      registry_->register_gauge(prefix + ".capacity", [server] {
        return static_cast<double>(server->capacity());
      });
    }
    registry_->register_gauge("cluster.rejected", [this] {
      return static_cast<double>(metrics_.jobs_rejected());
    });
    registry_->register_gauge("cluster.shed", [this] {
      return static_cast<double>(metrics_.jobs_shed());
    });
    registry_->register_gauge("cluster.shed_rate", [this] {
      return total_arrivals_ > 0
                 ? static_cast<double>(total_shed_) /
                       static_cast<double>(total_arrivals_)
                 : 0.0;
    });
    registry_->register_gauge("cluster.retry_budget_denied", [this] {
      return static_cast<double>(metrics_.retry_budget_denied());
    });
    // Breaker state per machine (0 closed, 1 half-open, 2 open; 0 when
    // no breaker decorates scheduler 0).
    const overload::CircuitBreakerDispatcher* breaker =
        find_breaker(schedulers_.front());
    for (size_t m = 0; m < servers_.size(); ++m) {
      const std::string prefix = "m" + std::to_string(m);
      registry_->register_gauge(prefix + ".breaker_state", [breaker, m] {
        if (breaker == nullptr) {
          return 0.0;
        }
        switch (breaker->state(m)) {
          case overload::BreakerState::kClosed:   return 0.0;
          case overload::BreakerState::kHalfOpen: return 1.0;
          case overload::BreakerState::kOpen:     return 2.0;
        }
        return 0.0;
      });
    }
    // Adaptation gauges (all-zero columns without an adaptive
    // dispatcher). These capture `this`, not `adaptive_`: gauges are
    // registered before the constructor unwraps scheduler 0.
    registry_->register_gauge("cluster.lambda_hat", [this] {
      return adaptive_ != nullptr ? adaptive_->lambda_hat() : 0.0;
    });
    registry_->register_gauge("cluster.rho_assumed", [this] {
      return adaptive_ != nullptr ? adaptive_->assumed_rho() : 0.0;
    });
    registry_->register_gauge("cluster.realloc_commits", [this] {
      return adaptive_ != nullptr
                 ? static_cast<double>(adaptive_->governor().commits())
                 : 0.0;
    });
    registry_->register_gauge("cluster.realloc_rejected", [this] {
      return adaptive_ != nullptr
                 ? static_cast<double>(adaptive_->governor().rejections())
                 : 0.0;
    });
    registry_->register_gauge("cluster.governor_frozen", [this] {
      return adaptive_ != nullptr && adaptive_->governor().frozen() ? 1.0
                                                                    : 0.0;
    });
    for (size_t m = 0; m < servers_.size(); ++m) {
      const std::string prefix = "m" + std::to_string(m);
      registry_->register_gauge(prefix + ".speed_hat", [this, m] {
        return adaptive_ != nullptr ? adaptive_->speed_hat(m) : 0.0;
      });
    }
    // Network gauges (all-zero columns when the network layer is off) so
    // the CSV schema stays stable across configs.
    registry_->register_gauge("cluster.suspected", [this] {
      double suspected = 0.0;
      for (const HeartbeatState& state : hb_) {
        suspected += state.suspected ? 1.0 : 0.0;
      }
      return suspected;
    });
    registry_->register_gauge("cluster.hedge_rate", [this] {
      uint64_t issued = 0;
      for (const dispatch::HedgedDispatcher* hedged : hedged_) {
        if (hedged != nullptr) {
          issued += hedged->issued();
        }
      }
      return total_arrivals_ > 0
                 ? static_cast<double>(issued) /
                       static_cast<double>(total_arrivals_)
                 : 0.0;
    });
    registry_->reserve_samples(
        static_cast<size_t>(config_.sim_time / sample_interval_) + 2);
  }

  // Cold out-of-line recorders for the hot-path hook sites: the branch
  // stays inline (one never-taken test when tracing is off), the stores
  // live in .text.unlikely so they never crowd the dispatch loop's
  // i-cache. Only ever called with a sink attached.
  [[gnu::cold]] [[gnu::noinline]] void trace_arrival(
      const queueing::Job& job) {
    trace_->record(job.arrival_time, obs::TraceEventKind::kArrival, job.id,
                   obs::TraceSink::kScheduler, 0, job.size);
  }
  [[gnu::cold]] [[gnu::noinline]] void trace_dispatch(
      const queueing::Job& job, size_t machine) {
    trace_->record(simulator_.now(), obs::TraceEventKind::kDispatch, job.id,
                   static_cast<int32_t>(machine),
                   static_cast<uint16_t>(job.attempt), job.size);
  }
  [[gnu::cold]] [[gnu::noinline]] void trace_completion(
      const queueing::Completion& completion) {
    trace_->record(completion.departure_time,
                   obs::TraceEventKind::kCompletion, completion.job.id,
                   completion.machine,
                   static_cast<uint16_t>(completion.job.attempt));
  }

  void on_metrics_sample() {
    registry_->sample(simulator_.now());
    ++sample_tick_;
    // Absolute multiples of the interval, so ticks never drift and the
    // fired-event count is exactly floor(sim_time / interval).
    const double next =
        static_cast<double>(sample_tick_ + 1) * sample_interval_;
    if (next <= config_.sim_time) {
      simulator_.schedule_at(next, *this, kMetricsSample);
    }
  }

  /// Drift model (config.uncertainty.drift): the true arrival rate is
  /// λ(t) = λ·factor_at(t), injected by dividing each interarrival gap
  /// by the factor at the instant the gap is scheduled. No extra RNG
  /// draws — an all-ones timeline replays draw-for-draw identically.
  [[nodiscard]] double drifted_gap(double gap, double now) const {
    return gap / config_.uncertainty.drift.factor_at(now);
  }

  void schedule_first_arrival() {
    if (config_.trace != nullptr) {
      schedule_next_trace_arrival();
      return;
    }
    double t = arrivals_->next_interarrival(arrival_gen_);
    if (drift_on_) [[unlikely]] {
      t = drifted_gap(t, 0.0);
    }
    t = choice_double(ChoiceKind::kArrivalGap, 0, t);
    if (t <= config_.sim_time) {
      simulator_.schedule_at(t, *this, kGeneratedArrival);
    }
  }

  /// Staleness model (config.uncertainty.staleness): snapshot every
  /// machine's queue length and deliver it to each feedback scheduler
  /// `report_delay` seconds later. Snapshot ticks sit at absolute
  /// multiples of Δ, like the metrics sampler.
  void on_load_snapshot() {
    const uncertainty::StalenessConfig& staleness =
        config_.uncertainty.staleness;
    for (size_t s = 0; s < schedulers_.size(); ++s) {
      if (!schedulers_[s]->uses_feedback()) {
        continue;
      }
      for (size_t m = 0; m < servers_.size(); ++m) {
        simulator_.schedule_in(
            staleness.report_delay, *this, kLoadReport,
            sim::EventArgs::pack(LoadReportArgs{
                static_cast<uint32_t>(s), static_cast<uint32_t>(m),
                static_cast<uint64_t>(servers_[m]->queue_length())}));
      }
    }
    ++snapshot_tick_;
    const double next = static_cast<double>(snapshot_tick_ + 1) *
                        staleness.update_interval;
    if (next <= config_.sim_time) {
      simulator_.schedule_at(next, *this, kLoadSnapshot);
    }
  }

  void schedule_next_trace_arrival() {
    // Schedule one at a time to keep the event heap small.
    const auto& jobs = config_.trace->jobs();
    if (trace_index_ < jobs.size() &&
        jobs[trace_index_].arrival_time <= config_.sim_time) {
      const queueing::Job job = jobs[trace_index_++];
      simulator_.schedule_at(job.arrival_time, *this, kTraceArrival,
                             sim::EventArgs::pack(job));
    }
  }

  void on_generated_arrival() {
    ++total_arrivals_;
    queueing::Job job;
    job.id = next_job_id_++;
    job.arrival_time = simulator_.now();
    job.size = size_model_.sample(size_gen_);
    // Schedule the successor arrival before dispatching the job (see
    // kTraceArrival): the push fills the root hole this pop left, and
    // the departure reschedule in dispatch_job() stays in place. The
    // arrival and size streams are independent generators, so the draw
    // order across them is immaterial.
    double gap = arrivals_->next_interarrival(arrival_gen_);
    if (drift_on_) [[unlikely]] {
      gap = drifted_gap(gap, job.arrival_time);
    }
    gap = choice_double(ChoiceKind::kArrivalGap, 0, gap);
    const double next = job.arrival_time + gap;
    if (next <= config_.sim_time) {
      simulator_.schedule_at(next, *this, kGeneratedArrival);
    }
    if (trace_ != nullptr) [[unlikely]] {
      trace_arrival(job);
    }
    dispatch_job(job);
  }

  /// Which scheduler handles the next arriving job.
  size_t next_scheduler() {
    if (schedulers_.size() == 1) {
      return 0;
    }
    if (split_ == SchedulerSplit::kRoundRobin) {
      const size_t s = split_cursor_;
      split_cursor_ = (split_cursor_ + 1) % schedulers_.size();
      return s;
    }
    return split_gen_.next_below(schedulers_.size());
  }

  void dispatch_job(const queueing::Job& job) {
    const size_t scheduler = next_scheduler();
    dispatch::Dispatcher& dispatcher = *schedulers_[scheduler];
    dispatcher.on_arrival(simulator_.now());
    const size_t machine = dispatcher.pick_sized(dispatch_gen_, job.size);
    const bool measured = job.arrival_time >= config_.warmup_time();
    if (overload_on_ && !overload_admit(job, machine, measured))
        [[unlikely]] {
      return;  // shed at the boundary — never dispatched
    }
    metrics_.on_dispatch(machine, measured);
    if (trace_ != nullptr) [[unlikely]] {
      trace_dispatch(job, machine);
    }
    if (registry_ != nullptr) [[unlikely]] {
      ++obs_dispatched_;
    }
    if (tracker_) {
      tracker_->record(job.arrival_time, machine);
    }
    if (net_on_) [[unlikely]] {
      // Asynchronous path: the dispatch is a message over the faulty
      // link. Admission/shedding above stays scheduler-side (no network
      // crossing); everything from here — crashed-machine losses, queue
      // rejections, accept/reject feedback — happens on delivery. The
      // flight table tracks the copies until exactly one outcome
      // (completion, shed upstream, or drop) settles the job.
      net_dispatch(job, machine, scheduler);
      return;
    }
    if (any_feedback_ && !stale_feedback_) {
      // Departure reports must reach the scheduler that sent the job
      // (schedulers share no state). Under the staleness model there are
      // no per-departure reports, so nothing is tracked.
      job_scheduler_[job.id] = scheduler;
    }
    if (faults_on_ && down_[machine]) {
      // Dispatched into a crash the scheduler has not (yet) detected:
      // the job is lost on arrival, like everything else on the machine.
      if (any_overload_feedback_) {
        dispatcher.on_dispatch_result(machine, false, simulator_.now());
      }
      on_job_lost(job, machine);
      return;
    }
    if (!servers_[machine]->arrive(job)) [[unlikely]] {
      if (any_overload_feedback_) {
        dispatcher.on_dispatch_result(machine, false, simulator_.now());
      }
      on_job_rejected(job, machine, measured);
      return;
    }
    if (any_overload_feedback_) [[unlikely]] {
      dispatcher.on_dispatch_result(machine, true, simulator_.now());
    }
  }

  // ---- Overload protection (config.overload; docs/FAULT_MODEL.md §6) ----

  /// Admission gate for one routed job. Sheds apply to first attempts
  /// only (a retry was already admitted once; its fate belongs to the
  /// retry policy and budget). Returns false when the job was shed.
  bool overload_admit(const queueing::Job& job, size_t machine,
                      bool measured) {
    if (admission_ == nullptr || job.attempt != 0) {
      if (retry_budget_ && job.attempt == 0) {
        retry_budget_->on_admission();
      }
      return true;
    }
    queueing::Server& server = *servers_[machine];
    const overload::AdmissionContext ctx{
        simulator_.now(), machine,          server.queue_length(),
        server.capacity(), server.speed(),  job.size};
    const bool verdict = admission_->admit(ctx, *overload_gen_);
    if (choice_bool(ChoiceKind::kAdmitDecision, machine, verdict)) {
      if (retry_budget_) {
        retry_budget_->on_admission();
      }
      return true;
    }
    metrics_.on_job_shed(measured);
    ++total_shed_;
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kShed, job.id,
                     static_cast<int32_t>(machine),
                     static_cast<uint16_t>(job.attempt), job.size);
    }
    return false;
  }

  /// A dispatch attempt bounced off `machine`'s full bounded queue. The
  /// rejection is synchronous (the scheduler sees it immediately, unlike
  /// a crash loss, which waits for detection), so the retry decision
  /// happens on the spot.
  void on_job_rejected(const queueing::Job& job, size_t machine,
                       bool measured) {
    metrics_.on_job_rejected(measured);
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kReject, job.id,
                     static_cast<int32_t>(machine),
                     static_cast<uint16_t>(job.attempt));
    }
    if (any_feedback_ && !stale_feedback_) {
      job_scheduler_.erase(job.id);  // no completion will ever arrive
    }
    decide_retry(job, measured);
  }

  // ---- Fault injection (config.faults; see docs/FAULT_MODEL.md) ----

  // ---- Choice-point instrumentation (cluster/choice.h) ----
  //
  // Every instrumented stochastic decision funnels through these two
  // helpers. The natural draw always happens first (stream positions
  // never shift); with hook_ null each helper is a single branch and
  // returns the draw unchanged, keeping hookless runs bit-identical.

  bool choice_bool(ChoiceKind kind, size_t entity, bool drawn) {
    if (hook_ == nullptr) [[likely]] {
      return drawn;
    }
    return hook_->on_bool(kind, static_cast<uint32_t>(entity), drawn);
  }

  double choice_double(ChoiceKind kind, size_t entity, double drawn) {
    if (hook_ == nullptr) [[likely]] {
      return drawn;
    }
    double value = hook_->on_double(kind, static_cast<uint32_t>(entity),
                                    drawn);
    if (!std::isfinite(value) || value < 0.0) {
      value = 0.0;  // a delay/gap override must stay a valid delay/gap
    }
    return value;
  }

  /// §4.2 feedback latency: the event is noticed at the next periodic
  /// check — U(0, detection_interval) — plus an exponential message
  /// transfer delay.
  double feedback_delay(rng::Xoshiro256& gen, size_t machine) {
    const NetworkConfig& net = config_.network;
    double delay = 0.0;
    if (net.detection_interval > 0.0) {
      delay += gen.uniform(0.0, net.detection_interval);
    }
    if (net.message_delay_mean > 0.0) {
      delay += -std::log(gen.next_double_open0()) * net.message_delay_mean;
    }
    return choice_double(ChoiceKind::kFeedbackDelay, machine, delay);
  }

  void apply_speed_change(size_t machine, double new_speed) {
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kSpeedChange,
                     obs::TraceSink::kNoJob, static_cast<int32_t>(machine),
                     0, new_speed);
    }
    if (faults_on_) {
      nominal_speed_[machine] = new_speed;
      if (down_[machine]) {
        return;  // takes effect on recovery
      }
    }
    servers_[machine]->set_speed(new_speed);
  }

  void on_fault_event(const FaultEvent& event) {
    const size_t machine = event.machine;
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(),
                     event.up ? obs::TraceEventKind::kRecovery
                              : obs::TraceEventKind::kCrash,
                     obs::TraceSink::kNoJob, static_cast<int32_t>(machine));
    }
    if (!event.up) {
      down_[machine] = true;
      // The crash loses every resident job; the machine then sits at
      // speed 0 (occupied-but-dead time does not count as busy — the
      // queue is empty).
      std::vector<queueing::Job> lost = servers_[machine]->evict_all();
      servers_[machine]->set_speed(0.0);
      for (const queueing::Job& job : lost) {
        if (net_on_) {
          net_resident_lost(job, machine);
        } else {
          on_job_lost(job, machine);
        }
      }
    } else {
      down_[machine] = false;
      servers_[machine]->set_speed(nominal_speed_[machine]);
    }
    if (hb_on_) {
      // The heartbeat detector owns the fault signal: a crash silences
      // the machine's heartbeats and suspicion follows; recovery resumes
      // them and the next arrival rescinds it. No out-of-band reports.
      return;
    }
    // Failure-aware schedulers learn of the transition after their own
    // detection delay; each detects independently.
    for (size_t s = 0; s < schedulers_.size(); ++s) {
      if (!schedulers_[s]->uses_fault_feedback()) {
        continue;
      }
      const double delay = feedback_delay(fault_delay_gen_, machine);
      simulator_.schedule_in(
          delay, *this, kStateReport,
          sim::EventArgs::pack(StateReportArgs{
              static_cast<uint32_t>(s), static_cast<uint32_t>(machine),
              event.up}));
    }
  }

  /// A dispatch attempt of `job` just died with machine `machine`. The
  /// scheduler learns of the loss after a detection delay, then decides
  /// between retry and drop.
  void on_job_lost(const queueing::Job& job, size_t machine) {
    const bool measured = job.arrival_time >= config_.warmup_time();
    metrics_.on_job_lost(measured);
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kJobLost, job.id,
                     static_cast<int32_t>(machine),
                     static_cast<uint16_t>(job.attempt));
    }
    if (any_feedback_ && !stale_feedback_) {
      job_scheduler_.erase(job.id);  // no completion will ever arrive
    }
    const double delay = feedback_delay(fault_delay_gen_, machine);
    simulator_.schedule_in(delay, *this, kLossDetected,
                           sim::EventArgs::pack(job));
  }

  void on_loss_detected(const queueing::Job& job) {
    const bool measured = job.arrival_time >= config_.warmup_time();
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kLossDetected,
                     job.id, obs::TraceSink::kScheduler,
                     static_cast<uint16_t>(job.attempt));
    }
    decide_retry(job, measured);
  }

  /// Retry-or-drop decision for a failed dispatch attempt (crash loss or
  /// queue rejection), under the per-job retry policy plus the optional
  /// cluster-wide retry budget.
  void decide_retry(const queueing::Job& job, bool measured) {
    const RetryPolicy& policy = config_.faults.retry;
    if (job.attempt + 1 >= policy.max_attempts) {
      drop_job(job, measured);
      return;
    }
    const double backoff =
        policy.backoff_initial *
        std::pow(policy.backoff_factor, static_cast<double>(job.attempt));
    if (policy.job_timeout > 0.0 &&
        simulator_.now() + backoff - job.arrival_time > policy.job_timeout) {
      drop_job(job, measured);
      return;
    }
    if (retry_budget_ && !retry_budget_->try_spend()) {
      // The cluster-wide budget is exhausted: retrying now would feed a
      // retry storm, so the job is dropped on the spot.
      metrics_.on_retry_budget_denied(measured);
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(),
                       obs::TraceEventKind::kRetryBudgetExhausted, job.id,
                       obs::TraceSink::kScheduler,
                       static_cast<uint16_t>(job.attempt));
      }
      drop_job(job, measured);
      return;
    }
    metrics_.on_job_retried(measured);
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kRetry, job.id,
                     obs::TraceSink::kScheduler,
                     static_cast<uint16_t>(job.attempt), backoff);
    }
    queueing::Job retry = job;
    retry.attempt += 1;
    simulator_.schedule_in(backoff, *this, kRetryDispatch,
                           sim::EventArgs::pack(retry));
  }

  void drop_job(const queueing::Job& job, bool measured) {
    metrics_.on_job_dropped(measured);
    // Planted bug for the explorer harness (FaultConfig::test_only_drop_leak):
    // third-or-later-attempt drops vanish from the whole-run counter,
    // breaking the conservation identity the invariant registry checks.
    if (!config_.faults.test_only_drop_leak || job.attempt < 2) [[likely]] {
      ++total_dropped_;
    }
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kDrop, job.id,
                     obs::TraceSink::kScheduler,
                     static_cast<uint16_t>(job.attempt));
    }
  }

  // ---- Network layer (config.network; docs/FAULT_MODEL.md §8) ----
  //
  // With net_on_, every dispatch is a message copy over the faulty
  // dispatcher→machine link and every job in flight has a Flight entry
  // keyed by job id. A flight holds up to two copies (primary + hedge);
  // `pending` counts copies whose fate is still unsettled (in transit or
  // awaiting loss detection), `resident_mask` the copies currently
  // occupying a server. The flight resolves exactly once:
  //   * completion — the first copy to finish wins, the loser is evicted
  //     and late deliveries are deduped (exactly-once accounting), or
  //   * failure — when the last copy dies (lost in transit, rejected, or
  //     crash-evicted) the job goes to the ordinary retry/drop path.

  /// Probability draw against one link parameter; no draw when the
  /// parameter is 0, so disabled features never perturb the stream. The
  /// choice hook sees the verdict either way — a schedule can force a
  /// loss on a loss-free link without adding RNG draws.
  bool link_event(double probability, ChoiceKind kind, size_t machine) {
    const bool drawn =
        probability > 0.0 && net_gen_->next_double() < probability;
    return choice_bool(kind, machine, drawn);
  }

  void on_partition_event(const PartitionEvent& event) {
    partitioned_[event.machine] = event.isolated ? 1 : 0;
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(),
                     event.isolated ? obs::TraceEventKind::kPartitionStart
                                    : obs::TraceEventKind::kPartitionEnd,
                     obs::TraceSink::kNoJob,
                     static_cast<int32_t>(event.machine));
    }
  }

  /// Start a fresh flight for this dispatch attempt and send the primary
  /// copy. Retries get a new flight (the previous one resolved before
  /// decide_retry ran).
  void net_dispatch(const queueing::Job& job, size_t machine,
                    size_t scheduler) {
    Flight& flight = flights_[job.id];
    flight.job = job;
    flight.scheduler = static_cast<uint32_t>(scheduler);
    flight.machine[0] = static_cast<uint32_t>(machine);
    flight.machine[1] = static_cast<uint32_t>(machine);
    flight.delivered_mask = 0;
    flight.resident_mask = 0;
    flight.pending = 1;
    flight.completed = false;
    dispatch::HedgedDispatcher* hedged = hedged_[scheduler];
    if (hedged != nullptr && hedged->config().enabled()) {
      flight.hedge_timer = simulator_.schedule_in(
          hedged->config().delay, *this, kHedgeTimer,
          sim::EventArgs::pack(job));
    } else {
      flight.hedge_timer = sim::EventHandle{};
    }
    net_send_copy(job, machine, /*copy=*/0);
  }

  /// Put one dispatch-message copy on the wire. The caller has already
  /// accounted the copy in the flight's `pending`.
  void net_send_copy(const queueing::Job& job, size_t machine,
                     uint8_t copy) {
    const LinkFaults& link = config_.network.dispatch_link;
    // Partition first, without a draw: an isolated machine loses the
    // message deterministically, keeping partition experiments
    // stream-for-stream comparable to non-partitioned ones.
    if (partitioned_[machine] != 0 ||
        link_event(link.loss, ChoiceKind::kDispatchLoss, machine)) {
      net_lose_copy(job, machine, copy, /*notify_fail=*/true);
      return;
    }
    simulator_.schedule_in(
        choice_double(ChoiceKind::kLinkDelay, machine,
                      link.sample_delay(*net_gen_)),
        *this, kNetDeliverDispatch,
        sim::EventArgs::pack(NetMsgArgs{job, static_cast<uint32_t>(machine),
                                        copy, 0}));
    if (link_event(link.duplicate, ChoiceKind::kDispatchDup, machine)) {
      ++msgs_duplicated_;
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(), obs::TraceEventKind::kMsgDup,
                       job.id, static_cast<int32_t>(machine),
                       static_cast<uint16_t>(job.attempt));
      }
      // Independent delay draw — the duplicate may overtake the
      // original; delivery dedups by the flight's delivered_mask.
      simulator_.schedule_in(
          choice_double(ChoiceKind::kLinkDelay, machine,
                        link.sample_delay(*net_gen_)),
          *this, kNetDeliverDispatch,
          sim::EventArgs::pack(NetMsgArgs{
              job, static_cast<uint32_t>(machine), copy, 0}));
    }
  }

  /// A copy died in transit: count it, and schedule the loss detection
  /// (the scheduler notices the silence after the §4.2 delay, drawn from
  /// the network stream so crash-loss detection stays untouched).
  void net_lose_copy(const queueing::Job& job, size_t machine, uint8_t copy,
                     bool notify_fail) {
    ++msgs_lost_;
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kMsgLost,
                     job.id, static_cast<int32_t>(machine),
                     static_cast<uint16_t>(job.attempt));
    }
    simulator_.schedule_in(
        feedback_delay(*net_gen_, machine), *this, kNetCopyLost,
        sim::EventArgs::pack(NetMsgArgs{
            job, static_cast<uint32_t>(machine), copy,
            static_cast<uint8_t>(notify_fail ? 1 : 0)}));
  }

  void net_on_deliver(const NetMsgArgs& msg) {
    const auto it = flights_.find(msg.job.id);
    if (it == flights_.end()) {
      return;  // late duplicate of an already-resolved flight
    }
    Flight& flight = it->second;
    const uint8_t bit = static_cast<uint8_t>(1u << msg.copy);
    if ((flight.delivered_mask & bit) != 0) {
      return;  // duplicate delivery of this copy — dedup
    }
    flight.delivered_mask |= bit;
    const size_t machine = msg.machine;
    const bool measured = msg.job.arrival_time >= config_.warmup_time();
    if (flight.completed) {
      // The sibling copy already finished: this arrival is dead on
      // arrival and never occupies the machine.
      --flight.pending;
      net_record_cancelled(flight, msg.job);
      net_maybe_gc(it);
      return;
    }
    if (faults_on_ && down_[machine]) {
      // Delivered into a crash: lost like everything resident there. The
      // copy's fate settles at loss detection, not here.
      metrics_.on_job_lost(measured);
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(), obs::TraceEventKind::kJobLost,
                       msg.job.id, static_cast<int32_t>(machine),
                       static_cast<uint16_t>(msg.job.attempt));
      }
      simulator_.schedule_in(
          feedback_delay(fault_delay_gen_, machine), *this, kNetCopyLost,
          sim::EventArgs::pack(NetMsgArgs{msg.job, msg.machine, msg.copy,
                                          /*notify_fail=*/1}));
      return;
    }
    if (!servers_[machine]->arrive(msg.job)) [[unlikely]] {
      if (any_overload_feedback_) {
        schedulers_[flight.scheduler]->on_dispatch_result(machine, false,
                                                          simulator_.now());
      }
      metrics_.on_job_rejected(measured);
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(), obs::TraceEventKind::kReject,
                       msg.job.id, static_cast<int32_t>(machine),
                       static_cast<uint16_t>(msg.job.attempt));
      }
      --flight.pending;
      net_on_copy_failed(it, measured);
      return;
    }
    flight.resident_mask |= bit;
    --flight.pending;
    if (any_overload_feedback_) [[unlikely]] {
      schedulers_[flight.scheduler]->on_dispatch_result(machine, true,
                                                        simulator_.now());
    }
  }

  void net_on_copy_lost(const NetMsgArgs& msg) {
    const auto it = flights_.find(msg.job.id);
    HS_CHECK(it != flights_.end(),
             "loss detected for untracked flight " << msg.job.id);
    Flight& flight = it->second;
    --flight.pending;
    if (msg.notify_fail != 0 && any_overload_feedback_) {
      // The scheduler sees the silent failure as a dispatch rejection —
      // this is how a partition trips circuit breakers without any
      // machine crashing.
      schedulers_[flight.scheduler]->on_dispatch_result(
          msg.machine, false, simulator_.now());
    }
    const bool measured = msg.job.arrival_time >= config_.warmup_time();
    net_on_copy_failed(it, measured);
  }

  /// A copy's fate settled as failure. If a sibling copy is still alive
  /// the flight stays open; otherwise it resolves into the ordinary
  /// retry/drop path.
  void net_on_copy_failed(std::unordered_map<uint64_t, Flight>::iterator it,
                          bool measured) {
    Flight& flight = it->second;
    if (flight.completed) {
      net_maybe_gc(it);
      return;
    }
    if (flight.pending > 0 || flight.resident_mask != 0) {
      return;  // a sibling copy may still finish the job
    }
    simulator_.cancel(flight.hedge_timer);
    const queueing::Job job = flight.job;
    flights_.erase(it);
    decide_retry(job, measured);
  }

  /// A resident copy was crash-evicted (on_fault_event with net on): it
  /// leaves the machine now and its fate settles at loss detection.
  void net_resident_lost(const queueing::Job& job, size_t machine) {
    const auto it = flights_.find(job.id);
    HS_CHECK(it != flights_.end(),
             "crash evicted untracked flight " << job.id);
    Flight& flight = it->second;
    HS_CHECK(!flight.completed,
             "completed flight " << job.id << " still resident");
    const uint8_t copy =
        (flight.resident_mask & 1) != 0 &&
                flight.machine[0] == static_cast<uint32_t>(machine)
            ? 0
            : 1;
    flight.resident_mask &= static_cast<uint8_t>(~(1u << copy));
    ++flight.pending;
    const bool measured = job.arrival_time >= config_.warmup_time();
    metrics_.on_job_lost(measured);
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kJobLost,
                     job.id, static_cast<int32_t>(machine),
                     static_cast<uint16_t>(job.attempt));
    }
    // Crash-loss detection stays on the fault stream and does not report
    // a dispatch failure: the scheduler learns of the crash through the
    // fault signal (state report or heartbeat suspicion), matching the
    // synchronous path's semantics.
    simulator_.schedule_in(
        feedback_delay(fault_delay_gen_, machine), *this, kNetCopyLost,
        sim::EventArgs::pack(NetMsgArgs{job, static_cast<uint32_t>(machine),
                                        copy, /*notify_fail=*/0}));
  }

  void net_on_hedge_timer(const queueing::Job& job) {
    const auto it = flights_.find(job.id);
    if (it == flights_.end()) {
      return;
    }
    Flight& flight = it->second;
    flight.hedge_timer = sim::EventHandle{};
    if (flight.completed) {
      return;
    }
    // A schedule may veto the hedge here (drawn verdict is always
    // "issue"): the timer fired but no second copy goes out, exactly as
    // if pick_hedge had found no distinct machine.
    if (!choice_bool(ChoiceKind::kHedgeIssue, flight.machine[0], true)) {
      return;
    }
    dispatch::HedgedDispatcher* hedged = hedged_[flight.scheduler];
    const size_t primary = flight.machine[0];
    const size_t second =
        hedged->pick_hedge(dispatch_gen_, flight.job.size, primary);
    if (second == primary) {
      return;  // no distinct second choice (e.g. everything masked out)
    }
    hedged->record_issued();
    const bool measured = flight.job.arrival_time >= config_.warmup_time();
    // The hedge copy counts as a dispatch attempt, like a retry does.
    metrics_.on_dispatch(second, measured);
    if (registry_ != nullptr) [[unlikely]] {
      ++obs_dispatched_;
    }
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kHedgeIssued,
                     flight.job.id, static_cast<int32_t>(second),
                     static_cast<uint16_t>(flight.job.attempt),
                     hedged->config().delay);
    }
    flight.machine[1] = static_cast<uint32_t>(second);
    ++flight.pending;
    net_send_copy(flight.job, second, /*copy=*/1);
  }

  /// First-completion-wins resolution: dedup is structural (the loser is
  /// evicted here, before it can ever complete), the winner's metrics
  /// were already counted by on_completion's common path.
  void net_on_completion(const queueing::Completion& completion) {
    const auto it = flights_.find(completion.job.id);
    HS_CHECK(it != flights_.end(),
             "completion for untracked flight " << completion.job.id);
    Flight& flight = it->second;
    HS_CHECK(!flight.completed,
             "duplicate completion for job " << completion.job.id);
    flight.completed = true;
    const uint8_t winner =
        (flight.resident_mask & 2) != 0 &&
                flight.machine[1] == static_cast<uint32_t>(completion.machine)
            ? 1
            : 0;
    flight.resident_mask &= static_cast<uint8_t>(~(1u << winner));
    if (winner == 1) {
      hedged_[flight.scheduler]->record_won();
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(), obs::TraceEventKind::kHedgeWon,
                       completion.job.id, completion.machine,
                       static_cast<uint16_t>(completion.job.attempt));
      }
    }
    const uint8_t loser = static_cast<uint8_t>(1 - winner);
    if ((flight.resident_mask & (1u << loser)) != 0) {
      const size_t other = flight.machine[loser];
      const bool evicted = servers_[other]->evict(completion.job.id);
      HS_CHECK(evicted, "losing copy of job " << completion.job.id
                                              << " missing from machine "
                                              << other);
      flight.resident_mask &= static_cast<uint8_t>(~(1u << loser));
      net_record_cancelled(flight, completion.job);
    }
    simulator_.cancel(flight.hedge_timer);
    flight.hedge_timer = sim::EventHandle{};
    const size_t scheduler = flight.scheduler;
    net_maybe_gc(it);  // invalidates `flight`
    if (any_feedback_ && !stale_feedback_ &&
        schedulers_[scheduler]->uses_feedback()) {
      net_send_report(scheduler, static_cast<size_t>(completion.machine),
                      completion.job.size);
    }
  }

  /// One departure report over the faulty machine→dispatcher link. The
  /// §4.2 base delay is drawn first (from the same stream as ever), then
  /// the link may drop, slow, or duplicate the report. A lost report is
  /// simply never seen — the Least-Load estimate stays stale, a
  /// duplicated one double-decrements it; both are the realistic harm.
  void net_send_report(size_t scheduler, size_t machine, double size) {
    const LinkFaults& link = config_.network.report_link;
    const double base = feedback_delay(delay_gen_, machine);
    if (partitioned_[machine] != 0 ||
        link_event(link.loss, ChoiceKind::kReportLoss, machine)) {
      ++msgs_lost_;
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(), obs::TraceEventKind::kMsgLost,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(machine));
      }
      return;
    }
    const DepartureReportArgs report{static_cast<uint32_t>(scheduler),
                                     static_cast<uint32_t>(machine), size};
    simulator_.schedule_in(base + choice_double(ChoiceKind::kLinkDelay,
                                                machine,
                                                link.sample_delay(*net_gen_)),
                           *this, kDepartureReport,
                           sim::EventArgs::pack(report));
    if (link_event(link.duplicate, ChoiceKind::kReportDup, machine)) {
      ++msgs_duplicated_;
      if (trace_ != nullptr) {
        trace_->record(simulator_.now(), obs::TraceEventKind::kMsgDup,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(machine));
      }
      simulator_.schedule_in(
          base + choice_double(ChoiceKind::kLinkDelay, machine,
                               link.sample_delay(*net_gen_)),
          *this, kDepartureReport, sim::EventArgs::pack(report));
    }
  }

  void net_record_cancelled(const Flight& flight, const queueing::Job& job) {
    dispatch::HedgedDispatcher* hedged = hedged_[flight.scheduler];
    if (hedged != nullptr) {
      hedged->record_cancelled();
    }
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kHedgeCancelled,
                     job.id, obs::TraceSink::kScheduler,
                     static_cast<uint16_t>(job.attempt));
    }
  }

  /// Erase a completed flight once nothing references it any more (no
  /// copy in transit, none resident).
  void net_maybe_gc(std::unordered_map<uint64_t, Flight>::iterator it) {
    const Flight& flight = it->second;
    if (flight.completed && flight.pending == 0 &&
        flight.resident_mask == 0) {
      flights_.erase(it);
    }
  }

  // ---- Heartbeat failure detection (config.network.heartbeat) ----

  void on_heartbeat(size_t machine) {
    // The emission chain always continues (crashed machines resume
    // beating on recovery); it ends at the horizon so the final drain
    // terminates.
    const double next =
        simulator_.now() + config_.network.heartbeat.interval;
    if (next <= config_.sim_time) {
      simulator_.schedule_at(
          next, *this, kHeartbeat,
          sim::EventArgs::pack(
              HeartbeatArgs{static_cast<uint32_t>(machine)}));
    }
    if (faults_on_ && down_[machine]) {
      return;  // a crashed machine emits nothing — silence is the signal
    }
    const LinkFaults& link = config_.network.report_link;
    if (partitioned_[machine] != 0 ||
        link_event(link.loss, ChoiceKind::kHeartbeatLoss, machine)) {
      ++msgs_lost_;
      return;  // not traced: lost heartbeats are high-volume noise
    }
    simulator_.schedule_in(
        choice_double(ChoiceKind::kLinkDelay, machine,
                      link.sample_delay(*net_gen_)),
        *this, kHeartbeatArrival,
        sim::EventArgs::pack(HeartbeatArgs{static_cast<uint32_t>(machine)}));
  }

  void on_heartbeat_arrival(size_t machine) {
    HeartbeatState& state = hb_[machine];
    const double now = simulator_.now();
    if (state.suspected) {
      state.suspected = false;
      if (trace_ != nullptr) {
        trace_->record(now, obs::TraceEventKind::kSuspectCleared,
                       obs::TraceSink::kNoJob,
                       static_cast<int32_t>(machine));
      }
      net_state_report(machine, /*up=*/true);
    }
    const HeartbeatConfig& hb = config_.network.heartbeat;
    const double gap = now - state.last_arrival;
    state.mean = (1.0 - hb.ewma_alpha) * state.mean + hb.ewma_alpha * gap;
    state.last_arrival = now;
    ++state.generation;
    simulator_.schedule_at(
        now + hb.timeout(state.mean), *this, kSuspectCheck,
        sim::EventArgs::pack(SuspectArgs{static_cast<uint32_t>(machine),
                                         state.generation}));
  }

  void on_suspect_check(size_t machine, uint64_t generation) {
    // Heartbeat emission ends at the horizon, so during the drain the
    // final generation's check would always fire and falsely re-suspect
    // every machine. Arrivals have stopped by then — there is nothing
    // left to route around — so the detector retires with the run.
    if (simulator_.now() > config_.sim_time) {
      return;
    }
    HeartbeatState& state = hb_[machine];
    if (state.generation != generation || state.suspected) {
      return;  // a later heartbeat superseded this check
    }
    state.suspected = true;
    ++suspicions_;
    if (trace_ != nullptr) {
      trace_->record(simulator_.now(), obs::TraceEventKind::kSuspect,
                     obs::TraceSink::kNoJob, static_cast<int32_t>(machine),
                     0, simulator_.now() - state.last_arrival);
    }
    net_state_report(machine, /*up=*/false);
  }

  /// Deliver a detector verdict to every scheduler that reacts to fault
  /// or overload signals. Unlike PR 1's crash reports (fault feedback
  /// only), suspicion also reaches circuit breakers: a false suspicion
  /// during a partition must trip breakers and reroute, not evict jobs.
  void net_state_report(size_t machine, bool up) {
    for (dispatch::Dispatcher* scheduler : schedulers_) {
      if (scheduler->uses_fault_feedback() ||
          scheduler->uses_overload_feedback()) {
        scheduler->on_machine_state_report(machine, up);
      }
    }
  }

  void on_completion(const queueing::Completion& completion) {
    const bool measured =
        completion.job.arrival_time >= config_.warmup_time();
    metrics_.on_completion(completion, measured);
    ++total_completed_;
    if (trace_ != nullptr) [[unlikely]] {
      trace_completion(completion);
    }
    if (config_.completion_hook) {
      config_.completion_hook(completion, measured);
    }
    if (net_on_) [[unlikely]] {
      net_on_completion(completion);
      return;
    }
    if (any_feedback_ && !stale_feedback_) {
      const auto it = job_scheduler_.find(completion.job.id);
      HS_CHECK(it != job_scheduler_.end(),
               "completion for untracked job " << completion.job.id);
      const size_t scheduler = it->second;
      job_scheduler_.erase(it);
      if (schedulers_[scheduler]->uses_feedback()) {
        // §4.2: the machine notices the departure at its next 1 Hz load
        // check — U(0,1) s — then a message reaches the scheduler after
        // an exponential transfer delay of mean 0.05 s.
        const double delay = feedback_delay(
            delay_gen_, static_cast<size_t>(completion.machine));
        simulator_.schedule_in(
            delay, *this, kDepartureReport,
            sim::EventArgs::pack(DepartureReportArgs{
                static_cast<uint32_t>(scheduler),
                static_cast<uint32_t>(completion.machine),
                completion.job.size}));
      }
    }
  }

  const SimulationConfig& config_;
  std::vector<dispatch::Dispatcher*> schedulers_;
  SchedulerSplit split_;
  bool any_feedback_ = false;
  size_t split_cursor_ = 0;
  std::unordered_map<uint64_t, size_t> job_scheduler_;
  workload::JobSizeModel size_model_;
  rng::Xoshiro256 arrival_gen_;
  rng::Xoshiro256 size_gen_;
  rng::Xoshiro256 dispatch_gen_;
  rng::Xoshiro256 delay_gen_;
  rng::Xoshiro256 split_gen_;
  rng::Xoshiro256 fault_delay_gen_;
  ChoiceHook* hook_ = nullptr;  // null = choice instrumentation off
  bool faults_on_ = false;
  bool overload_on_ = false;
  bool any_overload_feedback_ = false;
  std::unique_ptr<overload::AdmissionPolicy> admission_;  // null = admit all
  std::optional<overload::RetryBudget> retry_budget_;
  std::optional<rng::Xoshiro256> overload_gen_;  // admission decision stream
  bool drift_on_ = false;          // true arrival rate is λ·factor_at(t)
  bool stale_feedback_ = false;    // periodic snapshots replace reports
  uint64_t snapshot_tick_ = 0;     // index of the last fired snapshot
  // ---- Network layer state (allocated only when net_on_) ----
  bool net_on_ = false;   // asynchronous dispatch path active
  bool hb_on_ = false;    // heartbeat detector owns the fault signal
  std::optional<rng::Xoshiro256> net_gen_;  // all link-fault draws
  std::vector<char> partitioned_;           // current isolation per machine
  std::unordered_map<uint64_t, Flight> flights_;
  std::vector<dispatch::HedgedDispatcher*> hedged_;  // per scheduler (null)
  std::vector<HeartbeatState> hb_;
  uint64_t msgs_lost_ = 0;
  uint64_t msgs_duplicated_ = 0;
  uint64_t suspicions_ = 0;
  // Scheduler 0's adaptive core, unwrapped from any fault/breaker
  // decorators (null when there is none).
  uncertainty::GovernedAdaptiveDispatcher* adaptive_ = nullptr;
  uint64_t total_arrivals_ = 0;   // whole-run accounting (incl. warm-up)
  uint64_t total_completed_ = 0;
  uint64_t total_shed_ = 0;
  uint64_t total_dropped_ = 0;
  std::vector<bool> down_;             // current crash state per machine
  std::vector<double> nominal_speed_;  // speed to restore on recovery
  std::vector<double> downtime_;       // per machine, within [0, sim_time]
  obs::TraceSink* trace_ = nullptr;          // null = tracing off
  obs::MetricsRegistry* registry_ = nullptr; // null = sampling off
  double sample_interval_ = 0.0;
  uint64_t sample_tick_ = 0;       // index of the last fired sampler tick
  uint64_t obs_dispatched_ = 0;    // dispatch attempts (sampling only)
  sim::Simulator simulator_;
  std::vector<std::unique_ptr<queueing::Server>> servers_;
  std::unique_ptr<workload::ArrivalProcess> arrivals_;
  MetricsCollector metrics_;
  std::optional<stats::IntervalDeviationTracker> tracker_;
  uint64_t next_job_id_ = 0;
  size_t trace_index_ = 0;
};

}  // namespace

SimulationResult run_simulation(const SimulationConfig& config,
                                dispatch::Dispatcher& dispatcher) {
  RunContext context(config, {&dispatcher}, SchedulerSplit::kRandom);
  return context.run();
}

SimulationResult run_trace_replay(SimulationConfig config,
                                  const workload::JobTrace& trace,
                                  dispatch::Dispatcher& dispatcher) {
  HS_CHECK(!trace.empty(), "cannot replay an empty trace");
  config.trace = &trace;
  config.sim_time = std::max(config.sim_time, trace.horizon());
  return run_simulation(config, dispatcher);
}

SimulationResult run_simulation_multi(
    const SimulationConfig& config,
    const std::vector<dispatch::Dispatcher*>& schedulers,
    SchedulerSplit split) {
  RunContext context(config, schedulers, split);
  return context.run();
}

}  // namespace hs::cluster
