#include "cluster/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace hs::cluster {

MetricsCollector::MetricsCollector(size_t machine_count)
    : machine_dispatches_(machine_count, 0) {
  HS_CHECK(machine_count >= 1, "metrics need at least one machine");
}

void MetricsCollector::on_dispatch(size_t machine,
                                   bool in_measurement_window) {
  HS_CHECK(machine < machine_dispatches_.size(),
           "machine index out of range: " << machine);
  if (in_measurement_window) {
    ++machine_dispatches_[machine];
  }
}

void MetricsCollector::on_completion(const queueing::Completion& completion,
                                     bool in_measurement_window) {
  if (!in_measurement_window) {
    return;
  }
  const double rt = completion.response_time();
  const double rr = completion.response_ratio();
  HS_CHECK(rt >= 0.0, "negative response time " << rt << " for job "
                                                << completion.job.id);
  response_time_.add(rt);
  response_ratio_.add(rr);
  p95_.add(rr);
  p99_.add(rr);
  if (rt_p99_) [[unlikely]] {
    rt_p99_->add(rt);
  }
  const size_t bucket = std::min<size_t>(completion.job.attempt,
                                         kAttemptBuckets - 1);
  if (response_by_attempt_.size() <= bucket) {
    response_by_attempt_.resize(bucket + 1);
  }
  response_by_attempt_[bucket].add(rt);
}

void MetricsCollector::on_job_lost(bool measured) {
  if (measured) {
    ++jobs_lost_;
  }
}

void MetricsCollector::on_job_retried(bool measured) {
  if (measured) {
    ++jobs_retried_;
  }
}

void MetricsCollector::on_job_dropped(bool measured) {
  if (measured) {
    ++jobs_dropped_;
  }
}

void MetricsCollector::on_job_rejected(bool measured) {
  if (measured) {
    ++jobs_rejected_;
  }
}

void MetricsCollector::on_job_shed(bool measured) {
  if (measured) {
    ++jobs_shed_;
  }
}

void MetricsCollector::on_retry_budget_denied(bool measured) {
  if (measured) {
    ++retry_budget_denied_;
  }
}

std::vector<double> MetricsCollector::mean_response_by_attempts() const {
  std::vector<double> means;
  means.reserve(response_by_attempt_.size());
  for (const stats::RunningStats& stats : response_by_attempt_) {
    means.push_back(stats.count() > 0 ? stats.mean() : 0.0);
  }
  return means;
}

uint64_t MetricsCollector::measured_dispatches() const {
  uint64_t total = 0;
  for (uint64_t c : machine_dispatches_) {
    total += c;
  }
  return total;
}

std::vector<double> MetricsCollector::machine_fractions() const {
  const uint64_t total = measured_dispatches();
  std::vector<double> fractions(machine_dispatches_.size(), 0.0);
  if (total == 0) {
    return fractions;
  }
  for (size_t i = 0; i < machine_dispatches_.size(); ++i) {
    fractions[i] = static_cast<double>(machine_dispatches_[i]) /
                   static_cast<double>(total);
  }
  return fractions;
}

}  // namespace hs::cluster
