// Fault schedules: serialized override programs for the choice points.
//
// A Schedule is a small set of overrides, each retargeting one future
// consult of an instrumented choice point (cluster/choice.h): "the 3rd
// dispatch-loss draw for machine 1 is a loss", "machine 0's first
// up-time is 20 s". Applied through a ScheduleHook, a schedule turns the
// deterministic simulator into an enumerable state space: the run's
// trajectory is a pure function of (config, seed, schedule), so any
// schedule — including a shrunk counterexample — replays bit-identically
// on any machine.
//
// The on-disk format (HSSCHED1) is versioned and append-only:
//
//   magic "HSSCHED1" (8 bytes)
//   op count          varint (LEB128)
//   per op:
//     kind            u8    (cluster::ChoiceKind, frozen values)
//     entity          varint
//     occurrence      varint (nth consult of this (kind, entity), 0-based)
//     value           bool kinds: 1 byte in {0, 1}
//                     double kinds: 8-byte little-endian IEEE 754 bits
//
// Doubles travel as raw bits so a repro file replays the exact value the
// shrinker saved, not a rounded decimal. Decoding rejects bad magic,
// truncation, trailing bytes, out-of-range kinds, non-canonical bools,
// and non-finite or negative doubles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/choice.h"

namespace hs::explore {

/// One override: the `occurrence`-th consult of choice point
/// (kind, entity) resolves to `value_bits` instead of the natural draw.
struct Override {
  cluster::ChoiceKind kind = cluster::ChoiceKind::kDispatchLoss;
  uint32_t entity = 0;
  uint32_t occurrence = 0;
  uint64_t value_bits = 0;

  [[nodiscard]] static Override force_bool(cluster::ChoiceKind kind,
                                           uint32_t entity,
                                           uint32_t occurrence, bool value);
  [[nodiscard]] static Override force_double(cluster::ChoiceKind kind,
                                             uint32_t entity,
                                             uint32_t occurrence,
                                             double value);

  [[nodiscard]] bool is_bool() const {
    return cluster::choice_kind_is_bool(kind);
  }
  [[nodiscard]] bool bool_value() const { return value_bits != 0; }
  [[nodiscard]] double double_value() const;

  /// Human-readable one-liner ("dispatch_loss[m1]#3 = true").
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Override& a, const Override& b) {
    return a.kind == b.kind && a.entity == b.entity &&
           a.occurrence == b.occurrence && a.value_bits == b.value_bits;
  }
};

/// An ordered list of overrides. Order is cosmetic — overrides address
/// (kind, entity, occurrence) triples, not positions in time — but kept
/// stable so encode/decode round-trips exactly and shrinking is
/// reproducible.
struct Schedule {
  std::vector<Override> ops;

  /// Reject out-of-range kinds/entities/occurrences, non-canonical bool
  /// bits, non-finite or negative doubles, and duplicate targets.
  void validate() const;

  /// Serialize to HSSCHED1 bytes (validates first).
  [[nodiscard]] std::vector<uint8_t> encode() const;

  /// Parse HSSCHED1 bytes; throws util::CheckError on any malformation.
  [[nodiscard]] static Schedule decode(const uint8_t* data, size_t size);
  [[nodiscard]] static Schedule decode(const std::vector<uint8_t>& bytes);

  [[nodiscard]] bool empty() const { return ops.empty(); }

  friend bool operator==(const Schedule& a, const Schedule& b) {
    return a.ops == b.ops;
  }
};

/// Atomically write `schedule` as an HSSCHED1 file.
void save_schedule(const Schedule& schedule, const std::string& path);

/// Load and validate an HSSCHED1 file; throws util::CheckError on I/O or
/// format errors.
[[nodiscard]] Schedule load_schedule(const std::string& path);

}  // namespace hs::explore
