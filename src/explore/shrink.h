// Delta-debugging shrinker: reduce a violating schedule to a minimal
// repro.
//
// Given a schedule whose run violates some invariant, shrink() searches
// for a 1-minimal subset of its overrides that still triggers *the same
// invariant* (matched by name — the bug, not the incidental wreckage a
// large schedule also causes). The algorithm is classic ddmin: try
// dropping chunks at exponentially growing granularity, restart on
// success, then a final per-op elimination pass confirms 1-minimality.
//
// Because a run is a pure function of (config, seed, schedule), the
// shrunk schedule replays the violation bit-identically anywhere — save
// it with save_schedule() and replay with `explore_cli --replay`.
#pragma once

#include <cstdint>

#include "explore/explorer.h"
#include "explore/schedule.h"

namespace hs::explore {

struct ShrinkResult {
  Schedule schedule;       // 1-minimal violating schedule
  Violation violation;     // the violation the minimal schedule triggers
  uint64_t runs = 0;       // simulations spent shrinking
  uint64_t initial_ops = 0;
};

/// Reduce `schedule` — which must violate invariant `invariant_name`
/// under `explorer`'s configuration — to a 1-minimal schedule that still
/// violates it. Deterministic: the same inputs shrink identically.
/// Throws util::CheckError if the input schedule does not reproduce the
/// named violation in the first place.
[[nodiscard]] ShrinkResult shrink(const Explorer& explorer,
                                  const Schedule& schedule,
                                  const std::string& invariant_name);

}  // namespace hs::explore
