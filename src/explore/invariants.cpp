#include "explore/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace hs::explore {

namespace {

using obs::TraceEventKind;
using obs::TraceRecord;
using obs::TraceSink;

/// Collector shared by all checks: caps the violation list so a
/// catastrophically broken run cannot balloon memory (the first few
/// violations are what the shrinker keys on anyway).
class Reporter {
 public:
  explicit Reporter(std::vector<Violation>& out) : out_(out) {}

  void report(const char* invariant, const TraceRecord* record,
              std::string detail) {
    if (out_.size() >= kMaxViolations) {
      return;
    }
    Violation violation;
    violation.invariant = invariant;
    if (record != nullptr) {
      violation.time = record->time;
      violation.job = record->job;
      violation.machine = record->machine;
    }
    violation.detail = std::move(detail);
    out_.push_back(std::move(violation));
  }

 private:
  static constexpr size_t kMaxViolations = 64;
  std::vector<Violation>& out_;
};

/// Per-job lifecycle + exactly-once state, tracked in one scan.
struct JobState {
  uint32_t dispatches = 0;
  uint32_t completions = 0;
  bool dropped = false;
  bool shed = false;
};

/// Circuit-breaker states as the legality check tracks them.
enum class Breaker : uint8_t { kClosed, kOpen, kHalfOpen };

const char* breaker_name(Breaker state) {
  switch (state) {
    case Breaker::kClosed:
      return "closed";
    case Breaker::kOpen:
      return "open";
    case Breaker::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream out;
  out << invariant << " @t=" << time;
  if (job != obs::TraceSink::kNoJob) {
    out << " job=" << job;
  }
  if (machine != obs::TraceSink::kScheduler) {
    out << " machine=" << machine;
  }
  out << ": " << detail;
  return out.str();
}

InvariantRegistry::InvariantRegistry() {
  names_ = {invariant::kJobConservation, invariant::kExactlyOnce,
            invariant::kBreakerLegality, invariant::kDetectorMonotone,
            invariant::kTimeMonotone,    invariant::kLifecycle,
            invariant::kDispatchLegality, invariant::kResultSanity,
            invariant::kTreeScanEquivalence};
  enabled_.assign(names_.size(), true);
}

void InvariantRegistry::set_enabled(const std::string& name, bool enabled) {
  const auto it = std::find(names_.begin(), names_.end(), name);
  HS_CHECK(it != names_.end(), "unknown invariant: " << name);
  enabled_[static_cast<size_t>(it - names_.begin())] = enabled;
}

bool InvariantRegistry::enabled(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  HS_CHECK(it != names_.end(), "unknown invariant: " << name);
  return enabled_[static_cast<size_t>(it - names_.begin())];
}

std::vector<Violation> check_run(const InvariantRegistry& registry,
                                 const obs::TraceSink& trace,
                                 const cluster::SimulationResult& result,
                                 size_t machine_count) {
  HS_CHECK(trace.overwritten() == 0,
           "invariant check needs the full trace; ring dropped "
               << trace.overwritten() << " records — raise the capacity");
  std::vector<Violation> violations;
  Reporter reporter(violations);

  const bool want_exactly_once = registry.enabled(invariant::kExactlyOnce);
  const bool want_breaker = registry.enabled(invariant::kBreakerLegality);
  const bool want_detector = registry.enabled(invariant::kDetectorMonotone);
  const bool want_time = registry.enabled(invariant::kTimeMonotone);
  const bool want_lifecycle = registry.enabled(invariant::kLifecycle);
  const bool want_dispatch = registry.enabled(invariant::kDispatchLegality);

  std::unordered_map<uint64_t, JobState> jobs;
  std::vector<Breaker> breakers(machine_count, Breaker::kClosed);
  std::vector<char> suspected(machine_count, 0);
  double last_time = 0.0;

  const auto machine_ok = [machine_count](int32_t machine) {
    return machine >= 0 && static_cast<size_t>(machine) < machine_count;
  };

  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceRecord& record = trace.at(i);
    if (want_time) {
      if (record.time < last_time) {
        std::ostringstream detail;
        detail << "record " << i << " ("
               << obs::trace_event_kind_name(record.kind) << ") at t="
               << record.time << " precedes prior t=" << last_time;
        reporter.report(invariant::kTimeMonotone, &record, detail.str());
      }
      last_time = std::max(last_time, record.time);
    }

    const bool has_job = record.job != TraceSink::kNoJob;
    JobState* job = nullptr;
    if (has_job && (want_exactly_once || want_lifecycle)) {
      job = &jobs[record.job];
    }

    switch (record.kind) {
      case TraceEventKind::kDispatch:
        if (want_dispatch && !machine_ok(record.machine)) {
          std::ostringstream detail;
          detail << "dispatch to machine " << record.machine
                 << " outside [0, " << machine_count << ")";
          reporter.report(invariant::kDispatchLegality, &record,
                          detail.str());
        }
        if (job != nullptr) {
          if (want_lifecycle && (job->dropped || job->shed)) {
            reporter.report(
                invariant::kLifecycle, &record,
                job->dropped ? "dispatch after terminal drop"
                             : "dispatch after terminal shed");
          }
          ++job->dispatches;
        }
        break;
      case TraceEventKind::kCompletion:
        if (job != nullptr) {
          ++job->completions;
          if (want_exactly_once && job->completions > 1) {
            std::ostringstream detail;
            detail << "job completed " << job->completions << " times";
            reporter.report(invariant::kExactlyOnce, &record, detail.str());
          }
          if (want_lifecycle) {
            if (job->dispatches == 0) {
              reporter.report(invariant::kLifecycle, &record,
                              "completion without a prior dispatch");
            }
            if (job->dropped || job->shed) {
              reporter.report(invariant::kLifecycle, &record,
                              job->dropped ? "completion after terminal drop"
                                           : "completion after terminal shed");
            }
          }
        }
        break;
      case TraceEventKind::kDrop:
        if (job != nullptr) {
          if (want_lifecycle && job->dropped) {
            reporter.report(invariant::kLifecycle, &record,
                            "job dropped twice");
          }
          job->dropped = true;
        }
        break;
      case TraceEventKind::kShed:
        if (job != nullptr) {
          job->shed = true;
        }
        break;
      case TraceEventKind::kBreakerOpen:
      case TraceEventKind::kBreakerHalfOpen:
      case TraceEventKind::kBreakerClose:
        if (want_breaker && machine_ok(record.machine)) {
          Breaker& state = breakers[static_cast<size_t>(record.machine)];
          Breaker next = state;
          bool legal = false;
          if (record.kind == TraceEventKind::kBreakerOpen) {
            // Trips from closed (threshold) or half-open (failed probe).
            legal = state != Breaker::kOpen;
            next = Breaker::kOpen;
          } else if (record.kind == TraceEventKind::kBreakerHalfOpen) {
            legal = state == Breaker::kOpen;
            next = Breaker::kHalfOpen;
          } else {
            legal = state == Breaker::kHalfOpen;
            next = Breaker::kClosed;
          }
          if (!legal) {
            std::ostringstream detail;
            detail << "illegal breaker transition "
                   << breaker_name(state) << " -> "
                   << obs::trace_event_kind_name(record.kind);
            reporter.report(invariant::kBreakerLegality, &record,
                            detail.str());
          }
          state = next;
        }
        break;
      case TraceEventKind::kSuspect:
        if (want_detector && machine_ok(record.machine)) {
          char& flag = suspected[static_cast<size_t>(record.machine)];
          if (flag != 0) {
            reporter.report(invariant::kDetectorMonotone, &record,
                            "suspect while already suspected");
          }
          flag = 1;
        }
        break;
      case TraceEventKind::kSuspectCleared:
        if (want_detector && machine_ok(record.machine)) {
          char& flag = suspected[static_cast<size_t>(record.machine)];
          if (flag == 0) {
            reporter.report(invariant::kDetectorMonotone, &record,
                            "suspicion cleared while not suspected");
          }
          flag = 0;
        }
        break;
      default:
        break;
    }
  }

  if (registry.enabled(invariant::kJobConservation)) {
    const uint64_t accounted = result.total_completed + result.total_shed +
                               result.total_dropped +
                               result.in_flight_at_end;
    if (accounted != result.total_arrivals) {
      std::ostringstream detail;
      detail << "arrivals " << result.total_arrivals << " != completed "
             << result.total_completed << " + shed " << result.total_shed
             << " + dropped " << result.total_dropped << " + in-flight "
             << result.in_flight_at_end << " (= " << accounted << ")";
      reporter.report(invariant::kJobConservation, nullptr, detail.str());
    }
  }

  if (registry.enabled(invariant::kResultSanity)) {
    const auto finite = [](double v) { return std::isfinite(v); };
    if (!finite(result.mean_response_time) ||
        !finite(result.mean_response_ratio) || !finite(result.goodput)) {
      reporter.report(invariant::kResultSanity, nullptr,
                      "non-finite summary statistic");
    }
    double fraction_sum = 0.0;
    for (double fraction : result.machine_fractions) {
      if (!finite(fraction) || fraction < 0.0 || fraction > 1.0) {
        std::ostringstream detail;
        detail << "machine fraction " << fraction << " outside [0, 1]";
        reporter.report(invariant::kResultSanity, nullptr, detail.str());
      }
      fraction_sum += fraction;
    }
    if (result.dispatched_jobs > 0 &&
        std::fabs(fraction_sum - 1.0) > 1e-6) {
      std::ostringstream detail;
      detail << "machine fractions sum to " << fraction_sum << ", not 1";
      reporter.report(invariant::kResultSanity, nullptr, detail.str());
    }
    for (double utilization : result.machine_utilizations) {
      if (!finite(utilization) || utilization < 0.0 ||
          utilization > 1.0 + 1e-9) {
        std::ostringstream detail;
        detail << "machine utilization " << utilization
               << " outside [0, 1]";
        reporter.report(invariant::kResultSanity, nullptr, detail.str());
      }
    }
  }

  return violations;
}

}  // namespace hs::explore
