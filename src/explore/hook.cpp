#include "explore/hook.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace hs::explore {

namespace {

/// Pack (kind, entity, occurrence) into one map key. Schedule::validate
/// bounds entity and occurrence below 2^24, so the fields cannot collide.
uint64_t target_key(cluster::ChoiceKind kind, uint32_t entity,
                    uint64_t occurrence) {
  return (static_cast<uint64_t>(kind) << 48) |
         (static_cast<uint64_t>(entity) << 24) | occurrence;
}

uint64_t site_key(cluster::ChoiceKind kind, uint32_t entity) {
  return (static_cast<uint64_t>(kind) << 32) | entity;
}

}  // namespace

ScheduleHook::ScheduleHook(const Schedule& schedule) {
  schedule.validate();
  overrides_.reserve(schedule.ops.size());
  for (const Override& op : schedule.ops) {
    overrides_.emplace(target_key(op.kind, op.entity, op.occurrence),
                       op.value_bits);
  }
}

uint64_t ScheduleHook::next_occurrence(cluster::ChoiceKind kind,
                                       uint32_t entity) {
  return consults_[site_key(kind, entity)]++;
}

const uint64_t* ScheduleHook::lookup(cluster::ChoiceKind kind,
                                     uint32_t entity, uint64_t occurrence) {
  if (overrides_.empty()) {
    return nullptr;
  }
  const auto it = overrides_.find(target_key(kind, entity, occurrence));
  if (it == overrides_.end()) {
    return nullptr;
  }
  ++applied_;
  return &it->second;
}

bool ScheduleHook::on_bool(cluster::ChoiceKind kind, uint32_t entity,
                           bool drawn) {
  const uint64_t occurrence = next_occurrence(kind, entity);
  const uint64_t* bits = lookup(kind, entity, occurrence);
  return bits == nullptr ? drawn : *bits != 0;
}

double ScheduleHook::on_double(cluster::ChoiceKind kind, uint32_t entity,
                               double drawn) {
  const uint64_t occurrence = next_occurrence(kind, entity);
  const uint64_t* bits = lookup(kind, entity, occurrence);
  if (bits == nullptr) {
    return drawn;
  }
  double value = 0.0;
  static_assert(sizeof(value) == sizeof(*bits));
  std::memcpy(&value, bits, sizeof(value));
  return value;
}

std::vector<ScheduleHook::Site> ScheduleHook::sites() const {
  std::vector<Site> sites;
  sites.reserve(consults_.size());
  for (const auto& [key, count] : consults_) {
    sites.push_back(Site{static_cast<cluster::ChoiceKind>(key >> 32),
                         static_cast<uint32_t>(key & 0xffffffffu), count});
  }
  std::sort(sites.begin(), sites.end(), [](const Site& a, const Site& b) {
    if (a.kind != b.kind) {
      return a.kind < b.kind;
    }
    return a.entity < b.entity;
  });
  return sites;
}

}  // namespace hs::explore
