// The fault-space explorer: systematic search over fault schedules.
//
// The explorer owns a fixed, documented scenario — a small heterogeneous
// cluster under the full robustness stack (faults + bounded queues +
// admission control + lossy links + heartbeat detection + circuit
// breakers + hedging) — and runs it under different fault schedules
// (explore/schedule.h), checking the invariant registry after each run.
// Three drivers:
//
//  * run_exhaustive() — bounded-exhaustive enumeration of a small,
//    documented schedule space (per machine: first up-time natural or
//    forced to one of the configured crash times; per low-index machine:
//    first dispatch-loss draw natural or forced). The space is
//    enumerated in mixed-radix order, completely and deterministically.
//  * run_search(budget, seed) — coverage-guided randomized exploration:
//    schedules that reach new (trace-kind, breaker-state, degraded-mode)
//    coverage tuples join the corpus, and mutation targets choice sites
//    the corpus actually consulted.
//  * run_random(budget, seed) — the baseline the search is measured
//    against: plain seed soaking (empty schedule, varied simulation
//    seed), the pre-explorer state of the art.
//
// Every driver stops at the first invariant violation and returns the
// offending schedule; explore/shrink.h reduces it to a minimal repro.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/sim.h"
#include "dispatch/least_load.h"
#include "explore/hook.h"
#include "explore/invariants.h"
#include "explore/schedule.h"

namespace hs::explore {

/// Scenario + search parameters. The defaults are the documented CI
/// configuration (3 machines, 108-schedule exhaustive space).
struct ExploreConfig {
  size_t machines = 3;
  double sim_time = 120.0;  // simulated seconds per run
  double rho = 0.9;         // offered load (queues form, sheds happen)
  uint64_t base_seed = 42;  // simulation seed for scheduled runs

  /// Plant the test-only conservation bug
  /// (cluster::FaultConfig::test_only_drop_leak) so the find → shrink →
  /// replay pipeline has a real defect to chase. Never set outside tests
  /// and the demo.
  bool plant_bug = false;

  /// Forced first-crash times tried per machine in the exhaustive space
  /// (plus the "natural" draw). Size E gives (1+E)^machines crash
  /// combinations.
  std::vector<double> exhaustive_crash_times = {20.0, 70.0};
  /// Machines whose first dispatch-loss draw is toggled in the
  /// exhaustive space (2^count combinations; capped at `machines`).
  size_t exhaustive_loss_machines = 2;

  InvariantRegistry registry;

  void validate() const;
};

/// Everything one scheduled run produced.
struct RunOutcome {
  std::vector<Violation> violations;  // empty = clean run
  std::vector<uint32_t> coverage;     // sorted unique coverage tuples
  std::vector<ScheduleHook::Site> sites;  // choice sites consulted
  cluster::SimulationResult result;
  uint64_t overrides_applied = 0;
};

/// Aggregate outcome of one search driver.
struct SearchStats {
  uint64_t runs = 0;
  std::vector<uint32_t> coverage;  // union over all runs, sorted
  bool found_violation = false;
  Schedule counterexample;  // schedule of the first violating run
  Violation violation;      // its first violation
  uint64_t violating_seed = 0;  // simulation seed of that run

  [[nodiscard]] size_t coverage_tuples() const { return coverage.size(); }
};

/// Decode one coverage tuple into its parts (for reporting).
struct CoverageTuple {
  obs::TraceEventKind kind;
  uint8_t breaker_state;  // 0 closed, 1 open, 2 half-open
  bool any_down;
  bool any_partitioned;
  bool any_suspected;
};
[[nodiscard]] CoverageTuple decode_coverage_tuple(uint32_t tuple);

class Explorer {
 public:
  explicit Explorer(ExploreConfig config);

  [[nodiscard]] const ExploreConfig& config() const { return config_; }

  /// Run the scenario once under `schedule` (with the configured
  /// base_seed) and check every enabled invariant. With
  /// tree-scan-equivalence enabled this runs the scenario twice (kTree
  /// and kScan engines) and reports any result divergence.
  [[nodiscard]] RunOutcome run_schedule(const Schedule& schedule) const;

  /// Size of the documented exhaustive space:
  /// (1 + crash_times)^machines · 2^loss_machines.
  [[nodiscard]] uint64_t exhaustive_space_size() const;
  /// The index-th schedule of the space, in mixed-radix order.
  [[nodiscard]] Schedule exhaustive_schedule(uint64_t index) const;

  [[nodiscard]] SearchStats run_exhaustive() const;
  [[nodiscard]] SearchStats run_search(uint64_t budget, uint64_t seed) const;
  [[nodiscard]] SearchStats run_random(uint64_t budget, uint64_t seed) const;

 private:
  RunOutcome run_one(const Schedule& schedule, uint64_t sim_seed) const;
  cluster::SimulationConfig make_config(uint64_t sim_seed) const;

  ExploreConfig config_;
};

}  // namespace hs::explore
