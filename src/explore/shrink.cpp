#include "explore/shrink.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"

namespace hs::explore {

namespace {

/// Does `candidate` still trigger a violation of `invariant_name`?
/// Fills `out` with the matching violation when it does.
bool still_fails(const Explorer& explorer, const Schedule& candidate,
                 const std::string& invariant_name, uint64_t& runs,
                 Violation* out) {
  const RunOutcome outcome = explorer.run_schedule(candidate);
  ++runs;
  for (const Violation& violation : outcome.violations) {
    if (violation.invariant == invariant_name) {
      if (out != nullptr) {
        *out = violation;
      }
      return true;
    }
  }
  return false;
}

Schedule without_chunk(const Schedule& schedule, size_t begin, size_t end) {
  Schedule reduced;
  reduced.ops.reserve(schedule.ops.size() - (end - begin));
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    if (i < begin || i >= end) {
      reduced.ops.push_back(schedule.ops[i]);
    }
  }
  return reduced;
}

}  // namespace

ShrinkResult shrink(const Explorer& explorer, const Schedule& schedule,
                    const std::string& invariant_name) {
  ShrinkResult result;
  result.initial_ops = schedule.ops.size();
  HS_CHECK(
      still_fails(explorer, schedule, invariant_name, result.runs,
                  &result.violation),
      "shrink: input schedule does not violate '" << invariant_name << "'");
  Schedule current = schedule;

  // ddmin: drop chunks of size ceil(n / chunks); on success keep the
  // reduction and restart at coarse granularity, otherwise refine.
  size_t chunks = 2;
  while (current.ops.size() >= 2) {
    const size_t n = current.ops.size();
    chunks = std::min(chunks, n);
    const size_t chunk = (n + chunks - 1) / chunks;
    bool reduced = false;
    for (size_t begin = 0; begin < n; begin += chunk) {
      const size_t end = std::min(begin + chunk, n);
      const Schedule candidate = without_chunk(current, begin, end);
      if (still_fails(explorer, candidate, invariant_name, result.runs,
                      &result.violation)) {
        current = candidate;
        chunks = 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= n) {
        break;  // per-op granularity exhausted
      }
      chunks = std::min(chunks * 2, n);
    }
  }

  // Final per-op elimination pass: confirms 1-minimality even for the
  // orderings ddmin's restarts skipped.
  for (size_t i = 0; i < current.ops.size();) {
    const Schedule candidate = without_chunk(current, i, i + 1);
    if (still_fails(explorer, candidate, invariant_name, result.runs,
                    &result.violation)) {
      current = candidate;  // re-test the op now at index i
    } else {
      ++i;
    }
  }

  // Record the violation of the *final* schedule (the loop above may
  // have last run a non-failing candidate).
  HS_CHECK(still_fails(explorer, current, invariant_name, result.runs,
                       &result.violation),
           "shrink: minimal schedule stopped failing — nondeterminism?");
  result.schedule = std::move(current);
  return result;
}

}  // namespace hs::explore
