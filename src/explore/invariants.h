// The invariant registry: named, individually toggleable laws every
// simulated run must satisfy, checked against the run's trace and
// result totals.
//
// Each invariant is a property the robustness layers promise regardless
// of fault schedule — conservation of jobs, exactly-once completion
// under hedging, breaker and failure-detector state-machine legality.
// The explorer checks the registry after every run; a violation carries
// enough structure (invariant name, time, job, machine, detail) for the
// shrinker to preserve "the same bug" while deleting schedule ops.
//
// Checks scan the trace ring oldest-first. Records are appended in
// simulated-time order, so a post-run scan visits states in exactly the
// order an online checker would — provided the ring never wrapped,
// which check_run() asserts (size the sink for the run).
//
// docs/FAULT_MODEL.md §9 has the invariant catalog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/sim.h"
#include "obs/trace.h"

namespace hs::explore {

/// One invariant violation, structured for reporting and shrinking.
struct Violation {
  std::string invariant;  // registry name, e.g. "job-conservation"
  double time = 0.0;      // simulated time of the offending event (or 0)
  uint64_t job = obs::TraceSink::kNoJob;
  int32_t machine = obs::TraceSink::kScheduler;
  std::string detail;     // human-readable specifics

  [[nodiscard]] std::string to_string() const;
};

/// Names of the built-in invariants (all registered and enabled by
/// default). Kept as named constants so tests and toggles cannot typo.
namespace invariant {
inline constexpr const char* kJobConservation = "job-conservation";
inline constexpr const char* kExactlyOnce = "exactly-once-completion";
inline constexpr const char* kBreakerLegality = "breaker-legality";
inline constexpr const char* kDetectorMonotone = "detector-monotone";
inline constexpr const char* kTimeMonotone = "time-monotone";
inline constexpr const char* kLifecycle = "job-lifecycle";
inline constexpr const char* kDispatchLegality = "dispatch-legality";
inline constexpr const char* kResultSanity = "result-sanity";
/// Differential check (run twice, kTree vs kScan); enforced by the
/// Explorer rather than the trace scan, but toggled here like the rest.
inline constexpr const char* kTreeScanEquivalence = "tree-scan-equivalence";
}  // namespace invariant

/// Which invariants a check pass enforces. All known invariants are
/// enabled by default; unknown names are rejected (a disabled typo would
/// otherwise silently never check anything).
class InvariantRegistry {
 public:
  InvariantRegistry();

  void set_enabled(const std::string& name, bool enabled);
  [[nodiscard]] bool enabled(const std::string& name) const;

  /// All registered names, in catalog order.
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<bool> enabled_;
};

/// Check every enabled invariant against one finished run. `trace` must
/// not have wrapped (overwritten() == 0 — size the sink for the run).
/// Returns all violations found, in trace order; empty means the run is
/// clean.
[[nodiscard]] std::vector<Violation> check_run(
    const InvariantRegistry& registry, const obs::TraceSink& trace,
    const cluster::SimulationResult& result, size_t machine_count);

}  // namespace hs::explore
