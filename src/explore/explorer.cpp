#include "explore/explorer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "dispatch/fault_aware.h"
#include "dispatch/hedged.h"
#include "obs/observer.h"
#include "overload/circuit_breaker.h"
#include "rng/rng.h"
#include "util/check.h"

namespace hs::explore {

namespace {

using cluster::ChoiceKind;
using obs::TraceEventKind;

/// Trace capacity per run. The scenario produces a few thousand records
/// per 120 simulated seconds; check_run() rejects wrapped rings, so this
/// is sized with an order of magnitude of headroom.
constexpr size_t kTraceCapacity = size_t{1} << 17;

/// Coverage tuple layout: kind (8 bits) | breaker state of the record's
/// machine (2 bits) | any-machine-down | any-partition | any-suspected.
uint32_t coverage_tuple(TraceEventKind kind, uint8_t breaker, bool down,
                        bool partitioned, bool suspected) {
  return static_cast<uint32_t>(kind) |
         (static_cast<uint32_t>(breaker) << 8) |
         (static_cast<uint32_t>(down) << 10) |
         (static_cast<uint32_t>(partitioned) << 11) |
         (static_cast<uint32_t>(suspected) << 12);
}

/// Walk the trace once, reconstructing the degraded-mode flags and
/// breaker states event by event, and collect the distinct tuples.
std::vector<uint32_t> collect_coverage(const obs::TraceSink& trace,
                                       size_t machine_count) {
  std::set<uint32_t> tuples;
  std::vector<uint8_t> breaker(machine_count, 0);  // 0 closed 1 open 2 half
  std::vector<char> down(machine_count, 0);
  std::vector<char> partitioned(machine_count, 0);
  std::vector<char> suspected(machine_count, 0);
  size_t downs = 0, partitions = 0, suspicions = 0;
  const auto flag = [](std::vector<char>& flags, int32_t machine,
                       bool value, size_t& count) {
    if (machine < 0 || static_cast<size_t>(machine) >= flags.size()) {
      return;
    }
    char& current = flags[static_cast<size_t>(machine)];
    if (current != static_cast<char>(value)) {
      current = static_cast<char>(value);
      count += value ? 1 : size_t(-1);
    }
  };
  for (size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceRecord& record = trace.at(i);
    const int32_t m = record.machine;
    switch (record.kind) {
      case TraceEventKind::kCrash:
        flag(down, m, true, downs);
        break;
      case TraceEventKind::kRecovery:
        flag(down, m, false, downs);
        break;
      case TraceEventKind::kPartitionStart:
        flag(partitioned, m, true, partitions);
        break;
      case TraceEventKind::kPartitionEnd:
        flag(partitioned, m, false, partitions);
        break;
      case TraceEventKind::kSuspect:
        flag(suspected, m, true, suspicions);
        break;
      case TraceEventKind::kSuspectCleared:
        flag(suspected, m, false, suspicions);
        break;
      case TraceEventKind::kBreakerOpen:
      case TraceEventKind::kBreakerHalfOpen:
      case TraceEventKind::kBreakerClose:
        if (m >= 0 && static_cast<size_t>(m) < machine_count) {
          breaker[static_cast<size_t>(m)] =
              record.kind == TraceEventKind::kBreakerOpen       ? 1
              : record.kind == TraceEventKind::kBreakerHalfOpen ? 2
                                                                : 0;
        }
        break;
      default:
        break;
    }
    const uint8_t state =
        m >= 0 && static_cast<size_t>(m) < machine_count
            ? breaker[static_cast<size_t>(m)]
            : 0;
    tuples.insert(coverage_tuple(record.kind, state, downs > 0,
                                 partitions > 0, suspicions > 0));
  }
  return {tuples.begin(), tuples.end()};
}

void merge_coverage(std::vector<uint32_t>& into,
                    const std::vector<uint32_t>& from) {
  std::vector<uint32_t> merged;
  merged.reserve(into.size() + from.size());
  std::set_union(into.begin(), into.end(), from.begin(), from.end(),
                 std::back_inserter(merged));
  into = std::move(merged);
}

/// True when `from` holds a tuple absent from the sorted set `into`.
bool adds_coverage(const std::vector<uint32_t>& into,
                   const std::vector<uint32_t>& from) {
  for (uint32_t tuple : from) {
    if (!std::binary_search(into.begin(), into.end(), tuple)) {
      return true;
    }
  }
  return false;
}

/// The full robustness stack over the scenario cluster. Hedged stays
/// outermost so hedge picks flow through the fault and breaker masks.
std::unique_ptr<dispatch::Dispatcher> make_stack(
    const std::vector<double>& speeds, dispatch::LeastLoadEngine engine) {
  auto least =
      std::make_unique<dispatch::LeastLoadDispatcher>(speeds, engine);
  overload::CircuitBreakerConfig breaker_config;
  breaker_config.trip_threshold = 3;
  breaker_config.cooldown = 10.0;
  breaker_config.probe_successes = 2;
  auto breaker = std::make_unique<overload::CircuitBreakerDispatcher>(
      std::move(least), breaker_config);
  auto fault_aware =
      std::make_unique<dispatch::FaultAwareDispatcher>(std::move(breaker));
  dispatch::HedgingConfig hedging;
  hedging.delay = 0.75;
  return std::make_unique<dispatch::HedgedDispatcher>(
      std::move(fault_aware), hedging);
}

/// Bit-exact comparison for the tree/scan differential. Doubles are
/// compared as values (they are either bit-identical or meaningfully
/// different; NaN never legitimately appears).
template <typename T>
void diff_field(std::vector<std::string>& diffs, const char* name, T tree,
                T scan) {
  if (tree != scan) {
    std::ostringstream out;
    out << name << ": tree=" << tree << " scan=" << scan;
    diffs.push_back(out.str());
  }
}

std::vector<std::string> diff_results(const cluster::SimulationResult& tree,
                                      const cluster::SimulationResult& scan) {
  std::vector<std::string> diffs;
  diff_field(diffs, "mean_response_time", tree.mean_response_time,
             scan.mean_response_time);
  diff_field(diffs, "mean_response_ratio", tree.mean_response_ratio,
             scan.mean_response_ratio);
  diff_field(diffs, "completed_jobs", tree.completed_jobs,
             scan.completed_jobs);
  diff_field(diffs, "dispatched_jobs", tree.dispatched_jobs,
             scan.dispatched_jobs);
  diff_field(diffs, "total_arrivals", tree.total_arrivals,
             scan.total_arrivals);
  diff_field(diffs, "total_completed", tree.total_completed,
             scan.total_completed);
  diff_field(diffs, "total_shed", tree.total_shed, scan.total_shed);
  diff_field(diffs, "total_dropped", tree.total_dropped,
             scan.total_dropped);
  diff_field(diffs, "in_flight_at_end", tree.in_flight_at_end,
             scan.in_flight_at_end);
  diff_field(diffs, "jobs_lost", tree.jobs_lost, scan.jobs_lost);
  diff_field(diffs, "jobs_rejected", tree.jobs_rejected,
             scan.jobs_rejected);
  diff_field(diffs, "msgs_lost", tree.msgs_lost, scan.msgs_lost);
  diff_field(diffs, "msgs_duplicated", tree.msgs_duplicated,
             scan.msgs_duplicated);
  diff_field(diffs, "hedges_issued", tree.hedges_issued,
             scan.hedges_issued);
  diff_field(diffs, "hedges_won", tree.hedges_won, scan.hedges_won);
  diff_field(diffs, "suspicions", tree.suspicions, scan.suspicions);
  for (size_t m = 0; m < tree.machine_fractions.size(); ++m) {
    diff_field(diffs, "machine_fraction", tree.machine_fractions[m],
               scan.machine_fractions[m]);
  }
  return diffs;
}

/// Mutation value palettes per double kind: the handful of magnitudes
/// that actually change a 120-second run's trajectory.
std::vector<double> value_palette(ChoiceKind kind, double sim_time) {
  switch (kind) {
    case ChoiceKind::kFaultUptime:
      return {1.0, 10.0, 0.25 * sim_time, 0.6 * sim_time};
    case ChoiceKind::kFaultDowntime:
      return {0.5, 5.0, 30.0, sim_time};
    case ChoiceKind::kLinkDelay:
      return {0.0, 0.5, 2.0, 8.0};
    case ChoiceKind::kFeedbackDelay:
      return {0.0, 1.0, 5.0, 20.0};
    case ChoiceKind::kArrivalGap:
      return {0.0, 0.001, 2.0, 10.0};
    default:
      return {0.0, 1.0};
  }
}

}  // namespace

CoverageTuple decode_coverage_tuple(uint32_t tuple) {
  CoverageTuple decoded;
  decoded.kind = static_cast<TraceEventKind>(tuple & 0xff);
  decoded.breaker_state = static_cast<uint8_t>((tuple >> 8) & 0x3);
  decoded.any_down = (tuple >> 10) & 1;
  decoded.any_partitioned = (tuple >> 11) & 1;
  decoded.any_suspected = (tuple >> 12) & 1;
  return decoded;
}

void ExploreConfig::validate() const {
  HS_CHECK(machines >= 1 && machines <= 16,
           "explore machines must be in [1, 16], got " << machines);
  HS_CHECK(std::isfinite(sim_time) && sim_time > 0.0,
           "explore sim_time must be positive and finite, got " << sim_time);
  HS_CHECK(std::isfinite(rho) && rho > 0.0,
           "explore rho must be positive and finite, got " << rho);
  for (double t : exhaustive_crash_times) {
    HS_CHECK(std::isfinite(t) && t > 0.0 && t < sim_time,
             "exhaustive crash time must be inside (0, sim_time), got "
                 << t);
  }
}

Explorer::Explorer(ExploreConfig config) : config_(std::move(config)) {
  config_.validate();
}

cluster::SimulationConfig Explorer::make_config(uint64_t sim_seed) const {
  cluster::SimulationConfig config;
  static constexpr double kSpeedPattern[] = {1.0, 1.5, 2.0, 2.5};
  config.speeds.reserve(config_.machines);
  for (size_t m = 0; m < config_.machines; ++m) {
    config.speeds.push_back(kSpeedPattern[m % 4]);
  }
  // Light-tailed workload: plenty of small jobs, so 120 simulated
  // seconds exercise hundreds of dispatches per run at millisecond cost.
  config.workload.arrival_kind = workload::ArrivalKind::kPoisson;
  config.workload.size_kind = workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.rho = config_.rho;
  config.sim_time = config_.sim_time;
  config.warmup_frac = 0.0;
  config.seed = sim_seed;
  // Stochastic crashes are nearly impossible naturally (MTBF 8 orders
  // beyond the horizon) but the first up-time draw is an instrumented
  // choice point — crashes happen exactly when a schedule forces them.
  // This is what makes guided search strictly stronger than seed soaks:
  // no seed reaches the crash interleavings at this MTBF.
  cluster::FaultConfig::MachineProcess process;
  process.mtbf = 1.0e8;
  process.mttr = 8.0;
  config.faults.processes.assign(config_.machines, process);
  config.faults.retry.max_attempts = 3;
  config.faults.retry.backoff_initial = 0.25;
  config.faults.retry.backoff_factor = 2.0;
  config.faults.test_only_drop_leak = config_.plant_bug;
  config.overload.queue_capacity = 16;
  config.overload.admission = overload::AdmissionKind::kQueueBoundShed;
  config.overload.admission_queue_bound = 12;
  config.network.dispatch_link.loss = 0.005;
  config.network.dispatch_link.duplicate = 0.005;
  config.network.dispatch_link.delay_mean = 0.01;
  config.network.report_link.loss = 0.005;
  config.network.heartbeat.interval = 1.0;
  return config;
}

RunOutcome Explorer::run_one(const Schedule& schedule,
                             uint64_t sim_seed) const {
  obs::TraceSink trace(kTraceCapacity);
  obs::Observer observer;
  observer.trace = &trace;

  cluster::SimulationConfig config = make_config(sim_seed);
  config.observer = &observer;
  ScheduleHook hook(schedule);
  config.choice_hook = &hook;

  auto dispatcher =
      make_stack(config.speeds, dispatch::LeastLoadEngine::kTree);
  RunOutcome outcome;
  outcome.result = cluster::run_simulation(config, *dispatcher);
  outcome.violations = check_run(config_.registry, trace, outcome.result,
                                 config_.machines);
  outcome.coverage = collect_coverage(trace, config_.machines);
  outcome.sites = hook.sites();
  outcome.overrides_applied = hook.applied();

  if (config_.registry.enabled(invariant::kTreeScanEquivalence)) {
    // Differential replay: the identical (config, seed, schedule) run
    // must be bit-identical under the O(n) reference argmin engine.
    cluster::SimulationConfig scan_config = make_config(sim_seed);
    scan_config.observer = nullptr;  // results are the comparison surface
    ScheduleHook scan_hook(schedule);
    scan_config.choice_hook = &scan_hook;
    auto scan_dispatcher =
        make_stack(scan_config.speeds, dispatch::LeastLoadEngine::kScan);
    const cluster::SimulationResult scan_result =
        cluster::run_simulation(scan_config, *scan_dispatcher);
    for (const std::string& diff :
         diff_results(outcome.result, scan_result)) {
      Violation violation;
      violation.invariant = invariant::kTreeScanEquivalence;
      violation.detail = diff;
      outcome.violations.push_back(std::move(violation));
    }
  }
  return outcome;
}

RunOutcome Explorer::run_schedule(const Schedule& schedule) const {
  return run_one(schedule, config_.base_seed);
}

uint64_t Explorer::exhaustive_space_size() const {
  const uint64_t crash_options = 1 + config_.exhaustive_crash_times.size();
  const size_t loss_machines =
      std::min(config_.exhaustive_loss_machines, config_.machines);
  uint64_t size = 1;
  for (size_t m = 0; m < config_.machines; ++m) {
    size *= crash_options;
  }
  return size << loss_machines;
}

Schedule Explorer::exhaustive_schedule(uint64_t index) const {
  HS_CHECK(index < exhaustive_space_size(),
           "exhaustive index " << index << " out of range [0, "
                               << exhaustive_space_size() << ")");
  const uint64_t crash_options = 1 + config_.exhaustive_crash_times.size();
  const size_t loss_machines =
      std::min(config_.exhaustive_loss_machines, config_.machines);
  Schedule schedule;
  // Low digits: per-machine first-crash choice (0 = natural draw).
  for (size_t m = 0; m < config_.machines; ++m) {
    const uint64_t digit = index % crash_options;
    index /= crash_options;
    if (digit > 0) {
      schedule.ops.push_back(Override::force_double(
          ChoiceKind::kFaultUptime, static_cast<uint32_t>(m), 0,
          config_.exhaustive_crash_times[digit - 1]));
    }
  }
  // High bits: per-machine first dispatch-loss toggle.
  for (size_t m = 0; m < loss_machines; ++m) {
    if ((index & 1) != 0) {
      schedule.ops.push_back(Override::force_bool(
          ChoiceKind::kDispatchLoss, static_cast<uint32_t>(m), 0, true));
    }
    index >>= 1;
  }
  return schedule;
}

SearchStats Explorer::run_exhaustive() const {
  SearchStats stats;
  const uint64_t space = exhaustive_space_size();
  for (uint64_t index = 0; index < space; ++index) {
    const Schedule schedule = exhaustive_schedule(index);
    const RunOutcome outcome = run_schedule(schedule);
    ++stats.runs;
    merge_coverage(stats.coverage, outcome.coverage);
    if (!outcome.violations.empty()) {
      stats.found_violation = true;
      stats.counterexample = schedule;
      stats.violation = outcome.violations.front();
      stats.violating_seed = config_.base_seed;
      break;
    }
  }
  return stats;
}

SearchStats Explorer::run_search(uint64_t budget, uint64_t seed) const {
  SearchStats stats;
  if (budget == 0) {
    return stats;
  }
  rng::Xoshiro256 gen(rng::derive_seed(seed, 0, rng::Stream::kDispatch));

  struct CorpusEntry {
    Schedule schedule;
    std::vector<ScheduleHook::Site> sites;
  };
  std::vector<CorpusEntry> corpus;

  // Seed the corpus with the natural run: its observed sites are the
  // initial mutation targets.
  {
    const RunOutcome outcome = run_schedule(Schedule{});
    ++stats.runs;
    merge_coverage(stats.coverage, outcome.coverage);
    if (!outcome.violations.empty()) {
      stats.found_violation = true;
      stats.violation = outcome.violations.front();
      stats.violating_seed = config_.base_seed;
      return stats;
    }
    corpus.push_back({Schedule{}, outcome.sites});
  }

  const auto add_override = [&](Schedule& schedule,
                                const CorpusEntry& parent) {
    if (parent.sites.empty()) {
      return;
    }
    std::set<std::pair<uint64_t, uint64_t>> taken;
    for (const Override& op : schedule.ops) {
      taken.emplace(
          (static_cast<uint64_t>(op.kind) << 32) | op.entity,
          op.occurrence);
    }
    for (int attempt = 0; attempt < 8; ++attempt) {
      const ScheduleHook::Site& site =
          parent.sites[gen.next_below(parent.sites.size())];
      const uint32_t occurrence =
          static_cast<uint32_t>(gen.next_below(site.consults));
      const auto key = std::make_pair(
          (static_cast<uint64_t>(site.kind) << 32) | site.entity,
          static_cast<uint64_t>(occurrence));
      if (taken.count(key) != 0) {
        continue;
      }
      if (cluster::choice_kind_is_bool(site.kind)) {
        schedule.ops.push_back(Override::force_bool(site.kind, site.entity,
                                                    occurrence, true));
      } else {
        const std::vector<double> palette =
            value_palette(site.kind, config_.sim_time);
        schedule.ops.push_back(Override::force_double(
            site.kind, site.entity, occurrence,
            palette[gen.next_below(palette.size())]));
      }
      return;
    }
  };

  while (stats.runs < budget) {
    const CorpusEntry& parent = corpus[gen.next_below(corpus.size())];
    Schedule child = parent.schedule;
    const uint64_t action = gen.next_below(4);
    if (action == 0 && !child.ops.empty()) {
      child.ops.erase(child.ops.begin() +
                      static_cast<ptrdiff_t>(
                          gen.next_below(child.ops.size())));
    } else if (action == 1 && !child.ops.empty()) {
      Override& op = child.ops[gen.next_below(child.ops.size())];
      if (op.is_bool()) {
        op.value_bits ^= 1;
      } else {
        const std::vector<double> palette =
            value_palette(op.kind, config_.sim_time);
        op = Override::force_double(
            op.kind, op.entity, op.occurrence,
            palette[gen.next_below(palette.size())]);
      }
    } else {
      add_override(child, parent);
      if (gen.next_below(2) == 0) {
        add_override(child, parent);  // occasional double mutation
      }
    }

    const RunOutcome outcome = run_schedule(child);
    ++stats.runs;
    if (!outcome.violations.empty()) {
      stats.found_violation = true;
      stats.counterexample = child;
      stats.violation = outcome.violations.front();
      stats.violating_seed = config_.base_seed;
      return stats;
    }
    if (adds_coverage(stats.coverage, outcome.coverage)) {
      corpus.push_back({std::move(child), outcome.sites});
    }
    merge_coverage(stats.coverage, outcome.coverage);
  }
  return stats;
}

SearchStats Explorer::run_random(uint64_t budget, uint64_t seed) const {
  SearchStats stats;
  for (uint64_t i = 0; i < budget; ++i) {
    const uint64_t sim_seed = seed + i;
    const RunOutcome outcome = run_one(Schedule{}, sim_seed);
    ++stats.runs;
    merge_coverage(stats.coverage, outcome.coverage);
    if (!outcome.violations.empty()) {
      stats.found_violation = true;
      stats.violation = outcome.violations.front();
      stats.violating_seed = sim_seed;
      return stats;
    }
  }
  return stats;
}

}  // namespace hs::explore
