// ScheduleHook: applies a fault schedule to one simulation run.
//
// Installed as SimulationConfig::choice_hook, the hook counts how often
// each (kind, entity) choice point is consulted and substitutes the
// schedule's value whenever an override addresses the current
// occurrence. Draws it does not override pass through untouched, so an
// empty schedule replays the natural run bit-for-bit.
//
// The hook also records every site it saw (with its consult count) —
// the coverage-guided search mutates schedules toward *observed* sites,
// which is what keeps random mutation from wasting runs on choice
// points the scenario never reaches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/choice.h"
#include "explore/schedule.h"

namespace hs::explore {

class ScheduleHook : public cluster::ChoiceHook {
 public:
  /// One choice point the run actually consulted, with how many times.
  struct Site {
    cluster::ChoiceKind kind;
    uint32_t entity = 0;
    uint32_t consults = 0;
  };

  explicit ScheduleHook(const Schedule& schedule);

  bool on_bool(cluster::ChoiceKind kind, uint32_t entity,
               bool drawn) override;
  double on_double(cluster::ChoiceKind kind, uint32_t entity,
                   double drawn) override;

  /// How many overrides actually fired (a shrunk schedule should have
  /// applied() == ops.size(); dead ops are shrinkable).
  [[nodiscard]] uint64_t applied() const { return applied_; }

  /// Observed sites, sorted by (kind, entity) for determinism.
  [[nodiscard]] std::vector<Site> sites() const;

 private:
  uint64_t next_occurrence(cluster::ChoiceKind kind, uint32_t entity);
  /// Pointer to the override's value bits, or null when this consult is
  /// not overridden.
  const uint64_t* lookup(cluster::ChoiceKind kind, uint32_t entity,
                         uint64_t occurrence);

  std::unordered_map<uint64_t, uint64_t> overrides_;  // packed target -> bits
  std::unordered_map<uint64_t, uint32_t> consults_;   // packed site -> count
  uint64_t applied_ = 0;
};

}  // namespace hs::explore
