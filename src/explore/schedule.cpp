#include "explore/schedule.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/atomic_file.h"
#include "util/check.h"

namespace hs::explore {

namespace {

constexpr char kMagic[8] = {'H', 'S', 'S', 'C', 'H', 'E', 'D', '1'};

/// Entities and occurrences are small in practice (machine indices,
/// per-site consult counts); the cap keeps packed lookup keys unique and
/// catches garbage from a corrupted file early.
constexpr uint32_t kMaxField = 1u << 24;

void append_varint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t read_varint(const uint8_t* data, size_t size, size_t& pos) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    HS_CHECK(pos < size, "schedule truncated inside a varint");
    const uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
  }
  HS_CHECK(false, "schedule varint longer than 64 bits");
  return 0;  // unreachable
}

uint64_t double_to_bits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_to_double(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void validate_op(const Override& op, size_t index) {
  HS_CHECK(static_cast<uint8_t>(op.kind) <
               static_cast<uint8_t>(cluster::ChoiceKind::kCount),
           "schedule op " << index << ": bad choice kind "
                          << static_cast<int>(op.kind));
  HS_CHECK(op.entity < kMaxField,
           "schedule op " << index << ": entity " << op.entity
                          << " out of range");
  HS_CHECK(op.occurrence < kMaxField,
           "schedule op " << index << ": occurrence " << op.occurrence
                          << " out of range");
  if (op.is_bool()) {
    HS_CHECK(op.value_bits <= 1, "schedule op "
                                     << index << ": non-canonical bool bits "
                                     << op.value_bits);
  } else {
    const double value = op.double_value();
    HS_CHECK(std::isfinite(value) && value >= 0.0,
             "schedule op " << index << ": double value must be finite and "
                            << ">= 0, got " << value);
  }
}

}  // namespace

Override Override::force_bool(cluster::ChoiceKind kind, uint32_t entity,
                              uint32_t occurrence, bool value) {
  HS_CHECK(cluster::choice_kind_is_bool(kind),
           "choice kind " << cluster::choice_kind_name(kind)
                          << " does not take a bool");
  return Override{kind, entity, occurrence, value ? 1ull : 0ull};
}

Override Override::force_double(cluster::ChoiceKind kind, uint32_t entity,
                                uint32_t occurrence, double value) {
  HS_CHECK(!cluster::choice_kind_is_bool(kind),
           "choice kind " << cluster::choice_kind_name(kind)
                          << " does not take a double");
  HS_CHECK(std::isfinite(value) && value >= 0.0,
           "override value must be finite and >= 0, got " << value);
  return Override{kind, entity, occurrence, double_to_bits(value)};
}

double Override::double_value() const { return bits_to_double(value_bits); }

std::string Override::describe() const {
  std::ostringstream out;
  out << cluster::choice_kind_name(kind) << "[m" << entity << "]#"
      << occurrence << " = ";
  if (is_bool()) {
    out << (bool_value() ? "true" : "false");
  } else {
    out << double_value();
  }
  return out.str();
}

void Schedule::validate() const {
  std::set<std::tuple<uint8_t, uint32_t, uint32_t>> seen;
  for (size_t i = 0; i < ops.size(); ++i) {
    validate_op(ops[i], i);
    const auto key = std::make_tuple(static_cast<uint8_t>(ops[i].kind),
                                     ops[i].entity, ops[i].occurrence);
    HS_CHECK(seen.insert(key).second,
             "schedule op " << i << " duplicates target "
                            << ops[i].describe());
  }
}

std::vector<uint8_t> Schedule::encode() const {
  validate();
  std::vector<uint8_t> out;
  out.reserve(sizeof(kMagic) + 2 + ops.size() * 12);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  append_varint(out, ops.size());
  for (const Override& op : ops) {
    out.push_back(static_cast<uint8_t>(op.kind));
    append_varint(out, op.entity);
    append_varint(out, op.occurrence);
    if (op.is_bool()) {
      out.push_back(op.bool_value() ? 1 : 0);
    } else {
      for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<uint8_t>(op.value_bits >> shift));
      }
    }
  }
  return out;
}

Schedule Schedule::decode(const uint8_t* data, size_t size) {
  HS_CHECK(data != nullptr || size == 0, "null schedule bytes");
  HS_CHECK(size >= sizeof(kMagic) &&
               std::memcmp(data, kMagic, sizeof(kMagic)) == 0,
           "not an HSSCHED1 schedule (bad magic)");
  size_t pos = sizeof(kMagic);
  const uint64_t count = read_varint(data, size, pos);
  HS_CHECK(count <= size, "schedule op count " << count
                                               << " impossible for " << size
                                               << " bytes");
  Schedule schedule;
  schedule.ops.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HS_CHECK(pos < size, "schedule truncated at op " << i);
    Override op;
    op.kind = static_cast<cluster::ChoiceKind>(data[pos++]);
    HS_CHECK(static_cast<uint8_t>(op.kind) <
                 static_cast<uint8_t>(cluster::ChoiceKind::kCount),
             "schedule op " << i << ": bad choice kind byte");
    op.entity = static_cast<uint32_t>(read_varint(data, size, pos));
    op.occurrence = static_cast<uint32_t>(read_varint(data, size, pos));
    if (op.is_bool()) {
      HS_CHECK(pos < size, "schedule truncated in op " << i << " value");
      op.value_bits = data[pos++];
    } else {
      HS_CHECK(pos + 8 <= size, "schedule truncated in op " << i << " value");
      uint64_t bits = 0;
      for (int shift = 0; shift < 64; shift += 8) {
        bits |= static_cast<uint64_t>(data[pos++]) << shift;
      }
      op.value_bits = bits;
    }
    schedule.ops.push_back(op);
  }
  HS_CHECK(pos == size,
           "schedule has " << size - pos << " trailing bytes after op list");
  schedule.validate();
  return schedule;
}

Schedule Schedule::decode(const std::vector<uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

void save_schedule(const Schedule& schedule, const std::string& path) {
  const std::vector<uint8_t> bytes = schedule.encode();
  util::write_file_atomic(path, bytes.data(), bytes.size());
}

Schedule load_schedule(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HS_CHECK(in.good(), "cannot open schedule file: " << path);
  std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  HS_CHECK(!in.bad(), "cannot read schedule file: " << path);
  return Schedule::decode(bytes);
}

}  // namespace hs::explore
