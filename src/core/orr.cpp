#include "core/orr.h"

#include "alloc/optimized.h"
#include "util/check.h"

namespace hs::core {

namespace {

alloc::Allocation compute_allocation(const std::vector<double>& speeds,
                                     double utilization) {
  return alloc::OptimizedAllocation().compute(speeds, utilization);
}

}  // namespace

OrrScheduler::OrrScheduler(std::vector<double> speeds, double utilization)
    : speeds_(std::move(speeds)),
      utilization_(utilization),
      allocation_(compute_allocation(speeds_, utilization)),
      dispatcher_(allocation_) {}

size_t OrrScheduler::route() {
  // The smoothed round-robin dispatcher is deterministic; the generator
  // argument is unused. A static dummy keeps the public API clean.
  static rng::Xoshiro256 unused_gen(0);
  ++routed_;
  return dispatcher_.pick(unused_gen);
}

uint64_t OrrScheduler::routed_to(size_t machine) const {
  return dispatcher_.assigned(machine);
}

void OrrScheduler::set_utilization(double utilization) {
  allocation_ = compute_allocation(speeds_, utilization);
  utilization_ = utilization;
  dispatcher_ = dispatch::SmoothRoundRobinDispatcher(allocation_);
  routed_ = 0;
}

}  // namespace hs::core
