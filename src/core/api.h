// Umbrella header: the full hetsched public API.
//
// Downstream users who just want the paper's scheduler need only
// core/orr.h; this header pulls in everything for experimentation.
#pragma once

#include "alloc/allocation.h"        // IWYU pragma: export
#include "alloc/analytic_model.h"    // IWYU pragma: export
#include "alloc/numeric_solver.h"    // IWYU pragma: export
#include "alloc/optimized.h"         // IWYU pragma: export
#include "alloc/scheme.h"            // IWYU pragma: export
#include "cluster/config.h"          // IWYU pragma: export
#include "cluster/experiment.h"      // IWYU pragma: export
#include "cluster/metrics.h"         // IWYU pragma: export
#include "cluster/sim.h"             // IWYU pragma: export
#include "core/adaptive.h"           // IWYU pragma: export
#include "core/orr.h"                // IWYU pragma: export
#include "core/policy.h"             // IWYU pragma: export
#include "dispatch/cyclic.h"         // IWYU pragma: export
#include "dispatch/dispatcher.h"     // IWYU pragma: export
#include "dispatch/least_load.h"     // IWYU pragma: export
#include "dispatch/random_dispatcher.h"  // IWYU pragma: export
#include "dispatch/sita.h"           // IWYU pragma: export
#include "dispatch/smooth_rr.h"      // IWYU pragma: export
#include "dispatch/swrr.h"           // IWYU pragma: export
#include "overload/admission.h"      // IWYU pragma: export
#include "overload/circuit_breaker.h" // IWYU pragma: export
#include "overload/config.h"         // IWYU pragma: export
#include "overload/retry_budget.h"   // IWYU pragma: export
#include "queueing/job.h"            // IWYU pragma: export
#include "queueing/mm1.h"            // IWYU pragma: export
#include "rng/distributions.h"       // IWYU pragma: export
#include "rng/rng.h"                 // IWYU pragma: export
#include "serving/clock.h"           // IWYU pragma: export
#include "serving/replay.h"          // IWYU pragma: export
#include "serving/serving_dispatcher.h"  // IWYU pragma: export
#include "serving/trace_io.h"        // IWYU pragma: export
#include "workload/arrival.h"        // IWYU pragma: export
#include "workload/job_size.h"       // IWYU pragma: export
#include "workload/spec.h"           // IWYU pragma: export
#include "workload/trace.h"          // IWYU pragma: export
