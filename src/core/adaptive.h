// Adaptive ORR: online utilization estimation (an extension of §5.4).
//
// The paper computes the optimized allocation from the long-run system
// utilization ρ and shows the result is robust to mild overestimation
// but fragile to underestimation at high load. Its closing observation —
// "using the average system utilization over a long period of time is
// sufficient; it is not necessary to measure ρ and recompute often" —
// presumes someone measures ρ at all. This module does that measurement
// at the scheduler, with zero machine feedback:
//
//  * UtilizationEstimator — EWMA of the arrival rate observed by the
//    scheduler, converted to ρ̂ = λ̂·E[size]/Σs (mean job size is the one
//    long-run workload constant the operator must supply, exactly as the
//    paper assumes μ is known).
//  * AdaptiveOrrDispatcher — wraps the smoothed round-robin dispatcher
//    and periodically recomputes the optimized allocation from ρ̂,
//    inflated by a small safety factor per the paper's own advice to
//    "conservatively overestimate system load slightly".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"
#include "dispatch/smooth_rr.h"

namespace hs::core {

/// Exponentially weighted estimate of the utilization implied by the
/// arrival stream. Time-constant based: observations decay with
/// exp(−Δt/τ), so the estimate tracks drifting load with a memory of
/// roughly τ seconds regardless of the arrival rate.
class UtilizationEstimator {
 public:
  /// `mean_job_size` in base-speed seconds; `total_speed` = Σsᵢ;
  /// `time_constant` τ in seconds.
  UtilizationEstimator(double mean_job_size, double total_speed,
                       double time_constant);

  /// Record one arrival at time `now` (non-decreasing).
  void observe_arrival(double now);

  /// Current ρ̂; falls back to `fallback` until enough arrivals are seen.
  [[nodiscard]] double estimate(double fallback = 0.5) const;

  [[nodiscard]] uint64_t observed_arrivals() const { return count_; }
  /// Estimated arrival rate λ̂ (0 until warmed up).
  [[nodiscard]] double arrival_rate() const;

  void reset();

 private:
  double mean_job_size_;
  double total_speed_;
  double time_constant_;
  double discounted_count_ = 0.0;  // Σ e^{−age/τ} over past arrivals
  double discounted_time_ = 0.0;   // Σ e^{−age/τ}·gap
  double last_arrival_ = 0.0;
  uint64_t count_ = 0;
  static constexpr uint64_t kWarmupArrivals = 16;
};

struct AdaptiveOrrOptions {
  double mean_job_size = 76.8;    // the workload's long-run mean (§4.1)
  double time_constant = 5000.0;  // estimator memory, seconds
  double safety_factor = 1.05;    // overestimate ρ̂ slightly (§5.4)
  uint64_t recompute_every = 512;  // arrivals between re-optimizations
  double initial_rho = 0.5;       // used until the estimator warms up
  double min_rho = 0.02;          // clamp range for the assumed load
  double max_rho = 0.98;
};

/// ORR that learns the utilization instead of being told. Purely
/// scheduler-local: it observes only the arrival instants it sees anyway.
class AdaptiveOrrDispatcher final : public dispatch::Dispatcher {
 public:
  AdaptiveOrrDispatcher(std::vector<double> speeds,
                        AdaptiveOrrOptions options = {});

  void on_arrival(double now) override;
  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "adaptive-orr"; }
  [[nodiscard]] size_t machine_count() const override {
    return speeds_.size();
  }

  /// Native fault-layer blacklist (lets FaultAwareDispatcher compose with
  /// this policy instead of wrapping blindly). The allocation is
  /// recomputed over the available machines only: the arrival-rate
  /// estimator keeps measuring the system-level ρ̂ = λ̂·E[size]/Σs (the
  /// arrival stream does not change when a machine dies), and the rebuilt
  /// inner allocation assumes the survivor-effective utilization
  /// ρ̂·Σs/Σs_up, clamped to [min_rho, max_rho]. An all-false mask is
  /// treated as all-true (jobs must go somewhere; the fault layer loses
  /// and retries them).
  bool set_available_mask(const std::vector<bool>& available) override;

  /// The utilization currently assumed by the inner allocation
  /// (estimate × safety factor, clamped).
  [[nodiscard]] double assumed_rho() const { return assumed_rho_; }
  [[nodiscard]] const UtilizationEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] const alloc::Allocation& allocation() const;
  /// Number of allocation recomputations so far.
  [[nodiscard]] uint64_t recomputations() const { return recomputations_; }

 private:
  void rebuild(double rho_estimate);
  /// True if any machine is masked out (an all-false mask counts as no
  /// masking).
  [[nodiscard]] bool mask_active() const;

  std::vector<double> speeds_;
  AdaptiveOrrOptions options_;
  UtilizationEstimator estimator_;
  double assumed_rho_;
  uint64_t arrivals_since_recompute_ = 0;
  uint64_t recomputations_ = 0;
  std::vector<bool> available_;
  std::unique_ptr<alloc::Allocation> allocation_;
  std::unique_ptr<dispatch::SmoothRoundRobinDispatcher> inner_;
};

}  // namespace hs::core
