#include "core/policy.h"

#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "dispatch/least_load.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "util/check.h"

namespace hs::core {

const std::vector<PolicyKind>& static_policies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kWRAN, PolicyKind::kORAN, PolicyKind::kWRR,
      PolicyKind::kORR};
  return kPolicies;
}

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kWRAN, PolicyKind::kORAN, PolicyKind::kWRR,
      PolicyKind::kORR, PolicyKind::kLeastLoad};
  return kPolicies;
}

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kWRAN:
      return "WRAN";
    case PolicyKind::kORAN:
      return "ORAN";
    case PolicyKind::kWRR:
      return "WRR";
    case PolicyKind::kORR:
      return "ORR";
    case PolicyKind::kLeastLoad:
      return "LeastLoad";
  }
  HS_CHECK(false, "unreachable policy kind");
  return {};
}

bool is_dynamic(PolicyKind kind) { return kind == PolicyKind::kLeastLoad; }

bool uses_optimized_allocation(PolicyKind kind) {
  return kind == PolicyKind::kORAN || kind == PolicyKind::kORR;
}

alloc::Allocation policy_allocation(PolicyKind kind,
                                    const std::vector<double>& speeds,
                                    double rho, double rho_estimate_factor) {
  HS_CHECK(!is_dynamic(kind),
           "dynamic policy " << policy_name(kind) << " has no allocation");
  if (uses_optimized_allocation(kind)) {
    return alloc::OptimizedAllocation(rho_estimate_factor)
        .compute(speeds, rho);
  }
  return alloc::WeightedAllocation().compute(speeds, rho);
}

std::unique_ptr<dispatch::Dispatcher> make_policy_dispatcher(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor) {
  if (kind == PolicyKind::kLeastLoad) {
    return std::make_unique<dispatch::LeastLoadDispatcher>(speeds);
  }
  alloc::Allocation allocation =
      policy_allocation(kind, speeds, rho, rho_estimate_factor);
  switch (kind) {
    case PolicyKind::kWRAN:
    case PolicyKind::kORAN:
      return std::make_unique<dispatch::RandomDispatcher>(
          std::move(allocation));
    case PolicyKind::kWRR:
    case PolicyKind::kORR:
      return std::make_unique<dispatch::SmoothRoundRobinDispatcher>(
          std::move(allocation));
    case PolicyKind::kLeastLoad:
      break;
  }
  HS_CHECK(false, "unreachable policy kind");
  return nullptr;
}

cluster::DispatcherFactory policy_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    double rho_estimate_factor) {
  return [kind, speeds = std::move(speeds), rho, rho_estimate_factor] {
    return make_policy_dispatcher(kind, speeds, rho, rho_estimate_factor);
  };
}

}  // namespace hs::core
