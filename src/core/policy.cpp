#include "core/policy.h"

#include <algorithm>

#include "alloc/optimized.h"
#include "alloc/scheme.h"
#include "dispatch/fault_aware.h"
#include "dispatch/least_load.h"
#include "dispatch/random_dispatcher.h"
#include "dispatch/smooth_rr.h"
#include "util/check.h"
#include "util/math_util.h"

namespace hs::core {

namespace {

/// Ceiling for the survivor-effective utilization when capacity is lost:
/// past this the optimized scheme is effectively the weighted scheme (its
/// ρ→1 limit), and the allocation schemes require ρ < 1.
constexpr double kMaxDegradedRho = 0.999;

/// Planning ceiling for overloaded systems: SimulationConfig allows
/// ρ ≥ 1 (offered load beyond capacity), but the allocation schemes'
/// closed forms require ρ < 1, so static policies plan for this
/// utilization when the true load is at or past saturation. At ρ→1 the
/// optimized scheme converges to the weighted scheme, so the clamp
/// changes nothing qualitative about the split.
constexpr double kMaxPlanningRho = 0.999;

double planning_rho(double rho) { return std::min(rho, kMaxPlanningRho); }

}  // namespace

const std::vector<PolicyKind>& static_policies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kWRAN, PolicyKind::kORAN, PolicyKind::kWRR,
      PolicyKind::kORR};
  return kPolicies;
}

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kPolicies = {
      PolicyKind::kWRAN, PolicyKind::kORAN, PolicyKind::kWRR,
      PolicyKind::kORR, PolicyKind::kLeastLoad};
  return kPolicies;
}

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kWRAN:
      return "WRAN";
    case PolicyKind::kORAN:
      return "ORAN";
    case PolicyKind::kWRR:
      return "WRR";
    case PolicyKind::kORR:
      return "ORR";
    case PolicyKind::kLeastLoad:
      return "LeastLoad";
  }
  HS_CHECK(false, "unreachable policy kind");
  return {};
}

bool is_dynamic(PolicyKind kind) { return kind == PolicyKind::kLeastLoad; }

bool uses_optimized_allocation(PolicyKind kind) {
  return kind == PolicyKind::kORAN || kind == PolicyKind::kORR;
}

alloc::Allocation policy_allocation(PolicyKind kind,
                                    const std::vector<double>& speeds,
                                    double rho, double rho_estimate_factor) {
  HS_CHECK(!is_dynamic(kind),
           "dynamic policy " << policy_name(kind) << " has no allocation");
  if (uses_optimized_allocation(kind)) {
    return alloc::OptimizedAllocation(rho_estimate_factor)
        .compute(speeds, planning_rho(rho));
  }
  return alloc::WeightedAllocation().compute(speeds, planning_rho(rho));
}

std::unique_ptr<dispatch::Dispatcher> make_policy_dispatcher(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor, dispatch::SamplerKind sampler) {
  if (kind == PolicyKind::kLeastLoad) {
    return std::make_unique<dispatch::LeastLoadDispatcher>(speeds);
  }
  alloc::Allocation allocation =
      policy_allocation(kind, speeds, rho, rho_estimate_factor);
  switch (kind) {
    case PolicyKind::kWRAN:
    case PolicyKind::kORAN:
      return std::make_unique<dispatch::RandomDispatcher>(
          std::move(allocation), sampler);
    case PolicyKind::kWRR:
    case PolicyKind::kORR:
      return std::make_unique<dispatch::SmoothRoundRobinDispatcher>(
          std::move(allocation));
    case PolicyKind::kLeastLoad:
      break;
  }
  HS_CHECK(false, "unreachable policy kind");
  return nullptr;
}

cluster::DispatcherFactory policy_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    double rho_estimate_factor) {
  return [kind, speeds = std::move(speeds), rho, rho_estimate_factor] {
    return make_policy_dispatcher(kind, speeds, rho, rho_estimate_factor);
  };
}

alloc::Allocation policy_allocation_masked(PolicyKind kind,
                                           const std::vector<double>& speeds,
                                           double rho,
                                           const std::vector<bool>& available,
                                           double rho_estimate_factor) {
  HS_CHECK(!is_dynamic(kind),
           "dynamic policy " << policy_name(kind) << " has no allocation");
  HS_CHECK(available.size() == speeds.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << speeds.size());
  const bool any_down =
      std::find(available.begin(), available.end(), false) != available.end();
  const bool any_up =
      std::find(available.begin(), available.end(), true) != available.end();
  if (!any_down || !any_up) {
    // Full availability — or total blackout, where no preference between
    // machines is better than any other (every job is lost regardless).
    return policy_allocation(kind, speeds, rho, rho_estimate_factor);
  }
  std::vector<double> survivor_speeds;
  survivor_speeds.reserve(speeds.size());
  for (size_t i = 0; i < speeds.size(); ++i) {
    if (available[i]) {
      survivor_speeds.push_back(speeds[i]);
    }
  }
  // The survivors absorb the whole arrival stream: λ is unchanged while
  // the capacity shrank, so their effective utilization rises.
  const double total = util::kahan_sum(speeds);
  const double survivor_total = util::kahan_sum(survivor_speeds);
  const double effective =
      std::min(rho * total / survivor_total, kMaxDegradedRho);
  const alloc::Allocation survivor_alloc = policy_allocation(
      kind, survivor_speeds, effective, rho_estimate_factor);
  std::vector<double> fractions(speeds.size(), 0.0);
  size_t next_survivor = 0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    if (available[i]) {
      fractions[i] = survivor_alloc[next_survivor++];
    }
  }
  return alloc::Allocation(std::move(fractions));
}

void policy_fractions_masked_into(PolicyKind kind,
                                  const std::vector<double>& speeds,
                                  double rho,
                                  const std::vector<bool>& available,
                                  double rho_estimate_factor,
                                  std::vector<double>& fractions,
                                  MaskedReweightScratch& scratch) {
  HS_CHECK(!is_dynamic(kind),
           "dynamic policy " << policy_name(kind) << " has no allocation");
  HS_CHECK(available.size() == speeds.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << speeds.size());
  // Raw scheme fractions for the given speed set. The Allocation
  // normalization is deliberately NOT applied to the full-availability
  // output: the consumer (rebuild_fractions) applies it exactly once,
  // mirroring the single Allocation construction of policy_allocation().
  const auto compute_raw = [&](std::span<const double> machine_speeds,
                               double assumed,
                               std::vector<double>& out) {
    if (uses_optimized_allocation(kind)) {
      alloc::OptimizedAllocation(rho_estimate_factor)
          .compute_into(machine_speeds, planning_rho(assumed), out,
                        scratch.solver);
    } else {
      alloc::WeightedAllocation().compute_into(
          machine_speeds, planning_rho(assumed), out);
    }
  };
  const bool any_down =
      std::find(available.begin(), available.end(), false) != available.end();
  const bool any_up =
      std::find(available.begin(), available.end(), true) != available.end();
  if (!any_down || !any_up) {
    // Full availability — or total blackout, where no preference between
    // machines is better than any other (every job is lost regardless).
    compute_raw(speeds, rho, fractions);
    return;
  }
  scratch.survivor_speeds.clear();
  for (size_t i = 0; i < speeds.size(); ++i) {
    if (available[i]) {
      scratch.survivor_speeds.push_back(speeds[i]);
    }
  }
  // The survivors absorb the whole arrival stream: λ is unchanged while
  // the capacity shrank, so their effective utilization rises.
  const double total = util::kahan_sum(speeds);
  const double survivor_total = util::kahan_sum(scratch.survivor_speeds);
  const double effective =
      std::min(rho * total / survivor_total, kMaxDegradedRho);
  compute_raw(scratch.survivor_speeds, effective,
              scratch.survivor_fractions);
  // Normalize the survivor solve — the inner Allocation construction of
  // policy_allocation_masked() — then expand with zeros; the consumer's
  // single normalization reproduces the outer one bit-identically.
  alloc::Allocation::normalize(scratch.survivor_fractions);
  fractions.assign(speeds.size(), 0.0);
  size_t next_survivor = 0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    if (available[i]) {
      fractions[i] = scratch.survivor_fractions[next_survivor++];
    }
  }
}

std::function<void(const std::vector<bool>&, std::vector<double>&)>
policy_masked_reweighter(PolicyKind kind, std::vector<double> speeds,
                         double rho, double rho_estimate_factor) {
  // std::function requires copyability, so the scratch is shared; the
  // function object is invoked from one dispatcher stack at a time.
  auto scratch = std::make_shared<MaskedReweightScratch>();
  return [kind, speeds = std::move(speeds), rho, rho_estimate_factor,
          scratch](const std::vector<bool>& available,
                   std::vector<double>& fractions) {
    policy_fractions_masked_into(kind, speeds, rho, available,
                                 rho_estimate_factor, fractions, *scratch);
  };
}

std::unique_ptr<dispatch::Dispatcher> make_fault_aware_dispatcher(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor, dispatch::SamplerKind sampler) {
  if (kind == PolicyKind::kLeastLoad) {
    // Least-Load masks natively; its queue estimates survive transitions.
    return std::make_unique<dispatch::FaultAwareDispatcher>(
        std::make_unique<dispatch::LeastLoadDispatcher>(speeds));
  }
  auto rebuilder = [kind, speeds, rho, rho_estimate_factor,
                    sampler](const std::vector<bool>& available)
      -> std::unique_ptr<dispatch::Dispatcher> {
    alloc::Allocation allocation = policy_allocation_masked(
        kind, speeds, rho, available, rho_estimate_factor);
    switch (kind) {
      case PolicyKind::kWRAN:
      case PolicyKind::kORAN:
        return std::make_unique<dispatch::RandomDispatcher>(
            std::move(allocation), sampler);
      case PolicyKind::kWRR:
      case PolicyKind::kORR:
        return std::make_unique<dispatch::SmoothRoundRobinDispatcher>(
            std::move(allocation));
      case PolicyKind::kLeastLoad:
        break;
    }
    HS_CHECK(false, "unreachable policy kind");
    return nullptr;
  };
  auto inner = make_policy_dispatcher(kind, speeds, rho, rho_estimate_factor,
                                      sampler);
  return std::make_unique<dispatch::FaultAwareDispatcher>(
      std::move(inner), std::move(rebuilder),
      policy_masked_reweighter(kind, speeds, rho, rho_estimate_factor));
}

cluster::DispatcherFactory fault_aware_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    double rho_estimate_factor) {
  return [kind, speeds = std::move(speeds), rho, rho_estimate_factor] {
    return make_fault_aware_dispatcher(kind, speeds, rho,
                                       rho_estimate_factor);
  };
}

std::unique_ptr<dispatch::Dispatcher> make_circuit_breaker_dispatcher(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    const overload::CircuitBreakerConfig& breaker, double rho_estimate_factor,
    dispatch::SamplerKind sampler) {
  if (kind == PolicyKind::kLeastLoad) {
    // Least-Load masks natively; its queue estimates survive trips.
    return std::make_unique<overload::CircuitBreakerDispatcher>(
        std::make_unique<dispatch::LeastLoadDispatcher>(speeds), breaker);
  }
  auto rebuilder = [kind, speeds, rho, rho_estimate_factor,
                    sampler](const std::vector<bool>& available)
      -> std::unique_ptr<dispatch::Dispatcher> {
    alloc::Allocation allocation = policy_allocation_masked(
        kind, speeds, rho, available, rho_estimate_factor);
    switch (kind) {
      case PolicyKind::kWRAN:
      case PolicyKind::kORAN:
        return std::make_unique<dispatch::RandomDispatcher>(
            std::move(allocation), sampler);
      case PolicyKind::kWRR:
      case PolicyKind::kORR:
        return std::make_unique<dispatch::SmoothRoundRobinDispatcher>(
            std::move(allocation));
      case PolicyKind::kLeastLoad:
        break;
    }
    HS_CHECK(false, "unreachable policy kind");
    return nullptr;
  };
  auto inner = make_policy_dispatcher(kind, speeds, rho, rho_estimate_factor,
                                      sampler);
  return std::make_unique<overload::CircuitBreakerDispatcher>(
      std::move(inner), breaker, std::move(rebuilder),
      policy_masked_reweighter(kind, speeds, rho, rho_estimate_factor));
}

std::unique_ptr<dispatch::Dispatcher> make_hedged_dispatcher(
    std::unique_ptr<dispatch::Dispatcher> inner,
    const dispatch::HedgingConfig& hedging) {
  return std::make_unique<dispatch::HedgedDispatcher>(std::move(inner),
                                                      hedging);
}

cluster::DispatcherFactory hedged_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    dispatch::HedgingConfig hedging, double rho_estimate_factor) {
  return [kind, speeds = std::move(speeds), rho, hedging,
          rho_estimate_factor]() -> std::unique_ptr<dispatch::Dispatcher> {
    return make_hedged_dispatcher(
        make_policy_dispatcher(kind, speeds, rho, rho_estimate_factor),
        hedging);
  };
}

std::unique_ptr<dispatch::Dispatcher> make_adaptive_dispatcher(
    PolicyKind kind, const std::vector<double>& believed_speeds,
    double believed_rho, uncertainty::AdaptiveOptions options) {
  HS_CHECK(!is_dynamic(kind), "dynamic policy " << policy_name(kind)
                                                << " has no allocation to "
                                                   "adapt");
  options.scheme = uses_optimized_allocation(kind)
                       ? uncertainty::AdaptiveScheme::kOptimized
                       : uncertainty::AdaptiveScheme::kWeighted;
  return std::make_unique<uncertainty::GovernedAdaptiveDispatcher>(
      believed_speeds, believed_rho, options);
}

cluster::DispatcherFactory adaptive_dispatcher_factory(
    PolicyKind kind, std::vector<double> believed_speeds, double believed_rho,
    uncertainty::AdaptiveOptions options, bool fault_aware) {
  return [kind, believed_speeds = std::move(believed_speeds), believed_rho,
          options, fault_aware]() -> std::unique_ptr<dispatch::Dispatcher> {
    auto adaptive = make_adaptive_dispatcher(kind, believed_speeds,
                                             believed_rho, options);
    if (!fault_aware) {
      return adaptive;
    }
    // Native masking: the adaptive core survives fault transitions.
    return std::make_unique<dispatch::FaultAwareDispatcher>(
        std::move(adaptive));
  };
}

cluster::DispatcherFactory circuit_breaker_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    overload::CircuitBreakerConfig breaker, double rho_estimate_factor) {
  return [kind, speeds = std::move(speeds), rho, breaker,
          rho_estimate_factor] {
    return make_circuit_breaker_dispatcher(kind, speeds, rho, breaker,
                                           rho_estimate_factor);
  };
}

}  // namespace hs::core
