// Production-facing Optimized Round-Robin scheduler.
//
// The distilled deliverable of the paper for a downstream user: give it
// the relative speeds of your machines and an estimate of the overall
// utilization, and call route() once per incoming request. It combines
// the optimized workload allocation (Algorithm 1) with the smoothed
// round-robin dispatcher (Algorithm 2), i.e. the ORR policy, with no
// simulation machinery attached.
//
//   hs::core::OrrScheduler orr({1.0, 1.0, 4.0, 8.0}, /*utilization=*/0.6);
//   size_t machine = orr.route();   // per request
//
// §5.4 of the paper shows ORR tolerates load overestimation far better
// than underestimation, so `utilization` should be a slightly
// conservative (high) estimate; set_utilization() recomputes the
// allocation when the estimate drifts.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/smooth_rr.h"

namespace hs::core {

class OrrScheduler {
 public:
  /// `speeds` are relative machine speeds; `utilization` the estimated
  /// overall system load in (0, 1).
  OrrScheduler(std::vector<double> speeds, double utilization);

  /// Destination machine index for the next request. Deterministic.
  [[nodiscard]] size_t route();

  /// The computed allocation fractions {α₁, …, αₙ}.
  [[nodiscard]] const alloc::Allocation& allocation() const {
    return allocation_;
  }
  [[nodiscard]] const std::vector<double>& speeds() const { return speeds_; }
  [[nodiscard]] double utilization() const { return utilization_; }
  [[nodiscard]] size_t machine_count() const { return speeds_.size(); }
  /// Requests routed so far.
  [[nodiscard]] uint64_t routed() const { return routed_; }
  /// Requests routed to one machine so far.
  [[nodiscard]] uint64_t routed_to(size_t machine) const;

  /// Recompute the allocation for a new utilization estimate and restart
  /// the dispatch cycle.
  void set_utilization(double utilization);

 private:
  std::vector<double> speeds_;
  double utilization_;
  alloc::Allocation allocation_;
  dispatch::SmoothRoundRobinDispatcher dispatcher_;
  uint64_t routed_ = 0;
};

}  // namespace hs::core
