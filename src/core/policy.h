// The scheduling policies studied in the paper (Table 2).
//
// A static policy is a (workload allocation scheme × job dispatching
// strategy) pair:
//
//                          weighted     optimized
//        random            WRAN         ORAN
//        round-robin       WRR          ORR
//
// plus the Dynamic Least-Load yardstick. This module builds the
// dispatcher for a policy given the machine speeds and the (estimated)
// system utilization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "alloc/allocation.h"
#include "cluster/experiment.h"
#include "dispatch/dispatcher.h"

namespace hs::core {

enum class PolicyKind {
  kWRAN,       // weighted allocation + random dispatching
  kORAN,       // optimized allocation + random dispatching
  kWRR,        // weighted allocation + round-robin dispatching
  kORR,        // optimized allocation + round-robin dispatching
  kLeastLoad,  // dynamic least normalized load (upper-bound yardstick)
};

/// All four static policies, in Table 2 order.
[[nodiscard]] const std::vector<PolicyKind>& static_policies();
/// The static policies plus Dynamic Least-Load.
[[nodiscard]] const std::vector<PolicyKind>& all_policies();

[[nodiscard]] std::string policy_name(PolicyKind kind);
[[nodiscard]] bool is_dynamic(PolicyKind kind);
/// True if the policy uses the optimized (Algorithm 1) allocation.
[[nodiscard]] bool uses_optimized_allocation(PolicyKind kind);

/// The allocation a static policy computes for the given cluster.
/// `rho_estimate_factor` models §5.4's load estimation error (the
/// optimized scheme is computed for factor·ρ). Must not be called for
/// kLeastLoad, which has no static allocation.
[[nodiscard]] alloc::Allocation policy_allocation(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor = 1.0);

/// Build a ready-to-use dispatcher implementing the policy.
[[nodiscard]] std::unique_ptr<dispatch::Dispatcher> make_policy_dispatcher(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor = 1.0);

/// Thread-safe factory for run_experiment(): every call produces a fresh
/// dispatcher with identical initial state.
[[nodiscard]] cluster::DispatcherFactory policy_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    double rho_estimate_factor = 1.0);

}  // namespace hs::core
