// The scheduling policies studied in the paper (Table 2).
//
// A static policy is a (workload allocation scheme × job dispatching
// strategy) pair:
//
//                          weighted     optimized
//        random            WRAN         ORAN
//        round-robin       WRR          ORR
//
// plus the Dynamic Least-Load yardstick. This module builds the
// dispatcher for a policy given the machine speeds and the (estimated)
// system utilization.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocation.h"
#include "alloc/optimized.h"
#include "cluster/experiment.h"
#include "dispatch/dispatcher.h"
#include "dispatch/hedged.h"
#include "dispatch/random_dispatcher.h"
#include "overload/circuit_breaker.h"
#include "uncertainty/adaptive.h"

namespace hs::core {

enum class PolicyKind {
  kWRAN,       // weighted allocation + random dispatching
  kORAN,       // optimized allocation + random dispatching
  kWRR,        // weighted allocation + round-robin dispatching
  kORR,        // optimized allocation + round-robin dispatching
  kLeastLoad,  // dynamic least normalized load (upper-bound yardstick)
};

/// All four static policies, in Table 2 order.
[[nodiscard]] const std::vector<PolicyKind>& static_policies();
/// The static policies plus Dynamic Least-Load.
[[nodiscard]] const std::vector<PolicyKind>& all_policies();

[[nodiscard]] std::string policy_name(PolicyKind kind);
[[nodiscard]] bool is_dynamic(PolicyKind kind);
/// True if the policy uses the optimized (Algorithm 1) allocation.
[[nodiscard]] bool uses_optimized_allocation(PolicyKind kind);

/// The allocation a static policy computes for the given cluster.
/// `rho_estimate_factor` models §5.4's load estimation error (the
/// optimized scheme is computed for factor·ρ). Must not be called for
/// kLeastLoad, which has no static allocation.
[[nodiscard]] alloc::Allocation policy_allocation(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor = 1.0);

/// Build a ready-to-use dispatcher implementing the policy. `sampler`
/// selects the weighted sampler for the random policies (WRAN/ORAN):
/// the default CDF binary search is golden-pinned; the opt-in O(1)
/// alias table keeps per-pick cost flat at large n. Round-robin and
/// Least-Load policies ignore it.
[[nodiscard]] std::unique_ptr<dispatch::Dispatcher> make_policy_dispatcher(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    double rho_estimate_factor = 1.0,
    dispatch::SamplerKind sampler = dispatch::SamplerKind::kCdf);

/// Thread-safe factory for run_experiment(): every call produces a fresh
/// dispatcher with identical initial state.
[[nodiscard]] cluster::DispatcherFactory policy_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    double rho_estimate_factor = 1.0);

/// The allocation a static policy computes when only `available` machines
/// may receive work (graceful degradation): Algorithm 1 (or the weighted
/// scheme) is re-applied to the survivors at their effective utilization
/// ρ·Σs/Σs_up (clamped below 1), and the result is expanded back to the
/// full machine-index space with αᵢ = 0 for unavailable machines. With an
/// all-true (or all-false) mask this is exactly policy_allocation().
[[nodiscard]] alloc::Allocation policy_allocation_masked(
    PolicyKind kind, const std::vector<double>& speeds, double rho,
    const std::vector<bool>& available, double rho_estimate_factor = 1.0);

/// Reusable buffers for policy_fractions_masked_into(): survivor solves
/// at a fixed cluster size touch the allocator zero times once warm.
struct MaskedReweightScratch {
  std::vector<double> survivor_speeds;
  std::vector<double> survivor_fractions;
  alloc::SolverScratch solver;
};

/// Allocation-free variant of policy_allocation_masked(): writes the
/// survivor fractions into `fractions` using `scratch` for every
/// intermediate. The output is normalized such that feeding it through
/// Dispatcher::rebuild_fractions() (which applies Allocation's
/// normalization once) yields fractions bit-identical to the
/// policy_allocation_masked() → Allocation construction chain — the two
/// survivor-rebuild paths route identically.
void policy_fractions_masked_into(PolicyKind kind,
                                  const std::vector<double>& speeds,
                                  double rho,
                                  const std::vector<bool>& available,
                                  double rho_estimate_factor,
                                  std::vector<double>& fractions,
                                  MaskedReweightScratch& scratch);

/// A survivor reweighter for FaultAwareDispatcher / CircuitBreaker
/// (their Reweighter slots share this signature): computes the policy's
/// masked fractions into the caller's buffer, allocation-free once its
/// internal scratch is warm. One instance owns one scratch — share it
/// across the decorators of a single dispatcher stack only.
[[nodiscard]] std::function<void(const std::vector<bool>&,
                                 std::vector<double>&)>
policy_masked_reweighter(PolicyKind kind, std::vector<double> speeds,
                         double rho, double rho_estimate_factor = 1.0);

/// Build a failure-aware dispatcher for the policy: the policy dispatcher
/// wrapped in a dispatch::FaultAwareDispatcher that blacklists machines
/// reported down. Static policies degrade by recomputing their allocation
/// over the survivors (policy_allocation_masked); Least-Load masks its
/// candidate set natively.
[[nodiscard]] std::unique_ptr<dispatch::Dispatcher>
make_fault_aware_dispatcher(PolicyKind kind,
                            const std::vector<double>& speeds, double rho,
                            double rho_estimate_factor = 1.0,
                            dispatch::SamplerKind sampler =
                                dispatch::SamplerKind::kCdf);

/// Thread-safe factory variant of make_fault_aware_dispatcher().
[[nodiscard]] cluster::DispatcherFactory fault_aware_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    double rho_estimate_factor = 1.0);

/// Build a circuit-breaking dispatcher for the policy: the policy
/// dispatcher wrapped in an overload::CircuitBreakerDispatcher that
/// trips machines on consecutive dispatch rejections/losses. Static
/// policies route around tripped machines by recomputing their
/// allocation over the closed-breaker set (policy_allocation_masked —
/// the same survivor-reallocation rebuild the fault decorator uses);
/// Least-Load masks its candidate set natively.
[[nodiscard]] std::unique_ptr<dispatch::Dispatcher>
make_circuit_breaker_dispatcher(PolicyKind kind,
                                const std::vector<double>& speeds,
                                double rho,
                                const overload::CircuitBreakerConfig& breaker,
                                double rho_estimate_factor = 1.0,
                                dispatch::SamplerKind sampler =
                                    dispatch::SamplerKind::kCdf);

/// Thread-safe factory variant of make_circuit_breaker_dispatcher().
[[nodiscard]] cluster::DispatcherFactory circuit_breaker_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    overload::CircuitBreakerConfig breaker, double rho_estimate_factor = 1.0);

/// Wrap any built dispatcher in a dispatch::HedgedDispatcher so the
/// cluster harness re-issues stragglers to a second-choice machine
/// (first completion wins; see docs/FAULT_MODEL.md §8). Composes with
/// the fault-aware and circuit-breaker builders in any order.
[[nodiscard]] std::unique_ptr<dispatch::Dispatcher> make_hedged_dispatcher(
    std::unique_ptr<dispatch::Dispatcher> inner,
    const dispatch::HedgingConfig& hedging);

/// Thread-safe factory: the policy dispatcher wrapped for hedging.
[[nodiscard]] cluster::DispatcherFactory hedged_dispatcher_factory(
    PolicyKind kind, std::vector<double> speeds, double rho,
    dispatch::HedgingConfig hedging, double rho_estimate_factor = 1.0);

/// Build the governed adaptive variant of a static policy: a
/// uncertainty::GovernedAdaptiveDispatcher seeded with the operator's
/// *believed* speeds and utilization (see
/// ExperimentConfig::believed_params) that re-estimates both online and
/// re-solves the policy's allocation scheme through the re-allocation
/// governor. ORR/ORAN re-solve Algorithm 1 (options.scheme is forced to
/// kOptimized); WRR/WRAN re-solve the weighted scheme (kWeighted).
/// Dispatching is always Algorithm 2's smoothed round-robin — the
/// adaptive loop changes weights, not mechanism. Must not be called for
/// kLeastLoad, which has no allocation to adapt. The returned dispatcher
/// masks natively, so FaultAwareDispatcher / CircuitBreakerDispatcher
/// wrap it directly (no rebuilder needed).
[[nodiscard]] std::unique_ptr<dispatch::Dispatcher> make_adaptive_dispatcher(
    PolicyKind kind, const std::vector<double>& believed_speeds,
    double believed_rho, uncertainty::AdaptiveOptions options = {});

/// Thread-safe factory variant of make_adaptive_dispatcher(). With
/// `fault_aware`, each dispatcher is wrapped in a FaultAwareDispatcher
/// (native masking) so crash reports blacklist machines.
[[nodiscard]] cluster::DispatcherFactory adaptive_dispatcher_factory(
    PolicyKind kind, std::vector<double> believed_speeds, double believed_rho,
    uncertainty::AdaptiveOptions options = {}, bool fault_aware = false);

}  // namespace hs::core
