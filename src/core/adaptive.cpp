#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "alloc/optimized.h"
#include "util/check.h"
#include "util/math_util.h"

namespace hs::core {

UtilizationEstimator::UtilizationEstimator(double mean_job_size,
                                           double total_speed,
                                           double time_constant)
    : mean_job_size_(mean_job_size),
      total_speed_(total_speed),
      time_constant_(time_constant) {
  HS_CHECK(mean_job_size > 0.0,
           "mean job size must be positive: " << mean_job_size);
  HS_CHECK(total_speed > 0.0, "total speed must be positive: " << total_speed);
  HS_CHECK(time_constant > 0.0,
           "time constant must be positive: " << time_constant);
}

void UtilizationEstimator::observe_arrival(double now) {
  HS_CHECK(now >= last_arrival_,
           "arrival times must be non-decreasing: " << now << " < "
                                                    << last_arrival_);
  if (count_ > 0) {
    const double gap = now - last_arrival_;
    // Exponentially discounted count-over-time ratio: both numerator and
    // denominator decay with exp(−age/τ), so the estimate is
    //   λ̂ = (Σᵢ e^{−ageᵢ/τ}) / (Σᵢ e^{−ageᵢ/τ}·gapᵢ),
    // an (asymptotically) unbiased renewal-rate estimator with ~τ
    // seconds of memory. A naive per-gap EWMA weighted by gap length
    // would be length-biased (long gaps over-counted) and estimate half
    // the true rate on Poisson streams.
    const double decay = std::exp(-gap / time_constant_);
    discounted_count_ = discounted_count_ * decay + 1.0;
    discounted_time_ = discounted_time_ * decay + gap;
  }
  last_arrival_ = now;
  ++count_;
}

double UtilizationEstimator::arrival_rate() const {
  if (count_ <= kWarmupArrivals || discounted_time_ <= 0.0) {
    return 0.0;
  }
  return discounted_count_ / discounted_time_;
}

double UtilizationEstimator::estimate(double fallback) const {
  const double rate = arrival_rate();
  if (rate <= 0.0) {
    return fallback;
  }
  return rate * mean_job_size_ / total_speed_;
}

void UtilizationEstimator::reset() {
  discounted_count_ = 0.0;
  discounted_time_ = 0.0;
  last_arrival_ = 0.0;
  count_ = 0;
}

AdaptiveOrrDispatcher::AdaptiveOrrDispatcher(std::vector<double> speeds,
                                             AdaptiveOrrOptions options)
    : speeds_(std::move(speeds)),
      options_(options),
      estimator_(options.mean_job_size, util::kahan_sum(speeds_),
                 options.time_constant),
      assumed_rho_(options.initial_rho) {
  HS_CHECK(!speeds_.empty(), "adaptive ORR needs at least one machine");
  HS_CHECK(options.safety_factor > 0.0,
           "safety factor must be positive: " << options.safety_factor);
  HS_CHECK(options.recompute_every >= 1, "recompute interval must be >= 1");
  HS_CHECK(options.initial_rho > 0.0 && options.initial_rho < 1.0,
           "initial rho out of (0,1): " << options.initial_rho);
  available_.assign(speeds_.size(), true);
  rebuild(options_.initial_rho);
  recomputations_ = 0;  // the initial build does not count
}

bool AdaptiveOrrDispatcher::mask_active() const {
  bool any_down = false;
  bool any_up = false;
  for (const bool up : available_) {
    any_down = any_down || !up;
    any_up = any_up || up;
  }
  return any_down && any_up;
}

void AdaptiveOrrDispatcher::rebuild(double rho_estimate) {
  const double assumed =
      std::clamp(rho_estimate * options_.safety_factor, options_.min_rho,
                 options_.max_rho);
  assumed_rho_ = assumed;
  if (mask_active()) {
    // Recompute Algorithm 1 over the survivors: they absorb the whole
    // arrival stream, so their effective utilization is the system-level
    // assumed ρ scaled by total/survivor capacity (clamped — past
    // max_rho the optimized scheme approaches the weighted one anyway).
    std::vector<double> survivor_speeds;
    survivor_speeds.reserve(speeds_.size());
    for (size_t i = 0; i < speeds_.size(); ++i) {
      if (available_[i]) {
        survivor_speeds.push_back(speeds_[i]);
      }
    }
    const double total = util::kahan_sum(speeds_);
    const double survivor_total = util::kahan_sum(survivor_speeds);
    const double effective =
        std::clamp(assumed * total / survivor_total, options_.min_rho,
                   options_.max_rho);
    const alloc::Allocation survivor_alloc =
        alloc::OptimizedAllocation().compute(survivor_speeds, effective);
    std::vector<double> fractions(speeds_.size(), 0.0);
    size_t next_survivor = 0;
    for (size_t i = 0; i < speeds_.size(); ++i) {
      if (available_[i]) {
        fractions[i] = survivor_alloc[next_survivor++];
      }
    }
    allocation_ = std::make_unique<alloc::Allocation>(std::move(fractions));
  } else {
    allocation_ = std::make_unique<alloc::Allocation>(
        alloc::OptimizedAllocation().compute(speeds_, assumed));
  }
  inner_ =
      std::make_unique<dispatch::SmoothRoundRobinDispatcher>(*allocation_);
  ++recomputations_;
}

bool AdaptiveOrrDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  HS_CHECK(available.size() == speeds_.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << speeds_.size());
  if (available == available_) {
    return true;
  }
  available_ = available;
  // Re-optimize immediately from the current estimate; the ρ̂ estimator
  // itself is untouched (it observes arrivals, which a crash does not
  // change).
  rebuild(estimator_.estimate(options_.initial_rho));
  return true;
}

void AdaptiveOrrDispatcher::on_arrival(double now) {
  estimator_.observe_arrival(now);
  if (++arrivals_since_recompute_ >= options_.recompute_every &&
      estimator_.arrival_rate() > 0.0) {
    arrivals_since_recompute_ = 0;
    rebuild(estimator_.estimate(options_.initial_rho));
  }
}

size_t AdaptiveOrrDispatcher::pick(rng::Xoshiro256& gen) {
  return inner_->pick(gen);
}

void AdaptiveOrrDispatcher::reset() {
  estimator_.reset();
  arrivals_since_recompute_ = 0;
  available_.assign(speeds_.size(), true);
  rebuild(options_.initial_rho);
  recomputations_ = 0;
}

const alloc::Allocation& AdaptiveOrrDispatcher::allocation() const {
  return *allocation_;
}

}  // namespace hs::core
