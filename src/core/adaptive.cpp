#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "alloc/optimized.h"
#include "util/check.h"
#include "util/math_util.h"

namespace hs::core {

UtilizationEstimator::UtilizationEstimator(double mean_job_size,
                                           double total_speed,
                                           double time_constant)
    : mean_job_size_(mean_job_size),
      total_speed_(total_speed),
      time_constant_(time_constant) {
  HS_CHECK(mean_job_size > 0.0,
           "mean job size must be positive: " << mean_job_size);
  HS_CHECK(total_speed > 0.0, "total speed must be positive: " << total_speed);
  HS_CHECK(time_constant > 0.0,
           "time constant must be positive: " << time_constant);
}

void UtilizationEstimator::observe_arrival(double now) {
  HS_CHECK(now >= last_arrival_,
           "arrival times must be non-decreasing: " << now << " < "
                                                    << last_arrival_);
  if (count_ > 0) {
    const double gap = now - last_arrival_;
    // Exponentially discounted count-over-time ratio: both numerator and
    // denominator decay with exp(−age/τ), so the estimate is
    //   λ̂ = (Σᵢ e^{−ageᵢ/τ}) / (Σᵢ e^{−ageᵢ/τ}·gapᵢ),
    // an (asymptotically) unbiased renewal-rate estimator with ~τ
    // seconds of memory. A naive per-gap EWMA weighted by gap length
    // would be length-biased (long gaps over-counted) and estimate half
    // the true rate on Poisson streams.
    const double decay = std::exp(-gap / time_constant_);
    discounted_count_ = discounted_count_ * decay + 1.0;
    discounted_time_ = discounted_time_ * decay + gap;
  }
  last_arrival_ = now;
  ++count_;
}

double UtilizationEstimator::arrival_rate() const {
  if (count_ <= kWarmupArrivals || discounted_time_ <= 0.0) {
    return 0.0;
  }
  return discounted_count_ / discounted_time_;
}

double UtilizationEstimator::estimate(double fallback) const {
  const double rate = arrival_rate();
  if (rate <= 0.0) {
    return fallback;
  }
  return rate * mean_job_size_ / total_speed_;
}

void UtilizationEstimator::reset() {
  discounted_count_ = 0.0;
  discounted_time_ = 0.0;
  last_arrival_ = 0.0;
  count_ = 0;
}

AdaptiveOrrDispatcher::AdaptiveOrrDispatcher(std::vector<double> speeds,
                                             AdaptiveOrrOptions options)
    : speeds_(std::move(speeds)),
      options_(options),
      estimator_(options.mean_job_size, util::kahan_sum(speeds_),
                 options.time_constant),
      assumed_rho_(options.initial_rho) {
  HS_CHECK(!speeds_.empty(), "adaptive ORR needs at least one machine");
  HS_CHECK(options.safety_factor > 0.0,
           "safety factor must be positive: " << options.safety_factor);
  HS_CHECK(options.recompute_every >= 1, "recompute interval must be >= 1");
  HS_CHECK(options.initial_rho > 0.0 && options.initial_rho < 1.0,
           "initial rho out of (0,1): " << options.initial_rho);
  rebuild(options_.initial_rho);
  recomputations_ = 0;  // the initial build does not count
}

void AdaptiveOrrDispatcher::rebuild(double rho_estimate) {
  const double assumed =
      std::clamp(rho_estimate * options_.safety_factor, options_.min_rho,
                 options_.max_rho);
  assumed_rho_ = assumed;
  allocation_ = std::make_unique<alloc::Allocation>(
      alloc::OptimizedAllocation().compute(speeds_, assumed));
  inner_ =
      std::make_unique<dispatch::SmoothRoundRobinDispatcher>(*allocation_);
  ++recomputations_;
}

void AdaptiveOrrDispatcher::on_arrival(double now) {
  estimator_.observe_arrival(now);
  if (++arrivals_since_recompute_ >= options_.recompute_every &&
      estimator_.arrival_rate() > 0.0) {
    arrivals_since_recompute_ = 0;
    rebuild(estimator_.estimate(options_.initial_rho));
  }
}

size_t AdaptiveOrrDispatcher::pick(rng::Xoshiro256& gen) {
  return inner_->pick(gen);
}

void AdaptiveOrrDispatcher::reset() {
  estimator_.reset();
  arrivals_since_recompute_ = 0;
  rebuild(options_.initial_rho);
  recomputations_ = 0;
}

const alloc::Allocation& AdaptiveOrrDispatcher::allocation() const {
  return *allocation_;
}

}  // namespace hs::core
