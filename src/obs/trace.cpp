#include "obs/trace.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "util/check.h"

namespace hs::obs {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival:      return "arrival";
    case TraceEventKind::kDispatch:     return "dispatch";
    case TraceEventKind::kServiceStart: return "service_start";
    case TraceEventKind::kPreempt:      return "preempt";
    case TraceEventKind::kResume:       return "resume";
    case TraceEventKind::kCompletion:   return "completion";
    case TraceEventKind::kJobLost:      return "job_lost";
    case TraceEventKind::kLossDetected: return "loss_detected";
    case TraceEventKind::kRetry:        return "retry";
    case TraceEventKind::kDrop:         return "drop";
    case TraceEventKind::kCrash:        return "crash";
    case TraceEventKind::kRecovery:     return "recovery";
    case TraceEventKind::kSpeedChange:  return "speed_change";
    case TraceEventKind::kShed:         return "shed";
    case TraceEventKind::kReject:       return "reject";
    case TraceEventKind::kBreakerOpen:     return "breaker_open";
    case TraceEventKind::kBreakerHalfOpen: return "breaker_half_open";
    case TraceEventKind::kBreakerClose:    return "breaker_close";
    case TraceEventKind::kRetryBudgetExhausted:
      return "retry_budget_exhausted";
    case TraceEventKind::kEstimateUpdate: return "estimate_update";
    case TraceEventKind::kReallocCommit:  return "realloc_commit";
    case TraceEventKind::kReallocReject:  return "realloc_reject";
    case TraceEventKind::kGovernorFreeze: return "governor_freeze";
    case TraceEventKind::kMsgLost:        return "msg_lost";
    case TraceEventKind::kMsgDup:         return "msg_dup";
    case TraceEventKind::kPartitionStart: return "partition_start";
    case TraceEventKind::kPartitionEnd:   return "partition_end";
    case TraceEventKind::kSuspect:        return "suspect";
    case TraceEventKind::kHedgeIssued:    return "hedge_issued";
    case TraceEventKind::kHedgeWon:       return "hedge_won";
    case TraceEventKind::kHedgeCancelled: return "hedge_cancelled";
    case TraceEventKind::kTimeout:        return "timeout";
    case TraceEventKind::kDegraded:       return "degraded";
    case TraceEventKind::kSnapshot:       return "snapshot";
    case TraceEventKind::kSuspectCleared: return "suspect_cleared";
  }
  return "unknown";
}

TraceSink::TraceSink(size_t capacity) : ring_(capacity) {
  HS_CHECK(capacity >= 1, "trace ring needs at least one slot");
}

const TraceRecord& TraceSink::at(size_t i) const {
  HS_CHECK(i < count_, "trace record index out of range: " << i);
  // Oldest record: head_ when full (head_ points at the overwrite
  // victim), slot 0 otherwise.
  const size_t oldest = count_ == ring_.size() ? head_ : 0;
  size_t slot = oldest + i;
  if (slot >= ring_.size()) {
    slot -= ring_.size();
  }
  return ring_[slot];
}

void TraceSink::clear() {
  head_ = 0;
  count_ = 0;
  overwritten_ = 0;
}

namespace {

/// Streams one JSON trace event; keeps track of the comma between
/// array elements.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {}

  std::ostream& begin() {
    if (first_) {
      first_ = false;
    } else {
      out_ << ",";
    }
    out_ << "\n  ";
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

/// Chrome trace timestamps are microseconds.
int64_t to_us(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

/// Track ("process") id of a machine: pid 0 is the scheduler.
int64_t pid_of(int32_t machine) { return static_cast<int64_t>(machine) + 1; }

}  // namespace

void TraceSink::write_chrome_trace(std::ostream& out,
                                   const std::vector<double>& speeds) const {
  EventWriter w(out);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Track metadata: the scheduler plus one process per machine, sorted
  // scheduler-first. Machines present in the records but beyond
  // `speeds` still get a track (speeds is advisory).
  int32_t max_machine = -1;
  double last_time = 0.0;
  for (size_t i = 0; i < count_; ++i) {
    const TraceRecord& r = at(i);
    max_machine = r.machine > max_machine ? r.machine : max_machine;
    last_time = r.time > last_time ? r.time : last_time;
  }
  const size_t machines =
      speeds.empty() ? static_cast<size_t>(max_machine + 1)
                     : (speeds.size() > static_cast<size_t>(max_machine + 1)
                            ? speeds.size()
                            : static_cast<size_t>(max_machine + 1));
  w.begin() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
               "\"args\":{\"name\":\"scheduler\"}}";
  w.begin() << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":0,"
               "\"args\":{\"sort_index\":0}}";
  for (size_t m = 0; m < machines; ++m) {
    w.begin() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << (m + 1)
              << ",\"args\":{\"name\":\"machine " << m;
    if (m < speeds.size()) {
      out << " (speed " << speeds[m] << ")";
    }
    out << "\"}}";
    w.begin() << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":"
              << (m + 1) << ",\"args\":{\"sort_index\":" << (m + 1) << "}}";
  }

  // Job spans: async begin at service start, end at completion or loss.
  // A retried job opens a fresh span on its next machine, so one id may
  // carry several begin/end pairs back to back — valid trace JSON.
  std::unordered_map<uint64_t, TraceRecord> open_spans;
  auto open_span = [&](const TraceRecord& r) {
    w.begin() << "{\"name\":\"job " << r.job << "\",\"cat\":\"job\","
              << "\"ph\":\"b\",\"id\":" << r.job
              << ",\"ts\":" << to_us(r.time) << ",\"pid\":" << pid_of(r.machine)
              << ",\"tid\":0,\"args\":{\"size\":" << r.aux
              << ",\"attempt\":" << r.attempt << "}}";
    open_spans[r.job] = r;
  };
  auto close_span = [&](uint64_t job, int32_t machine, double time) {
    w.begin() << "{\"name\":\"job " << job << "\",\"cat\":\"job\","
              << "\"ph\":\"e\",\"id\":" << job << ",\"ts\":" << to_us(time)
              << ",\"pid\":" << pid_of(machine) << ",\"tid\":0}";
    open_spans.erase(job);
  };
  auto instant = [&](const TraceRecord& r) {
    w.begin() << "{\"name\":\"" << trace_event_kind_name(r.kind)
              << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << to_us(r.time)
              << ",\"pid\":" << pid_of(r.machine) << ",\"tid\":0,\"args\":{";
    bool any = false;
    if (r.job != kNoJob) {
      out << "\"job\":" << r.job << ",\"attempt\":" << r.attempt;
      any = true;
    }
    if (r.aux != 0.0) {
      out << (any ? "," : "") << "\"aux\":" << r.aux;
    }
    out << "}}";
  };

  for (size_t i = 0; i < count_; ++i) {
    const TraceRecord& r = at(i);
    switch (r.kind) {
      case TraceEventKind::kServiceStart:
        // A span may already be open if the buffer wrapped mid-job;
        // close the stale one so begins and ends stay balanced.
        if (auto it = open_spans.find(r.job); it != open_spans.end()) {
          close_span(r.job, it->second.machine, r.time);
        }
        open_span(r);
        break;
      case TraceEventKind::kCompletion:
      case TraceEventKind::kJobLost:
        if (open_spans.count(r.job) != 0) {
          close_span(r.job, r.machine, r.time);
        }
        instant(r);
        break;
      default:
        instant(r);
        break;
    }
  }
  // Close spans still open (jobs in flight when recording stopped).
  while (!open_spans.empty()) {
    const auto it = open_spans.begin();
    close_span(it->first, it->second.machine, last_time);
  }

  out << "\n],\"otherData\":{\"recorded\":" << count_
      << ",\"overwritten\":" << overwritten_ << "}}\n";
}

void TraceSink::write_chrome_trace(const std::string& path,
                                   const std::vector<double>& speeds) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write trace file: " + path);
  }
  write_chrome_trace(out, speeds);
  if (!out) {
    throw std::runtime_error("I/O error while writing: " + path);
  }
}

}  // namespace hs::obs
