// The per-run observation bundle and its cost discipline.
//
// A simulation run observes through exactly one Observer: an optional
// trace sink and an optional metrics registry with a sampling interval.
// The contract every instrumented component follows:
//
//   * Disabled (the default): config.observer == nullptr, or the
//     corresponding member is null. Each instrumentation site then costs
//     a single branch on a null pointer — no virtual call, no counter
//     update, no allocation. tests/test_event_alloc.cpp and the
//     interleaved A/B entries in BENCH_sim.json pin this.
//   * Enabled: trace records go into the sink's preallocated ring and
//     metric samples into the registry's reserved rows, so steady-state
//     observation is also allocation-free.
//   * Observation never feeds back into the simulation: sinks only
//     record, gauges only read, and the sampler's tick events carry no
//     model behavior — with tracing on, a run's metrics are
//     bit-identical to the same run unobserved (pinned by
//     tests/test_determinism_golden.cpp).
//
// Ownership: the caller owns the sink and registry (so they outlive the
// run and can be exported afterwards); the run wires them through and,
// for the registry, manages its contents — see SimulationConfig::observer
// in cluster/sim.h.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace hs::obs {

struct Observer {
  /// Per-job lifecycle events; null = tracing off.
  TraceSink* trace = nullptr;

  /// Time-series output; null = sampling off. The observed run clears
  /// the registry, registers its standard gauge set (per-machine queue
  /// depth, utilization, speed, completions; cluster in-flight,
  /// dispatched, completed, lost/retried/dropped) and samples it every
  /// `sample_interval` simulated seconds, starting at t = 0.
  MetricsRegistry* metrics = nullptr;

  /// Seconds between samples; must be > 0 when `metrics` is set.
  double sample_interval = 0.0;

  [[nodiscard]] bool wants_tracing() const { return trace != nullptr; }
  [[nodiscard]] bool wants_sampling() const { return metrics != nullptr; }

  void validate() const {
    if (metrics != nullptr) {
      HS_CHECK(sample_interval > 0.0,
               "observer with metrics needs sample_interval > 0, got "
                   << sample_interval);
    }
  }
};

}  // namespace hs::obs
