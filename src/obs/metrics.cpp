#include "obs/metrics.h"

#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"

namespace hs::obs {

void MetricsRegistry::register_gauge(std::string name, GaugeFn fn) {
  HS_CHECK(times_.empty(),
           "cannot register metric '" << name << "' after sampling started");
  HS_CHECK(fn != nullptr, "null gauge for metric '" << name << "'");
  for (const std::string& existing : names_) {
    HS_CHECK(existing != name, "duplicate metric name '" << name << "'");
  }
  names_.push_back(std::move(name));
  gauges_.push_back(std::move(fn));
}

void MetricsRegistry::register_counter(std::string name,
                                       const uint64_t* counter) {
  HS_CHECK(counter != nullptr, "null counter for metric '" << name << "'");
  register_gauge(std::move(name),
                 [counter] { return static_cast<double>(*counter); });
}

void MetricsRegistry::register_atomic_counter(
    std::string name, const std::atomic<uint64_t>* counter) {
  HS_CHECK(counter != nullptr, "null counter for metric '" << name << "'");
  register_gauge(std::move(name), [counter] {
    return static_cast<double>(counter->load(std::memory_order_relaxed));
  });
}

void MetricsRegistry::clear() {
  names_.clear();
  gauges_.clear();
  clear_samples();
}

void MetricsRegistry::clear_samples() {
  times_.clear();
  samples_.clear();
}

void MetricsRegistry::reserve_samples(size_t rows) {
  times_.reserve(rows);
  samples_.reserve(rows * metric_count());
}

void MetricsRegistry::sample(double time) {
  times_.push_back(time);
  for (const GaugeFn& gauge : gauges_) {
    samples_.push_back(gauge());
  }
}

double MetricsRegistry::sample_time(size_t row) const {
  HS_CHECK(row < times_.size(), "sample row out of range: " << row);
  return times_[row];
}

double MetricsRegistry::value(size_t row, size_t metric) const {
  HS_CHECK(row < times_.size(), "sample row out of range: " << row);
  HS_CHECK(metric < metric_count(), "metric column out of range: " << metric);
  return samples_[row * metric_count() + metric];
}

size_t MetricsRegistry::column(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return i;
    }
  }
  HS_CHECK(false, "metric not registered: '" << name << "'");
  return 0;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::ostringstream header;
  header << "time";
  for (const std::string& name : names_) {
    header << "," << name;
  }
  out << "# " << header.str() << '\n';
  out.precision(17);
  const size_t stride = metric_count();
  for (size_t row = 0; row < times_.size(); ++row) {
    out << times_[row];
    for (size_t m = 0; m < stride; ++m) {
      out << ',' << samples_[row * stride + m];
    }
    out << '\n';
  }
}

void MetricsRegistry::write_csv(const std::string& path) const {
  // Round-trips through util::csv so the output is guaranteed readable
  // by util::read_numeric_csv (and scripts/plot_results.py).
  std::ostringstream header;
  header << "time";
  for (const std::string& name : names_) {
    header << "," << name;
  }
  const size_t stride = metric_count();
  std::vector<std::vector<double>> rows;
  rows.reserve(times_.size());
  for (size_t row = 0; row < times_.size(); ++row) {
    std::vector<double> fields;
    fields.reserve(stride + 1);
    fields.push_back(times_[row]);
    for (size_t m = 0; m < stride; ++m) {
      fields.push_back(samples_[row * stride + m]);
    }
    rows.push_back(std::move(fields));
  }
  util::write_numeric_csv(path, rows, header.str());
}

}  // namespace hs::obs
