// Named-metric registry with preallocated time-series sampling.
//
// Components register counters and gauges by name; a simulator-driven
// interval event (wired by cluster/sim when a run observes metrics)
// calls sample(), which evaluates every registered metric into one row
// of a flat, preallocated sample matrix. Nothing on the simulation's
// hot path touches the registry — the cost model is "pull": state is
// read only at sample instants, so a disabled registry costs exactly
// the null-pointer branch at the wiring site (obs/observer.h).
//
// The sampled series export to CSV through util::csv so the existing
// plotting pipeline (scripts/plot_results.py, '#'-comment headers,
// numeric rows) consumes them unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace hs::obs {

/// Registry of named gauges plus the time series sampled from them.
class MetricsRegistry {
 public:
  /// Evaluated at each sample instant; must be cheap and side-effect
  /// free (typically reads one field of a live simulation object).
  using GaugeFn = std::function<double()>;

  /// Register a gauge. Names become CSV columns in registration order
  /// and must be unique. Registering after sampling started is an
  /// error — rows must stay rectangular.
  void register_gauge(std::string name, GaugeFn fn);

  /// Convenience: a gauge that reads a live uint64 counter (dispatch
  /// counts, completions). The pointee must outlive the registry's use.
  void register_counter(std::string name, const uint64_t* counter);

  /// Convenience: a gauge that reads a live atomic counter with relaxed
  /// ordering — the serving runtime's conservation counters are updated
  /// concurrently by worker threads, so a sampler thread must read them
  /// atomically. The pointee must outlive the registry's use.
  void register_atomic_counter(std::string name,
                               const std::atomic<uint64_t>* counter);

  [[nodiscard]] size_t metric_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Drop all metrics and samples — a fresh registry, capacity kept.
  /// Each simulation run re-registers its own gauges (they capture
  /// pointers into that run), so reuse across runs starts here.
  void clear();
  /// Drop the samples but keep the registered metrics.
  void clear_samples();

  /// Preallocate storage for `rows` samples, so steady-state sample()
  /// calls never touch the allocator.
  void reserve_samples(size_t rows);

  /// Evaluate every gauge and append one row at time `time`.
  void sample(double time);

  [[nodiscard]] size_t sample_count() const { return times_.size(); }
  [[nodiscard]] double sample_time(size_t row) const;
  /// Value of metric column `metric` in sample `row`.
  [[nodiscard]] double value(size_t row, size_t metric) const;
  /// Column index of a registered name (fails loudly if absent).
  [[nodiscard]] size_t column(const std::string& name) const;

  /// Write "time,<name>,..." as a '#'-comment header plus one numeric
  /// row per sample, via util::csv (readable by read_numeric_csv).
  void write_csv(std::ostream& out) const;
  /// Same, to a file. Throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> names_;
  std::vector<GaugeFn> gauges_;
  std::vector<double> times_;
  std::vector<double> samples_;  // row-major, stride = metric_count()
};

}  // namespace hs::obs
