// Per-job event tracing into a preallocated ring buffer.
//
// The simulator can push millions of jobs per wall-second, so the trace
// path must cost next to nothing: record() writes one 32-byte
// trivially-copyable TraceRecord into a ring buffer sized at
// construction — no allocation, no formatting, no branching beyond the
// ring-wrap test. When the buffer fills, the oldest records are
// overwritten (the tail of a run is usually what you want to inspect)
// and the overwrite count is kept so truncation is never silent.
//
// Export happens after the run: write_chrome_trace() renders the records
// as Chrome trace-event JSON — machines as tracks, jobs as spans —
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Everything that *decides* whether to trace lives at the call sites as
// a single null-pointer branch; see obs/observer.h.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hs::obs {

/// What happened to a job (or machine) at one instant of simulated time.
enum class TraceEventKind : uint8_t {
  kArrival,       // job arrived at the scheduler (machine = kScheduler)
  kDispatch,      // scheduler routed the job to `machine`
  kServiceStart,  // job became resident on `machine` (opens its span)
  kPreempt,       // job (or whole machine) stopped receiving CPU mid-work
  kResume,        // job (or whole machine) began receiving CPU again
  kCompletion,    // job departed `machine` (closes its span)
  kJobLost,       // a crash killed the job's dispatch attempt on `machine`
  kLossDetected,  // scheduler noticed the loss (machine = kScheduler)
  kRetry,         // scheduler scheduled a re-dispatch (aux = backoff secs)
  kDrop,          // retry policy abandoned the job for good
  kCrash,         // machine went down (job = kNoJob)
  kRecovery,      // machine came back up (job = kNoJob)
  kSpeedChange,   // machine speed set to `aux` (job = kNoJob)
  // Overload-protection events (src/overload/, docs/FAULT_MODEL.md §6):
  kShed,            // admission control refused the job (terminal)
  kReject,          // `machine`'s bounded queue was full at dispatch
  kBreakerOpen,     // circuit breaker tripped `machine` open (job = kNoJob)
  kBreakerHalfOpen, // breaker cooled down, probing `machine` (job = kNoJob)
  kBreakerClose,    // probes succeeded, `machine` back in rotation
  kRetryBudgetExhausted,  // retry budget empty — job dropped, not retried
  // Uncertainty/adaptation events (src/uncertainty/, docs/UNCERTAINTY.md):
  kEstimateUpdate,  // re-estimation tick; aux = believed ρ̂ (job = kNoJob)
  kReallocCommit,   // governor committed a re-allocation (aux = rel. gain)
  kReallocReject,   // governor refused one (aux = GovernorVerdict code)
  kGovernorFreeze,  // flap guard tripped — re-allocation frozen
  // Network-fault events (src/cluster/netfaults.h, FAULT_MODEL.md §8):
  kMsgLost,         // a message copy vanished in transit to `machine`
  kMsgDup,          // a message copy was duplicated toward `machine`
  kPartitionStart,  // dispatcher cut off from `machine` (job = kNoJob)
  kPartitionEnd,    // partition healed for `machine` (job = kNoJob)
  kSuspect,         // failure detector suspects `machine` (aux = silence)
  kHedgeIssued,     // hedge copy dispatched to `machine` (aux = delay)
  kHedgeWon,        // the hedge copy completed first on `machine`
  kHedgeCancelled,  // losing copy evicted from / late at `machine`
  // Serving-health events (src/serving/health.h, docs/SERVING.md §6):
  kTimeout,         // armed release deadline expired on `machine`
  kDegraded,        // degradation mode engaged/disengaged (aux = mode code)
  kSnapshot,        // serving state snapshot captured (aux = acquired count)
  kSuspectCleared,  // heartbeat rescinded a suspicion of `machine`
};

/// Printable name of a kind ("dispatch", "crash", ...).
[[nodiscard]] const char* trace_event_kind_name(TraceEventKind kind);

/// One recorded event. Fixed-size and trivially copyable so the ring is
/// a flat array and record() is a handful of stores.
struct TraceRecord {
  double time = 0.0;    // simulated seconds
  uint64_t job = 0;     // job id, or TraceSink::kNoJob for machine events
  double aux = 0.0;     // kind-specific: job size, new speed, backoff, ...
  int32_t machine = 0;  // machine index, or TraceSink::kScheduler
  uint16_t attempt = 0; // job dispatch attempt (0-based)
  TraceEventKind kind = TraceEventKind::kArrival;
};
static_assert(sizeof(TraceRecord) == 32, "keep the ring entry one half line");

/// Preallocated ring buffer of TraceRecords with Chrome-trace export.
class TraceSink {
 public:
  /// `machine` value for events on the scheduler rather than a machine.
  static constexpr int32_t kScheduler = -1;
  /// `job` value for machine-level events (crash, recovery, speed).
  static constexpr uint64_t kNoJob = ~0ull;
  /// 256k records = 8 MiB — several simulated hours of the paper's base
  /// cluster. Pass an explicit capacity for more or less.
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;

  explicit TraceSink(size_t capacity = kDefaultCapacity);

  /// Record one event. Allocation-free; overwrites the oldest record
  /// once the ring is full.
  void record(double time, TraceEventKind kind, uint64_t job,
              int32_t machine, uint16_t attempt = 0, double aux = 0.0) {
    ring_[head_] = TraceRecord{time, job, aux, machine, attempt, kind};
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++overwritten_;
    }
  }

  [[nodiscard]] size_t size() const { return count_; }
  [[nodiscard]] size_t capacity() const { return ring_.size(); }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Records lost to ring wrap-around since the last clear().
  [[nodiscard]] uint64_t overwritten() const { return overwritten_; }

  /// i-th surviving record, oldest first (i in [0, size())).
  [[nodiscard]] const TraceRecord& at(size_t i) const;

  /// Forget all records (capacity is kept).
  void clear();

  /// Render the surviving records as a Chrome trace-event JSON document.
  /// Machines become processes ("machine 3 (speed 2)" when `speeds` is
  /// non-empty), job residencies become async spans keyed by job id, and
  /// everything else becomes instant events. Spans still open at the end
  /// of the buffer are closed at the last recorded time so the document
  /// always balances.
  void write_chrome_trace(std::ostream& out,
                          const std::vector<double>& speeds = {}) const;
  /// Same, to a file. Throws std::runtime_error on I/O failure.
  void write_chrome_trace(const std::string& path,
                          const std::vector<double>& speeds = {}) const;

 private:
  std::vector<TraceRecord> ring_;
  size_t head_ = 0;   // next slot to write
  size_t count_ = 0;  // live records
  uint64_t overwritten_ = 0;
};

}  // namespace hs::obs
