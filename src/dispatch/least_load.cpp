#include "dispatch/least_load.h"

#include <cmath>

#include "util/check.h"

namespace hs::dispatch {

LeastLoadDispatcher::LeastLoadDispatcher(std::vector<double> speeds,
                                         LeastLoadEngine engine)
    : engine_(engine),
      speeds_(std::move(speeds)),
      estimates_(speeds_.size(), 0),
      available_(speeds_.size(), true),
      available_count_(speeds_.size()) {
  HS_CHECK(!speeds_.empty(), "least-load needs at least one machine");
  for (double s : speeds_) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
  if (engine_ == LeastLoadEngine::kTree) {
    tree_.assign(speeds_.size());
    reload_tree();
  }
}

void LeastLoadDispatcher::reset() {
  estimates_.assign(speeds_.size(), 0);
  available_.assign(speeds_.size(), true);
  available_count_ = speeds_.size();
  if (engine_ == LeastLoadEngine::kTree) {
    reload_tree();
  }
}

double LeastLoadDispatcher::leaf_key(size_t i) const {
  if (available_count_ > 0 && !available_[i]) {
    return MinLoadTree::kInfinity;  // blacklisted by the fault layer
  }
  // Identical expression to the scan engine — bit-identical keys.
  return static_cast<double>(estimates_[i] + 1) / speeds_[i];
}

void LeastLoadDispatcher::reload_tree() {
  for (size_t i = 0; i < speeds_.size(); ++i) {
    tree_.set_key_silent(i, leaf_key(i));
  }
  tree_.rebuild();
}

void LeastLoadDispatcher::touch(size_t i) {
  if (engine_ == LeastLoadEngine::kTree) {
    tree_.set_key(i, leaf_key(i));
  }
}

size_t LeastLoadDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  if (engine_ == LeastLoadEngine::kScan) {
    return pick_scan();
  }
  // Leaf keys already encode the availability regime, so the root winner
  // is the lowest-index minimum over exactly the scan's candidate set.
  const size_t best = tree_.argmin();
  // The job is dispatched and not rescheduled, so the scheduler updates
  // the target's load index immediately (§4.2).
  ++estimates_[best];
  tree_.set_key(best, leaf_key(best));
  return best;
}

size_t LeastLoadDispatcher::pick_scan() {
  const bool any_available = available_count_ > 0;
  size_t best = speeds_.size();
  double best_load = 0.0;
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (any_available && !available_[i]) {
      continue;  // blacklisted by the fault layer
    }
    const double load =
        static_cast<double>(estimates_[i] + 1) / speeds_[i];
    if (best == speeds_.size() || load < best_load) {
      best_load = load;
      best = i;
    }
  }
  ++estimates_[best];
  return best;
}

size_t LeastLoadDispatcher::pick_hedge(rng::Xoshiro256& /*gen*/,
                                       double /*size*/, size_t exclude) {
  if (engine_ == LeastLoadEngine::kScan) {
    return pick_hedge_scan(exclude);
  }
  const size_t excluded_available = available_[exclude] ? 1 : 0;
  if (available_count_ - excluded_available == 0) {
    return exclude;  // no second choice — the caller skips the hedge
  }
  // Temporarily knock the primary's leaf out with the sentinel; some
  // other available machine holds a finite key, so it cannot win.
  tree_.set_key(exclude, MinLoadTree::kInfinity);
  const size_t best = tree_.argmin();
  ++estimates_[best];
  tree_.set_key(best, leaf_key(best));
  tree_.set_key(exclude, leaf_key(exclude));
  return best;
}

size_t LeastLoadDispatcher::pick_hedge_scan(size_t exclude) {
  const size_t excluded_available = available_[exclude] ? 1 : 0;
  if (available_count_ - excluded_available == 0) {
    return exclude;  // no second choice — the caller skips the hedge
  }
  size_t best = speeds_.size();
  double best_load = 0.0;
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (i == exclude || !available_[i]) {
      continue;
    }
    const double load =
        static_cast<double>(estimates_[i] + 1) / speeds_[i];
    if (best == speeds_.size() || load < best_load) {
      best_load = load;
      best = i;
    }
  }
  ++estimates_[best];
  return best;
}

void LeastLoadDispatcher::on_departure_report(size_t machine) {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  // Reports only ever follow dispatches, so the estimate stays >= 0 —
  // except that a crash report zeroes the estimate, and an in-flight
  // departure report for a job that completed just before the crash may
  // still arrive afterwards. Such stale reports are dropped.
  if (estimates_[machine] > 0) {
    --estimates_[machine];
    touch(machine);
  }
}

void LeastLoadDispatcher::on_load_report(size_t machine,
                                         uint64_t queue_length) {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  // Snapshots carry the machine's true resident count as of the sample
  // instant; adopting it wholesale both corrects accumulated drift and
  // *introduces* the staleness under study — everything dispatched after
  // the sample was taken vanishes from the view until the next snapshot.
  estimates_[machine] = queue_length;
  touch(machine);
}

bool LeastLoadDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  HS_CHECK(available.size() == speeds_.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << speeds_.size());
  size_t count = 0;
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (available_[i] && !available[i]) {
      // Newly reported down: its resident jobs died with it, so the
      // pending-departure estimate is void.
      estimates_[i] = 0;
    }
    count += available[i] ? 1 : 0;
  }
  available_ = available;
  available_count_ = count;
  if (engine_ == LeastLoadEngine::kTree) {
    // The regime (masked vs all-masked fallback) can flip every key, so
    // repair the whole tree in one O(n) pass — mask changes are rare.
    reload_tree();
  }
  return true;
}

uint64_t LeastLoadDispatcher::estimated_queue(size_t machine) const {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  return estimates_[machine];
}

size_t LeastLoadDispatcher::save_state(std::vector<double>& out) const {
  const size_t n = speeds_.size();
  out.reserve(out.size() + 2 * n);
  for (uint64_t e : estimates_) {
    out.push_back(static_cast<double>(e));
  }
  for (size_t i = 0; i < n; ++i) {
    out.push_back(available_[i] ? 1.0 : 0.0);
  }
  return 2 * n;
}

size_t LeastLoadDispatcher::restore_state(std::span<const double> state) {
  const size_t n = speeds_.size();
  if (state.size() < 2 * n) {
    return 0;
  }
  // Validate before mutating: estimates must be exact non-negative
  // integers below 2^53, availability flags exactly 0 or 1.
  for (size_t i = 0; i < n; ++i) {
    const double e = state[i];
    const double a = state[n + i];
    if (!(e >= 0.0 && e <= 0x1p53) || e != std::floor(e) ||
        !(a == 0.0 || a == 1.0)) {
      return 0;
    }
  }
  available_count_ = 0;
  for (size_t i = 0; i < n; ++i) {
    estimates_[i] = static_cast<uint64_t>(state[i]);
    available_[i] = state[n + i] == 1.0;
    available_count_ += available_[i] ? 1 : 0;
  }
  if (engine_ == LeastLoadEngine::kTree) {
    reload_tree();
  }
  return 2 * n;
}

}  // namespace hs::dispatch
