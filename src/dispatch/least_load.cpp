#include "dispatch/least_load.h"

#include "util/check.h"

namespace hs::dispatch {

LeastLoadDispatcher::LeastLoadDispatcher(std::vector<double> speeds)
    : speeds_(std::move(speeds)),
      estimates_(speeds_.size(), 0),
      available_(speeds_.size(), true) {
  HS_CHECK(!speeds_.empty(), "least-load needs at least one machine");
  for (double s : speeds_) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
}

void LeastLoadDispatcher::reset() {
  estimates_.assign(speeds_.size(), 0);
  available_.assign(speeds_.size(), true);
}

size_t LeastLoadDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  bool any_available = false;
  for (size_t i = 0; i < available_.size(); ++i) {
    any_available = any_available || available_[i];
  }
  size_t best = speeds_.size();
  double best_load = 0.0;
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (any_available && !available_[i]) {
      continue;  // blacklisted by the fault layer
    }
    const double load =
        static_cast<double>(estimates_[i] + 1) / speeds_[i];
    if (best == speeds_.size() || load < best_load) {
      best_load = load;
      best = i;
    }
  }
  // The job is dispatched and not rescheduled, so the scheduler updates
  // the target's load index immediately (§4.2).
  ++estimates_[best];
  return best;
}

size_t LeastLoadDispatcher::pick_hedge(rng::Xoshiro256& /*gen*/,
                                       double /*size*/, size_t exclude) {
  bool any_available = false;
  for (size_t i = 0; i < available_.size(); ++i) {
    any_available = any_available || (available_[i] && i != exclude);
  }
  if (!any_available) {
    return exclude;  // no second choice — the caller skips the hedge
  }
  size_t best = speeds_.size();
  double best_load = 0.0;
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (i == exclude || !available_[i]) {
      continue;
    }
    const double load =
        static_cast<double>(estimates_[i] + 1) / speeds_[i];
    if (best == speeds_.size() || load < best_load) {
      best_load = load;
      best = i;
    }
  }
  ++estimates_[best];
  return best;
}

void LeastLoadDispatcher::on_departure_report(size_t machine) {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  // Reports only ever follow dispatches, so the estimate stays >= 0 —
  // except that a crash report zeroes the estimate, and an in-flight
  // departure report for a job that completed just before the crash may
  // still arrive afterwards. Such stale reports are dropped.
  if (estimates_[machine] > 0) {
    --estimates_[machine];
  }
}

void LeastLoadDispatcher::on_load_report(size_t machine,
                                         uint64_t queue_length) {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  // Snapshots carry the machine's true resident count as of the sample
  // instant; adopting it wholesale both corrects accumulated drift and
  // *introduces* the staleness under study — everything dispatched after
  // the sample was taken vanishes from the view until the next snapshot.
  estimates_[machine] = queue_length;
}

bool LeastLoadDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  HS_CHECK(available.size() == speeds_.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << speeds_.size());
  for (size_t i = 0; i < speeds_.size(); ++i) {
    if (available_[i] && !available[i]) {
      // Newly reported down: its resident jobs died with it, so the
      // pending-departure estimate is void.
      estimates_[i] = 0;
    }
  }
  available_ = available;
  return true;
}

uint64_t LeastLoadDispatcher::estimated_queue(size_t machine) const {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  return estimates_[machine];
}

}  // namespace hs::dispatch
