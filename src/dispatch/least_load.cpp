#include "dispatch/least_load.h"

#include "util/check.h"

namespace hs::dispatch {

LeastLoadDispatcher::LeastLoadDispatcher(std::vector<double> speeds)
    : speeds_(std::move(speeds)), estimates_(speeds_.size(), 0) {
  HS_CHECK(!speeds_.empty(), "least-load needs at least one machine");
  for (double s : speeds_) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
}

void LeastLoadDispatcher::reset() {
  estimates_.assign(speeds_.size(), 0);
}

size_t LeastLoadDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  size_t best = 0;
  double best_load =
      static_cast<double>(estimates_[0] + 1) / speeds_[0];
  for (size_t i = 1; i < speeds_.size(); ++i) {
    const double load =
        static_cast<double>(estimates_[i] + 1) / speeds_[i];
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  // The job is dispatched and not rescheduled, so the scheduler updates
  // the target's load index immediately (§4.2).
  ++estimates_[best];
  return best;
}

void LeastLoadDispatcher::on_departure_report(size_t machine) {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  // Reports only ever follow dispatches, so the estimate stays >= 0.
  HS_CHECK(estimates_[machine] > 0,
           "departure report for machine " << machine
                                           << " with zero estimated queue");
  --estimates_[machine];
}

uint64_t LeastLoadDispatcher::estimated_queue(size_t machine) const {
  HS_CHECK(machine < estimates_.size(),
           "machine index out of range: " << machine);
  return estimates_[machine];
}

}  // namespace hs::dispatch
