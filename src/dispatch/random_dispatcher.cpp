#include "dispatch/random_dispatcher.h"

#include "util/check.h"

namespace hs::dispatch {

RandomDispatcher::RandomDispatcher(alloc::Allocation allocation,
                                   SamplerKind sampler)
    : allocation_(std::move(allocation)), sampler_(sampler) {
  if (sampler_ == SamplerKind::kAlias) {
    alias_.rebuild(allocation_.span());
  } else {
    choice_.rebuild(allocation_.span());
  }
}

bool RandomDispatcher::rebuild_fractions(std::span<const double> fractions) {
  HS_CHECK(fractions.size() == allocation_.size(),
           "rebuild_fractions size " << fractions.size()
                                     << " != machine count "
                                     << allocation_.size());
  allocation_.assign(fractions);
  // Only the active sampler is rebuilt; the other holds no routing state.
  if (sampler_ == SamplerKind::kAlias) {
    alias_.rebuild(allocation_.span());
  } else {
    choice_.rebuild(allocation_.span());
  }
  return true;
}

size_t RandomDispatcher::save_state(std::vector<double>& out) const {
  const auto& f = allocation_.fractions();
  out.insert(out.end(), f.begin(), f.end());
  return f.size();
}

size_t RandomDispatcher::restore_state(std::span<const double> state) {
  const size_t n = allocation_.size();
  if (state.size() < n) {
    return 0;
  }
  allocation_.assign_exact(state.first(n));
  if (sampler_ == SamplerKind::kAlias) {
    alias_.rebuild(allocation_.span());
  } else {
    choice_.rebuild(allocation_.span());
  }
  return n;
}

}  // namespace hs::dispatch
