#include "dispatch/random_dispatcher.h"

namespace hs::dispatch {

RandomDispatcher::RandomDispatcher(alloc::Allocation allocation)
    : allocation_(std::move(allocation)), choice_(allocation_.fractions()) {}

size_t RandomDispatcher::pick(rng::Xoshiro256& gen) {
  return choice_.sample(gen);
}

}  // namespace hs::dispatch
