#include "dispatch/hedged.h"

#include <cmath>

#include "util/check.h"

namespace hs::dispatch {

void HedgingConfig::validate() const {
  HS_CHECK(std::isfinite(delay) && delay >= 0.0,
           "hedging delay must be finite and >= 0, got " << delay);
}

HedgedDispatcher::HedgedDispatcher(std::unique_ptr<Dispatcher> inner,
                                   HedgingConfig config)
    : inner_(std::move(inner)), config_(config) {
  HS_CHECK(inner_ != nullptr, "hedged decorator needs a dispatcher");
  config_.validate();
}

size_t HedgedDispatcher::pick(rng::Xoshiro256& gen) {
  return inner_->pick(gen);
}

size_t HedgedDispatcher::pick_sized(rng::Xoshiro256& gen, double size) {
  return inner_->pick_sized(gen, size);
}

size_t HedgedDispatcher::pick_hedge(rng::Xoshiro256& gen, double size,
                                    size_t exclude) {
  return inner_->pick_hedge(gen, size, exclude);
}

bool HedgedDispatcher::uses_size() const { return inner_->uses_size(); }

void HedgedDispatcher::reset() {
  issued_ = 0;
  won_ = 0;
  cancelled_ = 0;
  inner_->reset();
}

std::string HedgedDispatcher::name() const {
  return "hedged(" + inner_->name() + ")";
}

size_t HedgedDispatcher::machine_count() const {
  return inner_->machine_count();
}

void HedgedDispatcher::on_arrival(double now) { inner_->on_arrival(now); }

void HedgedDispatcher::on_departure_report(size_t machine) {
  inner_->on_departure_report(machine);
}

void HedgedDispatcher::on_departure_report(size_t machine, double now) {
  inner_->on_departure_report(machine, now);
}

void HedgedDispatcher::on_departure_report(size_t machine, double now,
                                           double work) {
  inner_->on_departure_report(machine, now, work);
}

void HedgedDispatcher::on_load_report(size_t machine,
                                      uint64_t queue_length) {
  inner_->on_load_report(machine, queue_length);
}

bool HedgedDispatcher::uses_feedback() const {
  return inner_->uses_feedback();
}

bool HedgedDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  return inner_->set_available_mask(available);
}

void HedgedDispatcher::on_dispatch_result(size_t machine, bool accepted,
                                          double now) {
  inner_->on_dispatch_result(machine, accepted, now);
}

bool HedgedDispatcher::uses_overload_feedback() const {
  return inner_->uses_overload_feedback();
}

void HedgedDispatcher::on_machine_state_report(size_t machine, bool up) {
  inner_->on_machine_state_report(machine, up);
}

bool HedgedDispatcher::uses_fault_feedback() const {
  return inner_->uses_fault_feedback();
}

}  // namespace hs::dispatch
