// Job dispatching strategy interface (§3).
//
// A Dispatcher splits the incoming job stream into n substreams in real
// time: pick() is called once per arriving job and returns the index of
// the machine that will run it. Static dispatchers (random, round-robin
// based) depend only on the allocation fractions; the Dynamic Least-Load
// yardstick additionally consumes delayed departure reports.
//
// ## Threading contract: caller-serialized
//
// Dispatchers are NOT internally synchronized, and pick() is
// deliberately non-const: in every policy except the stateless routers
// it advances routing state (round-robin cadences, Least-Load queue
// estimates, decorator bookkeeping), and even the "stateless" policies
// advance the caller's RNG. All calls on one dispatcher — picks,
// feedback reports, mask/fraction updates — must therefore be
// serialized by the caller. The two harnesses satisfy this differently:
// the discrete-event simulator is single-threaded per scheduler (one
// dispatcher is only ever touched from its scheduler's event chain;
// cluster::run_experiment gives each replication its own dispatcher via
// DispatcherFactory), and the live-serving front-end
// (serving::ServingDispatcher) serializes a shared dispatcher behind
// one spinlock. Per-header notes below distinguish policies whose
// pick() mutates policy state from the ones that are logically const
// and mutate only through the shared RNG.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "rng/rng.h"

namespace hs::dispatch {

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Choose the destination machine for the next arriving job. `gen` is
  /// the dispatching decision stream (only random dispatchers draw from
  /// it, so static deterministic dispatchers stay reproducible).
  [[nodiscard]] virtual size_t pick(rng::Xoshiro256& gen) = 0;

  /// Size-aware variant, used by policies that assume job sizes are
  /// known on arrival (the assumption the paper's schemes deliberately
  /// avoid — see SitaDispatcher). Default: ignore the size.
  [[nodiscard]] virtual size_t pick_sized(rng::Xoshiro256& gen,
                                          double size) {
    (void)size;
    return pick(gen);
  }

  /// True if the policy requires job sizes at dispatch time.
  [[nodiscard]] virtual bool uses_size() const { return false; }

  /// Second-choice pick for hedged dispatch (dispatch/hedged.h): choose
  /// a machine for a duplicate copy of a job already in flight to
  /// `exclude`. Policies with per-machine load visibility override this
  /// to return the best machine *other than* `exclude`; the default
  /// re-runs pick_sized and may therefore return `exclude` itself — the
  /// caller must then skip the hedge (there is no useful second choice).
  [[nodiscard]] virtual size_t pick_hedge(rng::Xoshiro256& gen, double size,
                                          size_t exclude) {
    (void)exclude;
    return pick_sized(gen, size);
  }

  /// Restore the initial state (start of a new replication).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual size_t machine_count() const = 0;

  /// Called once per arriving job, before pick(), with the arrival time.
  /// Lets adaptive dispatchers observe the arrival process (e.g. to
  /// estimate the system utilization online); static dispatchers ignore
  /// it. Scheduler-local information only — no machine feedback.
  virtual void on_arrival(double now) { (void)now; }

  /// Dynamic feedback: a (possibly delayed) report that one job departed
  /// from `machine`. Static dispatchers ignore it.
  virtual void on_departure_report(size_t machine) { (void)machine; }

  /// Timed variant: `now` is the report's *delivery* time (the departure
  /// itself happened earlier by the §4.2 detection + message delay).
  /// Policies that estimate rates from departures override this; the
  /// default forwards to the untimed variant so existing dispatchers are
  /// unaffected.
  virtual void on_departure_report(size_t machine, double now) {
    (void)now;
    on_departure_report(machine);
  }

  /// Sized variant: the report also carries the work the departed job
  /// consumed, in base-speed seconds — a machine can meter a finished
  /// job's CPU, so this is scheduler-observable information. Speed
  /// estimators need it (under heavy-tailed sizes a job-count throughput
  /// is dominated by small jobs and badly biased); everyone else gets
  /// the default, which drops the size and forwards to the timed
  /// variant. The simulation always calls this form.
  virtual void on_departure_report(size_t machine, double now, double work) {
    (void)work;
    on_departure_report(machine, now);
  }

  /// Stale-feedback variant (uncertainty layer): a queue-length snapshot
  /// of `machine` taken `StalenessConfig::update_interval`-periodically
  /// and delivered after `report_delay`. When the staleness model is on,
  /// these snapshots *replace* per-departure reports. Dispatchers that
  /// track load natively (Least-Load) override this to resynchronize
  /// their estimate; the default ignores it.
  virtual void on_load_report(size_t machine, uint64_t queue_length) {
    (void)machine;
    (void)queue_length;
  }

  /// True if the scheduler must deliver departure reports (i.e. the
  /// policy is dynamic and pays the associated overhead).
  [[nodiscard]] virtual bool uses_feedback() const { return false; }

  /// Replace the allocation fractions in place, keeping the machine
  /// count. Equivalent to constructing a fresh dispatcher over the new
  /// fractions (routing state is reset), but without allocating: the
  /// fraction-driven dispatchers (random, SWRR, smooth round-robin)
  /// override this to reuse their internal buffers, which is what lets
  /// survivor rebuilds and adaptive re-allocations run allocation-free.
  /// Returns true if the policy supports in-place reweighting; the
  /// default returns false and leaves the dispatcher unchanged — callers
  /// then fall back to reconstructing it.
  virtual bool rebuild_fractions(std::span<const double> fractions) {
    (void)fractions;
    return false;
  }

  /// Restrict routing to machines with available[i] == true (the fault
  /// layer's blacklist). Returns true if the policy supports masking
  /// natively (Least-Load, AdaptiveORR); the default returns false and
  /// leaves routing unchanged — callers then rebuild the dispatcher over
  /// the survivors instead (see FaultAwareDispatcher).
  virtual bool set_available_mask(const std::vector<bool>& available) {
    (void)available;
    return false;
  }

  /// Outcome feedback for one dispatch attempt: `accepted` is false when
  /// `machine` refused the job (bounded queue full) or immediately lost
  /// it (dispatched onto a crashed machine). Overload-oblivious
  /// dispatchers ignore it; CircuitBreakerDispatcher trips machines on
  /// consecutive failures.
  virtual void on_dispatch_result(size_t machine, bool accepted,
                                  double now) {
    (void)machine;
    (void)accepted;
    (void)now;
  }

  /// True if the scheduler should report dispatch outcomes (the policy
  /// reacts to rejections — see overload/circuit_breaker.h).
  [[nodiscard]] virtual bool uses_overload_feedback() const { return false; }

  /// A (possibly delayed) report that `machine` crashed (up == false) or
  /// recovered (up == true). Fault-oblivious dispatchers ignore it.
  virtual void on_machine_state_report(size_t machine, bool up) {
    (void)machine;
    (void)up;
  }

  /// True if the scheduler should deliver machine crash/recovery reports
  /// (the policy is failure-aware and pays the detection overhead).
  [[nodiscard]] virtual bool uses_fault_feedback() const { return false; }

  /// Checkpoint channel (serving/snapshot.h). Append the policy's
  /// learned and routing state — fractions, cadences, load estimates,
  /// breaker records — to `out` as a flat double vector and return the
  /// number of values appended. Decorators append their own state first,
  /// then forward to the wrapped dispatcher, so a stack serializes
  /// outside-in. The default appends nothing: a policy that opts out
  /// simply restarts cold after a restore. Caller-serialized like every
  /// other method.
  virtual size_t save_state(std::vector<double>& out) const {
    (void)out;
    return 0;
  }

  /// Inverse of save_state(): consume this dispatcher's state from the
  /// front of `state` and return the number of values consumed (a
  /// decorator consumes its prefix, then forwards the rest inward).
  /// Restoring must be *exact* — a policy either reproduces the saved
  /// routing state bit-identically or leaves itself unchanged and
  /// returns 0. Callers detect a partial/failed restore by comparing the
  /// total consumed against the saved length.
  virtual size_t restore_state(std::span<const double> state) {
    (void)state;
    return 0;
  }
};

}  // namespace hs::dispatch
