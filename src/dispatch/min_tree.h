// Indexed tournament (min) tree — the O(log n) argmin engine behind
// Dynamic Least-Load at large n.
//
// A complete binary tree over n double keys, padded with +inf to the
// next power of two. Each internal node stores the index of the winning
// (smaller-key) leaf of its subtree, with ties won by the left child —
// so argmin() returns the *lowest-index* minimum, exactly reproducing a
// first-occurrence strict-< linear scan. That equivalence is what lets
// LeastLoadDispatcher swap its per-pick O(n) scans for O(log n) leaf
// updates while staying bit-identical to the golden-pinned reference
// (see the differential test in tests/test_least_load.cpp).
//
// Keys use +inf as the "not a candidate" sentinel (masked machines,
// hedge exclusion); real keys are finite, so a sentinel can only win
// when every leaf is sentinel — callers rule that out up front.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace hs::dispatch {

class MinLoadTree {
 public:
  static constexpr double kInfinity =
      std::numeric_limits<double>::infinity();

  /// Resize to n leaves, all keys +inf. Reuses buffer capacity.
  void assign(size_t n) {
    HS_CHECK(n >= 1, "min tree needs at least one leaf");
    HS_CHECK(n <= std::numeric_limits<uint32_t>::max() / 2,
             "min tree supports at most 2^31 leaves, got " << n);
    n_ = n;
    cap_ = std::bit_ceil(n < 2 ? size_t{2} : n);
    keys_.assign(cap_, kInfinity);
    winners_.assign(cap_, 0);
    rebuild();
  }

  /// Set one key and repair the winner path to the root: O(log n).
  void set_key(size_t i, double key) {
    keys_[i] = key;
    for (size_t node = (cap_ + i) >> 1; node >= 1; node >>= 1) {
      recompute(node);
    }
  }

  /// Set one key without repairing winners; callers batch these and
  /// finish with rebuild() (O(n) total — for mask flips and resets).
  void set_key_silent(size_t i, double key) { keys_[i] = key; }

  /// Recompute every internal winner bottom-up: O(n).
  void rebuild() {
    for (size_t node = cap_ - 1; node >= 1; --node) {
      recompute(node);
    }
  }

  [[nodiscard]] double key(size_t i) const { return keys_[i]; }

  /// Index of the smallest key, lowest index on ties.
  [[nodiscard]] size_t argmin() const { return winner_of(1); }

  [[nodiscard]] size_t size() const { return n_; }

 private:
  // Internal node `node` (1-based) has children 2·node and 2·node+1;
  // nodes >= cap_ are leaves (leaf index node − cap_).
  [[nodiscard]] size_t winner_of(size_t node) const {
    return node >= cap_ ? node - cap_ : winners_[node];
  }

  void recompute(size_t node) {
    const size_t left = winner_of(2 * node);
    const size_t right = winner_of(2 * node + 1);
    // <= : the left (lower-index) winner keeps ties.
    winners_[node] =
        static_cast<uint32_t>(keys_[left] <= keys_[right] ? left : right);
  }

  size_t n_ = 0;
  size_t cap_ = 0;                 // power of two >= max(n, 2)
  std::vector<double> keys_;       // size cap_; [n_, cap_) stay +inf
  std::vector<uint32_t> winners_;  // internal winners, indices 1..cap_-1
};

}  // namespace hs::dispatch
