#include "dispatch/swrr.h"

#include <cmath>

#include "util/check.h"

namespace hs::dispatch {

SwrrDispatcher::SwrrDispatcher(alloc::Allocation allocation)
    : allocation_(std::move(allocation)) {
  rebuild_dense();
}

void SwrrDispatcher::rebuild_dense() {
  HS_CHECK(allocation_.active_count() >= 1,
           "dispatcher needs at least one machine with positive fraction");
  machine_of_.clear();
  weight_.clear();
  for (size_t i = 0; i < allocation_.size(); ++i) {
    if (allocation_[i] > 0.0) {
      machine_of_.push_back(static_cast<uint32_t>(i));
      weight_.push_back(allocation_[i]);
    }
  }
  reset();
}

void SwrrDispatcher::reset() { current_.assign(machine_of_.size(), 0.0); }

bool SwrrDispatcher::rebuild_fractions(std::span<const double> fractions) {
  HS_CHECK(fractions.size() == allocation_.size(),
           "rebuild_fractions size " << fractions.size()
                                     << " != machine count "
                                     << allocation_.size());
  allocation_.assign(fractions);
  rebuild_dense();
  return true;
}

size_t SwrrDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  // current_i += weight_i; winner = argmax current; winner -= Σweights.
  // Weights are the allocation fractions, so Σweights = 1. Slot 0 always
  // exists (active_count >= 1) and its increment happens before any
  // comparison, exactly as in the sparse scan this replaced.
  const size_t k = current_.size();
  size_t best = 0;
  current_[0] += weight_[0];
  for (size_t i = 1; i < k; ++i) {
    current_[i] += weight_[i];
    if (current_[i] > current_[best]) {
      best = i;
    }
  }
  current_[best] -= 1.0;
  return machine_of_[best];
}

size_t SwrrDispatcher::save_state(std::vector<double>& out) const {
  const size_t n = allocation_.size();
  const auto& f = allocation_.fractions();
  out.insert(out.end(), f.begin(), f.end());
  const size_t base = out.size();
  out.resize(base + n, 0.0);
  double* current = out.data() + base;
  for (size_t k = 0; k < machine_of_.size(); ++k) {
    current[machine_of_[k]] = current_[k];
  }
  return 2 * n;
}

size_t SwrrDispatcher::restore_state(std::span<const double> state) {
  const size_t n = allocation_.size();
  if (state.size() < 2 * n) {
    return 0;
  }
  const double* current = state.data() + n;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(current[i])) {
      return 0;
    }
  }
  allocation_.assign_exact(state.first(n));
  rebuild_dense();
  for (size_t k = 0; k < machine_of_.size(); ++k) {
    current_[k] = current[machine_of_[k]];
  }
  return 2 * n;
}

}  // namespace hs::dispatch
