#include "dispatch/swrr.h"

#include "util/check.h"

namespace hs::dispatch {

SwrrDispatcher::SwrrDispatcher(alloc::Allocation allocation)
    : allocation_(std::move(allocation)) {
  HS_CHECK(allocation_.active_count() >= 1,
           "dispatcher needs at least one machine with positive fraction");
  reset();
}

void SwrrDispatcher::reset() {
  current_.assign(allocation_.size(), 0.0);
}

size_t SwrrDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  // current_i += weight_i; winner = argmax current; winner -= Σweights.
  // Weights are the allocation fractions, so Σweights = 1.
  size_t best = allocation_.size();
  for (size_t i = 0; i < allocation_.size(); ++i) {
    if (allocation_[i] == 0.0) {
      continue;
    }
    current_[i] += allocation_[i];
    if (best == allocation_.size() || current_[i] > current_[best]) {
      best = i;
    }
  }
  HS_CHECK(best < allocation_.size(), "no selectable machine");
  current_[best] -= 1.0;
  return best;
}

}  // namespace hs::dispatch
