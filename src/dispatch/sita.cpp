#include "dispatch/sita.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::dispatch {

namespace {

/// Normalization constant C of the density f(x) = C·x^{−α−1}.
double density_constant(const rng::BoundedPareto& dist) {
  const double k = dist.lower(), p = dist.upper(), a = dist.alpha();
  return a * std::pow(k, a) / (1.0 - std::pow(k / p, a));
}

/// CDF of the Bounded Pareto at x in [k, p].
double cdf(const rng::BoundedPareto& dist, double x) {
  const double k = dist.lower(), p = dist.upper(), a = dist.alpha();
  return (1.0 - std::pow(k / x, a)) / (1.0 - std::pow(k / p, a));
}

}  // namespace

double bounded_pareto_partial_mean(const rng::BoundedPareto& dist, double a,
                                   double b) {
  HS_CHECK(dist.lower() <= a && a <= b && b <= dist.upper() * (1 + 1e-12),
           "partial mean bounds out of range: [" << a << ", " << b << "]");
  const double c = density_constant(dist);
  const double alpha = dist.alpha();
  if (std::fabs(alpha - 1.0) < 1e-12) {
    return c * std::log(b / a);
  }
  return c / (1.0 - alpha) *
         (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha));
}

double bounded_pareto_partial_mean_inverse(const rng::BoundedPareto& dist,
                                           double target) {
  HS_CHECK(target >= 0.0 && target <= dist.mean() * (1.0 + 1e-9),
           "partial mean target out of [0, mean]: " << target);
  const double c = density_constant(dist);
  const double alpha = dist.alpha();
  const double k = dist.lower();
  double x;
  if (std::fabs(alpha - 1.0) < 1e-12) {
    x = k * std::exp(target / c);
  } else {
    const double base =
        std::pow(k, 1.0 - alpha) + target * (1.0 - alpha) / c;
    x = std::pow(base, 1.0 / (1.0 - alpha));
  }
  return std::clamp(x, dist.lower(), dist.upper());
}

SitaDispatcher::SitaDispatcher(std::vector<double> speeds,
                               rng::BoundedPareto sizes)
    : speeds_(std::move(speeds)), sizes_(sizes) {
  HS_CHECK(!speeds_.empty(), "SITA needs at least one machine");
  for (double s : speeds_) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
  by_speed_.resize(speeds_.size());
  std::iota(by_speed_.begin(), by_speed_.end(), size_t{0});
  std::stable_sort(by_speed_.begin(), by_speed_.end(), [this](size_t a,
                                                              size_t b) {
    return speeds_[a] < speeds_[b];
  });

  // Cumulative load targets: machine by_speed_[i] serves the size band
  // whose expected load equals its speed share of the total mean.
  const double total_speed = util::kahan_sum(speeds_);
  const double mean = sizes_.mean();
  cutoffs_.resize(speeds_.size() + 1);
  cutoffs_.front() = sizes_.lower();
  cutoffs_.back() = sizes_.upper();
  double cumulative_speed = 0.0;
  for (size_t i = 0; i + 1 < speeds_.size(); ++i) {
    cumulative_speed += speeds_[by_speed_[i]];
    const double target = cumulative_speed / total_speed * mean;
    cutoffs_[i + 1] = bounded_pareto_partial_mean_inverse(sizes_, target);
    HS_CHECK(cutoffs_[i + 1] >= cutoffs_[i],
             "cutoffs must be non-decreasing at index " << i);
  }
}

size_t SitaDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  HS_CHECK(false,
           "SITA requires the job size at dispatch time — the harness "
           "must use pick_sized()");
  return 0;
}

size_t SitaDispatcher::pick_sized(rng::Xoshiro256& /*gen*/, double size) {
  HS_CHECK(size > 0.0, "job size must be positive, got " << size);
  // Sizes outside the fitted distribution's support route to the
  // boundary machines.
  const double x = std::clamp(size, sizes_.lower(), sizes_.upper());
  // Find the band: largest i with cutoffs_[i] <= x (and i < n).
  const auto it =
      std::upper_bound(cutoffs_.begin(), cutoffs_.end() - 1, x);
  const size_t band = static_cast<size_t>(
      std::max<std::ptrdiff_t>(it - cutoffs_.begin() - 1, 0));
  return by_speed_[std::min(band, speeds_.size() - 1)];
}

double SitaDispatcher::expected_job_fraction(size_t machine) const {
  HS_CHECK(machine < speeds_.size(), "machine out of range: " << machine);
  const auto position = static_cast<size_t>(
      std::find(by_speed_.begin(), by_speed_.end(), machine) -
      by_speed_.begin());
  return cdf(sizes_, cutoffs_[position + 1]) - cdf(sizes_, cutoffs_[position]);
}

}  // namespace hs::dispatch
