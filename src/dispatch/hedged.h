// Hedged-dispatch decorator: tail-tolerant duplicate requests.
//
// Wraps any Dispatcher and marks the stream for request hedging: when a
// job dispatched through this decorator has not completed
// `HedgingConfig::delay` seconds after its primary dispatch, the cluster
// harness asks pick_hedge() for a second-choice machine and sends a
// duplicate copy there. The first copy to complete wins; the harness
// evicts the losing copy and dedups duplicate completions, so the
// arrivals = completed + shed + dropped + in-flight identity still
// balances exactly-once (docs/FAULT_MODEL.md §8).
//
// The decorator itself is deliberately thin — the timers, the in-flight
// copy table, and the eviction live in the cluster harness, which is the
// only place that can observe completions and cancel work. What lives
// here is (a) the hedging configuration, (b) the pick_hedge pass-through
// that lets the wrapped policy choose the second machine with its own
// state (Least-Load picks the second-least-loaded and bumps its
// estimate), and (c) the hedge counters surfaced in SimulationResult.
// Hedging only changes behavior when the network layer is on: the
// synchronous dispatch path never leaves a job in flight long enough to
// hedge.
//
// Composes in any order with FaultAwareDispatcher and
// CircuitBreakerDispatcher: every hook, including set_available_mask,
// is forwarded verbatim.
//
// Threading: caller-serialized (dispatch/dispatcher.h) — the decorator
// adds only counters, but picks and counter updates forward into the
// wrapped policy's mutable state.
#pragma once

#include <memory>

#include "dispatch/dispatcher.h"

namespace hs::dispatch {

/// Tail-tolerant request hedging. Configured on the dispatcher (not in
/// cluster::NetworkConfig) because the wrapped policy owns the
/// second-choice decision; the cluster harness reads it through the
/// decorator. Hedging activates the asynchronous network dispatch path
/// even when no link faults are configured.
struct HedgingConfig {
  /// Seconds after the primary dispatch before the hedge copy is issued
  /// (0 = hedging off). Pick a high percentile of the no-fault response
  /// time so only stragglers are hedged.
  double delay = 0.0;

  [[nodiscard]] bool enabled() const { return delay > 0.0; }
  /// Throws util::CheckError on out-of-range fields.
  void validate() const;
};

class HedgedDispatcher final : public Dispatcher {
 public:
  HedgedDispatcher(std::unique_ptr<Dispatcher> inner,
                   HedgingConfig config);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  [[nodiscard]] size_t pick_sized(rng::Xoshiro256& gen,
                                  double size) override;
  [[nodiscard]] size_t pick_hedge(rng::Xoshiro256& gen, double size,
                                  size_t exclude) override;
  [[nodiscard]] bool uses_size() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] size_t machine_count() const override;

  void on_arrival(double now) override;
  void on_departure_report(size_t machine) override;
  void on_departure_report(size_t machine, double now) override;
  void on_departure_report(size_t machine, double now, double work) override;
  void on_load_report(size_t machine, uint64_t queue_length) override;
  [[nodiscard]] bool uses_feedback() const override;

  bool set_available_mask(const std::vector<bool>& available) override;
  void on_dispatch_result(size_t machine, bool accepted, double now) override;
  [[nodiscard]] bool uses_overload_feedback() const override;
  void on_machine_state_report(size_t machine, bool up) override;
  [[nodiscard]] bool uses_fault_feedback() const override;

  [[nodiscard]] const HedgingConfig& config() const { return config_; }

  /// Harness callbacks — the cluster simulation drives the hedge
  /// lifecycle and records it here so the counters survive in one place.
  void record_issued() { ++issued_; }
  void record_won() { ++won_; }
  void record_cancelled() { ++cancelled_; }

  /// Hedge copies actually sent (timer fired and a distinct second
  /// machine existed).
  [[nodiscard]] uint64_t issued() const { return issued_; }
  /// Hedge copies that completed before their primary.
  [[nodiscard]] uint64_t won() const { return won_; }
  /// Copies cancelled because the sibling finished first (evictions plus
  /// late arrivals deduped after a win).
  [[nodiscard]] uint64_t cancelled() const { return cancelled_; }

  [[nodiscard]] const Dispatcher& inner() const { return *inner_; }
  [[nodiscard]] Dispatcher& inner() { return *inner_; }

 private:
  std::unique_ptr<Dispatcher> inner_;
  HedgingConfig config_;
  uint64_t issued_ = 0;
  uint64_t won_ = 0;
  uint64_t cancelled_ = 0;
};

}  // namespace hs::dispatch
