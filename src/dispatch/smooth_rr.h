// Round-robin based job dispatching — the paper's Algorithm 2.
//
// Equalizes the number of system-level inter-arrival gaps between
// successive jobs sent to the same machine, smoothing each machine's
// arrival substream without measuring time. Each machine i carries
//   assign — jobs sent to it so far,
//   next   — expected number of future arrivals before its next job.
// A new job goes to the machine with minimal `next` (ties: smallest
// (assign+1)/αᵢ); the winner's `next` grows by 1/αᵢ and every machine
// that has started receiving jobs counts down by 1. The `next` guard
// value 1 staggers first assignments of small-fraction machines evenly
// through the cycle.
//
// With equal fractions this reduces to the classic round-robin; hence
// "Weighted Round-Robin" (WRR) with the simple weighted allocation and
// "Optimized Round-Robin" (ORR) with the optimized allocation.
//
// pick() runs once per dispatched job and dominated end-to-end
// simulation profiles, so the state is kept densely for the machines
// with αᵢ > 0 only: excluded machines never receive jobs, never start,
// and therefore never change state (their `next` stays at the guard
// value 1 forever), so leaving them out of every scan is exact — not an
// approximation.
//
// Threading: caller-serialized (dispatch/dispatcher.h) — every pick()
// advances the assign/next cadence state.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class SmoothRoundRobinDispatcher final : public Dispatcher {
 public:
  explicit SmoothRoundRobinDispatcher(alloc::Allocation allocation);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] size_t machine_count() const override {
    return allocation_.size();
  }
  bool rebuild_fractions(std::span<const double> fractions) override;

  /// Replace the allocation with an already-validated one — the
  /// fractions are copied bit-for-bit, with no renormalization — and
  /// rebuild the dense cadence state, reusing buffer capacity
  /// throughout (allocation-free at a fixed cluster size once warm).
  void rebuild(const alloc::Allocation& allocation);

  /// State inspection (for tests and the Figure 2 reproduction).
  /// Indexed by machine, like the allocation; excluded machines report
  /// assign 0 and the guard value 1.
  [[nodiscard]] uint64_t assigned(size_t machine) const;
  [[nodiscard]] double next_value(size_t machine) const;

  /// Checkpoint: fractions plus the full cadence state (assign/next/
  /// started per machine), so a restored dispatcher continues the
  /// Algorithm 2 schedule bit-identically mid-cycle. 4n values,
  /// machine-indexed (excluded machines carry their invariant state).
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  /// Re-derive the dense active-set arrays from allocation_ and reset
  /// the cadence state. clear()+push_back reuses capacity, so repeated
  /// rebuilds at a fixed cluster size are allocation-free.
  void rebuild_dense();

  /// Full ε-tolerant selection scan (steps 2.b–2.c including the
  /// normalized-assignment tie-break) over the dense active set.
  /// pick() only falls back to it when the two smallest `next` values
  /// are within the tie tolerance. Returns a dense index.
  [[nodiscard]] size_t pick_tied() const;

  alloc::Allocation allocation_;

  // Dense per-active-machine state, in ascending machine order (so scan
  // order — and thus every first-seen tie rule — matches a sparse scan
  // that skips excluded machines).
  std::vector<size_t> machine_of_;    // dense index -> machine index
  std::vector<double> fraction_of_;   // αᵢ of each active machine
  std::vector<double> inv_fraction_;  // 1/αᵢ, computed once (exact reuse)
  std::vector<uint64_t> assign_;
  std::vector<double> next_;
  /// 1.0 once the machine has started receiving jobs, else 0.0 — the
  /// step 2.h countdown becomes a pure vectorizable double subtraction
  /// (subtracting 0.0 from a not-yet-started machine is exact).
  std::vector<double> started_;
};

}  // namespace hs::dispatch
