// Round-robin based job dispatching — the paper's Algorithm 2.
//
// Equalizes the number of system-level inter-arrival gaps between
// successive jobs sent to the same machine, smoothing each machine's
// arrival substream without measuring time. Each machine i carries
//   assign — jobs sent to it so far,
//   next   — expected number of future arrivals before its next job.
// A new job goes to the machine with minimal `next` (ties: smallest
// (assign+1)/αᵢ); the winner's `next` grows by 1/αᵢ and every machine
// that has started receiving jobs counts down by 1. The `next` guard
// value 1 staggers first assignments of small-fraction machines evenly
// through the cycle.
//
// With equal fractions this reduces to the classic round-robin; hence
// "Weighted Round-Robin" (WRR) with the simple weighted allocation and
// "Optimized Round-Robin" (ORR) with the optimized allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class SmoothRoundRobinDispatcher final : public Dispatcher {
 public:
  explicit SmoothRoundRobinDispatcher(alloc::Allocation allocation);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] size_t machine_count() const override {
    return allocation_.size();
  }

  /// State inspection (for tests and the Figure 2 reproduction).
  [[nodiscard]] uint64_t assigned(size_t machine) const;
  [[nodiscard]] double next_value(size_t machine) const;

 private:
  alloc::Allocation allocation_;
  std::vector<uint64_t> assign_;
  std::vector<double> next_;
};

}  // namespace hs::dispatch
