// Failure-aware dispatching decorator.
//
// Wraps any Dispatcher and consumes the fault layer's delayed machine
// crash/recovery reports (cluster/faults.h): machines reported down are
// blacklisted, and routing is restricted to the survivors until the
// recovery report arrives. Two composition modes, picked automatically:
//
//  * Native masking — the inner dispatcher handles blacklists itself
//    (Least-Load, AdaptiveORR expose set_available_mask). The decorator
//    just forwards the mask; inner state (queue estimates, the ρ̂
//    estimator) survives across fault transitions.
//  * Rebuild — static allocation-based dispatchers (WRAN/ORAN/WRR/ORR)
//    have no mask concept, so the caller supplies a Rebuilder that
//    constructs a fresh inner dispatcher routing only to the available
//    machines (e.g. the Algorithm-1 optimized allocation recomputed over
//    the survivors — graceful ORR degradation). The decorator swaps the
//    inner dispatcher on every fault transition.
//
// core::make_fault_aware_dispatcher() wires both modes for the paper's
// policies; docs/FAULT_MODEL.md discusses the semantics.
//
// Threading: caller-serialized (dispatch/dispatcher.h) — picks forward
// to the inner dispatcher, and fault reports can swap the inner
// dispatcher wholesale (rebuild mode), so no call may overlap another.
#pragma once

#include <functional>
#include <memory>

#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class FaultAwareDispatcher final : public Dispatcher {
 public:
  /// Builds a fresh dispatcher (over the full machine-index space) that
  /// routes only to machines with available[i] == true. Called with an
  /// all-true mask on reset. When every machine is down the decorator
  /// does not call the rebuilder; it routes over the full set instead
  /// (the jobs are lost either way, and the fault layer retries them).
  using Rebuilder =
      std::function<std::unique_ptr<Dispatcher>(const std::vector<bool>&)>;

  /// Computes survivor allocation fractions (over the full machine-index
  /// space, zeros for unavailable machines) into `fractions` — the
  /// allocation-free fast path of rebuild mode. When supplied, fault
  /// transitions re-weight the existing inner dispatcher in place via
  /// Dispatcher::rebuild_fractions() instead of constructing a fresh one;
  /// the Rebuilder remains the fallback (and the reset path for inner
  /// dispatchers that decline in-place reweighting).
  using Reweighter =
      std::function<void(const std::vector<bool>&, std::vector<double>&)>;

  /// Native-masking mode: `inner` must accept set_available_mask.
  explicit FaultAwareDispatcher(std::unique_ptr<Dispatcher> inner);

  /// Rebuild mode: `inner` is the full-availability dispatcher,
  /// `rebuilder` produces replacements as machines fail and recover.
  /// The optional `reweighter` upgrades fault transitions to in-place,
  /// allocation-free reweights of the existing inner dispatcher.
  FaultAwareDispatcher(std::unique_ptr<Dispatcher> inner,
                       Rebuilder rebuilder, Reweighter reweighter = {});

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  [[nodiscard]] size_t pick_sized(rng::Xoshiro256& gen,
                                  double size) override;
  [[nodiscard]] size_t pick_hedge(rng::Xoshiro256& gen, double size,
                                  size_t exclude) override;
  [[nodiscard]] bool uses_size() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] size_t machine_count() const override;

  void on_arrival(double now) override;
  void on_departure_report(size_t machine) override;
  void on_departure_report(size_t machine, double now) override;
  void on_departure_report(size_t machine, double now, double work) override;
  void on_load_report(size_t machine, uint64_t queue_length) override;
  [[nodiscard]] bool uses_feedback() const override;

  void on_machine_state_report(size_t machine, bool up) override;
  [[nodiscard]] bool uses_fault_feedback() const override { return true; }

  /// Dispatch outcomes are not this decorator's signal (it acts on
  /// crash/suspicion reports), but a circuit breaker stacked *inside*
  /// needs them — forward verbatim so the three robustness decorators
  /// compose in any order.
  void on_dispatch_result(size_t machine, bool accepted, double now) override;
  [[nodiscard]] bool uses_overload_feedback() const override {
    return inner_->uses_overload_feedback();
  }

  /// Native masking on behalf of an *outer* decorator (a circuit breaker
  /// or another fault layer stacked on top): the outer mask is ANDed
  /// with this decorator's own crash blacklist before being pushed down,
  /// so Hedged/FaultAware/CircuitBreaker compose in any order. Always
  /// returns true — the decorator absorbs the mask even when the inner
  /// dispatcher needs the rebuilder.
  bool set_available_mask(const std::vector<bool>& available) override;

  /// Checkpoint: this layer's crash blacklist (n flags), then the inner
  /// dispatcher's state — a stack serializes outside-in. The outer mask
  /// is not saved: whoever imposed it re-imposes it on its own restore.
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

  /// Current availability as last reported (true = believed up).
  [[nodiscard]] const std::vector<bool>& available() const {
    return available_;
  }
  [[nodiscard]] size_t down_count() const;
  /// Inner-dispatcher rebuilds since construction/reset (rebuild mode
  /// only; native masking never rebuilds).
  [[nodiscard]] uint64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] const Dispatcher& inner() const { return *inner_; }
  /// Mutable access for decorator-aware wiring (e.g. handing a trace
  /// sink to a wrapped adaptive dispatcher). Stable only in native-
  /// masking mode — rebuild mode replaces the inner dispatcher on fault
  /// transitions.
  [[nodiscard]] Dispatcher& inner() { return *inner_; }

 private:
  void apply_mask();

  std::unique_ptr<Dispatcher> inner_;
  Rebuilder rebuilder_;
  Reweighter reweighter_;
  std::vector<bool> available_;
  std::vector<bool> outer_mask_;  // restriction imposed from above
  std::vector<bool> effective_;   // scratch: available_ AND outer_mask_
  std::vector<double> fractions_scratch_;  // reweighter output buffer
  bool native_mask_ = false;
  uint64_t rebuilds_ = 0;
};

}  // namespace hs::dispatch
