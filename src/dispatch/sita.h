// SITA-E: size-interval task assignment with equalized expected load.
//
// The comparator from the task-assignment literature the paper contrasts
// itself with (Crovella, Harchol-Balter & Murta; Schroeder &
// Harchol-Balter): if job sizes are known when jobs arrive, route by
// size — machine i receives exactly the jobs whose size falls in
// [xᵢ₋₁, xᵢ), with the cutoffs chosen so each machine's expected load
// share matches its speed share:
//
//   ∫_{xᵢ₋₁}^{xᵢ} x·f(x) dx = (sᵢ/Σs)·E[X].
//
// Size intervals are assigned in increasing order of speed: the fastest
// machines serve the largest jobs. Isolating short jobs from long ones
// eliminates the variance-driven slowdown of FCFS servers; under
// processor sharing the advantage largely evaporates — which is exactly
// the paper's positioning: PS scheduling plus optimized allocation gets
// comparable benefits *without* knowing sizes
// (bench/ablation_sita_comparison).
//
// Cutoffs are computed in closed form for the Bounded Pareto B(k, p, α)
// size distribution used throughout (§4.1), via its partial expectation.
//
// Threading: pick_sized() is logically const — it reads the fixed
// cutoff table and draws nothing from the RNG — but the class follows
// the interface's caller-serialized contract (dispatch/dispatcher.h)
// like every other policy.
#pragma once

#include <vector>

#include "dispatch/dispatcher.h"
#include "rng/distributions.h"

namespace hs::dispatch {

class SitaDispatcher final : public Dispatcher {
 public:
  /// `speeds` are the machine speeds (interval order follows speed
  /// order); `sizes` is the Bounded Pareto job-size distribution the
  /// cutoffs are computed for.
  SitaDispatcher(std::vector<double> speeds, rng::BoundedPareto sizes);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  [[nodiscard]] size_t pick_sized(rng::Xoshiro256& gen,
                                  double size) override;
  [[nodiscard]] bool uses_size() const override { return true; }
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "sita-e"; }
  [[nodiscard]] size_t machine_count() const override {
    return speeds_.size();
  }

  /// The size cutoffs x₀ = k < x₁ < … < xₙ = p (n+1 values).
  [[nodiscard]] const std::vector<double>& cutoffs() const {
    return cutoffs_;
  }
  /// Expected fraction of *jobs* (not load) routed to machine i.
  [[nodiscard]] double expected_job_fraction(size_t machine) const;

 private:
  std::vector<double> speeds_;
  rng::BoundedPareto sizes_;
  std::vector<size_t> by_speed_;   // machine indices, ascending speed
  std::vector<double> cutoffs_;    // size boundaries, ascending
};

/// Partial expectation of a Bounded Pareto: ∫_a^b x f(x) dx for
/// k <= a <= b <= p. Exposed for tests.
[[nodiscard]] double bounded_pareto_partial_mean(
    const rng::BoundedPareto& dist, double a, double b);

/// Smallest x such that ∫_k^x t f(t) dt = target (target in
/// [0, mean]). Exposed for tests.
[[nodiscard]] double bounded_pareto_partial_mean_inverse(
    const rng::BoundedPareto& dist, double target);

}  // namespace hs::dispatch
