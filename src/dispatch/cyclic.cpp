#include "dispatch/cyclic.h"

#include "util/check.h"

namespace hs::dispatch {

CyclicDispatcher::CyclicDispatcher(alloc::Allocation allocation)
    : n_(allocation.size()) {
  for (size_t i = 0; i < allocation.size(); ++i) {
    if (allocation[i] > 0.0) {
      active_.push_back(i);
    }
  }
  HS_CHECK(!active_.empty(), "cyclic dispatcher needs an active machine");
}

size_t CyclicDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  const size_t machine = active_[position_];
  position_ = (position_ + 1) % active_.size();
  return machine;
}

}  // namespace hs::dispatch
