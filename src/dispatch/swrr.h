// Smooth weighted round-robin (the "nginx" algorithm) — a comparison
// dispatcher from modern OSS load balancers.
//
// The paper's Algorithm 2 predates, but closely parallels, the smooth
// WRR used by nginx/HAProxy: each machine carries a current weight that
// grows by its effective weight every arrival; the largest current
// weight wins and is reduced by the total. Both produce evenly
// interleaved schedules with per-machine counts tracking the weights;
// they differ in tie handling and start-up staggering. Included so the
// two generalized round-robins can be compared head-to-head
// (bench/ablation_dispatcher_family).
#pragma once

#include <vector>

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class SwrrDispatcher final : public Dispatcher {
 public:
  explicit SwrrDispatcher(alloc::Allocation allocation);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "swrr"; }
  [[nodiscard]] size_t machine_count() const override {
    return allocation_.size();
  }

 private:
  alloc::Allocation allocation_;
  std::vector<double> current_;  // current weights
};

}  // namespace hs::dispatch
