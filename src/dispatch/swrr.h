// Smooth weighted round-robin (the "nginx" algorithm) — a comparison
// dispatcher from modern OSS load balancers.
//
// The paper's Algorithm 2 predates, but closely parallels, the smooth
// WRR used by nginx/HAProxy: each machine carries a current weight that
// grows by its effective weight every arrival; the largest current
// weight wins and is reduced by the total. Both produce evenly
// interleaved schedules with per-machine counts tracking the weights;
// they differ in tie handling and start-up staggering. Included so the
// two generalized round-robins can be compared head-to-head
// (bench/ablation_dispatcher_family).
//
// State is packed as contiguous structure-of-arrays over the machines
// with positive fractions (zero-fraction machines never win, so they are
// excluded up front): the per-pick max scan walks dense weight_/current_
// arrays instead of branching past excluded entries, which matters for
// cache behavior once n reaches 10⁵–10⁶.
//
// Threading: caller-serialized (dispatch/dispatcher.h) — every pick()
// rewrites the current-weight array, so concurrent picks corrupt the
// schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class SwrrDispatcher final : public Dispatcher {
 public:
  explicit SwrrDispatcher(alloc::Allocation allocation);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "swrr"; }
  [[nodiscard]] size_t machine_count() const override {
    return allocation_.size();
  }
  bool rebuild_fractions(std::span<const double> fractions) override;

  /// Checkpoint: fractions plus the current-weight array, machine-indexed
  /// (excluded machines carry 0). 2n values.
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

 private:
  void rebuild_dense();

  alloc::Allocation allocation_;
  // Dense SoA over machines with αᵢ > 0, in ascending machine order (the
  // same visit order as a sparse scan over all machines, so pick() stays
  // bit-identical to the pre-SoA implementation).
  std::vector<uint32_t> machine_of_;  // dense slot -> machine index
  std::vector<double> weight_;        // allocation fraction per slot
  std::vector<double> current_;       // current weight per slot
};

}  // namespace hs::dispatch
