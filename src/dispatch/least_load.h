// Dynamic Least-Load dispatching (§2.2, §4.2) — the dynamic yardstick.
//
// The central scheduler tracks an estimate q̂ᵢ of each machine's run
// queue length. An arriving job goes to the machine with the least
// normalized load (q̂ᵢ + 1)/sᵢ; the estimate is incremented immediately
// (no rescheduling is allowed, so the scheduler knows the job is there).
// Departures are learned asynchronously: the cluster harness delivers
// on_departure_report() after the paper's detection delay (U(0,1) s) plus
// message transfer delay (exponential, mean 0.05 s), so the estimates lag
// reality exactly as in the paper's model.
#pragma once

#include <cstdint>
#include <vector>

#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class LeastLoadDispatcher final : public Dispatcher {
 public:
  explicit LeastLoadDispatcher(std::vector<double> speeds);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;

  /// Second-least-loaded available machine (skipping `exclude`), with
  /// the estimate bumped exactly like pick() — the hedge copy really is
  /// headed there. Returns `exclude` when it is the only candidate, in
  /// which case the caller skips the hedge and no estimate moves.
  [[nodiscard]] size_t pick_hedge(rng::Xoshiro256& gen, double size,
                                  size_t exclude) override;

  void reset() override;
  [[nodiscard]] std::string name() const override { return "least-load"; }
  [[nodiscard]] size_t machine_count() const override {
    return speeds_.size();
  }

  void on_departure_report(size_t machine) override;
  [[nodiscard]] bool uses_feedback() const override { return true; }

  /// Stale snapshot (uncertainty staleness model): replace the estimate
  /// with the reported queue length. Between snapshots the dispatcher
  /// still increments on its own dispatches, so it routes on "snapshot
  /// plus what I sent since" — a view up to Δ + d seconds old.
  void on_load_report(size_t machine, uint64_t queue_length) override;

  /// Native fault-layer blacklist: masked machines are skipped by pick()
  /// (unless every machine is masked, in which case all are considered —
  /// jobs must go somewhere, and the fault layer will lose and retry
  /// them). A machine transitioning to unavailable has its queue estimate
  /// zeroed: its jobs were lost in the crash, and the departure reports
  /// that would have drained the estimate will never arrive.
  bool set_available_mask(const std::vector<bool>& available) override;

  /// Scheduler-side queue length estimate for a machine.
  [[nodiscard]] uint64_t estimated_queue(size_t machine) const;

 private:
  std::vector<double> speeds_;
  std::vector<uint64_t> estimates_;
  std::vector<bool> available_;
};

}  // namespace hs::dispatch
