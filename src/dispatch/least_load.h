// Dynamic Least-Load dispatching (§2.2, §4.2) — the dynamic yardstick.
//
// The central scheduler tracks an estimate q̂ᵢ of each machine's run
// queue length. An arriving job goes to the machine with the least
// normalized load (q̂ᵢ + 1)/sᵢ; the estimate is incremented immediately
// (no rescheduling is allowed, so the scheduler knows the job is there).
// Departures are learned asynchronously: the cluster harness delivers
// on_departure_report() after the paper's detection delay (U(0,1) s) plus
// message transfer delay (exponential, mean 0.05 s), so the estimates lag
// reality exactly as in the paper's model.
//
// Two argmin engines produce bit-identical pick sequences. The default
// tournament tree (min_tree.h) answers each pick in O(log n) — estimate
// bumps, departure/load reports and hedge exclusion are O(log n) leaf
// updates, mask flips an O(n) rebuild — which keeps Least-Load usable at
// n = 10⁵–10⁶ machines. The O(n) linear scan is retained as the
// reference implementation for the randomized differential test
// (tests/test_least_load.cpp); both are pinned by the same golden tests.
//
// Threading: caller-serialized (dispatch/dispatcher.h) — pick() bumps
// the chosen machine's queue estimate, and the asynchronous feedback
// channels (on_departure_report, on_load_report) write the same state.
#pragma once

#include <cstdint>
#include <vector>

#include "dispatch/dispatcher.h"
#include "dispatch/min_tree.h"

namespace hs::dispatch {

/// Which argmin engine backs LeastLoadDispatcher. Both are bit-identical;
/// kScan exists as the reference for differential testing.
enum class LeastLoadEngine {
  kTree,  // O(log n) tournament tree (default)
  kScan,  // O(n) linear scan (reference)
};

class LeastLoadDispatcher final : public Dispatcher {
 public:
  explicit LeastLoadDispatcher(std::vector<double> speeds,
                               LeastLoadEngine engine = LeastLoadEngine::kTree);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;

  /// Second-least-loaded available machine (skipping `exclude`), with
  /// the estimate bumped exactly like pick() — the hedge copy really is
  /// headed there. Returns `exclude` when it is the only candidate, in
  /// which case the caller skips the hedge and no estimate moves.
  [[nodiscard]] size_t pick_hedge(rng::Xoshiro256& gen, double size,
                                  size_t exclude) override;

  void reset() override;
  [[nodiscard]] std::string name() const override { return "least-load"; }
  [[nodiscard]] size_t machine_count() const override {
    return speeds_.size();
  }

  void on_departure_report(size_t machine) override;
  [[nodiscard]] bool uses_feedback() const override { return true; }

  /// Stale snapshot (uncertainty staleness model): replace the estimate
  /// with the reported queue length. Between snapshots the dispatcher
  /// still increments on its own dispatches, so it routes on "snapshot
  /// plus what I sent since" — a view up to Δ + d seconds old.
  void on_load_report(size_t machine, uint64_t queue_length) override;

  /// Native fault-layer blacklist: masked machines are skipped by pick()
  /// (unless every machine is masked, in which case all are considered —
  /// jobs must go somewhere, and the fault layer will lose and retry
  /// them). A machine transitioning to unavailable has its queue estimate
  /// zeroed: its jobs were lost in the crash, and the departure reports
  /// that would have drained the estimate will never arrive.
  bool set_available_mask(const std::vector<bool>& available) override;

  /// Scheduler-side queue length estimate for a machine.
  [[nodiscard]] uint64_t estimated_queue(size_t machine) const;

  /// Checkpoint: queue estimates plus the availability mask (both engines
  /// rebuild their argmin structure from these). 2n values.
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

  [[nodiscard]] LeastLoadEngine engine() const { return engine_; }

 private:
  [[nodiscard]] size_t pick_scan();
  [[nodiscard]] size_t pick_hedge_scan(size_t exclude);

  /// Tree key for machine i under the current availability regime:
  /// +inf for masked machines while any machine is available, otherwise
  /// the normalized load (q̂ᵢ + 1)/sᵢ.
  [[nodiscard]] double leaf_key(size_t i) const;
  /// Reload every leaf and rebuild winners: O(n), used on reset and mask
  /// flips (the regime can change every key at once).
  void reload_tree();
  /// Repair machine i's leaf after an estimate change: O(log n).
  void touch(size_t i);

  LeastLoadEngine engine_;
  std::vector<double> speeds_;
  std::vector<uint64_t> estimates_;
  std::vector<bool> available_;
  size_t available_count_ = 0;
  MinLoadTree tree_;  // engaged only under kTree
};

}  // namespace hs::dispatch
