#include "dispatch/smooth_rr.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace hs::dispatch {

namespace {

/// Tolerance for `next` equality in the tie-break of step 2.c.3. The
/// paper compares exactly; `next` values are sums of 1/αᵢ increments and
/// integer decrements, so genuinely tied machines can differ by rounding
/// noise in floating point.
constexpr double kTieEps = 1e-9;

}  // namespace

SmoothRoundRobinDispatcher::SmoothRoundRobinDispatcher(
    alloc::Allocation allocation)
    : allocation_(std::move(allocation)) {
  rebuild_dense();
}

void SmoothRoundRobinDispatcher::rebuild_dense() {
  HS_CHECK(allocation_.active_count() >= 1,
           "dispatcher needs at least one machine with positive fraction");
  machine_of_.clear();
  fraction_of_.clear();
  inv_fraction_.clear();
  for (size_t i = 0; i < allocation_.size(); ++i) {
    if (allocation_[i] == 0.0) {
      continue;
    }
    machine_of_.push_back(i);
    fraction_of_.push_back(allocation_[i]);
    // 1/αᵢ is the same value every time it is computed from the same αᵢ,
    // so hoisting the division out of pick() changes nothing downstream.
    inv_fraction_.push_back(1.0 / allocation_[i]);
  }
  reset();
}

bool SmoothRoundRobinDispatcher::rebuild_fractions(
    std::span<const double> fractions) {
  HS_CHECK(fractions.size() == allocation_.size(),
           "rebuild_fractions size " << fractions.size()
                                     << " != machine count "
                                     << allocation_.size());
  allocation_.assign(fractions);
  rebuild_dense();
  return true;
}

void SmoothRoundRobinDispatcher::rebuild(const alloc::Allocation& allocation) {
  HS_CHECK(allocation.size() == allocation_.size(),
           "rebuild size " << allocation.size() << " != machine count "
                           << allocation_.size());
  allocation_ = allocation;
  rebuild_dense();
}

void SmoothRoundRobinDispatcher::reset() {
  // Step 1: assign = 0; next = 1 (the guard value that delays machines
  // with small fractions until a full cycle position opens for them).
  assign_.assign(machine_of_.size(), 0);
  next_.assign(machine_of_.size(), 1.0);
  started_.assign(machine_of_.size(), 0.0);
}

size_t SmoothRoundRobinDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  const size_t n = next_.size();
  const double* nx = next_.data();
  // Fast path: find the first strict minimum and the runner-up with
  // plain compares. When the runner-up is more than 2·kTieEps above the
  // minimum, the ε-hysteresis scan of pick_tied() provably selects
  // exactly that first minimum: whatever its running `min_next` holds on
  // arrival (always some already-seen value, hence > m + 2ε), the
  // minimum m satisfies m < min_next − ε and takes over; every later
  // value v has v − m > 2ε, so it neither beats nor ties it. Ties among
  // non-minimal prefix values never update `min_next`, so they cannot
  // change the outcome. This skips all tie-break work on the
  // (overwhelmingly common) tie-free pick.
  //
  // The scans run two interleaved accumulators updated by conditional
  // moves: which machine is minimal is uniformly random as far as the
  // branch predictor is concerned, and per-element mispredicts cost more
  // than the whole scan; the split halves the cmp/cmov dependency chain.
  // Splitting is exact — a min over doubles does not depend on
  // evaluation order — and the strict `<` keeps the first occurrence as
  // arg-min within each half. Across halves an exact duplicate of the
  // minimum could make the combine pick the later occurrence, but a
  // duplicated minimum always routes to pick_tied() below (min2 == min1),
  // which re-derives the selection from scratch.
  // Each accumulator tracks (smallest, its index, second smallest) over
  // its half in one pass; a new minimum demotes the old one to the
  // runner-up slot. "Second smallest" counts multiplicity, which is the
  // semantics the tie test below needs: a duplicated minimum — anywhere —
  // surfaces as min2 == min1.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double min_a = kInf, min_b = kInf;
  double sec_a = kInf, sec_b = kInf;
  size_t arg_a = 0, arg_b = 0;
  size_t i = 0;
  for (; i + 1 < n; i += 2) {
    const double va = nx[i];
    const double vb = nx[i + 1];
    const bool la = va < min_a;
    const bool lb = vb < min_b;
    const double da = va < sec_a ? va : sec_a;  // runner-up if not a new min
    const double db = vb < sec_b ? vb : sec_b;
    sec_a = la ? min_a : da;
    sec_b = lb ? min_b : db;
    min_a = la ? va : min_a;
    arg_a = la ? i : arg_a;
    min_b = lb ? vb : min_b;
    arg_b = lb ? i + 1 : arg_b;
  }
  if (i < n) {
    const double va = nx[i];
    const bool la = va < min_a;
    const double da = va < sec_a ? va : sec_a;
    sec_a = la ? min_a : da;
    min_a = la ? va : min_a;
    arg_a = la ? i : arg_a;
  }
  // Combine: the overall minimum is min(min_a, min_b); the overall
  // runner-up is the smallest of the loser's minimum and both halves'
  // runner-ups. Strict `<` keeps the first occurrence as arg-min within
  // a half; across halves an exact duplicate makes min2 == min1 and
  // routes to pick_tied(), so the combine order cannot matter.
  const bool b_wins = min_b < min_a;
  const double min1 = b_wins ? min_b : min_a;
  const size_t arg_min = b_wins ? arg_b : arg_a;
  const double loser = b_wins ? min_a : min_b;
  const double sec = sec_b < sec_a ? sec_b : sec_a;
  const double min2 = loser < sec ? loser : sec;

  const size_t select =
      min2 - min1 > 2.0 * kTieEps ? arg_min : pick_tied();

  // Step 2.d: a machine selected for the first time starts its regular
  // cadence from 0 rather than from the guard value.
  if (assign_[select] == 0) {
    next_[select] = 0.0;
    started_[select] = 1.0;
  }
  // Steps 2.e–2.f: it expects its next job after 1/α_select arrivals.
  next_[select] += inv_fraction_[select];
  assign_[select] += 1;
  // Step 2.h: one system arrival has been consumed — count down every
  // machine that has started receiving jobs (`started_` is 0.0 for the
  // rest, and subtracting 0.0 is exact).
  double* nxm = next_.data();
  const double* st = started_.data();
  for (size_t k = 0; k < n; ++k) {
    nxm[k] -= st[k];
  }
  return machine_of_[select];
}

size_t SmoothRoundRobinDispatcher::pick_tied() const {
  const size_t n = next_.size();
  // Steps 2.b–2.c: select the machine with minimal `next`; on ties the
  // one with the smallest normalized assignment count (assign+1)/αᵢ.
  //
  // Tie-break refinement: a machine that has never received a job (still
  // at the guard value) wins a `next` tie against machines that have.
  // In steady state started machines are selected at next == 0, strictly
  // below the guard, so this only matters at the boundary where a
  // small-fraction machine's staggered first slot opens; without the
  // preference, a large-fraction machine re-selected at next == 1 would
  // steal that slot and the cycle would not spread first jobs out evenly
  // as §3.2 describes (the paper's worked example — fractions
  // {1/8, 1/8, 1/4, 1/2} → c4 c3 c4 c2 c4 c3 c4 c1 — requires it).
  // The normalized assignment count (assign+1)/αᵢ is only consulted on
  // ties, so its division is computed lazily. The dense iteration visits
  // exactly the machines a sparse scan would (ascending machine order,
  // excluded machines skipped), so every first-seen rule resolves
  // identically.
  size_t select = kNone;
  double min_next = 0.0;
  double nor_assign = 0.0;  // valid only while nor_known
  bool nor_known = false;
  bool select_unstarted = false;
  for (size_t i = 0; i < n; ++i) {
    if (select == kNone || next_[i] < min_next - kTieEps) {
      min_next = next_[i];
      select = i;
      select_unstarted = assign_[i] == 0;
      nor_known = false;
    } else if (std::fabs(next_[i] - min_next) <= kTieEps) {
      if (!nor_known) {
        nor_assign =
            static_cast<double>(assign_[select] + 1) / fraction_of_[select];
        nor_known = true;
      }
      const double candidate_nor =
          static_cast<double>(assign_[i] + 1) / fraction_of_[i];
      const bool candidate_unstarted = assign_[i] == 0;
      const bool better =
          (candidate_unstarted && !select_unstarted) ||
          (candidate_unstarted == select_unstarted &&
           nor_assign > candidate_nor);
      if (better) {
        nor_assign = candidate_nor;
        select = i;
        select_unstarted = candidate_unstarted;
      }
    }
  }
  HS_CHECK(select != kNone, "no selectable machine");
  return select;
}

uint64_t SmoothRoundRobinDispatcher::assigned(size_t machine) const {
  HS_CHECK(machine < allocation_.size(),
           "machine index out of range: " << machine);
  for (size_t k = 0; k < machine_of_.size(); ++k) {
    if (machine_of_[k] == machine) {
      return assign_[k];
    }
  }
  return 0;  // excluded machines never receive jobs
}

double SmoothRoundRobinDispatcher::next_value(size_t machine) const {
  HS_CHECK(machine < allocation_.size(),
           "machine index out of range: " << machine);
  for (size_t k = 0; k < machine_of_.size(); ++k) {
    if (machine_of_[k] == machine) {
      return next_[k];
    }
  }
  return 1.0;  // excluded machines stay at the guard value forever
}

size_t SmoothRoundRobinDispatcher::save_state(std::vector<double>& out) const {
  const size_t n = allocation_.size();
  const auto& f = allocation_.fractions();
  out.insert(out.end(), f.begin(), f.end());
  const size_t base = out.size();
  out.resize(base + 3 * n);
  double* assign = out.data() + base;
  double* next = assign + n;
  double* started = next + n;
  // Machine-indexed layout: excluded machines hold their invariant
  // state (assign 0, the guard value 1, not started).
  for (size_t i = 0; i < n; ++i) {
    assign[i] = 0.0;
    next[i] = 1.0;
    started[i] = 0.0;
  }
  for (size_t k = 0; k < machine_of_.size(); ++k) {
    const size_t m = machine_of_[k];
    assign[m] = static_cast<double>(assign_[k]);
    next[m] = next_[k];
    started[m] = started_[k];
  }
  return 4 * n;
}

size_t SmoothRoundRobinDispatcher::restore_state(
    std::span<const double> state) {
  const size_t n = allocation_.size();
  if (state.size() < 4 * n) {
    return 0;
  }
  // Validate before mutating anything: a failed restore must leave the
  // dispatcher unchanged. Counts must be exact non-negative integers
  // below 2^53 (they round-trip through doubles losslessly there);
  // `next` must be finite; `started` must be a 0/1 flag.
  const double* assign = state.data() + n;
  const double* next = assign + n;
  const double* started = next + n;
  for (size_t i = 0; i < n; ++i) {
    const double a = assign[i];
    if (!(a >= 0.0 && a <= 0x1p53) || a != std::floor(a) ||
        !std::isfinite(next[i]) ||
        !(started[i] == 0.0 || started[i] == 1.0)) {
      return 0;
    }
  }
  allocation_.assign_exact(state.first(n));
  rebuild_dense();
  for (size_t k = 0; k < machine_of_.size(); ++k) {
    const size_t m = machine_of_[k];
    assign_[k] = static_cast<uint64_t>(assign[m]);
    next_[k] = next[m];
    started_[k] = started[m];
  }
  return 4 * n;
}

}  // namespace hs::dispatch
