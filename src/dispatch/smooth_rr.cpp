#include "dispatch/smooth_rr.h"

#include <cmath>

#include "util/check.h"

namespace hs::dispatch {

namespace {

/// Tolerance for `next` equality in the tie-break of step 2.c.3. The
/// paper compares exactly; `next` values are sums of 1/αᵢ increments and
/// integer decrements, so genuinely tied machines can differ by rounding
/// noise in floating point.
constexpr double kTieEps = 1e-9;

}  // namespace

SmoothRoundRobinDispatcher::SmoothRoundRobinDispatcher(
    alloc::Allocation allocation)
    : allocation_(std::move(allocation)) {
  HS_CHECK(allocation_.active_count() >= 1,
           "dispatcher needs at least one machine with positive fraction");
  reset();
}

void SmoothRoundRobinDispatcher::reset() {
  // Step 1: assign = 0; next = 1 (the guard value that delays machines
  // with small fractions until a full cycle position opens for them).
  assign_.assign(allocation_.size(), 0);
  next_.assign(allocation_.size(), 1.0);
}

size_t SmoothRoundRobinDispatcher::pick(rng::Xoshiro256& /*gen*/) {
  const size_t n = allocation_.size();
  // Steps 2.b–2.c: select the machine with minimal `next`; on ties the
  // one with the smallest normalized assignment count (assign+1)/αᵢ.
  //
  // Tie-break refinement: a machine that has never received a job (still
  // at the guard value) wins a `next` tie against machines that have.
  // In steady state started machines are selected at next == 0, strictly
  // below the guard, so this only matters at the boundary where a
  // small-fraction machine's staggered first slot opens; without the
  // preference, a large-fraction machine re-selected at next == 1 would
  // steal that slot and the cycle would not spread first jobs out evenly
  // as §3.2 describes (the paper's worked example — fractions
  // {1/8, 1/8, 1/4, 1/2} → c4 c3 c4 c2 c4 c3 c4 c1 — requires it).
  size_t select = n;  // sentinel: none yet
  double min_next = 0.0;
  double nor_assign = 0.0;
  bool select_unstarted = false;
  for (size_t i = 0; i < n; ++i) {
    if (allocation_[i] == 0.0) {
      continue;  // step 2.c.1: excluded machines never receive jobs
    }
    const double candidate_nor =
        static_cast<double>(assign_[i] + 1) / allocation_[i];
    const bool candidate_unstarted = assign_[i] == 0;
    if (select == n || next_[i] < min_next - kTieEps) {
      min_next = next_[i];
      nor_assign = candidate_nor;
      select = i;
      select_unstarted = candidate_unstarted;
    } else if (std::fabs(next_[i] - min_next) <= kTieEps) {
      const bool better =
          (candidate_unstarted && !select_unstarted) ||
          (candidate_unstarted == select_unstarted &&
           nor_assign > candidate_nor);
      if (better) {
        nor_assign = candidate_nor;
        select = i;
        select_unstarted = candidate_unstarted;
      }
    }
  }
  HS_CHECK(select < n, "no selectable machine");

  // Step 2.d: a machine selected for the first time starts its regular
  // cadence from 0 rather than from the guard value.
  if (assign_[select] == 0) {
    next_[select] = 0.0;
  }
  // Steps 2.e–2.f: it expects its next job after 1/α_select arrivals.
  next_[select] += 1.0 / allocation_[select];
  assign_[select] += 1;
  // Step 2.h: one system arrival has been consumed — count down every
  // machine that has started receiving jobs.
  for (size_t i = 0; i < n; ++i) {
    if (assign_[i] != 0) {
      next_[i] -= 1.0;
    }
  }
  return select;
}

uint64_t SmoothRoundRobinDispatcher::assigned(size_t machine) const {
  HS_CHECK(machine < assign_.size(), "machine index out of range: " << machine);
  return assign_[machine];
}

double SmoothRoundRobinDispatcher::next_value(size_t machine) const {
  HS_CHECK(machine < next_.size(), "machine index out of range: " << machine);
  return next_[machine];
}

}  // namespace hs::dispatch
