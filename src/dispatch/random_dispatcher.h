// Random based job dispatching (§3.1).
//
// Each arriving job is sent to machine i with probability αᵢ. Simple,
// stateless, but the realized substreams inherit (and add to) the
// burstiness of the arrival process — the weakness that Algorithm 2
// fixes.
#pragma once

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"
#include "rng/distributions.h"

namespace hs::dispatch {

class RandomDispatcher final : public Dispatcher {
 public:
  explicit RandomDispatcher(alloc::Allocation allocation);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] size_t machine_count() const override {
    return allocation_.size();
  }

 private:
  alloc::Allocation allocation_;
  rng::DiscreteChoice choice_;
};

}  // namespace hs::dispatch
