// Random based job dispatching (§3.1).
//
// Each arriving job is sent to machine i with probability αᵢ. Simple,
// stateless, but the realized substreams inherit (and add to) the
// burstiness of the arrival process — the weakness that Algorithm 2
// fixes.
//
// Two samplers are available. The default CDF binary search
// (rng::DiscreteChoice, O(log n) per pick) is kept as the default so
// existing golden determinism pins stay bit-identical. The opt-in alias
// table (rng::AliasTable, O(1) per pick) keeps per-job dispatch cost
// flat at n = 10⁶ machines and carries its own golden pin; both rebuild
// in place, so rebuild_fractions() is allocation-free either way.
//
// Threading: pick() is logically const — both samplers' sample() are
// const and the only mutation is the caller's RNG advancing — but the
// class still follows the interface's caller-serialized contract
// (dispatch/dispatcher.h): concurrent picks sharing one RNG would race
// on the generator state, and rebuild_fractions() mutates the samplers.
#pragma once

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"

namespace hs::dispatch {

/// Which weighted sampler backs RandomDispatcher::pick.
enum class SamplerKind {
  kCdf,    // DiscreteChoice: O(log n) pick, default (golden-pinned)
  kAlias,  // AliasTable: O(1) pick, for large n
};

class RandomDispatcher final : public Dispatcher {
 public:
  explicit RandomDispatcher(alloc::Allocation allocation,
                            SamplerKind sampler = SamplerKind::kCdf);

  // Inline so a direct call on the concrete type (the common case in
  // the simulation loop and benches) collapses to one sampler lookup.
  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override {
    return sampler_ == SamplerKind::kAlias ? alias_.sample(gen)
                                           : choice_.sample(gen);
  }
  void reset() override {}
  [[nodiscard]] std::string name() const override {
    return sampler_ == SamplerKind::kAlias ? "random-alias" : "random";
  }
  [[nodiscard]] size_t machine_count() const override {
    return allocation_.size();
  }
  bool rebuild_fractions(std::span<const double> fractions) override;

  /// Checkpoint: the fractions are the whole routing state (the samplers
  /// are pure functions of them). n values.
  size_t save_state(std::vector<double>& out) const override;
  size_t restore_state(std::span<const double> state) override;

  [[nodiscard]] SamplerKind sampler() const { return sampler_; }

 private:
  alloc::Allocation allocation_;
  SamplerKind sampler_;
  rng::DiscreteChoice choice_;  // used when sampler_ == kCdf
  rng::AliasTable alias_;       // used when sampler_ == kAlias
};

}  // namespace hs::dispatch
