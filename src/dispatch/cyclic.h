// Classic (unweighted) cyclic round-robin dispatching.
//
// Ignores the allocation fractions and cycles through the machines that
// have a positive fraction. Equivalent to Algorithm 2 when all fractions
// are equal; included as the traditional baseline the paper generalizes.
//
// Threading: caller-serialized (dispatch/dispatcher.h) — pick()
// advances the cycle position.
#pragma once

#include <vector>

#include "alloc/allocation.h"
#include "dispatch/dispatcher.h"

namespace hs::dispatch {

class CyclicDispatcher final : public Dispatcher {
 public:
  explicit CyclicDispatcher(alloc::Allocation allocation);

  [[nodiscard]] size_t pick(rng::Xoshiro256& gen) override;
  void reset() override { position_ = 0; }
  [[nodiscard]] std::string name() const override { return "cyclic"; }
  [[nodiscard]] size_t machine_count() const override { return n_; }

 private:
  size_t n_;
  std::vector<size_t> active_;  // machines with positive fraction
  size_t position_ = 0;
};

}  // namespace hs::dispatch
