#include "dispatch/fault_aware.h"

#include <algorithm>

#include "util/check.h"

namespace hs::dispatch {

FaultAwareDispatcher::FaultAwareDispatcher(std::unique_ptr<Dispatcher> inner)
    : FaultAwareDispatcher(std::move(inner), Rebuilder{}) {}

FaultAwareDispatcher::FaultAwareDispatcher(std::unique_ptr<Dispatcher> inner,
                                           Rebuilder rebuilder,
                                           Reweighter reweighter)
    : inner_(std::move(inner)),
      rebuilder_(std::move(rebuilder)),
      reweighter_(std::move(reweighter)) {
  HS_CHECK(inner_ != nullptr, "fault-aware decorator needs a dispatcher");
  available_.assign(inner_->machine_count(), true);
  outer_mask_.assign(inner_->machine_count(), true);
  native_mask_ = inner_->set_available_mask(available_);
  HS_CHECK(native_mask_ || rebuilder_,
           "inner dispatcher \""
               << inner_->name()
               << "\" does not support masking and no rebuilder was given");
}

size_t FaultAwareDispatcher::pick(rng::Xoshiro256& gen) {
  return inner_->pick(gen);
}

size_t FaultAwareDispatcher::pick_sized(rng::Xoshiro256& gen, double size) {
  return inner_->pick_sized(gen, size);
}

size_t FaultAwareDispatcher::pick_hedge(rng::Xoshiro256& gen, double size,
                                        size_t exclude) {
  return inner_->pick_hedge(gen, size, exclude);
}

bool FaultAwareDispatcher::uses_size() const { return inner_->uses_size(); }

void FaultAwareDispatcher::reset() {
  available_.assign(available_.size(), true);
  outer_mask_.assign(outer_mask_.size(), true);
  rebuilds_ = 0;
  if (native_mask_) {
    inner_->reset();
    inner_->set_available_mask(available_);
    return;
  }
  if (reweighter_) {
    // In-place restore: full-availability fractions into the existing
    // inner dispatcher (rebuild_fractions resets its routing state).
    reweighter_(available_, fractions_scratch_);
    inner_->reset();
    if (inner_->rebuild_fractions(fractions_scratch_)) {
      return;
    }
  }
  // A fresh rebuild restores the full-availability routing state (the
  // rebuilder returns dispatchers in their initial state).
  inner_ = rebuilder_(available_);
  HS_CHECK(inner_ != nullptr, "rebuilder returned null dispatcher");
}

std::string FaultAwareDispatcher::name() const {
  return "fault-aware(" + inner_->name() + ")";
}

size_t FaultAwareDispatcher::machine_count() const {
  return available_.size();
}

void FaultAwareDispatcher::on_arrival(double now) { inner_->on_arrival(now); }

void FaultAwareDispatcher::on_departure_report(size_t machine) {
  inner_->on_departure_report(machine);
}

void FaultAwareDispatcher::on_departure_report(size_t machine, double now) {
  inner_->on_departure_report(machine, now);
}

void FaultAwareDispatcher::on_departure_report(size_t machine, double now,
                                               double work) {
  inner_->on_departure_report(machine, now, work);
}

void FaultAwareDispatcher::on_load_report(size_t machine,
                                          uint64_t queue_length) {
  inner_->on_load_report(machine, queue_length);
}

bool FaultAwareDispatcher::uses_feedback() const {
  return inner_->uses_feedback();
}

void FaultAwareDispatcher::on_dispatch_result(size_t machine, bool accepted,
                                              double now) {
  inner_->on_dispatch_result(machine, accepted, now);
}

size_t FaultAwareDispatcher::down_count() const {
  return static_cast<size_t>(
      std::count(available_.begin(), available_.end(), false));
}

void FaultAwareDispatcher::on_machine_state_report(size_t machine, bool up) {
  HS_CHECK(machine < available_.size(),
           "machine index out of range: " << machine);
  if (available_[machine] == up) {
    return;  // duplicate report — already in the believed state
  }
  available_[machine] = up;
  apply_mask();
}

bool FaultAwareDispatcher::set_available_mask(
    const std::vector<bool>& available) {
  HS_CHECK(available.size() == available_.size(),
           "availability mask size " << available.size()
                                     << " != machine count "
                                     << available_.size());
  outer_mask_ = available;
  apply_mask();
  return true;
}

void FaultAwareDispatcher::apply_mask() {
  effective_.assign(available_.size(), false);
  size_t routable = 0;
  for (size_t i = 0; i < available_.size(); ++i) {
    effective_[i] = available_[i] && outer_mask_[i];
    routable += effective_[i] ? 1 : 0;
  }
  if (native_mask_) {
    inner_->set_available_mask(effective_);
    return;
  }
  if (routable == 0) {
    // Every machine is believed down or masked from above: nothing
    // useful to rebuild over. Keep the previous routing; dispatched jobs
    // are lost and retried by the fault layer until a recovery report
    // arrives.
    return;
  }
  if (reweighter_) {
    // Allocation-free path: survivor fractions into the scratch buffer,
    // then re-weight the live inner dispatcher in place.
    reweighter_(effective_, fractions_scratch_);
    if (inner_->rebuild_fractions(fractions_scratch_)) {
      ++rebuilds_;
      return;
    }
  }
  inner_ = rebuilder_(effective_);
  HS_CHECK(inner_ != nullptr, "rebuilder returned null dispatcher");
  ++rebuilds_;
}

size_t FaultAwareDispatcher::save_state(std::vector<double>& out) const {
  const size_t n = available_.size();
  out.reserve(out.size() + n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(available_[i] ? 1.0 : 0.0);
  }
  return n + inner_->save_state(out);
}

size_t FaultAwareDispatcher::restore_state(std::span<const double> state) {
  const size_t n = available_.size();
  if (state.size() < n) {
    return 0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!(state[i] == 0.0 || state[i] == 1.0)) {
      return 0;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    available_[i] = state[i] == 1.0;
  }
  // Re-derive the effective mask (rebuild mode may swap the inner
  // dispatcher here) *before* restoring inner state, so the restored
  // state lands in the dispatcher that will serve the next pick.
  apply_mask();
  return n + inner_->restore_state(state.subspan(n));
}

}  // namespace hs::dispatch
