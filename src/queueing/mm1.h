// Closed-form single-server queueing results.
//
// These anchor both the paper's analytical model (§2.3, Eqs. 1–2: a PS
// server's conditional mean response time is t/(1−ρ)) and the simulator's
// validation tests (M/M/1 and M/G/1 formulas that the simulated servers
// must reproduce).
#pragma once

namespace hs::queueing::mm1 {

/// Server utilization ρ = λ/μ. Requires μ > 0.
[[nodiscard]] double utilization(double lambda, double mu);

/// M/M/1 (or M/G/1-PS, by insensitivity) mean response time 1/(μ−λ).
/// Requires λ < μ (stability).
[[nodiscard]] double ps_mean_response_time(double lambda, double mu);

/// PS mean response ratio for a speed-1 server: 1/(1−ρ) (Eq. 2).
[[nodiscard]] double ps_mean_response_ratio(double lambda, double mu);

/// Mean number of jobs in an M/M/1 system: ρ/(1−ρ).
[[nodiscard]] double mean_number_in_system(double lambda, double mu);

/// M/M/1-FCFS mean waiting time (excluding service): ρ/(μ−λ).
[[nodiscard]] double mm1_fcfs_mean_waiting(double lambda, double mu);

/// M/G/1-FCFS mean waiting time by Pollaczek–Khinchine:
/// W = λ·E[S²] / (2(1−ρ)) with ρ = λ·E[S]. Requires ρ < 1.
[[nodiscard]] double mg1_fcfs_mean_waiting(double lambda, double mean_service,
                                           double second_moment_service);

/// Conditional PS response time for a job of size t on a server with
/// utilization ρ: t/(1−ρ) (Eq. 1 of the paper, restated per-job).
[[nodiscard]] double ps_conditional_response(double job_size, double rho);

}  // namespace hs::queueing::mm1
