#include "queueing/ps_server.h"

#include <cmath>

#include "util/check.h"

namespace hs::queueing {

PsServer::PsServer(sim::Simulator& simulator, double speed, int machine_index)
    : Server(simulator, speed, machine_index) {}

void PsServer::advance_clock() {
  const double now = simulator_.now();
  const double dt = now - last_update_;
  if (dt > 0.0 && !active_.empty()) {
    virtual_work_ += speed_ * dt / static_cast<double>(active_.size());
    busy_accum_ += dt;
  }
  last_update_ = now;
}

double PsServer::busy_time() const {
  double busy = busy_accum_;
  if (!active_.empty()) {
    busy += simulator_.now() - last_update_;
  }
  return busy;
}

bool PsServer::arrive(const Job& job) {
  HS_CHECK(job.size > 0.0, "job size must be positive, got " << job.size);
  if (at_capacity()) [[unlikely]] {
    return false;
  }
  advance_clock();
  // Under PS every resident job is in service, so residency == service.
  trace(obs::TraceEventKind::kServiceStart, job.id,
        static_cast<uint16_t>(job.attempt), job.size);
  active_.push(ActiveJob{virtual_work_ + job.size, job});
  reschedule_departure();
  return true;
}

void PsServer::set_speed(double new_speed) {
  HS_CHECK(new_speed >= 0.0, "speed must be >= 0, got " << new_speed);
  advance_clock();
  // PS preempts and resumes whole machines, not single jobs: a stop
  // (speed -> 0) freezes every resident job, recovery restarts them.
  if (!active_.empty()) {
    if (speed_ > 0.0 && new_speed <= 0.0) {
      trace(obs::TraceEventKind::kPreempt, obs::TraceSink::kNoJob);
    } else if (speed_ <= 0.0 && new_speed > 0.0) {
      trace(obs::TraceEventKind::kResume, obs::TraceSink::kNoJob);
    }
  }
  speed_ = new_speed;
  reschedule_departure();
}

std::vector<Job> PsServer::evict_all() {
  advance_clock();
  simulator_.cancel(pending_departure_);
  pending_departure_ = sim::EventHandle{};
  std::vector<Job> evicted;
  evicted.reserve(active_.size());
  while (!active_.empty()) {
    evicted.push_back(active_.top().job);
    active_.pop();
  }
  return evicted;
}

bool PsServer::evict(uint64_t job_id) {
  advance_clock();
  std::vector<ActiveJob> keep;
  keep.reserve(active_.size());
  bool found = false;
  while (!active_.empty()) {
    if (!found && active_.top().job.id == job_id) {
      found = true;
    } else {
      keep.push_back(active_.top());
    }
    active_.pop();
  }
  for (const ActiveJob& a : keep) {
    active_.push(a);
  }
  if (found) {
    reschedule_departure();
  }
  return found;
}

void PsServer::reschedule_departure() {
  if (active_.empty() || speed_ <= 0.0) {
    // A stopped machine holds its jobs until speed recovers.
    simulator_.cancel(pending_departure_);
    pending_departure_ = sim::EventHandle{};
    return;
  }
  const double min_tag = active_.top().finish_tag;
  // Remaining virtual work for the leader divided by its share rate.
  const double remaining = min_tag - virtual_work_;
  const double dt = std::fmax(remaining, 0.0) *
                    static_cast<double>(active_.size()) / speed_;
  if (!simulator_.reschedule_in(pending_departure_, dt)) {
    pending_departure_ = simulator_.schedule_in(dt, *this, 0);
  }
}

void PsServer::on_event(uint32_t /*kind*/, const sim::EventArgs& /*args*/) {
  on_departure_event();
}

void PsServer::on_departure_event() {
  pending_departure_ = sim::EventHandle{};
  advance_clock();
  HS_CHECK(!active_.empty(), "departure event on idle PS server");
  // The scheduled leader departs now. Absorb any rounding drift so the
  // virtual clock never runs behind the departing job's tag.
  const ActiveJob leader = active_.top();
  active_.pop();
  virtual_work_ = std::fmax(virtual_work_, leader.finish_tag);
  emit_completion(leader.job, simulator_.now());
  // Jobs whose tags coincide (equal finish tags happen with deterministic
  // sizes) depart at the same instant.
  while (!active_.empty() &&
         active_.top().finish_tag <= virtual_work_ * (1.0 + 1e-15)) {
    const ActiveJob next = active_.top();
    active_.pop();
    virtual_work_ = std::fmax(virtual_work_, next.finish_tag);
    emit_completion(next.job, simulator_.now());
  }
  reschedule_departure();
}

}  // namespace hs::queueing
