// First-come-first-served server.
//
// Not used by the paper's model (which is PS), but essential substrate:
// M/M/1-FCFS and M/G/1-FCFS have classical closed forms, so this server
// anchors the simulator's correctness tests, and it serves as an ablation
// discipline in the benches.
#pragma once

#include <deque>

#include "queueing/server.h"

namespace hs::queueing {

class FcfsServer final : public Server, private sim::EventTarget {
 public:
  FcfsServer(sim::Simulator& simulator, double speed, int machine_index);

  bool arrive(const Job& job) override;
  [[nodiscard]] size_t queue_length() const override;
  [[nodiscard]] double busy_time() const override;

  /// Piecewise-constant speed changes (speed 0 = stopped; the job in
  /// service is held with its attained service preserved).
  void set_speed(double new_speed) override;

  /// Crash support: drains the job in service (first) and the waiting
  /// queue, cancelling the pending completion.
  std::vector<Job> evict_all() override;

  /// Hedge-cancellation support: removes one job by id — from service
  /// (the next waiter starts immediately) or from the waiting queue.
  bool evict(uint64_t job_id) override;

 private:
  void start_service();
  /// (Re)schedule the completion of the job in service. Reschedules the
  /// pending event in place when one exists (speed changes mid-service).
  void schedule_completion();
  void on_service_complete();
  /// Typed-event entry point (single kind: the pending completion).
  void on_event(uint32_t kind, const sim::EventArgs& args) override;

  std::deque<Job> waiting_;
  bool in_service_ = false;
  Job current_;
  double remaining_work_ = 0.0;   // base-speed seconds left on current_
  double service_since_ = 0.0;    // when the current rate segment began
  sim::EventHandle completion_event_;
  double busy_accum_ = 0.0;
  double busy_since_ = 0.0;
};

}  // namespace hs::queueing
