// The unit of work flowing through the simulated system.
#pragma once

#include <cstdint>

namespace hs::queueing {

/// A job, as defined in §2.3 of the paper: `size` is the completion time
/// of the job on an idle machine of relative speed 1 (i.e. seconds of
/// base-line work). A machine with speed s processes it in size/s seconds
/// when alone.
struct Job {
  uint64_t id = 0;
  double arrival_time = 0.0;  // arrival at the central scheduler
  double size = 0.0;          // service demand in base-speed seconds
  /// 0-based index of the current dispatch attempt. 0 for every job on
  /// its first dispatch; incremented by the fault-injection retry path
  /// each time a crash loses the job and the scheduler re-dispatches it.
  /// `arrival_time` always refers to the original arrival, so response
  /// times of retried jobs include all detection and backoff delays.
  uint32_t attempt = 0;
};

/// Completion record emitted by a server when a job departs.
struct Completion {
  Job job;
  double departure_time = 0.0;
  int machine = -1;  // index of the machine that ran the job

  /// Response time: total time in system (§2.3 "mean response time").
  [[nodiscard]] double response_time() const {
    return departure_time - job.arrival_time;
  }
  /// Response ratio: response time divided by job size (§2.3).
  [[nodiscard]] double response_ratio() const {
    return response_time() / job.size;
  }
};

}  // namespace hs::queueing
