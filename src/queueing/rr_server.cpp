#include "queueing/rr_server.h"

#include <algorithm>

#include "util/check.h"

namespace hs::queueing {

RrServer::RrServer(sim::Simulator& simulator, double speed, int machine_index,
                   double quantum)
    : Server(simulator, speed, machine_index), quantum_(quantum) {
  HS_CHECK(quantum > 0.0, "quantum must be positive, got " << quantum);
}

size_t RrServer::queue_length() const { return ready_.size(); }

double RrServer::busy_time() const {
  double busy = busy_accum_;
  if (running_) {
    busy += simulator_.now() - busy_since_;
  }
  return busy;
}

bool RrServer::arrive(const Job& job) {
  HS_CHECK(job.size > 0.0, "job size must be positive, got " << job.size);
  if (at_capacity()) [[unlikely]] {
    return false;
  }
  ready_.push_back(PendingJob{job, job.size});
  if (!running_) {
    busy_since_ = simulator_.now();
    running_ = true;
    trace(obs::TraceEventKind::kServiceStart, job.id,
          static_cast<uint16_t>(job.attempt), job.size);
    start_slice();
  }
  return true;
}

void RrServer::start_slice() {
  HS_CHECK(!ready_.empty(), "slice with empty ready queue");
  slice_start_ = simulator_.now();
  if (speed_ <= 0.0) {
    // Stopped: hold the head job until the speed recovers.
    slice_work_ = 0.0;
    simulator_.cancel(slice_event_);
    slice_event_ = sim::EventHandle{};
    return;
  }
  slice_work_ = std::min(ready_.front().remaining, quantum_ * speed_);
  const double dt = slice_work_ / speed_;
  if (!simulator_.reschedule_in(slice_event_, dt)) {
    slice_event_ = simulator_.schedule_in(dt, *this, 0);
  }
}

void RrServer::on_event(uint32_t /*kind*/, const sim::EventArgs& /*args*/) {
  on_slice_end();
}

void RrServer::set_speed(double new_speed) {
  HS_CHECK(new_speed >= 0.0, "speed must be >= 0, got " << new_speed);
  if (running_ && !ready_.empty()) {
    // Bank the work done in the interrupted slice, then restart it at
    // the new rate (the head keeps the CPU: a speed change is not a
    // scheduling event).
    const double done = (simulator_.now() - slice_start_) * speed_;
    PendingJob& head = ready_.front();
    head.remaining = std::max(head.remaining - done, 0.0);
    if (speed_ > 0.0 && new_speed <= 0.0) {
      trace(obs::TraceEventKind::kPreempt, head.job.id,
            static_cast<uint16_t>(head.job.attempt));
    } else if (speed_ <= 0.0 && new_speed > 0.0) {
      trace(obs::TraceEventKind::kResume, head.job.id,
            static_cast<uint16_t>(head.job.attempt));
    }
    speed_ = new_speed;
    start_slice();  // reschedules the pending slice-end event in place
  } else {
    speed_ = new_speed;
  }
}

std::vector<Job> RrServer::evict_all() {
  std::vector<Job> evicted;
  evicted.reserve(ready_.size());
  if (running_) {
    simulator_.cancel(slice_event_);
    slice_event_ = sim::EventHandle{};
    running_ = false;
    busy_accum_ += simulator_.now() - busy_since_;
  }
  for (const PendingJob& pending : ready_) {
    evicted.push_back(pending.job);
  }
  ready_.clear();
  return evicted;
}

bool RrServer::evict(uint64_t job_id) {
  if (ready_.empty()) {
    return false;
  }
  if (running_ && ready_.front().job.id == job_id) {
    simulator_.cancel(slice_event_);
    slice_event_ = sim::EventHandle{};
    ready_.pop_front();
    if (!ready_.empty()) {
      // The next head takes the CPU; the busy period continues.
      start_slice();
    } else {
      running_ = false;
      busy_accum_ += simulator_.now() - busy_since_;
    }
    return true;
  }
  const auto it = std::find_if(
      ready_.begin(), ready_.end(),
      [job_id](const PendingJob& p) { return p.job.id == job_id; });
  if (it == ready_.end()) {
    return false;
  }
  ready_.erase(it);
  return true;
}

void RrServer::on_slice_end() {
  slice_event_ = sim::EventHandle{};
  HS_CHECK(!ready_.empty(), "slice end with empty ready queue");
  PendingJob head = ready_.front();
  ready_.pop_front();
  // The slice ran to completion at a constant speed (set_speed cancels
  // and restarts the slice), so exactly slice_work_ was delivered. Do
  // NOT derive the work from elapsed time: a tiny final slice at a
  // large simulation timestamp can underflow the clock's resolution
  // (now + duration == now), which would read as zero work done and
  // respawn the same slice forever.
  head.remaining = std::max(head.remaining - slice_work_, 0.0);
  if (head.remaining <= 1e-12) {
    emit_completion(head.job, simulator_.now());
  } else {
    trace(obs::TraceEventKind::kPreempt, head.job.id,
          static_cast<uint16_t>(head.job.attempt), head.remaining);
    ready_.push_back(head);
  }
  if (!ready_.empty()) {
    // The next head takes the CPU: its very first slice is a service
    // start, every later one a resume after preemption.
    const PendingJob& next = ready_.front();
    trace(next.remaining == next.job.size
              ? obs::TraceEventKind::kServiceStart
              : obs::TraceEventKind::kResume,
          next.job.id, static_cast<uint16_t>(next.job.attempt),
          next.remaining);
    start_slice();
  } else {
    running_ = false;
    busy_accum_ += simulator_.now() - busy_since_;
  }
}

}  // namespace hs::queueing
