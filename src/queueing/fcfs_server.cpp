#include "queueing/fcfs_server.h"

#include <algorithm>

#include "util/check.h"

namespace hs::queueing {

FcfsServer::FcfsServer(sim::Simulator& simulator, double speed,
                       int machine_index)
    : Server(simulator, speed, machine_index) {}

size_t FcfsServer::queue_length() const {
  return waiting_.size() + (in_service_ ? 1 : 0);
}

double FcfsServer::busy_time() const {
  double busy = busy_accum_;
  if (in_service_) {
    busy += simulator_.now() - busy_since_;
  }
  return busy;
}

bool FcfsServer::arrive(const Job& job) {
  HS_CHECK(job.size > 0.0, "job size must be positive, got " << job.size);
  if (at_capacity()) [[unlikely]] {
    return false;
  }
  waiting_.push_back(job);
  if (!in_service_) {
    busy_since_ = simulator_.now();
    start_service();
  }
  return true;
}

void FcfsServer::start_service() {
  HS_CHECK(!waiting_.empty(), "start_service with empty queue");
  current_ = waiting_.front();
  waiting_.pop_front();
  in_service_ = true;
  remaining_work_ = current_.size;
  trace(obs::TraceEventKind::kServiceStart, current_.id,
        static_cast<uint16_t>(current_.attempt), current_.size);
  schedule_completion();
}

void FcfsServer::schedule_completion() {
  service_since_ = simulator_.now();
  if (speed_ <= 0.0) {
    // Stopped: the job is held until the speed recovers.
    simulator_.cancel(completion_event_);
    completion_event_ = sim::EventHandle{};
    return;
  }
  const double dt = remaining_work_ / speed_;
  if (!simulator_.reschedule_in(completion_event_, dt)) {
    completion_event_ = simulator_.schedule_in(dt, *this, 0);
  }
}

void FcfsServer::on_event(uint32_t /*kind*/, const sim::EventArgs& /*args*/) {
  on_service_complete();
}

void FcfsServer::set_speed(double new_speed) {
  HS_CHECK(new_speed >= 0.0, "speed must be >= 0, got " << new_speed);
  if (in_service_) {
    // Bank the work completed at the old rate, then restart the
    // completion timer at the new one.
    remaining_work_ -= (simulator_.now() - service_since_) * speed_;
    remaining_work_ = std::max(remaining_work_, 0.0);
    if (speed_ > 0.0 && new_speed <= 0.0) {
      trace(obs::TraceEventKind::kPreempt, current_.id,
            static_cast<uint16_t>(current_.attempt));
    } else if (speed_ <= 0.0 && new_speed > 0.0) {
      trace(obs::TraceEventKind::kResume, current_.id,
            static_cast<uint16_t>(current_.attempt));
    }
    speed_ = new_speed;
    schedule_completion();
  } else {
    speed_ = new_speed;
  }
}

std::vector<Job> FcfsServer::evict_all() {
  std::vector<Job> evicted;
  evicted.reserve(queue_length());
  if (in_service_) {
    simulator_.cancel(completion_event_);
    completion_event_ = sim::EventHandle{};
    in_service_ = false;
    busy_accum_ += simulator_.now() - busy_since_;
    evicted.push_back(current_);
  }
  evicted.insert(evicted.end(), waiting_.begin(), waiting_.end());
  waiting_.clear();
  return evicted;
}

bool FcfsServer::evict(uint64_t job_id) {
  if (in_service_ && current_.id == job_id) {
    simulator_.cancel(completion_event_);
    completion_event_ = sim::EventHandle{};
    in_service_ = false;
    if (!waiting_.empty()) {
      // The next waiter starts immediately; the busy period continues.
      start_service();
    } else {
      busy_accum_ += simulator_.now() - busy_since_;
    }
    return true;
  }
  const auto it = std::find_if(
      waiting_.begin(), waiting_.end(),
      [job_id](const Job& job) { return job.id == job_id; });
  if (it == waiting_.end()) {
    return false;
  }
  waiting_.erase(it);
  return true;
}

void FcfsServer::on_service_complete() {
  completion_event_ = sim::EventHandle{};
  in_service_ = false;
  emit_completion(current_, simulator_.now());
  if (!waiting_.empty()) {
    start_service();
  } else {
    busy_accum_ += simulator_.now() - busy_since_;
  }
}

}  // namespace hs::queueing
