// Exact processor-sharing server.
//
// The paper models each computer as an M/M/1 queue with the
// processor-sharing (PS) discipline (§2.3) and simulates computers that
// "apply preemptive round-robin processor scheduling" (§4.1) — whose
// quantum→0 limit is PS. This implementation is event-driven and exact:
// it uses the classic virtual-work formulation. Define V(t) with
// dV/dt = s/n(t) while n(t) > 0 jobs are present on a machine of speed s.
// A job of size x arriving at time t departs when V reaches V(t) + x.
// Between arrivals/departures V is linear, so each job costs O(log n)
// heap work instead of O(n) remaining-time updates.
#pragma once

#include <queue>
#include <vector>

#include "queueing/server.h"

namespace hs::queueing {

class PsServer final : public Server, private sim::EventTarget {
 public:
  PsServer(sim::Simulator& simulator, double speed, int machine_index);

  bool arrive(const Job& job) override;
  [[nodiscard]] size_t queue_length() const override {
    return active_.size();
  }
  [[nodiscard]] double busy_time() const override;

  /// Piecewise-constant speed changes, including full stops (speed 0):
  /// attained service is preserved and in-flight jobs continue at the
  /// new rate. Time with jobs present counts as busy even at speed 0
  /// (the machine is occupied, just not progressing).
  void set_speed(double new_speed) override;

  /// Crash support: drains every active job (ordered by finish tag, so
  /// deterministic) and cancels the pending departure.
  std::vector<Job> evict_all() override;

  /// Hedge-cancellation support: removes one job by id (rebuilding the
  /// tag heap — eviction is rare, arrivals are not) and reschedules the
  /// departure for the new leader.
  bool evict(uint64_t job_id) override;

 private:
  struct ActiveJob {
    double finish_tag;  // virtual work at which this job completes
    Job job;
    friend bool operator>(const ActiveJob& a, const ActiveJob& b) {
      if (a.finish_tag != b.finish_tag) {
        return a.finish_tag > b.finish_tag;
      }
      return a.job.id > b.job.id;
    }
  };

  /// Bring virtual work and busy time up to the current simulation time.
  void advance_clock();
  /// (Re)schedule the departure event for the job with the smallest tag.
  /// Uses an in-place reschedule of the pending event when one exists —
  /// this runs on every arrival, so it must not churn the event heap.
  void reschedule_departure();
  void on_departure_event();
  /// Typed-event entry point (single kind: the next departure).
  void on_event(uint32_t kind, const sim::EventArgs& args) override;

  std::priority_queue<ActiveJob, std::vector<ActiveJob>, std::greater<>>
      active_;
  double virtual_work_ = 0.0;  // V(t)
  double last_update_ = 0.0;
  double busy_accum_ = 0.0;
  sim::EventHandle pending_departure_;
};

}  // namespace hs::queueing
