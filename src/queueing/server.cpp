#include "queueing/server.h"

#include "util/check.h"

namespace hs::queueing {

Server::Server(sim::Simulator& simulator, double speed, int machine_index)
    : simulator_(simulator), speed_(speed), machine_index_(machine_index) {
  HS_CHECK(speed > 0.0, "machine speed must be positive, got " << speed);
}

void Server::set_speed(double /*new_speed*/) {
  HS_CHECK(false, "set_speed is not supported by this service discipline");
}

std::vector<Job> Server::evict_all() {
  HS_CHECK(false, "evict_all is not supported by this service discipline");
  return {};
}

bool Server::evict(uint64_t /*job_id*/) {
  HS_CHECK(false, "evict is not supported by this service discipline");
  return false;
}

double Server::utilization() const {
  const double now = simulator_.now();
  if (now <= 0.0) {
    return 0.0;
  }
  return busy_time() / now;
}

void Server::trace_record(obs::TraceEventKind kind, uint64_t job,
                          uint16_t attempt, double aux) {
  trace_->record(simulator_.now(), kind, job, machine_index_, attempt, aux);
}

void Server::emit_completion(const Job& job, double departure_time) {
  ++completed_jobs_;
  work_done_ += job.size;
  if (completion_callback_) {
    Completion completion;
    completion.job = job;
    completion.departure_time = departure_time;
    completion.machine = machine_index_;
    completion_callback_(completion);
  }
}

}  // namespace hs::queueing
