// Abstract single-machine server model.
//
// A Server owns the jobs currently resident on one simulated computer and
// decides how CPU time is shared among them. Concrete disciplines:
//   * PsServer   — exact processor sharing (the paper's model of
//                  preemptive round-robin scheduling, §4.1),
//   * FcfsServer — first-come-first-served (for M/M/1 validation),
//   * RrServer   — preemptive round-robin with a finite quantum
//                  (ablation of the PS idealization).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.h"
#include "queueing/job.h"
#include "sim/simulator.h"

namespace hs::queueing {

class Server {
 public:
  using CompletionCallback = std::function<void(const Completion&)>;

  /// `speed` is the machine's relative processing speed s_i > 0 (it may
  /// later drop to 0 through set_speed on disciplines that support it).
  /// `machine_index` tags completions for per-machine statistics.
  Server(sim::Simulator& simulator, double speed, int machine_index);
  virtual ~Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Hand a job to this machine at the current simulation time. Returns
  /// true if the job was accepted; false if the machine's bounded queue
  /// is full (see set_capacity) — a rejected job is untouched and the
  /// caller decides its fate (retry elsewhere, drop, ...). With the
  /// default unbounded queue this never returns false, so fault-layer-
  /// and earlier-era call sites may ignore the result (deliberately not
  /// [[nodiscard]]).
  virtual bool arrive(const Job& job) = 0;

  /// Bound the resident-job count (running + queued): an arrive() that
  /// would make queue_length() exceed `capacity` is rejected. 0 restores
  /// the default unbounded queue. Jobs already resident are never
  /// evicted by lowering the capacity — the bound applies to admissions.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] size_t capacity() const { return capacity_; }

  /// Change the machine's speed at the current simulation time (e.g.
  /// degradation, thermal throttling, or failure as speed → 0 with
  /// recovery later). Work already done is kept; in-flight jobs simply
  /// progress at the new rate, and speed 0 stops the machine, holding
  /// its jobs until the speed rises again. All built-in disciplines
  /// support this; the default implementation throws CheckError so
  /// future disciplines fail loudly rather than silently ignore it.
  virtual void set_speed(double new_speed);

  /// Remove and return every job resident on the machine (in service and
  /// queued), in a deterministic order, without emitting completions.
  /// Attained service is discarded — a re-dispatched job starts from
  /// scratch. Used by the fault-injection layer to model a crash: the
  /// machine's jobs are lost and reported back to the scheduler. The
  /// default implementation throws CheckError so future disciplines fail
  /// loudly rather than silently ignore a crash.
  virtual std::vector<Job> evict_all();

  /// Remove one resident job by id without emitting a completion;
  /// attained service is discarded. Returns false (and changes nothing)
  /// when no resident job has that id. Used by hedged dispatch
  /// (dispatch/hedged.h) to cancel the losing copy once its sibling
  /// completes elsewhere. The default implementation throws CheckError
  /// so future disciplines fail loudly rather than leak duplicate work.
  virtual bool evict(uint64_t job_id);

  /// Number of jobs currently on the machine (running + queued). This is
  /// the "run queue length" load index of §2.2.
  [[nodiscard]] virtual size_t queue_length() const = 0;

  /// Called once per completed job, at its departure time.
  void set_completion_callback(CompletionCallback cb) {
    completion_callback_ = std::move(cb);
  }

  /// Attach a trace sink (null detaches). Disciplines record service
  /// start and preempt/resume through it; detached, each hook site costs
  /// exactly one branch on the null pointer (the obs/observer.h cost
  /// discipline, pinned by tests/test_event_alloc.cpp).
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  [[nodiscard]] double speed() const { return speed_; }
  [[nodiscard]] int machine_index() const { return machine_index_; }

  /// Seconds of base-speed work completed so far (for utilization stats).
  [[nodiscard]] double work_done() const { return work_done_; }
  /// Total busy time (at least one job present) so far, including the
  /// in-progress busy period up to now().
  [[nodiscard]] virtual double busy_time() const = 0;
  /// Fraction of time busy since t=0.
  [[nodiscard]] double utilization() const;
  [[nodiscard]] uint64_t completed_jobs() const { return completed_jobs_; }

 protected:
  void emit_completion(const Job& job, double departure_time);

  /// True when a bounded queue is configured and full — disciplines test
  /// this first in arrive(). One compare on the common unbounded path
  /// (capacity_ == 0 short-circuits before the virtual queue_length()).
  [[nodiscard]] bool at_capacity() const {
    return capacity_ != 0 && queue_length() >= capacity_;
  }

  /// Hook site helper: records at the current simulation time iff a
  /// sink is attached.
  void trace(obs::TraceEventKind kind, uint64_t job, uint16_t attempt = 0,
             double aux = 0.0) {
    // With tracing off this site must cost only the never-taken test
    // (the A/B budget in BENCH_sim.json): [[unlikely]] plus the cold
    // out-of-line recorder keep the stores out of the hot code layout
    // instead of inlining them into every discipline's service path.
    if (trace_ != nullptr) [[unlikely]] {
      trace_record(kind, job, attempt, aux);
    }
  }

  /// Out-of-line half of trace(); only ever called with a sink attached.
  [[gnu::cold]] [[gnu::noinline]] void trace_record(obs::TraceEventKind kind,
                                                    uint64_t job,
                                                    uint16_t attempt,
                                                    double aux);

  sim::Simulator& simulator_;
  double speed_;
  int machine_index_;
  size_t capacity_ = 0;  // resident-job bound; 0 = unbounded
  double work_done_ = 0.0;
  uint64_t completed_jobs_ = 0;
  obs::TraceSink* trace_ = nullptr;

 private:
  CompletionCallback completion_callback_;
};

}  // namespace hs::queueing
