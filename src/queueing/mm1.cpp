#include "queueing/mm1.h"

#include "util/check.h"

namespace hs::queueing::mm1 {

double utilization(double lambda, double mu) {
  HS_CHECK(mu > 0.0, "service rate must be positive, got " << mu);
  HS_CHECK(lambda >= 0.0, "arrival rate must be >= 0, got " << lambda);
  return lambda / mu;
}

double ps_mean_response_time(double lambda, double mu) {
  HS_CHECK(lambda < mu,
           "unstable queue: lambda=" << lambda << " >= mu=" << mu);
  return 1.0 / (mu - lambda);
}

double ps_mean_response_ratio(double lambda, double mu) {
  const double rho = utilization(lambda, mu);
  HS_CHECK(rho < 1.0, "unstable queue: rho=" << rho);
  return 1.0 / (1.0 - rho);
}

double mean_number_in_system(double lambda, double mu) {
  const double rho = utilization(lambda, mu);
  HS_CHECK(rho < 1.0, "unstable queue: rho=" << rho);
  return rho / (1.0 - rho);
}

double mm1_fcfs_mean_waiting(double lambda, double mu) {
  const double rho = utilization(lambda, mu);
  HS_CHECK(rho < 1.0, "unstable queue: rho=" << rho);
  return rho / (mu - lambda);
}

double mg1_fcfs_mean_waiting(double lambda, double mean_service,
                             double second_moment_service) {
  HS_CHECK(mean_service > 0.0, "mean service must be positive");
  HS_CHECK(second_moment_service >= mean_service * mean_service,
           "second moment below squared mean");
  const double rho = lambda * mean_service;
  HS_CHECK(rho < 1.0, "unstable queue: rho=" << rho);
  return lambda * second_moment_service / (2.0 * (1.0 - rho));
}

double ps_conditional_response(double job_size, double rho) {
  HS_CHECK(job_size > 0.0, "job size must be positive, got " << job_size);
  HS_CHECK(rho >= 0.0 && rho < 1.0, "rho out of [0,1): " << rho);
  return job_size / (1.0 - rho);
}

}  // namespace hs::queueing::mm1
