// Preemptive round-robin server with a finite quantum.
//
// The paper idealizes preemptive round-robin CPU scheduling as processor
// sharing. This server keeps the quantum finite so the idealization can
// be ablated (bench/ablation_service_discipline): as the quantum shrinks,
// metrics converge to the PS server's.
#pragma once

#include <deque>

#include "queueing/server.h"

namespace hs::queueing {

class RrServer final : public Server, private sim::EventTarget {
 public:
  /// `quantum` is wall-clock seconds per time slice on this machine
  /// (i.e. speed·quantum base-speed seconds of work per slice).
  RrServer(sim::Simulator& simulator, double speed, int machine_index,
           double quantum);

  bool arrive(const Job& job) override;
  [[nodiscard]] size_t queue_length() const override;
  [[nodiscard]] double busy_time() const override;

  /// Piecewise-constant speed changes (speed 0 = stopped mid-slice; the
  /// running job's attained service is preserved).
  void set_speed(double new_speed) override;

  /// Crash support: drains the ready queue (running job first) and
  /// cancels the pending slice-end event.
  std::vector<Job> evict_all() override;

  /// Hedge-cancellation support: removes one job by id — the running job
  /// (the next head takes the CPU immediately) or a queued one.
  bool evict(uint64_t job_id) override;

  [[nodiscard]] double quantum() const { return quantum_; }

 private:
  struct PendingJob {
    Job job;
    double remaining;  // base-speed seconds of work left
  };

  /// (Re)schedule the end of the head job's slice. Reschedules the
  /// pending event in place when one exists (speed changes mid-slice).
  void start_slice();
  void on_slice_end();
  /// Typed-event entry point (single kind: the pending slice end).
  void on_event(uint32_t kind, const sim::EventArgs& args) override;

  double quantum_;
  std::deque<PendingJob> ready_;  // front = currently running
  bool running_ = false;
  double slice_start_ = 0.0;
  double slice_work_ = 0.0;  // base-speed work the current slice delivers
  sim::EventHandle slice_event_;
  double busy_accum_ = 0.0;
  double busy_since_ = 0.0;
};

}  // namespace hs::queueing
