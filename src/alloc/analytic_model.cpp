#include "alloc/analytic_model.h"

#include <limits>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::alloc {

double SystemParameters::total_speed() const {
  return util::kahan_sum(speeds);
}

double SystemParameters::lambda() const {
  return rho * mu() * total_speed();
}

void SystemParameters::validate() const {
  HS_CHECK(!speeds.empty(), "model needs at least one machine");
  for (double s : speeds) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
  HS_CHECK(rho > 0.0 && rho < 1.0, "rho out of (0,1): " << rho);
  HS_CHECK(mean_job_size > 0.0,
           "mean job size must be positive: " << mean_job_size);
}

double predicted_mean_response_time(const SystemParameters& params,
                                    const Allocation& alloc) {
  params.validate();
  HS_CHECK(alloc.size() == params.speeds.size(),
           "allocation size " << alloc.size() << " != machine count "
                              << params.speeds.size());
  const double mu = params.mu();
  const double lambda = params.lambda();
  double total = 0.0;
  for (size_t i = 0; i < alloc.size(); ++i) {
    if (alloc[i] == 0.0) {
      continue;  // no jobs routed here; contributes nothing to the mean
    }
    const double denom = params.speeds[i] * mu - alloc[i] * lambda;
    if (denom <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    total += alloc[i] / denom;
  }
  return total;
}

double predicted_mean_response_ratio(const SystemParameters& params,
                                     const Allocation& alloc) {
  return params.mu() * predicted_mean_response_time(params, alloc);
}

std::vector<double> predicted_machine_response_times(
    const SystemParameters& params, const Allocation& alloc) {
  params.validate();
  HS_CHECK(alloc.size() == params.speeds.size(),
           "allocation size " << alloc.size() << " != machine count "
                              << params.speeds.size());
  const double mu = params.mu();
  const double lambda = params.lambda();
  std::vector<double> result(alloc.size(), 0.0);
  for (size_t i = 0; i < alloc.size(); ++i) {
    if (alloc[i] == 0.0) {
      continue;
    }
    const double denom = params.speeds[i] * mu - alloc[i] * lambda;
    result[i] = denom > 0.0 ? 1.0 / denom
                            : std::numeric_limits<double>::infinity();
  }
  return result;
}

bool is_stable(const SystemParameters& params, const Allocation& alloc) {
  params.validate();
  const double mu = params.mu();
  const double lambda = params.lambda();
  for (size_t i = 0; i < alloc.size(); ++i) {
    if (alloc[i] * lambda >= params.speeds[i] * mu) {
      return false;
    }
  }
  return true;
}

}  // namespace hs::alloc
