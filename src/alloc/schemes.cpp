#include "alloc/scheme.h"

#include "util/check.h"
#include "util/math_util.h"

namespace hs::alloc {

void validate_scheme_inputs(std::span<const double> speeds, double rho) {
  HS_CHECK(!speeds.empty(), "allocation needs at least one machine");
  for (double s : speeds) {
    HS_CHECK(s > 0.0, "machine speed must be positive, got " << s);
  }
  HS_CHECK(rho > 0.0 && rho < 1.0,
           "system utilization must be in (0,1), got " << rho);
}

Allocation WeightedAllocation::compute(std::span<const double> speeds,
                                       double rho) const {
  std::vector<double> fractions;
  compute_into(speeds, rho, fractions);
  return Allocation(std::move(fractions));
}

void WeightedAllocation::compute_into(std::span<const double> speeds,
                                      double rho,
                                      std::vector<double>& fractions) const {
  validate_scheme_inputs(speeds, rho);
  const double total = util::kahan_sum(speeds);
  fractions.resize(speeds.size());
  for (size_t i = 0; i < speeds.size(); ++i) {
    fractions[i] = speeds[i] / total;
  }
}

Allocation EqualAllocation::compute(std::span<const double> speeds,
                                    double rho) const {
  validate_scheme_inputs(speeds, rho);
  // Equal shares saturate a machine when λ/n >= sᵢμ, i.e. when
  // ρ·Σs/n >= sᵢ. Reject such configurations rather than simulate an
  // unstable queue.
  const double total = util::kahan_sum(speeds);
  const double n = static_cast<double>(speeds.size());
  for (double s : speeds) {
    HS_CHECK(rho * total / n < s,
             "equal allocation saturates machine of speed "
                 << s << " at utilization " << rho);
  }
  return Allocation(std::vector<double>(speeds.size(), 1.0 / n));
}

}  // namespace hs::alloc
