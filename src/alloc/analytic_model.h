// Analytic performance model of §2.3.
//
// Predicts the steady-state metrics of a static allocation over n
// M/M/1-PS machines (Eqs. 1–3):
//
//   T̄ = Σᵢ αᵢ/(sᵢμ − αᵢλ)      (mean response time)
//   R̄ = μ·T̄                    (mean response ratio)
//
// These closed forms are what Algorithm 1 optimizes; the simulator's
// richer workload (Bounded Pareto sizes, hyperexponential arrivals)
// deviates from them, which is exactly what the paper's experiments
// quantify.
#pragma once

#include <span>
#include <vector>

#include "alloc/allocation.h"

namespace hs::alloc {

/// System-level workload parameters for the analytic model.
struct SystemParameters {
  std::vector<double> speeds;  // relative machine speeds sᵢ
  double rho = 0.7;            // system utilization λ/(μΣs)
  double mean_job_size = 1.0;  // 1/μ, base-speed seconds

  /// Base-line service rate μ.
  [[nodiscard]] double mu() const { return 1.0 / mean_job_size; }
  /// Total arrival rate λ = ρ·μ·Σs.
  [[nodiscard]] double lambda() const;
  /// Aggregate speed Σs.
  [[nodiscard]] double total_speed() const;

  /// Throws CheckError if any field is out of range.
  void validate() const;
};

/// Predicted mean response time (Eq. 3). Infinite if `alloc` saturates a
/// machine.
[[nodiscard]] double predicted_mean_response_time(
    const SystemParameters& params, const Allocation& alloc);

/// Predicted mean response ratio R̄ = μT̄.
[[nodiscard]] double predicted_mean_response_ratio(
    const SystemParameters& params, const Allocation& alloc);

/// Per-machine predicted mean response times T̄ᵢ = 1/(sᵢμ − αᵢλ).
/// Machines with αᵢ = 0 report 0 (they serve no jobs).
[[nodiscard]] std::vector<double> predicted_machine_response_times(
    const SystemParameters& params, const Allocation& alloc);

/// True iff every machine is strictly unsaturated: αᵢλ < sᵢμ.
[[nodiscard]] bool is_stable(const SystemParameters& params,
                             const Allocation& alloc);

}  // namespace hs::alloc
