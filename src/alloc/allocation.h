// Workload allocation vectors.
//
// An Allocation is the {α₁, …, αₙ} of the paper: αᵢ is the fraction of
// all arriving jobs sent to computer cᵢ, with αᵢ ≥ 0 and Σαᵢ = 1. The
// class enforces those invariants at construction so downstream code
// (dispatchers, the analytic model) can rely on them.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hs::alloc {

class Allocation {
 public:
  /// Validates: non-empty, all fractions ≥ 0 (tiny negative rounding noise
  /// is clamped to 0), sum within 1e-9 of 1 (then exactly renormalized).
  explicit Allocation(std::vector<double> fractions);

  /// Replace the fractions in place (same validation as the constructor),
  /// reusing the existing buffer's capacity — allocation-free when the new
  /// size fits. This is what lets live re-allocation (survivor rebuilds,
  /// adaptive re-solves) re-weight dispatchers without touching the heap.
  void assign(std::span<const double> fractions);

  /// The constructor's exact validation + normalization applied to a raw
  /// buffer in place. Allocation-free re-weighting paths use this to
  /// reproduce bit-identical fractions to an Allocation round-trip
  /// without constructing one.
  static void normalize(std::vector<double>& fractions);

  /// Replace the fractions with values previously produced by an
  /// Allocation: validated (each in [0, 1], sum within 1e-6 of 1) but
  /// NOT renormalized, so the copy is bit-for-bit. normalize() divides
  /// by a sum that is itself one rounding step away from 1.0, so
  /// re-normalizing a round-tripped vector can flip low-order bits; the
  /// checkpoint/restore path (serving/snapshot.h) needs the donor's
  /// exact fractions back to reproduce its pick sequence.
  void assign_exact(std::span<const double> fractions);

  [[nodiscard]] size_t size() const { return fractions_.size(); }
  [[nodiscard]] double operator[](size_t i) const { return fractions_[i]; }
  [[nodiscard]] const std::vector<double>& fractions() const {
    return fractions_;
  }
  [[nodiscard]] std::span<const double> span() const { return fractions_; }

  /// Number of machines with αᵢ > 0.
  [[nodiscard]] size_t active_count() const;

  /// True if machine i receives no work.
  [[nodiscard]] bool is_excluded(size_t i) const {
    return fractions_[i] == 0.0;
  }

  /// Per-machine utilization under this allocation:
  /// ρᵢ = αᵢλ/(sᵢμ) = αᵢ·ρ·Σs/sᵢ given system utilization ρ.
  [[nodiscard]] std::vector<double> machine_utilizations(
      std::span<const double> speeds, double system_utilization) const;

  /// Largest per-machine utilization (must be < 1 for stability).
  [[nodiscard]] double max_machine_utilization(
      std::span<const double> speeds, double system_utilization) const;

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::vector<double> fractions_;
};

}  // namespace hs::alloc
