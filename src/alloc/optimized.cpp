#include "alloc/optimized.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::alloc {

namespace {

/// Maximum assumed utilization: beyond this the optimized scheme is
/// numerically indistinguishable from the weighted scheme (its ρ→1
/// limit), so the estimate is clamped (used for §5.4's overestimation).
constexpr double kMaxAssumedRho = 0.999999;

}  // namespace

OptimizedAllocation::OptimizedAllocation(double rho_estimate_factor)
    : factor_(rho_estimate_factor) {
  HS_CHECK(rho_estimate_factor > 0.0,
           "estimate factor must be positive, got " << rho_estimate_factor);
}

std::string OptimizedAllocation::name() const {
  if (factor_ == 1.0) {
    return "optimized";
  }
  std::ostringstream oss;
  const double pct = (factor_ - 1.0) * 100.0;
  oss << "optimized(" << (pct >= 0 ? "+" : "") << pct << "%)";
  return oss.str();
}

Allocation OptimizedAllocation::compute(std::span<const double> speeds,
                                        double rho) const {
  SolverScratch scratch;
  std::vector<double> fractions;
  compute_into(speeds, rho, fractions, scratch);
  return Allocation(std::move(fractions));
}

void OptimizedAllocation::compute_into(std::span<const double> speeds,
                                       double rho,
                                       std::vector<double>& fractions,
                                       SolverScratch& scratch) const {
  validate_scheme_inputs(speeds, rho);
  const double assumed_rho = std::min(rho * factor_, kMaxAssumedRho);

  const size_t n = speeds.size();
  // Sort speeds ascending, remembering original positions.
  scratch.order.resize(n);
  std::iota(scratch.order.begin(), scratch.order.end(), 0);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](size_t a, size_t b) { return speeds[a] < speeds[b]; });
  scratch.sorted.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch.sorted[i] = speeds[scratch.order[i]];
  }

  const size_t m = optimized_cutoff(scratch.sorted, assumed_rho,
                                    scratch.suffix_speed,
                                    scratch.suffix_sqrt);

  // Active set is sorted[m..n-1]. With β = μ/λ = 1/(ρΣs):
  //   αᵢ = sᵢβ − √sᵢ·(βΣ_active sⱼ − 1)/(Σ_active √sⱼ)  (step 7).
  const double total_speed = util::kahan_sum(scratch.sorted);
  const double beta = 1.0 / (assumed_rho * total_speed);
  double active_speed = 0.0;
  double active_sqrt = 0.0;
  for (size_t i = m; i < n; ++i) {
    active_speed += scratch.sorted[i];
    active_sqrt += std::sqrt(scratch.sorted[i]);
  }
  const double skim = (beta * active_speed - 1.0) / active_sqrt;

  fractions.assign(n, 0.0);
  for (size_t i = m; i < n; ++i) {
    const double alpha =
        scratch.sorted[i] * beta - std::sqrt(scratch.sorted[i]) * skim;
    // Theorem 3 guarantees non-negativity for the active set; clamp only
    // the rounding noise at the boundary machine.
    fractions[scratch.order[i]] = std::max(alpha, 0.0);
  }
}

size_t optimized_cutoff(std::span<const double> sorted_speeds, double rho) {
  std::vector<double> suffix_speed;
  std::vector<double> suffix_sqrt;
  return optimized_cutoff(sorted_speeds, rho, suffix_speed, suffix_sqrt);
}

size_t optimized_cutoff(std::span<const double> sorted_speeds, double rho,
                        std::vector<double>& suffix_speed,
                        std::vector<double>& suffix_sqrt) {
  const size_t n = sorted_speeds.size();
  HS_CHECK(n >= 1, "cutoff needs at least one machine");
  HS_CHECK(std::is_sorted(sorted_speeds.begin(), sorted_speeds.end()),
           "speeds must be sorted ascending");
  HS_CHECK(rho > 0.0 && rho < 1.0, "rho out of (0,1): " << rho);

  // Suffix sums of s and √s: suffix_speed[i] = Σⱼ₌ᵢ^{n−1} sⱼ.
  suffix_speed.assign(n + 1, 0.0);
  suffix_sqrt.assign(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) {
    suffix_speed[i] = suffix_speed[i + 1] + sorted_speeds[i];
    suffix_sqrt[i] = suffix_sqrt[i + 1] + std::sqrt(sorted_speeds[i]);
  }
  const double lambda_over_mu = rho * suffix_speed[0];  // λ/μ = ρΣs

  // Condition of Theorem 2 at 0-based index i (paper index i+1):
  //   √sᵢ · Σⱼ₌ᵢ √sⱼ < Σⱼ₌ᵢ sⱼ − λ/μ.
  auto excluded = [&](size_t i) {
    return std::sqrt(sorted_speeds[i]) * suffix_sqrt[i] <
           suffix_speed[i] - lambda_over_mu;
  };

  // The paper proves excluded(i) holds on a prefix, so binary search for
  // the largest excluded index (steps 4–5 of Algorithm 1). Note the
  // whole-system stability constraint λ < Σsμ makes excluded(n−1)
  // impossible, so at least one machine stays active.
  size_t lower = 0;
  size_t upper = n;  // exclusive
  while (lower < upper) {
    const size_t mid = (lower + upper) / 2;
    if (excluded(mid)) {
      lower = mid + 1;
    } else {
      upper = mid;
    }
  }
  HS_CHECK(lower < n, "all machines excluded — system would be saturated");
  return lower;
}

double objective_value(const Allocation& alloc, std::span<const double> speeds,
                       double rho) {
  validate_scheme_inputs(speeds, rho);
  HS_CHECK(alloc.size() == speeds.size(),
           "allocation size " << alloc.size() << " != speeds size "
                              << speeds.size());
  const double lambda = rho * util::kahan_sum(speeds);  // with μ = 1
  double total = 0.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    const double denom = speeds[i] - alloc[i] * lambda;
    if (denom <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    total += speeds[i] / denom;
  }
  return total;
}

EstimatedSolve solve_from_estimates(std::span<const double> speed_estimates,
                                    double lambda_estimate,
                                    double mean_job_size,
                                    double safety_factor, double min_rho,
                                    double max_rho) {
  HS_CHECK(std::isfinite(lambda_estimate) && lambda_estimate >= 0.0,
           "lambda estimate must be finite and >= 0, got "
               << lambda_estimate);
  HS_CHECK(mean_job_size > 0.0,
           "mean job size must be positive, got " << mean_job_size);
  HS_CHECK(safety_factor > 0.0,
           "safety factor must be positive, got " << safety_factor);
  HS_CHECK(min_rho > 0.0 && min_rho <= max_rho && max_rho < 1.0,
           "rho clamp range out of order: [" << min_rho << ", " << max_rho
                                             << "]");
  const double total = util::kahan_sum(speed_estimates);
  HS_CHECK(total > 0.0,
           "estimated total speed must be > 0, got " << total);
  const double implied = lambda_estimate * mean_job_size / total;
  const double assumed =
      std::clamp(implied * safety_factor, min_rho, max_rho);
  return EstimatedSolve{OptimizedAllocation().compute(speed_estimates,
                                                      assumed),
                        assumed};
}

double min_objective_value(std::span<const double> speeds, double rho) {
  validate_scheme_inputs(speeds, rho);
  std::vector<double> sorted(speeds.begin(), speeds.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t m = optimized_cutoff(sorted, rho);
  const double lambda = rho * util::kahan_sum(sorted);  // with μ = 1
  double active_speed = 0.0;
  double active_sqrt = 0.0;
  for (size_t i = m; i < sorted.size(); ++i) {
    active_speed += sorted[i];
    active_sqrt += std::sqrt(sorted[i]);
  }
  // Excluded machines contribute sᵢμ/(sᵢμ − 0) = 1 each (Definition 1).
  return static_cast<double>(m) +
         active_sqrt * active_sqrt / (active_speed - lambda);
}

}  // namespace hs::alloc
