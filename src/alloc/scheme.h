// Workload allocation scheme interface.
//
// An AllocationScheme maps (machine speeds, system utilization) to the
// fractions {α₁, …, αₙ}. The paper studies two: the naive "simple
// weighted" (speed-proportional) scheme and the optimized square-root
// scheme of §2.3; an equal-share scheme is provided as a degenerate
// baseline for homogeneous systems.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "alloc/allocation.h"

namespace hs::alloc {

class AllocationScheme {
 public:
  virtual ~AllocationScheme() = default;

  /// Compute the allocation for machines with relative speeds `speeds`
  /// running at overall system utilization ρ ∈ (0, 1).
  /// The returned allocation keeps every machine unsaturated.
  [[nodiscard]] virtual Allocation compute(std::span<const double> speeds,
                                           double rho) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Simple weighted allocation (§2.1): αᵢ = sᵢ / Σsⱼ. Makes all machines
/// equally utilized; does not minimize response time.
class WeightedAllocation final : public AllocationScheme {
 public:
  [[nodiscard]] Allocation compute(std::span<const double> speeds,
                                   double rho) const override;
  /// Allocation-free variant: writes the fractions into `fractions`
  /// (resized to speeds.size()); compute() delegates here.
  void compute_into(std::span<const double> speeds, double rho,
                    std::vector<double>& fractions) const;
  [[nodiscard]] std::string name() const override { return "weighted"; }
};

/// Equal allocation: αᵢ = 1/n regardless of speed. Saturates slow
/// machines in skewed systems at high load — deliberately naive.
class EqualAllocation final : public AllocationScheme {
 public:
  [[nodiscard]] Allocation compute(std::span<const double> speeds,
                                   double rho) const override;
  [[nodiscard]] std::string name() const override { return "equal"; }
};

/// Validate a (speeds, rho) pair: all speeds positive, 0 < rho < 1.
/// Shared precondition of all schemes.
void validate_scheme_inputs(std::span<const double> speeds, double rho);

}  // namespace hs::alloc
