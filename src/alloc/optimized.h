// Optimized workload allocation — the paper's Algorithm 1.
//
// Minimizes the system mean response time (equivalently mean response
// ratio) of n M/M/1-PS machines under the constraints Σαᵢ = 1 and
// 0 ≤ αᵢ < sᵢμ/λ. Theorem 1 gives the unconstrained-sign solution
//
//   αᵢ = (1/λ)(sᵢμ − √(sᵢμ)·(Σⱼ sⱼμ − λ)/(Σⱼ √(sⱼμ)))
//
// and Theorems 2–3 show that machines too slow to receive non-negative
// fractions are excluded (αᵢ = 0) and the formula re-applied to the rest;
// the excluded prefix (in increasing-speed order) is found by binary
// search. Only the system utilization ρ and the relative speeds are
// needed: with β = μ/λ = 1/(ρΣsᵢ),
//
//   αᵢ = sᵢβ − √sᵢ·(βΣⱼ sⱼ − 1)/(Σⱼ √sⱼ)   over the active set.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "alloc/scheme.h"

namespace hs::alloc {

/// Reusable buffers for the allocation-free solve path (compute_into).
/// One scratch serves any number of solves; buffers grow to the largest
/// machine count seen and are never shrunk, so repeated re-solves at a
/// fixed cluster size touch the allocator zero times.
struct SolverScratch {
  std::vector<size_t> order;
  std::vector<double> sorted;
  std::vector<double> suffix_speed;
  std::vector<double> suffix_sqrt;
};

class OptimizedAllocation final : public AllocationScheme {
 public:
  /// `rho_estimate_factor` models the load estimation error studied in
  /// §5.4: the scheme is computed as if utilization were
  /// factor·ρ (factor 1.05 = 5 % overestimation). The assumed utilization
  /// is clamped below 1 (the paper substitutes the weighted scheme as the
  /// assumed load approaches 100 %, which is its ρ→1 limit).
  explicit OptimizedAllocation(double rho_estimate_factor = 1.0);

  [[nodiscard]] Allocation compute(std::span<const double> speeds,
                                   double rho) const override;

  /// Allocation-free variant of compute(): writes the fractions into
  /// `fractions` (resized to speeds.size()) using `scratch` for all
  /// intermediates. Bit-identical arithmetic to compute() — compute()
  /// delegates here.
  void compute_into(std::span<const double> speeds, double rho,
                    std::vector<double>& fractions,
                    SolverScratch& scratch) const;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double rho_estimate_factor() const { return factor_; }

 private:
  double factor_;
};

/// Number of machines excluded by Algorithm 1: the largest m such that,
/// with speeds sorted ascending, √(sₘ) · Σⱼ₌ₘⁿ √sⱼ < Σⱼ₌ₘⁿ sⱼ − ρΣs.
/// `sorted_speeds` must be ascending. Returns m in [0, n-1].
[[nodiscard]] size_t optimized_cutoff(std::span<const double> sorted_speeds,
                                      double rho);

/// Scratch-buffer variant of optimized_cutoff: identical result, but the
/// suffix-sum arrays live in caller-supplied buffers (resized to n+1).
[[nodiscard]] size_t optimized_cutoff(std::span<const double> sorted_speeds,
                                      double rho,
                                      std::vector<double>& suffix_speed,
                                      std::vector<double>& suffix_sqrt);

/// The objective F(α) = Σ sᵢμ/(sᵢμ − αᵢλ) of Definition 1, evaluated with
/// μ = 1 (its value is μ-invariant given ρ). Infinite if any machine is
/// saturated.
[[nodiscard]] double objective_value(const Allocation& alloc,
                                     std::span<const double> speeds,
                                     double rho);

/// Closed-form minimum of F over the active machine set (Theorem 1):
/// (Σⱼ√(sⱼμ))²/(Σⱼsⱼμ − λ), computed with μ = 1 over the machines that
/// Algorithm 1 keeps active.
[[nodiscard]] double min_objective_value(std::span<const double> speeds,
                                         double rho);

/// One re-solve of Algorithm 1 from *online estimates* rather than known
/// parameters (the adaptive re-allocation entry point).
struct EstimatedSolve {
  Allocation allocation;
  /// The utilization the solve assumed: λ̂·E[size]/Σŝ, inflated by the
  /// safety factor and clamped into [min_rho, max_rho].
  double assumed_rho = 0.0;
};

/// Re-solve the optimized allocation from an estimated arrival rate λ̂
/// and estimated speeds ŝᵢ. `safety_factor` overestimates the implied
/// load slightly (§5.4's advice); the assumed utilization is clamped to
/// [min_rho, max_rho] so an over- or under-shooting estimator still
/// yields a well-posed solve (past max_rho the optimized scheme
/// approaches the weighted one anyway).
[[nodiscard]] EstimatedSolve solve_from_estimates(
    std::span<const double> speed_estimates, double lambda_estimate,
    double mean_job_size, double safety_factor = 1.0, double min_rho = 0.02,
    double max_rho = 0.98);

}  // namespace hs::alloc
