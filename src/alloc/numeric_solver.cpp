#include "alloc/numeric_solver.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::alloc {

namespace {

/// Water-filling core: αᵢ(ν) = max(0, (sᵢ − √(wᵢ·sᵢ·λ̃/ν))/λ̃) with μ = 1.
/// Σαᵢ(ν) is continuous and strictly increasing in ν wherever positive,
/// so the multiplier matching Σαᵢ = 1 is found by bisection.
Allocation water_fill(std::span<const double> speeds, double rho,
                      std::span<const double> weights, double tolerance) {
  validate_scheme_inputs(speeds, rho);
  HS_CHECK(weights.size() == speeds.size(),
           "weights size " << weights.size() << " != speeds size "
                           << speeds.size());
  for (double w : weights) {
    HS_CHECK(w > 0.0, "weights must be positive, got " << w);
  }
  const double lambda = rho * util::kahan_sum(speeds);

  auto fraction = [&](size_t i, double nu) {
    const double alpha =
        (speeds[i] - std::sqrt(weights[i] * speeds[i] * lambda / nu)) /
        lambda;
    return std::fmax(alpha, 0.0);
  };
  auto total = [&](double nu) {
    double sum = 0.0;
    for (size_t i = 0; i < speeds.size(); ++i) {
      sum += fraction(i, nu);
    }
    return sum;
  };

  // Bracket the multiplier. As ν→0⁺ every αᵢ→0; grow ν until Σα > 1.
  double lo = 1e-12;
  double hi = 1.0;
  while (total(hi) < 1.0) {
    hi *= 2.0;
    HS_CHECK(hi < 1e18, "failed to bracket the KKT multiplier");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total(mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < tolerance * hi) {
      break;
    }
  }
  const double nu = 0.5 * (lo + hi);

  std::vector<double> fractions(speeds.size());
  double sum = 0.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    fractions[i] = fraction(i, nu);
    sum += fractions[i];
  }
  HS_CHECK(std::fabs(sum - 1.0) < 1e-6,
           "water-filling did not converge: sum=" << sum);
  for (double& f : fractions) {
    f /= sum;  // absorb the residual bisection error exactly
  }
  return Allocation(std::move(fractions));
}

}  // namespace

NumericOptimizedAllocation::NumericOptimizedAllocation(double tolerance)
    : tolerance_(tolerance) {
  HS_CHECK(tolerance > 0.0, "tolerance must be positive: " << tolerance);
}

Allocation NumericOptimizedAllocation::compute(std::span<const double> speeds,
                                               double rho) const {
  const std::vector<double> unit_weights(speeds.size(), 1.0);
  return water_fill(speeds, rho, unit_weights, tolerance_);
}

Allocation minimize_weighted_response(std::span<const double> speeds,
                                      double rho,
                                      std::span<const double> weights,
                                      double tolerance) {
  return water_fill(speeds, rho, weights, tolerance);
}

}  // namespace hs::alloc
