// Independent numerical solution of the workload allocation problem.
//
// Algorithm 1 is a closed form derived via the Lagrange multiplier
// theorem (Theorems 1–3). This module solves the same constrained
// minimization numerically from the KKT conditions, with no shared code:
// at the optimum there is a multiplier ν > 0 with
//
//   ∂F/∂αᵢ = sᵢμλ/(sᵢμ − αᵢλ)² = ν        for every αᵢ > 0,
//   ∂F/∂αᵢ ≥ ν                             for every αᵢ = 0,
//
// so αᵢ(ν) = max(0, (sᵢμ − √(sᵢμλ/ν))/λ) and ν is fixed by Σαᵢ(ν) = 1
// (the classic water-filling form, Σαᵢ monotone in ν ⇒ bisection).
// The solver exists to validate the closed form — and to extend the
// library to objectives with no closed form (see weighted_objective).
#pragma once

#include <functional>
#include <span>

#include "alloc/scheme.h"

namespace hs::alloc {

/// Numerical (KKT water-filling) solver for the §2.3 objective.
/// Produces the same allocation as OptimizedAllocation to within
/// `tolerance` on every fraction.
class NumericOptimizedAllocation final : public AllocationScheme {
 public:
  explicit NumericOptimizedAllocation(double tolerance = 1e-12);

  [[nodiscard]] Allocation compute(std::span<const double> speeds,
                                   double rho) const override;
  [[nodiscard]] std::string name() const override {
    return "optimized-numeric";
  }

 private:
  double tolerance_;
};

/// Generalized numerical solver: minimizes Σᵢ wᵢ·αᵢ/(sᵢ − αᵢλ̃) over the
/// simplex, where λ̃ = ρΣs and wᵢ > 0 are per-machine weights (wᵢ = 1
/// recovers the paper's mean-response-time objective; wᵢ = 1/sᵢ weights
/// machines by response *ratio* contribution asymmetrically, etc.).
/// Solved by the same KKT water-filling with per-machine weights.
[[nodiscard]] Allocation minimize_weighted_response(
    std::span<const double> speeds, double rho,
    std::span<const double> weights, double tolerance = 1e-12);

}  // namespace hs::alloc
