#include "alloc/allocation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/math_util.h"

namespace hs::alloc {

void Allocation::normalize(std::vector<double>& fractions) {
  HS_CHECK(!fractions.empty(), "allocation needs at least one machine");
  double sum = 0.0;
  for (double& f : fractions) {
    HS_CHECK(f > -1e-9, "allocation fraction significantly negative: " << f);
    f = std::max(f, 0.0);
    sum += f;
  }
  HS_CHECK(std::fabs(sum - 1.0) < 1e-6,
           "allocation fractions must sum to 1, got " << sum);
  for (double& f : fractions) {
    f /= sum;
  }
}

Allocation::Allocation(std::vector<double> fractions)
    : fractions_(std::move(fractions)) {
  normalize(fractions_);
}

void Allocation::assign(std::span<const double> fractions) {
  fractions_.assign(fractions.begin(), fractions.end());
  normalize(fractions_);
}

void Allocation::assign_exact(std::span<const double> fractions) {
  HS_CHECK(!fractions.empty(), "allocation needs at least one machine");
  double sum = 0.0;
  for (double f : fractions) {
    HS_CHECK(f >= 0.0 && f <= 1.0,
             "restored allocation fraction out of [0, 1]: " << f);
    sum += f;
  }
  HS_CHECK(std::fabs(sum - 1.0) < 1e-6,
           "restored allocation fractions must sum to 1, got " << sum);
  fractions_.assign(fractions.begin(), fractions.end());
}

size_t Allocation::active_count() const {
  return static_cast<size_t>(
      std::count_if(fractions_.begin(), fractions_.end(),
                    [](double f) { return f > 0.0; }));
}

std::vector<double> Allocation::machine_utilizations(
    std::span<const double> speeds, double system_utilization) const {
  HS_CHECK(speeds.size() == fractions_.size(),
           "speed vector size " << speeds.size() << " != allocation size "
                                << fractions_.size());
  HS_CHECK(system_utilization >= 0.0,
           "negative system utilization " << system_utilization);
  const double total_speed = util::kahan_sum(speeds);
  std::vector<double> result(fractions_.size());
  for (size_t i = 0; i < fractions_.size(); ++i) {
    // λᵢ/(sᵢμ) with λ = ρ·μ·Σs and λᵢ = αᵢλ.
    result[i] = fractions_[i] * system_utilization * total_speed / speeds[i];
  }
  return result;
}

double Allocation::max_machine_utilization(std::span<const double> speeds,
                                           double system_utilization) const {
  const auto utils = machine_utilizations(speeds, system_utilization);
  return *std::max_element(utils.begin(), utils.end());
}

std::string Allocation::to_string(int precision) const {
  std::ostringstream oss;
  oss.precision(precision);
  oss << std::fixed << "{";
  for (size_t i = 0; i < fractions_.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << fractions_[i];
  }
  oss << "}";
  return oss.str();
}

}  // namespace hs::alloc
