// Integration tests for fault injection in the full cluster simulation:
// determinism, conservation laws, retry/backoff/timeout semantics, and
// failure-aware versus fault-oblivious routing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/sim.h"
#include "core/adaptive.h"
#include "core/policy.h"
#include "dispatch/fault_aware.h"
#include "util/check.h"

namespace {

using namespace hs::cluster;
using hs::core::make_fault_aware_dispatcher;
using hs::core::make_policy_dispatcher;
using hs::core::PolicyKind;

hs::workload::WorkloadSpec fast_workload() {
  hs::workload::WorkloadSpec spec;
  spec.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  spec.size_kind = hs::workload::SizeKind::kExponential;
  spec.fixed_or_mean_size = 1.0;
  return spec;
}

SimulationConfig base_config(std::vector<double> speeds, double rho,
                             double sim_time = 20000.0) {
  SimulationConfig config;
  config.speeds = std::move(speeds);
  config.workload = fast_workload();
  config.rho = rho;
  config.sim_time = sim_time;
  config.warmup_frac = 0.0;
  config.seed = 1234;
  return config;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.mean_response_ratio, b.mean_response_ratio);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.dispatched_jobs, b.dispatched_jobs);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_EQ(a.jobs_retried, b.jobs_retried);
  EXPECT_EQ(a.jobs_dropped, b.jobs_dropped);
  EXPECT_EQ(a.goodput, b.goodput);
  ASSERT_EQ(a.machine_fractions.size(), b.machine_fractions.size());
  for (size_t i = 0; i < a.machine_fractions.size(); ++i) {
    EXPECT_EQ(a.machine_fractions[i], b.machine_fractions[i]);
    EXPECT_EQ(a.machine_utilizations[i], b.machine_utilizations[i]);
    EXPECT_EQ(a.machine_downtime[i], b.machine_downtime[i]);
  }
  ASSERT_EQ(a.mean_response_by_attempts.size(),
            b.mean_response_by_attempts.size());
  for (size_t i = 0; i < a.mean_response_by_attempts.size(); ++i) {
    EXPECT_EQ(a.mean_response_by_attempts[i], b.mean_response_by_attempts[i]);
  }
}

TEST(FaultSim, DeterministicWithReusedDispatcher) {
  // Same seed + a reused (reset) dispatcher → bit-identical results,
  // without and with fault injection.
  auto config = base_config({1.0, 2.0, 3.0}, 0.6);
  auto dispatcher =
      make_policy_dispatcher(PolicyKind::kORR, config.speeds, config.rho);
  const auto first = run_simulation(config, *dispatcher);
  const auto second = run_simulation(config, *dispatcher);
  expect_identical(first, second);

  config.faults.processes.assign(config.speeds.size(), {3000.0, 300.0});
  auto aware = make_fault_aware_dispatcher(PolicyKind::kORR, config.speeds,
                                           config.rho);
  const auto faulty_first = run_simulation(config, *aware);
  const auto faulty_second = run_simulation(config, *aware);
  EXPECT_GT(faulty_first.jobs_lost, 0u);
  expect_identical(faulty_first, faulty_second);
}

TEST(FaultSim, DisabledFaultsLeaveNoTrace) {
  auto config = base_config({1.0, 2.0}, 0.5);
  auto dispatcher =
      make_policy_dispatcher(PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = run_simulation(config, *dispatcher);
  EXPECT_EQ(result.jobs_lost, 0u);
  EXPECT_EQ(result.jobs_retried, 0u);
  EXPECT_EQ(result.jobs_dropped, 0u);
  ASSERT_EQ(result.machine_downtime.size(), 2u);
  EXPECT_EQ(result.machine_downtime[0], 0.0);
  EXPECT_EQ(result.machine_downtime[1], 0.0);
  EXPECT_GT(result.goodput, 0.0);
  // Every measured completion sits in the attempt-0 bucket.
  ASSERT_FALSE(result.mean_response_by_attempts.empty());
  EXPECT_GT(result.mean_response_by_attempts[0], 0.0);
  for (size_t i = 1; i < result.mean_response_by_attempts.size(); ++i) {
    EXPECT_EQ(result.mean_response_by_attempts[i], 0.0);
  }
}

TEST(FaultSim, ConservationLawsHold) {
  // With no warmup, every counter is measured, so the books must
  // balance exactly: each loss is either retried or dropped, each
  // arrival either completes or is dropped.
  auto config = base_config({1.0, 1.0, 2.0}, 0.6, 30000.0);
  config.faults.processes.assign(config.speeds.size(), {2000.0, 400.0});
  config.faults.retry.max_attempts = 4;
  auto dispatcher = make_fault_aware_dispatcher(PolicyKind::kORR,
                                                config.speeds, config.rho);
  const auto result = run_simulation(config, *dispatcher);
  ASSERT_GT(result.jobs_lost, 0u);
  EXPECT_EQ(result.jobs_lost, result.jobs_retried + result.jobs_dropped);
  EXPECT_EQ(result.dispatched_jobs, result.completed_jobs + result.jobs_lost);
  const uint64_t arrivals =
      result.dispatched_jobs - result.jobs_retried;  // first dispatches
  EXPECT_EQ(arrivals, result.completed_jobs + result.jobs_dropped);
  // Downtime was injected and accounted.
  double total_downtime = 0.0;
  for (const double d : result.machine_downtime) {
    total_downtime += d;
  }
  EXPECT_GT(total_downtime, 0.0);
  EXPECT_LE(total_downtime, 3 * config.sim_time);
}

TEST(FaultSim, DeterministicBackoffSchedule) {
  // One machine, down for the whole run, zero detection/message delay:
  // a single job is lost on dispatch at t=10, retried after exactly 1,
  // then 2, then 4 seconds (backoff_initial=1, factor=2), and the fourth
  // loss exhausts max_attempts=4 → dropped.
  SimulationConfig config;
  config.speeds = {1.0};
  config.sim_time = 100.0;
  config.warmup_frac = 0.0;
  config.seed = 5;
  config.network.detection_interval = 0.0;
  config.network.message_delay_mean = 0.0;
  config.faults.outages.push_back({0.5, 99.5, 0});
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 1.0;
  config.faults.retry.backoff_factor = 2.0;

  const std::vector<hs::queueing::Job> jobs = {{1, 10.0, 5.0, 0}};
  const hs::workload::JobTrace trace{jobs};
  config.trace = &trace;

  auto dispatcher =
      make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.5);
  const auto result = run_simulation(config, *dispatcher);
  EXPECT_EQ(result.completed_jobs, 0u);
  EXPECT_EQ(result.dispatched_jobs, 4u);  // attempts at t=10, 11, 13, 17
  EXPECT_EQ(result.jobs_lost, 4u);
  EXPECT_EQ(result.jobs_retried, 3u);
  EXPECT_EQ(result.jobs_dropped, 1u);
  EXPECT_DOUBLE_EQ(result.machine_downtime[0], 99.5);
}

TEST(FaultSim, JobTimeoutDropsInsteadOfRetrying) {
  // Same single-job setup but with a 0.5 s deadline: the first retry
  // would start 1 s after arrival → dropped without any retry.
  SimulationConfig config;
  config.speeds = {1.0};
  config.sim_time = 100.0;
  config.warmup_frac = 0.0;
  config.seed = 5;
  config.network.detection_interval = 0.0;
  config.network.message_delay_mean = 0.0;
  config.faults.outages.push_back({0.5, 99.5, 0});
  config.faults.retry.max_attempts = 4;
  config.faults.retry.backoff_initial = 1.0;
  config.faults.retry.job_timeout = 0.5;

  const std::vector<hs::queueing::Job> jobs = {{1, 10.0, 5.0, 0}};
  const hs::workload::JobTrace trace{jobs};
  config.trace = &trace;

  auto dispatcher =
      make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.5);
  const auto result = run_simulation(config, *dispatcher);
  EXPECT_EQ(result.jobs_lost, 1u);
  EXPECT_EQ(result.jobs_retried, 0u);
  EXPECT_EQ(result.jobs_dropped, 1u);
}

TEST(FaultSim, RetriedJobsCompleteWithFullLatency) {
  // The machine recovers mid-run; the retried job's response time spans
  // the original arrival through the post-recovery completion.
  SimulationConfig config;
  config.speeds = {1.0};
  config.sim_time = 100.0;
  config.warmup_frac = 0.0;
  config.seed = 5;
  config.network.detection_interval = 0.0;
  config.network.message_delay_mean = 0.0;
  config.faults.outages.push_back({0.5, 19.5, 0});  // up again at t=20
  config.faults.retry.max_attempts = 10;
  config.faults.retry.backoff_initial = 4.0;
  config.faults.retry.backoff_factor = 2.0;

  // Arrives at 10 while down; retries at 14 (down), 22 (up, runs 5 s).
  const std::vector<hs::queueing::Job> jobs = {{1, 10.0, 5.0, 0}};
  const hs::workload::JobTrace trace{jobs};
  config.trace = &trace;

  auto dispatcher =
      make_policy_dispatcher(PolicyKind::kWRR, config.speeds, 0.5);
  const auto result = run_simulation(config, *dispatcher);
  EXPECT_EQ(result.completed_jobs, 1u);
  EXPECT_EQ(result.jobs_lost, 2u);
  EXPECT_EQ(result.jobs_retried, 2u);
  EXPECT_EQ(result.jobs_dropped, 0u);
  // Completion at 22 + 5 = 27 → response 17 s, in the attempt-2 bucket.
  EXPECT_DOUBLE_EQ(result.mean_response_time, 17.0);
  ASSERT_GE(result.mean_response_by_attempts.size(), 3u);
  EXPECT_EQ(result.mean_response_by_attempts[0], 0.0);
  EXPECT_EQ(result.mean_response_by_attempts[1], 0.0);
  EXPECT_DOUBLE_EQ(result.mean_response_by_attempts[2], 17.0);
}

// Counts dispatches per machine with their times, wrapping any inner
// dispatcher transparently.
class CountingDispatcher final : public hs::dispatch::Dispatcher {
 public:
  CountingDispatcher(std::unique_ptr<hs::dispatch::Dispatcher> inner,
                     std::vector<std::pair<double, size_t>>& record)
      : inner_(std::move(inner)), record_(record) {}

  size_t pick(hs::rng::Xoshiro256& gen) override {
    const size_t machine = inner_->pick(gen);
    record_.emplace_back(now_, machine);
    return machine;
  }
  size_t pick_sized(hs::rng::Xoshiro256& gen, double size) override {
    const size_t machine = inner_->pick_sized(gen, size);
    record_.emplace_back(now_, machine);
    return machine;
  }
  bool uses_size() const override { return inner_->uses_size(); }
  void reset() override {
    inner_->reset();
    now_ = 0.0;
  }
  std::string name() const override { return inner_->name(); }
  size_t machine_count() const override { return inner_->machine_count(); }
  void on_arrival(double now) override {
    now_ = now;
    inner_->on_arrival(now);
  }
  void on_departure_report(size_t machine) override {
    inner_->on_departure_report(machine);
  }
  bool uses_feedback() const override { return inner_->uses_feedback(); }
  void on_machine_state_report(size_t machine, bool up) override {
    inner_->on_machine_state_report(machine, up);
  }
  bool uses_fault_feedback() const override {
    return inner_->uses_fault_feedback();
  }

 private:
  std::unique_ptr<hs::dispatch::Dispatcher> inner_;
  std::vector<std::pair<double, size_t>>& record_;
  double now_ = 0.0;
};

TEST(FaultSim, BlacklistedMachineGetsNoDispatches) {
  // Machine 1 is down over [4000, 8000). A failure-aware dispatcher must
  // send it nothing between the (delayed) crash report and the recovery
  // report; detection adds at most ~a few seconds of slack.
  auto config = base_config({1.0, 1.0}, 0.5, 16000.0);
  config.faults.outages.push_back({4000.0, 4000.0, 1});
  std::vector<std::pair<double, size_t>> record;
  CountingDispatcher dispatcher(
      make_fault_aware_dispatcher(PolicyKind::kORR, config.speeds,
                                  config.rho),
      record);
  const auto result = run_simulation(config, dispatcher);
  EXPECT_GT(result.completed_jobs, 1000u);
  const double slack = 10.0;  // detection interval 1 s + message delays
  for (const auto& [time, machine] : record) {
    if (machine == 1) {
      EXPECT_FALSE(time > 4000.0 + slack && time < 8000.0)
          << "dispatch to blacklisted machine at t=" << time;
    }
  }
  // The machine is used again after recovery.
  bool used_after_recovery = false;
  for (const auto& [time, machine] : record) {
    used_after_recovery |= machine == 1 && time > 8000.0 + slack;
  }
  EXPECT_TRUE(used_after_recovery);
}

TEST(FaultSim, AdaptiveOrrEstimatorSurvivesCrash) {
  // Satellite: ρ̂ stays sane across a crash — the estimator tracks the
  // arrival stream (unchanged by machine state), and the assumed load
  // remains inside the configured clamp throughout.
  auto config = base_config({1.0, 1.0, 2.0}, 0.6, 30000.0);
  config.faults.outages.push_back({10000.0, 5000.0, 2});
  hs::core::AdaptiveOrrOptions options;
  options.mean_job_size = 1.0;  // the test workload's mean
  auto adaptive = std::make_unique<hs::core::AdaptiveOrrDispatcher>(
      config.speeds, options);
  auto* raw = adaptive.get();
  hs::dispatch::FaultAwareDispatcher aware(std::move(adaptive));
  const auto result = run_simulation(config, aware);
  EXPECT_GT(result.completed_jobs, 5000u);
  EXPECT_GT(raw->estimator().observed_arrivals(), 1000u);
  EXPECT_GE(raw->assumed_rho(), 0.02);
  EXPECT_LE(raw->assumed_rho(), 0.98);
  // The estimate itself reflects the true system load, not the
  // degraded survivor load.
  EXPECT_NEAR(raw->estimator().estimate(), 0.6, 0.15);
}

TEST(FaultSim, FailureAwareOrrBeatsObliviousOrr) {
  // The tentpole's acceptance experiment in miniature: a mid-run crash
  // of the biggest machine. The fault-oblivious ORR keeps routing into
  // the dead machine (losing every such job); the failure-aware variant
  // shifts the allocation to the survivors and completes more work.
  auto config = base_config({1.0, 1.0, 4.0}, 0.6, 40000.0);
  config.faults.outages.push_back({10000.0, 20000.0, 2});
  config.faults.retry.max_attempts = 3;

  auto oblivious =
      make_policy_dispatcher(PolicyKind::kORR, config.speeds, config.rho);
  const auto base = run_simulation(config, *oblivious);

  auto aware = make_fault_aware_dispatcher(PolicyKind::kORR, config.speeds,
                                           config.rho);
  const auto improved = run_simulation(config, *aware);

  EXPECT_GT(base.jobs_dropped, 0u);
  EXPECT_GT(improved.goodput, base.goodput);
  EXPECT_LT(improved.jobs_lost, base.jobs_lost);
}

TEST(FaultSim, AllMachinesCrashedIsSurvivable) {
  // Total blackout: every machine goes down at t=5000 and none recovers
  // within the run. Nothing about the survivor-reallocation logic may
  // spin or divide by zero on an empty survivor set; jobs dispatched
  // into the blackout are lost, retried, and eventually dropped; and the
  // run stays bit-for-bit deterministic.
  auto config = base_config({1.0, 1.0, 2.0}, 0.5, 20000.0);
  for (size_t m = 0; m < config.speeds.size(); ++m) {
    config.faults.outages.push_back({5000.0, config.sim_time, m});
  }
  config.faults.retry.max_attempts = 3;

  auto aware = make_fault_aware_dispatcher(PolicyKind::kORR, config.speeds,
                                           config.rho);
  const auto first = run_simulation(config, *aware);
  // The pre-blackout window completed real work...
  EXPECT_GT(first.completed_jobs, 1000u);
  // ...then the blackout lost resident jobs, the retry policy re-routed
  // them into still-dead machines, and bounded attempts gave up.
  EXPECT_GT(first.jobs_lost, 0u);
  EXPECT_GT(first.jobs_retried, 0u);
  EXPECT_GT(first.jobs_dropped, 0u);
  EXPECT_EQ(first.jobs_lost, first.jobs_retried + first.jobs_dropped);
  // Every machine accrued the full blackout as downtime.
  for (const double downtime : first.machine_downtime) {
    EXPECT_NEAR(downtime, config.sim_time - 5000.0, 1e-6);
  }
  // Golden determinism holds with a reused (reset) dispatcher.
  const auto second = run_simulation(config, *aware);
  expect_identical(first, second);
}

TEST(FaultSim, ValidateRejectsBadFaultConfig) {
  auto config = base_config({1.0, 1.0}, 0.5);
  config.faults.outages.push_back({1000.0, 10.0, 5});  // machine range
  EXPECT_THROW(config.validate(), hs::util::CheckError);
}

TEST(FaultSim, ValidateRejectsBadSpeedChanges) {
  // Satellite: speed-change validation names the offending entry.
  auto config = base_config({1.0, 1.0}, 0.5);
  config.speed_changes.push_back({100.0, 0, 2.0});
  config.speed_changes.push_back({100.0, 7, 2.0});  // machine out of range
  try {
    config.validate();
    FAIL() << "expected CheckError";
  } catch (const hs::util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("speed_changes[1]"),
              std::string::npos)
        << e.what();
  }

  config.speed_changes[1] = {100.0, 1, -1.0};  // negative speed
  EXPECT_THROW(config.validate(), hs::util::CheckError);

  config.speed_changes[1] = {config.sim_time + 1.0, 1, 2.0};  // too late
  EXPECT_THROW(config.validate(), hs::util::CheckError);

  config.speed_changes[1] = {100.0, 1, 0.0};  // failure-as-speed-0 is fine
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
