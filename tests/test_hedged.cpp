// Hedged-dispatch decorator and decorator-stack composition: the three
// robustness decorators (Hedged / FaultAware / CircuitBreaker) must
// produce the same routing mask in every stacking order, and the full
// simulation must conserve arrivals with any of them outermost.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/sim.h"
#include "dispatch/fault_aware.h"
#include "dispatch/hedged.h"
#include "dispatch/least_load.h"
#include "overload/circuit_breaker.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::dispatch::Dispatcher;
using hs::dispatch::FaultAwareDispatcher;
using hs::dispatch::HedgedDispatcher;
using hs::dispatch::HedgingConfig;
using hs::dispatch::LeastLoadDispatcher;
using hs::overload::CircuitBreakerConfig;
using hs::overload::CircuitBreakerDispatcher;

TEST(Hedged, ConfigIsValidated) {
  HedgingConfig config;
  EXPECT_FALSE(config.enabled());
  config.validate();  // off is fine
  config.delay = 2.5;
  EXPECT_TRUE(config.enabled());
  config.validate();
  config.delay = -1.0;
  EXPECT_THROW(config.validate(), hs::util::CheckError);
}

TEST(Hedged, ForwardsPicksAndCounts) {
  const std::vector<double> speeds = {1.0, 1.0};
  HedgedDispatcher hedged(std::make_unique<LeastLoadDispatcher>(speeds),
                          HedgingConfig{2.0});
  EXPECT_TRUE(hedged.config().enabled());
  EXPECT_EQ(hedged.machine_count(), 2u);
  EXPECT_TRUE(hedged.uses_feedback());  // Least-Load underneath

  hs::rng::Xoshiro256 gen(7);
  const size_t primary = hedged.pick(gen);
  // Least-Load's pick_hedge never returns the excluded machine while an
  // alternative exists.
  const size_t second = hedged.pick_hedge(gen, 1.0, primary);
  EXPECT_NE(second, primary);

  hedged.record_issued();
  hedged.record_issued();
  hedged.record_won();
  hedged.record_cancelled();
  EXPECT_EQ(hedged.issued(), 2u);
  EXPECT_EQ(hedged.won(), 1u);
  EXPECT_EQ(hedged.cancelled(), 1u);
  hedged.reset();
  EXPECT_EQ(hedged.issued(), 0u);
}

// ---------------------------------------------------------------------
// Stacking-order consistency.

enum class Wrap { kHedged, kFaultAware, kBreaker };

const char* wrap_name(Wrap w) {
  switch (w) {
    case Wrap::kHedged:
      return "H";
    case Wrap::kFaultAware:
      return "F";
    case Wrap::kBreaker:
      return "B";
  }
  return "?";
}

/// Wraps a Least-Load core in the three decorators, innermost first.
std::unique_ptr<Dispatcher> build_stack(const std::array<Wrap, 3>& order,
                                        const std::vector<double>& speeds) {
  std::unique_ptr<Dispatcher> d =
      std::make_unique<LeastLoadDispatcher>(speeds);
  for (Wrap w : order) {
    switch (w) {
      case Wrap::kHedged:
        d = std::make_unique<HedgedDispatcher>(std::move(d),
                                               HedgingConfig{1.5});
        break;
      case Wrap::kFaultAware:
        d = std::make_unique<FaultAwareDispatcher>(std::move(d));
        break;
      case Wrap::kBreaker:
        d = std::make_unique<CircuitBreakerDispatcher>(
            std::move(d), CircuitBreakerConfig{});
        break;
    }
  }
  return d;
}

const std::array<std::array<Wrap, 3>, 6>& all_orders() {
  static const std::array<std::array<Wrap, 3>, 6> kOrders = {{
      {Wrap::kHedged, Wrap::kFaultAware, Wrap::kBreaker},
      {Wrap::kHedged, Wrap::kBreaker, Wrap::kFaultAware},
      {Wrap::kFaultAware, Wrap::kHedged, Wrap::kBreaker},
      {Wrap::kFaultAware, Wrap::kBreaker, Wrap::kHedged},
      {Wrap::kBreaker, Wrap::kHedged, Wrap::kFaultAware},
      {Wrap::kBreaker, Wrap::kFaultAware, Wrap::kHedged},
  }};
  return kOrders;
}

std::string order_label(const std::array<Wrap, 3>& order) {
  // Innermost-first build order; label outermost-first for readability.
  return std::string(wrap_name(order[2])) + "(" + wrap_name(order[1]) + "(" +
         wrap_name(order[0]) + "(LL)))";
}

TEST(Hedged, AllStackOrdersExposeBothFeedbackChannels) {
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 1.0};
  for (const auto& order : all_orders()) {
    auto stack = build_stack(order, speeds);
    EXPECT_TRUE(stack->uses_fault_feedback()) << order_label(order);
    EXPECT_TRUE(stack->uses_overload_feedback()) << order_label(order);
    EXPECT_TRUE(stack->uses_feedback()) << order_label(order);
  }
}

TEST(Hedged, AllStackOrdersProduceConsistentMasks) {
  const std::vector<double> speeds = {1.0, 1.0, 1.0, 1.0};
  const CircuitBreakerConfig breaker_defaults;
  for (const auto& order : all_orders()) {
    auto stack = build_stack(order, speeds);
    // Machine 0 is reported down through the fault channel; machine 1
    // accumulates enough consecutive dispatch failures to trip its
    // breaker. Whatever the stacking order, the events must reach the
    // decorator that consumes them.
    stack->on_machine_state_report(0, false);
    for (size_t i = 0; i < breaker_defaults.trip_threshold; ++i) {
      stack->on_dispatch_result(1, false, 1.0 + static_cast<double>(i));
    }
    hs::rng::Xoshiro256 gen(123);
    std::set<size_t> picked;
    for (int i = 0; i < 200; ++i) {
      picked.insert(stack->pick(gen));
    }
    EXPECT_EQ(picked, (std::set<size_t>{2, 3})) << order_label(order);
    // A hedge pick honors the combined mask too.
    const size_t hedge = stack->pick_hedge(gen, 1.0, 2);
    EXPECT_EQ(hedge, 3u) << order_label(order);
    // Recovery restores machine 0 (breaker 1 stays open until cooldown).
    stack->on_machine_state_report(0, true);
    picked.clear();
    for (int i = 0; i < 200; ++i) {
      picked.insert(stack->pick(gen));
    }
    EXPECT_EQ(picked, (std::set<size_t>{0, 2, 3})) << order_label(order);
  }
}

// ---------------------------------------------------------------------
// Full simulation per ordering: exactly-once conservation holds with
// loss + partition + heartbeat suspicion + hedging active, whatever the
// decorator order.

TEST(Hedged, ConservationHoldsForEveryStackOrder) {
  for (const auto& order : all_orders()) {
    for (uint64_t seed : {11u, 29u, 47u}) {
      hs::cluster::SimulationConfig config;
      config.speeds = {4.0, 2.0, 1.0};
      config.rho = 0.8;
      config.sim_time = 2000.0;
      config.warmup_frac = 0.1;
      config.seed = seed;
      config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
      config.workload.size_kind = hs::workload::SizeKind::kExponential;
      config.workload.fixed_or_mean_size = 1.0;
      config.network.dispatch_link.loss = 0.05;
      config.network.dispatch_link.delay_mean = 0.05;
      config.network.report_link.loss = 0.05;
      config.network.partitions.push_back({500.0, 200.0, {2}});
      config.network.heartbeat.interval = 1.0;
      config.network.heartbeat.phi_threshold = 3.0;
      config.faults.retry.max_attempts = 4;
      config.faults.retry.backoff_initial = 0.5;

      auto stack = build_stack(order, config.speeds);
      const auto result = hs::cluster::run_simulation(config, *stack);
      EXPECT_GT(result.completed_jobs, 0u) << order_label(order);
      EXPECT_GT(result.hedges_issued, 0u) << order_label(order);
      EXPECT_LE(result.hedges_won, result.hedges_issued)
          << order_label(order);
      EXPECT_GT(result.total_arrivals, 0u);
      EXPECT_EQ(result.total_arrivals,
                result.total_completed + result.total_shed +
                    result.total_dropped + result.in_flight_at_end)
          << order_label(order) << " seed=" << seed
          << " arrivals=" << result.total_arrivals
          << " completed=" << result.total_completed
          << " shed=" << result.total_shed
          << " dropped=" << result.total_dropped
          << " in_flight=" << result.in_flight_at_end;
    }
  }
}

}  // namespace
