// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/check.h"
#include "util/cli.h"

namespace {

using hs::util::ArgParser;

ArgParser make_parser() {
  ArgParser parser("test program");
  parser.add_option("rho", "0.7", "system utilization");
  parser.add_option("reps", "5", "replications");
  parser.add_option("label", "default", "free-form label");
  parser.add_flag("paper-scale", "use full paper-scale parameters");
  return parser;
}

bool parse(ArgParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser.parse(static_cast<int>(args.size()), args.data());
}

TEST(ArgParser, DefaultsApply) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_DOUBLE_EQ(parser.get_double("rho"), 0.7);
  EXPECT_EQ(parser.get_long("reps"), 5);
  EXPECT_EQ(parser.get_string("label"), "default");
  EXPECT_FALSE(parser.get_flag("paper-scale"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--rho", "0.9", "--reps", "10"}));
  EXPECT_DOUBLE_EQ(parser.get_double("rho"), 0.9);
  EXPECT_EQ(parser.get_long("reps"), 10);
}

TEST(ArgParser, EqualsSeparatedValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--rho=0.35", "--label=speed-sweep"}));
  EXPECT_DOUBLE_EQ(parser.get_double("rho"), 0.35);
  EXPECT_EQ(parser.get_string("label"), "speed-sweep");
}

TEST(ArgParser, FlagPresence) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--paper-scale"}));
  EXPECT_TRUE(parser.get_flag("paper-scale"));
}

TEST(ArgParser, UnknownArgumentThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW((void)(parse(parser, {"--bogus", "1"})), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW((void)(parse(parser, {"--rho"})), std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW((void)(parse(parser, {"stray"})), std::invalid_argument);
}

TEST(ArgParser, NonNumericValueThrows) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--rho", "fast"}));
  EXPECT_THROW((void)(parser.get_double("rho")), std::invalid_argument);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW((void)(parse(parser, {"--paper-scale=yes"})), std::invalid_argument);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parse(parser, {"--help"}));
}

TEST(ArgParser, HelpTextListsOptions) {
  ArgParser parser = make_parser();
  const std::string help = parser.help_text();
  EXPECT_NE(help.find("--rho"), std::string::npos);
  EXPECT_NE(help.find("--paper-scale"), std::string::npos);
  EXPECT_NE(help.find("default: 0.7"), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser parser("dup");
  parser.add_option("x", "1", "first");
  EXPECT_THROW((void)(parser.add_option("x", "2", "second")), hs::util::CheckError);
}

TEST(ArgParser, UnregisteredAccessThrows) {
  ArgParser parser("empty");
  EXPECT_THROW((void)(parser.get_string("nope")), hs::util::CheckError);
}

TEST(ArgParser, FlagAccessedAsOptionThrows) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_THROW((void)(parser.get_flag("rho")), hs::util::CheckError);
}

TEST(ArgParser, LastValueWins) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--rho", "0.1", "--rho", "0.2"}));
  EXPECT_DOUBLE_EQ(parser.get_double("rho"), 0.2);
}

}  // namespace
