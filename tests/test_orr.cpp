// Tests for the production-facing OrrScheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "alloc/optimized.h"
#include "core/orr.h"
#include "util/check.h"

namespace {

using hs::core::OrrScheduler;

TEST(OrrScheduler, AllocationMatchesOptimizedScheme) {
  const std::vector<double> speeds = {1.0, 1.0, 4.0, 8.0};
  OrrScheduler orr(speeds, 0.6);
  const auto expected =
      hs::alloc::OptimizedAllocation().compute(speeds, 0.6);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(orr.allocation()[i], expected[i]);
  }
  EXPECT_EQ(orr.machine_count(), 4u);
  EXPECT_DOUBLE_EQ(orr.utilization(), 0.6);
}

TEST(OrrScheduler, RouteDistributionTracksAllocation) {
  const std::vector<double> speeds = {1.0, 2.0, 5.0, 10.0};
  OrrScheduler orr(speeds, 0.7);
  const size_t total = 10000;
  std::vector<uint64_t> counts(speeds.size(), 0);
  for (size_t i = 0; i < total; ++i) {
    counts[orr.route()]++;
  }
  EXPECT_EQ(orr.routed(), total);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_EQ(counts[i], orr.routed_to(i));
    const double expected = orr.allocation()[i] * static_cast<double>(total);
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 2.0)
        << "machine " << i;
  }
}

TEST(OrrScheduler, ExcludesSlowMachinesAtLowLoad) {
  OrrScheduler orr({1.0, 10.0}, 0.3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(orr.route(), 1u);
  }
  EXPECT_EQ(orr.routed_to(0), 0u);
}

TEST(OrrScheduler, RoutingIsDeterministic) {
  OrrScheduler a({1.0, 4.0}, 0.6);
  OrrScheduler b({1.0, 4.0}, 0.6);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.route(), b.route());
  }
}

TEST(OrrScheduler, SetUtilizationRecomputes) {
  OrrScheduler orr({1.0, 10.0}, 0.3);
  EXPECT_EQ(orr.allocation()[0], 0.0);  // slow machine excluded
  orr.set_utilization(0.9);
  EXPECT_GT(orr.allocation()[0], 0.0);  // included at high load
  EXPECT_DOUBLE_EQ(orr.utilization(), 0.9);
  EXPECT_EQ(orr.routed(), 0u);  // cycle restarted
}

TEST(OrrScheduler, InvalidInputsThrow) {
  EXPECT_THROW(OrrScheduler({}, 0.5), hs::util::CheckError);
  EXPECT_THROW(OrrScheduler({1.0}, 0.0), hs::util::CheckError);
  EXPECT_THROW(OrrScheduler({1.0}, 1.0), hs::util::CheckError);
  EXPECT_THROW(OrrScheduler({-1.0}, 0.5), hs::util::CheckError);
}

TEST(OrrScheduler, HomogeneousClusterIsPlainRoundRobin) {
  OrrScheduler orr({2.0, 2.0, 2.0}, 0.5);
  std::vector<size_t> first_cycle;
  for (int i = 0; i < 3; ++i) {
    first_cycle.push_back(orr.route());
  }
  std::vector<size_t> second_cycle;
  for (int i = 0; i < 3; ++i) {
    second_cycle.push_back(orr.route());
  }
  // Each cycle covers all machines exactly once.
  std::sort(first_cycle.begin(), first_cycle.end());
  std::sort(second_cycle.begin(), second_cycle.end());
  EXPECT_EQ(first_cycle, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(second_cycle, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
