// Tests for the observability subsystem (src/obs/): trace ring buffer,
// Chrome trace export, metrics registry/sampler, and the wiring into
// cluster simulation runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "cluster/sim.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/csv.h"

namespace {

using hs::obs::MetricsRegistry;
using hs::obs::Observer;
using hs::obs::TraceEventKind;
using hs::obs::TraceRecord;
using hs::obs::TraceSink;

// ---- TraceSink ring buffer ----

TEST(TraceSink, RecordsInOrder) {
  TraceSink sink(8);
  sink.record(1.0, TraceEventKind::kArrival, 10, TraceSink::kScheduler);
  sink.record(2.0, TraceEventKind::kDispatch, 10, 3, 0, 42.0);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_FALSE(sink.empty());
  EXPECT_EQ(sink.overwritten(), 0u);
  EXPECT_DOUBLE_EQ(sink.at(0).time, 1.0);
  EXPECT_EQ(sink.at(0).kind, TraceEventKind::kArrival);
  EXPECT_EQ(sink.at(0).machine, TraceSink::kScheduler);
  EXPECT_EQ(sink.at(1).job, 10u);
  EXPECT_EQ(sink.at(1).machine, 3);
  EXPECT_DOUBLE_EQ(sink.at(1).aux, 42.0);
}

TEST(TraceSink, OverwritesOldestWhenFull) {
  TraceSink sink(4);
  for (uint64_t i = 0; i < 6; ++i) {
    sink.record(static_cast<double>(i), TraceEventKind::kArrival, i, 0);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.overwritten(), 2u);
  // Records 0 and 1 were overwritten; the survivors are 2..5 oldest-first.
  for (size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink.at(i).job, i + 2) << "slot " << i;
  }
}

TEST(TraceSink, ClearKeepsCapacity) {
  TraceSink sink(4);
  for (uint64_t i = 0; i < 10; ++i) {
    sink.record(0.0, TraceEventKind::kArrival, i, 0);
  }
  sink.clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.overwritten(), 0u);
  EXPECT_EQ(sink.capacity(), 4u);
  sink.record(1.0, TraceEventKind::kCrash, TraceSink::kNoJob, 2);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).kind, TraceEventKind::kCrash);
}

TEST(TraceSink, ZeroCapacityThrows) {
  EXPECT_THROW((void)TraceSink(0), hs::util::CheckError);
}

TEST(TraceSink, KindNamesAreDistinct) {
  EXPECT_STREQ(hs::obs::trace_event_kind_name(TraceEventKind::kArrival),
               "arrival");
  EXPECT_STREQ(hs::obs::trace_event_kind_name(TraceEventKind::kCompletion),
               "completion");
  EXPECT_STREQ(hs::obs::trace_event_kind_name(TraceEventKind::kSpeedChange),
               "speed_change");
}

// ---- Chrome trace export ----

TEST(TraceSink, ChromeExportBalancesSpans) {
  TraceSink sink(64);
  sink.record(0.5, TraceEventKind::kArrival, 1, TraceSink::kScheduler, 0, 3.0);
  sink.record(0.5, TraceEventKind::kDispatch, 1, 0, 0, 3.0);
  sink.record(0.5, TraceEventKind::kServiceStart, 1, 0, 0, 3.0);
  sink.record(2.0, TraceEventKind::kCompletion, 1, 0);
  // Job 2's span is still open at the end of the buffer.
  sink.record(3.0, TraceEventKind::kServiceStart, 2, 1, 0, 1.0);
  std::ostringstream out;
  sink.write_chrome_trace(out, {1.0, 2.5});

  const std::string json = out.str();
  size_t begins = 0;
  size_t ends = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"b\"", pos)) !=
                       std::string::npos;
       pos += 8) {
    ++begins;
  }
  for (size_t pos = 0; (pos = json.find("\"ph\":\"e\"", pos)) !=
                       std::string::npos;
       pos += 8) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);  // one span per service start
  EXPECT_EQ(ends, 2u);    // the dangling span is closed at the last time
  // Machine tracks are named, with speed when provided.
  EXPECT_NE(json.find("scheduler"), std::string::npos);
  EXPECT_NE(json.find("machine 1 (speed 2.5)"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":5"), std::string::npos);
}

TEST(TraceSink, ChromeExportOfEmptySinkIsValid) {
  TraceSink sink(4);
  std::ostringstream out;
  sink.write_chrome_trace(out);
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

TEST(TraceSink, ChromeExportToUnwritablePathThrows) {
  TraceSink sink(4);
  EXPECT_THROW(sink.write_chrome_trace("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

// ---- MetricsRegistry ----

TEST(MetricsRegistry, SamplesGaugesIntoRows) {
  MetricsRegistry registry;
  double x = 1.0;
  uint64_t counter = 7;
  registry.register_gauge("x", [&x] { return x; });
  registry.register_counter("count", &counter);
  EXPECT_EQ(registry.metric_count(), 2u);

  registry.sample(0.0);
  x = 2.5;
  counter = 9;
  registry.sample(10.0);

  ASSERT_EQ(registry.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(registry.sample_time(0), 0.0);
  EXPECT_DOUBLE_EQ(registry.sample_time(1), 10.0);
  EXPECT_DOUBLE_EQ(registry.value(0, registry.column("x")), 1.0);
  EXPECT_DOUBLE_EQ(registry.value(1, registry.column("x")), 2.5);
  EXPECT_DOUBLE_EQ(registry.value(0, registry.column("count")), 7.0);
  EXPECT_DOUBLE_EQ(registry.value(1, registry.column("count")), 9.0);
}

TEST(MetricsRegistry, DuplicateNameThrows) {
  MetricsRegistry registry;
  registry.register_gauge("dup", [] { return 0.0; });
  EXPECT_THROW(registry.register_gauge("dup", [] { return 1.0; }),
               hs::util::CheckError);
}

TEST(MetricsRegistry, RegisterAfterSamplingThrows) {
  MetricsRegistry registry;
  registry.register_gauge("a", [] { return 0.0; });
  registry.sample(0.0);
  EXPECT_THROW(registry.register_gauge("b", [] { return 0.0; }),
               hs::util::CheckError);
  registry.clear_samples();  // rows gone, metrics kept: registration re-opens
  registry.register_gauge("b", [] { return 0.0; });
  EXPECT_EQ(registry.metric_count(), 2u);
}

TEST(MetricsRegistry, UnknownColumnThrows) {
  MetricsRegistry registry;
  registry.register_gauge("a", [] { return 0.0; });
  EXPECT_THROW((void)registry.column("missing"), hs::util::CheckError);
}

TEST(MetricsRegistry, ClearDropsMetricsAndSamples) {
  MetricsRegistry registry;
  registry.register_gauge("a", [] { return 1.0; });
  registry.sample(0.0);
  registry.clear();
  EXPECT_EQ(registry.metric_count(), 0u);
  EXPECT_EQ(registry.sample_count(), 0u);
}

TEST(MetricsRegistry, CsvRoundTripsThroughUtilCsv) {
  MetricsRegistry registry;
  double v = 0.25;
  registry.register_gauge("alpha", [&v] { return v; });
  registry.register_gauge("beta", [&v] { return 2.0 * v; });
  registry.sample(0.0);
  v = 0.5;
  registry.sample(60.0);

  const std::string path = "test_obs_metrics_roundtrip.csv";
  registry.write_csv(path);
  const auto rows = hs::util::read_numeric_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 3u);  // time + 2 metrics
  EXPECT_DOUBLE_EQ(rows[0][0], 0.0);
  EXPECT_DOUBLE_EQ(rows[0][1], 0.25);
  EXPECT_DOUBLE_EQ(rows[0][2], 0.5);
  EXPECT_DOUBLE_EQ(rows[1][0], 60.0);
  EXPECT_DOUBLE_EQ(rows[1][1], 0.5);
  EXPECT_DOUBLE_EQ(rows[1][2], 1.0);
}

TEST(Observer, SamplingWithoutIntervalThrows) {
  MetricsRegistry registry;
  Observer observer;
  observer.metrics = &registry;
  observer.sample_interval = 0.0;
  EXPECT_THROW(observer.validate(), hs::util::CheckError);
  observer.sample_interval = 30.0;
  observer.validate();  // now fine
}

// ---- Wiring into cluster simulation runs ----

hs::cluster::SimulationConfig small_cluster_config() {
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 2.0, 3.0};
  config.rho = 0.7;
  config.sim_time = 500.0;
  config.warmup_frac = 0.0;  // every completion is measured and traced
  config.seed = 20260806;
  return config;
}

hs::cluster::SimulationResult run_orr(
    const hs::cluster::SimulationConfig& config) {
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  return hs::cluster::run_simulation(config, *dispatcher);
}

TEST(ObservedSimulation, TraceAccountsForEveryJob) {
  hs::cluster::SimulationConfig config = small_cluster_config();
  config.sim_time = 20000.0;  // paper-sized jobs: ~0.03 arrivals/s here
  TraceSink sink;
  Observer observer;
  observer.trace = &sink;
  config.observer = &observer;
  const auto result = run_orr(config);

  uint64_t arrivals = 0;
  uint64_t dispatches = 0;
  uint64_t starts = 0;
  uint64_t completions = 0;
  for (size_t i = 0; i < sink.size(); ++i) {
    const TraceRecord& record = sink.at(i);
    switch (record.kind) {
      case TraceEventKind::kArrival:
        EXPECT_EQ(record.machine, TraceSink::kScheduler);
        ++arrivals;
        break;
      case TraceEventKind::kDispatch:
        EXPECT_GE(record.machine, 0);
        ++dispatches;
        break;
      case TraceEventKind::kServiceStart:
        ++starts;
        break;
      case TraceEventKind::kCompletion:
        ++completions;
        break;
      default:
        break;
    }
    if (i > 0) {
      EXPECT_GE(record.time, sink.at(i - 1).time) << "out of order at " << i;
    }
  }
  EXPECT_GT(arrivals, 100u);
  // No faults: each arrival is dispatched exactly once, starts service
  // exactly once, and (with no warmup) completes as a measured job.
  EXPECT_EQ(dispatches, arrivals);
  EXPECT_EQ(starts, arrivals);
  EXPECT_EQ(completions, result.completed_jobs);
}

TEST(ObservedSimulation, ObservationDoesNotPerturbResults) {
  hs::cluster::SimulationConfig config = small_cluster_config();
  const auto plain = run_orr(config);

  TraceSink sink;
  MetricsRegistry registry;
  Observer observer;
  observer.trace = &sink;
  observer.metrics = &registry;
  observer.sample_interval = 50.0;
  config.observer = &observer;
  const auto observed = run_orr(config);

  // Bit-identical simulation: observation draws no RNG and moves no event.
  EXPECT_EQ(observed.mean_response_time, plain.mean_response_time);
  EXPECT_EQ(observed.mean_response_ratio, plain.mean_response_ratio);
  EXPECT_EQ(observed.completed_jobs, plain.completed_jobs);
  // Sampling fires exactly floor(sim_time / interval) extra events.
  EXPECT_EQ(observed.events_fired, plain.events_fired + 10);
  // t = 0 sample plus one per tick.
  EXPECT_EQ(registry.sample_count(), 11u);
  EXPECT_DOUBLE_EQ(registry.sample_time(0), 0.0);
  EXPECT_DOUBLE_EQ(registry.sample_time(10), 500.0);
}

TEST(ObservedSimulation, TraceIsDeterministic) {
  hs::cluster::SimulationConfig config = small_cluster_config();
  TraceSink first;
  TraceSink second;
  Observer observer;
  observer.trace = &first;
  config.observer = &observer;
  (void)run_orr(config);
  observer.trace = &second;
  (void)run_orr(config);

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    const TraceRecord& a = first.at(i);
    const TraceRecord& b = second.at(i);
    EXPECT_EQ(a.time, b.time) << "record " << i;
    EXPECT_EQ(a.kind, b.kind) << "record " << i;
    EXPECT_EQ(a.job, b.job) << "record " << i;
    EXPECT_EQ(a.machine, b.machine) << "record " << i;
  }
}

TEST(ObservedSimulation, StandardGaugesCoverClusterAndMachines) {
  hs::cluster::SimulationConfig config = small_cluster_config();
  MetricsRegistry registry;
  Observer observer;
  observer.metrics = &registry;
  observer.sample_interval = 100.0;
  config.observer = &observer;
  const auto result = run_orr(config);

  // 7 per-machine series plus the cluster-wide set (fault, overload,
  // adaptation and network columns are always registered so the CSV
  // schema is stable).
  EXPECT_EQ(registry.metric_count(), 7 * config.speeds.size() + 17);
  const size_t last = registry.sample_count() - 1;
  // By the final sample every dispatch has been counted.
  EXPECT_DOUBLE_EQ(
      registry.value(last, registry.column("cluster.dispatched")),
      static_cast<double>(result.dispatched_jobs));
  // Utilization gauges stay in [0, 1]; speed gauges match the config.
  for (size_t m = 0; m < config.speeds.size(); ++m) {
    const std::string prefix = "m" + std::to_string(m);
    const double util =
        registry.value(last, registry.column(prefix + ".utilization"));
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
    EXPECT_DOUBLE_EQ(
        registry.value(last, registry.column(prefix + ".speed")),
        config.speeds[m]);
  }
  // No faults configured: the fault columns exist and read zero.
  EXPECT_DOUBLE_EQ(registry.value(last, registry.column("cluster.lost")),
                   0.0);
  // No adaptive dispatcher: the adaptation columns exist and read zero.
  EXPECT_DOUBLE_EQ(
      registry.value(last, registry.column("cluster.lambda_hat")), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.value(last, registry.column("cluster.realloc_commits")), 0.0);
  EXPECT_DOUBLE_EQ(registry.value(last, registry.column("m0.speed_hat")),
                   0.0);
}

TEST(ObservedSimulation, FaultEventsAppearInTrace) {
  hs::cluster::SimulationConfig config = small_cluster_config();
  config.sim_time = 2000.0;
  config.faults.processes.assign(config.speeds.size(), {400.0, 50.0});
  config.faults.retry.max_attempts = 3;
  config.faults.retry.backoff_initial = 1.0;
  TraceSink sink;
  Observer observer;
  observer.trace = &sink;
  config.observer = &observer;
  const auto result = run_orr(config);

  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t losses = 0;
  uint64_t retries = 0;
  for (size_t i = 0; i < sink.size(); ++i) {
    switch (sink.at(i).kind) {
      case TraceEventKind::kCrash:
        EXPECT_EQ(sink.at(i).job, TraceSink::kNoJob);
        ++crashes;
        break;
      case TraceEventKind::kRecovery:
        ++recoveries;
        break;
      case TraceEventKind::kJobLost:
        ++losses;
        break;
      case TraceEventKind::kRetry:
        ++retries;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GE(crashes, recoveries);  // the run can end mid-outage
  EXPECT_GT(losses, 0u);
  // Warmup is zero, so the trace sees at least the measured retries
  // (plus any post-sim_time drain losses the counters exclude).
  EXPECT_GE(losses, result.jobs_lost);
  EXPECT_GE(retries, result.jobs_retried);
}

TEST(ObservedSimulation, ReplicatedExperimentRejectsSharedObserver) {
  hs::cluster::ExperimentConfig config;
  config.simulation = small_cluster_config();
  config.replications = 2;
  TraceSink sink;
  Observer observer;
  observer.trace = &sink;
  config.simulation.observer = &observer;
  EXPECT_THROW(
      (void)hs::cluster::run_experiment(
          config, hs::core::policy_dispatcher_factory(
                      hs::core::PolicyKind::kORR, config.simulation.speeds,
                      config.simulation.rho, 1.0)),
      hs::util::CheckError);
}

TEST(ReplicationPath, InsertsBeforeExtension) {
  EXPECT_EQ(hs::cluster::replication_path("out.json", 2, 5), "out.rep2.json");
  EXPECT_EQ(hs::cluster::replication_path("out.json", 0, 1), "out.json");
  EXPECT_EQ(hs::cluster::replication_path("noext", 1, 3), "noext.rep1");
  EXPECT_EQ(hs::cluster::replication_path("a.dir/noext", 1, 3),
            "a.dir/noext.rep1");
  EXPECT_EQ(hs::cluster::replication_path("a.dir/t.csv", 1, 3),
            "a.dir/t.rep1.csv");
}

}  // namespace
