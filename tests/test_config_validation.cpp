// Table-driven config-validation sweep.
//
// Every robustness-layer config promises "throws util::CheckError on
// out-of-range fields", and the explorer (src/explore) leans on that
// promise: a validate() that lets NaN or +Inf through turns a scheduled
// run into silent nonsense instead of a loud error. Earlier tests
// hand-enumerated a few bad values per struct; this sweep instead
// drives *every* numeric field of FaultConfig, NetworkConfig,
// OverloadConfig, UncertaintyConfig, and the serving configs through a
// shared table of poison values (NaN, ±Inf, negatives, invalid zeros)
// and asserts a per-field CheckError — plus one in-range value per
// field, proving the case actually exercises the field it names.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "cluster/faults.h"
#include "cluster/netfaults.h"
#include "overload/admission.h"
#include "overload/config.h"
#include "serving/health.h"
#include "serving/serving_dispatcher.h"
#include "uncertainty/config.h"
#include "util/check.h"

namespace {

using hs::util::CheckError;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Poison sets by field contract. Every double field belongs to one.
const std::vector<double> kNonNegative = {kNaN, kInf, -kInf, -1.0, -1e-9};
const std::vector<double> kPositive = {kNaN, kInf, -kInf, -1.0, 0.0};
const std::vector<double> kProbabilityHalfOpen =  // [0, 1)
    {kNaN, kInf, -kInf, -0.5, 1.0, 2.0};
const std::vector<double> kFactorAtLeastOne =  // finite, >= 1
    {kNaN, kInf, -kInf, -1.0, 0.0, 0.5};

/// One numeric field: `run(v)` installs v into an otherwise-valid config
/// and validates. Every value in `bad` must throw; every value in `good`
/// must not (the no-throw side is what proves the lambda pokes a live
/// field rather than validating a default config).
struct FieldCase {
  std::string name;
  std::function<void(double)> run;
  std::vector<double> bad;
  std::vector<double> good;
};

void run_sweep(const std::vector<FieldCase>& cases) {
  for (const FieldCase& field : cases) {
    SCOPED_TRACE(field.name);
    for (double value : field.bad) {
      SCOPED_TRACE(value);
      EXPECT_THROW(field.run(value), CheckError);
    }
    for (double value : field.good) {
      SCOPED_TRACE(value);
      EXPECT_NO_THROW(field.run(value));
    }
  }
}

// ---- FaultConfig ---------------------------------------------------------

hs::cluster::FaultConfig valid_faults() {
  hs::cluster::FaultConfig config;
  config.processes.assign(3, {50.0, 5.0});
  config.outages.push_back({10.0, 5.0, 0});
  return config;
}

TEST(ConfigValidationSweep, FaultConfigNumericFields) {
  const auto with = [](auto set) {
    return [set](double v) {
      hs::cluster::FaultConfig config = valid_faults();
      set(config, v);
      config.validate(3, 100.0);
    };
  };
  run_sweep({
      {"processes[0].mtbf",
       with([](auto& c, double v) { c.processes[0].mtbf = v; }),
       kNonNegative,
       {0.0, 50.0}},
      {"processes[0].mttr",
       with([](auto& c, double v) { c.processes[0].mttr = v; }),
       kPositive,
       {5.0}},
      {"outages[0].start",
       with([](auto& c, double v) { c.outages[0].start = v; }),
       {kNaN, kInf, -kInf, -1.0, 1000.0},  // 1000 > sim_time
       {0.0, 10.0}},
      {"outages[0].duration",
       with([](auto& c, double v) { c.outages[0].duration = v; }),
       kPositive,
       {5.0}},
      {"retry.backoff_initial",
       with([](auto& c, double v) { c.retry.backoff_initial = v; }),
       kNonNegative,
       {0.0, 1.0}},
      {"retry.backoff_factor",
       with([](auto& c, double v) { c.retry.backoff_factor = v; }),
       kFactorAtLeastOne,
       {1.0, 2.0}},
      {"retry.job_timeout",
       with([](auto& c, double v) { c.retry.job_timeout = v; }),
       kNonNegative,
       {0.0, 30.0}},
  });
}

TEST(ConfigValidationSweep, FaultConfigIntegerFields) {
  hs::cluster::FaultConfig config = valid_faults();
  config.retry.max_attempts = 0;
  EXPECT_THROW(config.validate(3, 100.0), CheckError);
}

// ---- NetworkConfig -------------------------------------------------------

hs::cluster::NetworkConfig valid_network() {
  hs::cluster::NetworkConfig config;
  config.dispatch_link.loss = 0.01;
  config.dispatch_link.delay_mean = 0.1;
  config.dispatch_link.tail_prob = 0.05;
  config.dispatch_link.tail_factor = 3.0;
  config.dispatch_link.duplicate = 0.01;
  config.report_link.loss = 0.01;
  config.report_link.delay_mean = 0.1;
  config.heartbeat.interval = 1.0;
  config.partitions.push_back({1.0, 2.0, {0}});
  return config;
}

TEST(ConfigValidationSweep, NetworkConfigNumericFields) {
  const auto with = [](auto set) {
    return [set](double v) {
      hs::cluster::NetworkConfig config = valid_network();
      set(config, v);
      config.validate(3, 100.0);
    };
  };
  run_sweep({
      {"detection_interval",
       with([](auto& c, double v) { c.detection_interval = v; }),
       kNonNegative,
       {0.0, 1.0}},
      {"message_delay_mean",
       with([](auto& c, double v) { c.message_delay_mean = v; }),
       kNonNegative,
       {0.0, 0.05}},
      {"dispatch_link.loss",
       with([](auto& c, double v) { c.dispatch_link.loss = v; }),
       kProbabilityHalfOpen,
       {0.0, 0.5}},
      {"dispatch_link.delay_mean",
       with([](auto& c, double v) { c.dispatch_link.delay_mean = v; }),
       // 0 is legal for the field itself but this base config has
       // tail_prob > 0, which requires a positive mean.
       {kNaN, kInf, -kInf, -1.0, 0.0},
       {0.1}},
      {"dispatch_link.tail_prob",
       with([](auto& c, double v) { c.dispatch_link.tail_prob = v; }),
       {kNaN, kInf, -kInf, -0.5, 1.5},
       {0.0, 1.0}},
      {"dispatch_link.tail_factor",
       with([](auto& c, double v) { c.dispatch_link.tail_factor = v; }),
       kFactorAtLeastOne,
       {1.0, 3.0}},
      {"dispatch_link.duplicate",
       with([](auto& c, double v) { c.dispatch_link.duplicate = v; }),
       kProbabilityHalfOpen,
       {0.0, 0.5}},
      {"report_link.loss",
       with([](auto& c, double v) { c.report_link.loss = v; }),
       kProbabilityHalfOpen,
       {0.0, 0.5}},
      {"report_link.delay_mean",
       with([](auto& c, double v) { c.report_link.delay_mean = v; }),
       kNonNegative,
       {0.0, 0.1}},
      {"heartbeat.interval",
       with([](auto& c, double v) { c.heartbeat.interval = v; }),
       kNonNegative,
       {0.0, 1.0}},
      {"heartbeat.phi_threshold",
       with([](auto& c, double v) { c.heartbeat.phi_threshold = v; }),
       kPositive,
       {8.0}},
      {"heartbeat.ewma_alpha",
       with([](auto& c, double v) { c.heartbeat.ewma_alpha = v; }),
       {kNaN, kInf, -kInf, -0.5, 0.0, 1.5},
       {0.1, 1.0}},
      {"partitions[0].start",
       with([](auto& c, double v) { c.partitions[0].start = v; }),
       {kNaN, kInf, -kInf, -1.0, 1000.0},  // 1000 > sim_time
       {0.0, 1.0}},
      {"partitions[0].duration",
       with([](auto& c, double v) { c.partitions[0].duration = v; }),
       kPositive,
       {2.0}},
  });
}

// ---- OverloadConfig ------------------------------------------------------

hs::overload::OverloadConfig valid_overload() {
  hs::overload::OverloadConfig config;
  config.queue_capacity = 8;
  config.admission = hs::overload::AdmissionKind::kDeadlineShed;
  config.slo_budget = 1.0;
  config.shed_probability = 1.0;
  config.retry_budget.enabled = true;
  return config;
}

TEST(ConfigValidationSweep, OverloadConfigNumericFields) {
  const auto with = [](auto set) {
    return [set](double v) {
      hs::overload::OverloadConfig config = valid_overload();
      set(config, v);
      config.validate(3);
    };
  };
  run_sweep({
      {"slo_budget",
       with([](auto& c, double v) { c.slo_budget = v; }),
       kPositive,
       {1.0}},
      {"shed_probability",
       with([](auto& c, double v) { c.shed_probability = v; }),
       {kNaN, kInf, -kInf, -0.5, 0.0, 1.5},
       {0.5, 1.0}},
      {"retry_budget.tokens_per_admission",
       with([](auto& c, double v) { c.retry_budget.tokens_per_admission = v; }),
       kNonNegative,
       {0.0, 0.2}},
      {"retry_budget.burst",
       with([](auto& c, double v) { c.retry_budget.burst = v; }),
       kPositive,
       {10.0}},
      {"retry_budget.initial_tokens",
       with([](auto& c, double v) { c.retry_budget.initial_tokens = v; }),
       kNonNegative,
       {0.0, 10.0}},
  });
}

TEST(ConfigValidationSweep, OverloadConfigIntegerFields) {
  hs::overload::OverloadConfig config = valid_overload();
  config.machine_capacity = {4, 0, 4};
  EXPECT_THROW(config.validate(3), CheckError);

  config = valid_overload();
  config.admission = hs::overload::AdmissionKind::kQueueBoundShed;
  config.admission_queue_bound = 0;
  EXPECT_THROW(config.validate(3), CheckError);
}

// ---- UncertaintyConfig ---------------------------------------------------

hs::uncertainty::UncertaintyConfig valid_uncertainty() {
  hs::uncertainty::UncertaintyConfig config;
  config.lambda_error = {0.8, 0.1};
  config.speed_error = {1.2, 0.1};
  config.staleness.update_interval = 1.0;
  config.staleness.report_delay = 0.5;
  return config;
}

TEST(ConfigValidationSweep, UncertaintyConfigNumericFields) {
  const auto with = [](auto set) {
    return [set](double v) {
      hs::uncertainty::UncertaintyConfig config = valid_uncertainty();
      set(config, v);
      config.validate(100.0);
    };
  };
  run_sweep({
      {"lambda_error.bias",
       with([](auto& c, double v) { c.lambda_error.bias = v; }),
       kPositive,
       {0.7, 1.0}},
      {"lambda_error.noise_cv",
       with([](auto& c, double v) { c.lambda_error.noise_cv = v; }),
       kNonNegative,
       {0.0, 0.3}},
      {"speed_error.bias",
       with([](auto& c, double v) { c.speed_error.bias = v; }),
       kPositive,
       {0.7, 1.0}},
      {"speed_error.noise_cv",
       with([](auto& c, double v) { c.speed_error.noise_cv = v; }),
       kNonNegative,
       {0.0, 0.3}},
      {"staleness.update_interval",
       with([](auto& c, double v) { c.staleness.update_interval = v; }),
       {kNaN, kInf, -kInf, -1.0, 100.0},  // must stay below sim_time
       {0.0, 1.0}},
      {"staleness.report_delay",
       with([](auto& c, double v) { c.staleness.report_delay = v; }),
       kNonNegative,
       {0.0, 5.0}},
  });
}

TEST(ConfigValidationSweep, DriftTimelineNumericFields) {
  const auto step = [](auto set) {
    return [set](double v) {
      hs::uncertainty::DriftTimeline drift;
      drift.kind = hs::uncertainty::DriftKind::kStep;
      drift.steps = {{10.0, 1.5}};
      set(drift, v);
      drift.validate(100.0);
    };
  };
  const auto ramp = [](auto set) {
    return [set](double v) {
      hs::uncertainty::DriftTimeline drift;
      drift.kind = hs::uncertainty::DriftKind::kRamp;
      drift.ramp_start = 10.0;
      drift.ramp_end = 20.0;
      set(drift, v);
      drift.validate(100.0);
    };
  };
  const auto periodic = [](auto set) {
    return [set](double v) {
      hs::uncertainty::DriftTimeline drift;
      drift.kind = hs::uncertainty::DriftKind::kPeriodic;
      drift.period = 50.0;
      drift.amplitude = 0.5;
      set(drift, v);
      drift.validate(100.0);
    };
  };
  run_sweep({
      {"steps[0].time",
       step([](auto& d, double v) { d.steps[0].time = v; }),
       {kNaN, kInf, -kInf, -1.0, 100.0},  // must land before sim_time
       {0.0, 10.0}},
      {"steps[0].factor",
       step([](auto& d, double v) { d.steps[0].factor = v; }),
       kPositive,
       {0.5, 1.5}},
      {"ramp_start",
       ramp([](auto& d, double v) { d.ramp_start = v; }),
       {kNaN, kInf, -kInf, -1.0, 20.0, 30.0},  // must precede ramp_end
       {0.0, 10.0}},
      {"ramp_end",
       ramp([](auto& d, double v) { d.ramp_end = v; }),
       {kNaN, kInf, -kInf, -1.0, 10.0, 5.0},  // must follow ramp_start
       {20.0}},
      {"start_factor",
       ramp([](auto& d, double v) { d.start_factor = v; }),
       kPositive,
       {1.0}},
      {"end_factor",
       ramp([](auto& d, double v) { d.end_factor = v; }),
       kPositive,
       {1.0}},
      {"period",
       periodic([](auto& d, double v) { d.period = v; }),
       kPositive,
       {50.0}},
      {"amplitude",
       periodic([](auto& d, double v) { d.amplitude = v; }),
       {kNaN, kInf, -kInf, -0.5, 1.0, 2.0},
       {0.0, 0.5}},
      {"phase",
       periodic([](auto& d, double v) { d.phase = v; }),
       {kNaN, kInf, -kInf},
       {-1.0, 0.0, 3.14}},
  });
}

// ---- Serving configs -----------------------------------------------------

TEST(ConfigValidationSweep, HealthConfigNumericFields) {
  const auto with = [](auto set) {
    return [set](double v) {
      hs::serving::HealthConfig config;
      config.release_deadline = 0.3;
      config.heartbeat.interval = 0.2;
      set(config, v);
      config.validate();
    };
  };
  run_sweep({
      {"release_deadline",
       with([](auto& c, double v) { c.release_deadline = v; }),
       kNonNegative,
       {0.0, 0.3}},
      {"heartbeat.interval",
       with([](auto& c, double v) { c.heartbeat.interval = v; }),
       kNonNegative,
       {0.0, 0.2}},
      {"heartbeat.phi_threshold",
       with([](auto& c, double v) { c.heartbeat.phi_threshold = v; }),
       kPositive,
       {8.0}},
      {"heartbeat.ewma_alpha",
       with([](auto& c, double v) { c.heartbeat.ewma_alpha = v; }),
       {kNaN, kInf, -kInf, -0.5, 0.0, 1.5},
       {0.1, 1.0}},
  });

  hs::serving::HealthConfig config;
  config.timeout_threshold = 0;
  EXPECT_THROW(config.validate(), CheckError);
  config = {};
  config.max_tracked = 0;
  EXPECT_THROW(config.validate(), CheckError);
}

TEST(ConfigValidationSweep, DegradationConfigNumericFields) {
  static hs::overload::ProbabilisticShed shed(0.5);
  const auto with = [](auto set) {
    return [set](double v) {
      hs::serving::DegradationConfig config;
      config.brownout_below = 0.5;
      config.brownout_policy = &shed;
      config.fail_static_after = 1.0;
      config.fail_static_fractions = {0.2, 0.3, 0.5};
      set(config, v);
      config.validate(3, /*health_enabled=*/true);
    };
  };
  run_sweep({
      {"brownout_below",
       with([](auto& c, double v) { c.brownout_below = v; }),
       {kNaN, kInf, -kInf, -0.5, 1.5},
       {0.0, 0.5, 1.0}},
      {"fail_static_after",
       with([](auto& c, double v) { c.fail_static_after = v; }),
       kNonNegative,
       {0.0, 1.0}},
      {"fail_static_fractions[0]",
       // A poison entry breaks the per-entry check; any in-range change
       // breaks the sum-to-1 check, so only the exact base value passes.
       with([](auto& c, double v) { c.fail_static_fractions[0] = v; }),
       {kNaN, kInf, -kInf, -0.2, 0.9},
       {0.2}},
  });
}

}  // namespace
