// util::seed_from_env — the one shared path from environment variables
// to reproducible seeds (chaos soak, explorer search, any future
// randomized harness).
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/check.h"
#include "util/env.h"

namespace {

using hs::util::CheckError;
using hs::util::seed_from_env;

// Each test uses its own variable name so parallel gtest shards cannot
// race on the process environment.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    ::unsetenv(name_);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  void set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
};

TEST(SeedFromEnv, UnsetReturnsFallback) {
  EnvGuard guard("HS_TEST_SEED_UNSET");
  EXPECT_EQ(seed_from_env("HS_TEST_SEED_UNSET", 17), 17u);
}

TEST(SeedFromEnv, EmptyReturnsFallback) {
  EnvGuard guard("HS_TEST_SEED_EMPTY");
  guard.set("");
  EXPECT_EQ(seed_from_env("HS_TEST_SEED_EMPTY", 17), 17u);
}

TEST(SeedFromEnv, ParsesDecimalValues) {
  EnvGuard guard("HS_TEST_SEED_VALUE");
  guard.set("0");
  EXPECT_EQ(seed_from_env("HS_TEST_SEED_VALUE", 17), 0u);
  guard.set("123456789");
  EXPECT_EQ(seed_from_env("HS_TEST_SEED_VALUE", 17), 123456789u);
  guard.set("18446744073709551615");  // UINT64_MAX
  EXPECT_EQ(seed_from_env("HS_TEST_SEED_VALUE", 17),
            18446744073709551615ull);
}

TEST(SeedFromEnv, RejectsGarbage) {
  EnvGuard guard("HS_TEST_SEED_BAD");
  for (const char* bad : {"abc", "12x", "x12", "-1", "+1", " 12", "12 ",
                          "0x10", "1.5", "18446744073709551616"}) {
    guard.set(bad);
    EXPECT_THROW((void)seed_from_env("HS_TEST_SEED_BAD", 17), CheckError)
        << "value: '" << bad << "'";
  }
}

}  // namespace
