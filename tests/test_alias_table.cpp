// Tests for the Walker/Vose alias table (rng/alias_table.h).
//
// The sampler's contract is distributional equivalence with
// DiscreteChoice — identical normalized targets, statistically
// indistinguishable empirical frequencies — delivered in O(1) per draw
// with an in-place rebuild. The chi-square checks here use generous
// critical values (far beyond the 99.9th percentile for their degrees
// of freedom) so seed sensitivity cannot flake the suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::rng::AliasTable;
using hs::rng::DiscreteChoice;
using hs::rng::Xoshiro256;

std::vector<double> weights_to_vector(std::initializer_list<double> w) {
  return std::vector<double>(w);
}

TEST(AliasTable, SingleWeightAlwaysReturnsZero) {
  const std::vector<double> weights = {7.0};
  AliasTable table{std::span<const double>(weights)};
  Xoshiro256 gen(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.sample(gen), 0u);
  }
  EXPECT_DOUBLE_EQ(table.probability(0), 1.0);
}

TEST(AliasTable, ProbabilitiesMatchDiscreteChoiceTargets) {
  const std::vector<double> weights = {2.0, 6.0, 0.0, 24.0};
  AliasTable table{std::span<const double>(weights)};
  const DiscreteChoice choice(weights);
  ASSERT_EQ(table.size(), choice.size());
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_DOUBLE_EQ(table.probability(i), choice.probability(i)) << i;
  }
}

TEST(AliasTable, InvalidWeightsThrow) {
  const std::vector<double> empty;
  const std::vector<double> all_zero = {0.0, 0.0};
  const std::vector<double> negative = {1.0, -0.5};
  AliasTable table;
  EXPECT_THROW(table.rebuild(empty), hs::util::CheckError);
  EXPECT_THROW(table.rebuild(all_zero), hs::util::CheckError);
  EXPECT_THROW(table.rebuild(negative), hs::util::CheckError);
}

TEST(AliasTable, ZeroWeightIndicesAreNeverSampled) {
  const std::vector<double> weights = {0.0, 3.0, 0.0, 1.0, 0.0};
  AliasTable table{std::span<const double>(weights)};
  Xoshiro256 gen(7);
  for (int i = 0; i < 20000; ++i) {
    const size_t pick = table.sample(gen);
    EXPECT_TRUE(pick == 1 || pick == 3) << pick;
  }
}

// The satellite check: alias-table empirical frequencies match the
// DiscreteChoice target fractions under a chi-square goodness-of-fit
// test. Skewed weights (three orders of magnitude) exercise the
// small/large pairing; df = 7, and the 99.9th percentile of chi²₇ is
// 24.3 — the bound of 40 leaves a wide flake margin.
TEST(AliasTable, ChiSquareMatchesTargetFractions) {
  const std::vector<double> weights = {100.0, 47.0, 23.0, 11.0,
                                       5.0,   2.0,  1.0,  0.1};
  AliasTable table{std::span<const double>(weights)};
  const DiscreteChoice choice(weights);
  constexpr int kDraws = 400000;
  Xoshiro256 gen(12345);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[table.sample(gen)]++;
  }
  double chi_square = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = choice.probability(i) * kDraws;
    ASSERT_GT(expected, 5.0) << "cell " << i << " too thin for chi-square";
    const double delta = static_cast<double>(counts[i]) - expected;
    chi_square += delta * delta / expected;
  }
  EXPECT_LT(chi_square, 40.0);
}

// Rebuilding an existing table must be indistinguishable from fresh
// construction: the alias pairing is deterministic, so the same weights
// and the same seed produce the same draw sequence either way — even
// when the rebuild shrinks the table (stale tail state must not leak).
TEST(AliasTable, RebuildMatchesFreshConstruction) {
  const std::vector<double> first = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<double> second = {9.0, 1.0, 4.0};
  AliasTable rebuilt{std::span<const double>(first)};
  rebuilt.rebuild(second);
  AliasTable fresh{std::span<const double>(second)};
  ASSERT_EQ(rebuilt.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_DOUBLE_EQ(rebuilt.probability(i), fresh.probability(i)) << i;
  }
  Xoshiro256 gen_a(99);
  Xoshiro256 gen_b(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(rebuilt.sample(gen_a), fresh.sample(gen_b)) << "draw " << i;
  }
}

TEST(AliasTable, OneDrawPerSample) {
  // sample() must consume exactly one next_double(): two generators at
  // the same seed, one driven through the table and one advanced by
  // hand, stay in lock-step.
  const std::vector<double> weights = {3.0, 1.0, 2.0};
  AliasTable table{std::span<const double>(weights)};
  Xoshiro256 gen_a(4242);
  Xoshiro256 gen_b(4242);
  for (int i = 0; i < 1000; ++i) {
    (void)table.sample(gen_a);
    (void)gen_b.next_double();
    EXPECT_EQ(gen_a.next_u64(), gen_b.next_u64()) << "draw " << i;
    // Re-sync after the comparison draw.
  }
}

// A large skewed table: every index reachable, frequencies near target
// (RMSE over all cells within the 3σ multinomial envelope).
TEST(AliasTable, LargeTableFrequenciesNearTarget) {
  constexpr size_t kMachines = 1000;
  std::vector<double> weights(kMachines);
  for (size_t i = 0; i < kMachines; ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 37);
  }
  AliasTable table{std::span<const double>(weights)};
  constexpr int kDraws = 2000000;
  Xoshiro256 gen(2026);
  std::vector<uint64_t> counts(kMachines, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[table.sample(gen)]++;
  }
  double sum_sq = 0.0;
  double sum_var = 0.0;
  for (size_t i = 0; i < kMachines; ++i) {
    const double p = table.probability(i);
    const double empirical = static_cast<double>(counts[i]) / kDraws;
    sum_sq += (empirical - p) * (empirical - p);
    sum_var += p * (1.0 - p) / kDraws;
  }
  const double rmse = std::sqrt(sum_sq / static_cast<double>(kMachines));
  const double expected_rmse =
      std::sqrt(sum_var / static_cast<double>(kMachines));
  EXPECT_LT(rmse, 3.0 * expected_rmse);
}

TEST(AliasTable, DefaultConstructedIsEmpty) {
  AliasTable table;
  EXPECT_EQ(table.size(), 0u);
  const std::vector<double> weights = weights_to_vector({1.0, 1.0});
  table.rebuild(weights);
  EXPECT_EQ(table.size(), 2u);
}

}  // namespace
