// Tests for the numeric helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace {

using namespace hs::util;

TEST(KahanSum, EmptyIsZero) {
  EXPECT_EQ(kahan_sum(std::vector<double>{}), 0.0);
}

TEST(KahanSum, MatchesExactForSmallInputs) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.5};
  EXPECT_DOUBLE_EQ(kahan_sum(v), 10.5);
}

TEST(KahanSum, CompensatesCancellation) {
  // 1 + tiny*N where naive accumulation loses the tiny terms entirely.
  std::vector<double> v;
  v.push_back(1.0);
  const double tiny = 1e-16;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    v.push_back(tiny);
  }
  const double expected = 1.0 + tiny * n;
  EXPECT_NEAR(kahan_sum(v), expected, 1e-18);
}

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean(std::vector<double>{}), 0.0); }

TEST(Mean, Simple) {
  std::vector<double> v = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 4.0);
}

TEST(SampleStddev, FewerThanTwoIsZero) {
  EXPECT_EQ(sample_stddev(std::vector<double>{}), 0.0);
  EXPECT_EQ(sample_stddev(std::vector<double>{3.0}), 0.0);
}

TEST(SampleStddev, KnownValue) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(sample_stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(ApproxEqual, ExactValues) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(ApproxEqual, RelativeTolerance) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1.0 + 1e-10)));
}

TEST(ApproxEqual, AbsoluteFloorNearZero) {
  EXPECT_TRUE(approx_equal(1e-13, 0.0));
  EXPECT_FALSE(approx_equal(1e-3, 0.0));
}

TEST(SquaredDeviation, Zero) {
  std::vector<double> a = {0.1, 0.9};
  EXPECT_EQ(squared_deviation(a, a), 0.0);
}

TEST(SquaredDeviation, KnownValue) {
  std::vector<double> a = {0.5, 0.5};
  std::vector<double> b = {0.2, 0.8};
  EXPECT_NEAR(squared_deviation(a, b), 0.09 + 0.09, 1e-15);
}

TEST(SquaredDeviation, SizeMismatchThrows) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)(squared_deviation(a, b)), hs::util::CheckError);
}

TEST(Linspace, EndpointsExact) {
  auto v = linspace(0.3, 0.9, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_DOUBLE_EQ(v.front(), 0.3);
  EXPECT_DOUBLE_EQ(v.back(), 0.9);
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] - v[i - 1], 0.1, 1e-12);
  }
}

TEST(Linspace, TwoPoints) {
  auto v = linspace(-1.0, 1.0, 2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

TEST(Linspace, OnePointThrows) {
  EXPECT_THROW((void)(linspace(0.0, 1.0, 1)), hs::util::CheckError);
}

}  // namespace
