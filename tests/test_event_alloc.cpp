// Allocation accounting for the event engine.
//
// The typed-event refactor's core promise: once a run's backing arrays
// have grown to their working depth, scheduling, firing, cancelling and
// rescheduling events performs ZERO heap allocations. These tests pin
// that with instrumented global operator new/delete — if a std::function
// or stray container growth sneaks back onto the hot path, the counters
// catch it.
//
// The counters are only read around explicitly bracketed sections, so
// the instrumentation does not interfere with gtest's own allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "queueing/job.h"
#include "queueing/ps_server.h"
#include "rng/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

std::atomic<uint64_t> g_news{0};

}  // namespace

// Count every allocation in the binary; tests diff the counter around
// the section under scrutiny.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using hs::queueing::Job;
using hs::queueing::PsServer;
using hs::rng::Xoshiro256;
using hs::sim::EventArgs;
using hs::sim::EventQueue;
using hs::sim::EventTarget;
using hs::sim::Simulator;

class AllocGuard {
 public:
  AllocGuard() : start_(g_news.load(std::memory_order_relaxed)) {}
  [[nodiscard]] uint64_t count() const {
    return g_news.load(std::memory_order_relaxed) - start_;
  }

 private:
  uint64_t start_;
};

class CountingTarget final : public EventTarget {
 public:
  void on_event(uint32_t, const EventArgs&) override { ++fired; }
  uint64_t fired = 0;
};

TEST(EventAllocation, TypedPushPopSteadyStateIsAllocationFree) {
  EventQueue queue;
  CountingTarget target;
  Xoshiro256 gen(11);
  // Grow the backing arrays past the working depth first (the loop below
  // reaches depth 257 for one push).
  queue.reserve(512);
  for (int i = 0; i < 256; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0);
  }
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0,
               EventArgs::pack(i));
    queue.pop().fire();
    queue.push(gen.uniform(0.0, 1000.0), target, 1);  // no-args variant
    queue.pop().fire();
  }
  EXPECT_EQ(guard.count(), 0u);
  EXPECT_EQ(target.fired, 20000u);
}

TEST(EventAllocation, CancelAndRescheduleAreAllocationFree) {
  EventQueue queue;
  CountingTarget target;
  Xoshiro256 gen(13);
  for (int i = 0; i < 256; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), target, 0);
  }
  auto moving = queue.push(gen.uniform(0.0, 1000.0), target, 0);
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(queue.reschedule(moving, gen.uniform(0.0, 1000.0)));
    auto handle = queue.push(gen.uniform(0.0, 1000.0), target, 0);
    EXPECT_TRUE(queue.cancel(handle));
  }
  EXPECT_EQ(guard.count(), 0u);
}

TEST(EventAllocation, SmallCallbackCapturesStayInline) {
  EventQueue queue;
  Xoshiro256 gen(17);
  uint64_t sum = 0;
  // Warm the slot pool through the callback path so steady state below
  // only reuses slots (the loop reaches depth 257 for one push).
  queue.reserve(512);
  for (int i = 0; i < 256; ++i) {
    queue.push(gen.uniform(0.0, 1000.0), [&sum] { ++sum; });
  }
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    // Capture well under InlineFn::kInlineCapacity: pointer + value.
    const uint64_t value = static_cast<uint64_t>(i);
    queue.push(gen.uniform(0.0, 1000.0), [&sum, value] { sum += value; });
    queue.pop().fire();  // earliest event: warm-up or freshly pushed
  }
  EXPECT_EQ(guard.count(), 0u);
  while (!queue.empty()) {
    queue.pop().fire();
  }
  // Every scheduled callback fired exactly once, in some time order.
  EXPECT_EQ(sum, 256u + 10000u * 9999u / 2u);
}

// With observability disabled (the default: no trace sink attached),
// the server's instrumentation sites are single never-taken branches —
// steady state stays allocation-free per event, exactly as before the
// obs/ subsystem existed.
TEST(EventAllocation, PsServerSteadyStateIsAllocationFree) {
  Simulator sim;
  PsServer server(sim, 1.0, 0);
  uint64_t completions = 0;
  server.set_completion_callback(
      [&completions](const hs::queueing::Completion&) { ++completions; });
  uint64_t id = 0;
  double t = 0.0;
  // Warm-up: grow the event queue, the server's active-job heap, and the
  // completion callback's storage.
  for (int i = 0; i < 512; ++i) {
    t += 0.5;
    sim.schedule_at(t, [&server, id, t] { server.arrive(Job{id, t, 0.4}); });
    ++id;
    sim.run_until(t);
  }
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    t += 0.5;
    sim.schedule_at(t, [&server, id, t] { server.arrive(Job{id, t, 0.4}); });
    ++id;
    sim.run_until(t);
  }
  EXPECT_EQ(guard.count(), 0u);
  sim.run_all();
  EXPECT_EQ(completions, id);
}

// Observability ON is allocation-free too: the trace ring is
// preallocated at construction, so record() is a handful of stores even
// across ring wrap-around.
TEST(EventAllocation, PsServerSteadyStateWithTracingIsAllocationFree) {
  Simulator sim;
  PsServer server(sim, 1.0, 0);
  // Small capacity so the steady-state loop wraps the ring many times.
  hs::obs::TraceSink sink(1024);
  server.set_trace_sink(&sink);
  uint64_t id = 0;
  double t = 0.0;
  for (int i = 0; i < 512; ++i) {
    t += 0.5;
    sim.schedule_at(t, [&server, id, t] { server.arrive(Job{id, t, 0.4}); });
    ++id;
    sim.run_until(t);
  }
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    t += 0.5;
    sim.schedule_at(t, [&server, id, t] { server.arrive(Job{id, t, 0.4}); });
    ++id;
    sim.run_until(t);
  }
  EXPECT_EQ(guard.count(), 0u);
  EXPECT_EQ(sink.size(), sink.capacity());  // wrapped, silently counted
  EXPECT_GT(sink.overwritten(), 0u);
}

// A bounded queue in steady rejection churn allocates nothing either:
// arrive() refuses a job with a comparison against the resident count —
// the rejected Job never touches the server's storage.
TEST(EventAllocation, BoundedQueueRejectionsAreAllocationFree) {
  Simulator sim;
  PsServer server(sim, 1.0, 0);
  server.set_capacity(4);
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t id = 0;
  double t = 0.0;
  // Warm-up: arrivals outpace service (1.0 work every 0.5 s on a
  // speed-1 server), so the queue pins at capacity and most arrivals
  // bounce.
  for (int i = 0; i < 512; ++i) {
    t += 0.5;
    sim.schedule_at(t, [&] {
      if (server.arrive(Job{id, t, 1.0})) {
        ++accepted;
      } else {
        ++rejected;
      }
    });
    ++id;
    sim.run_until(t);
  }
  EXPECT_GT(rejected, 0u);
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    t += 0.5;
    sim.schedule_at(t, [&] {
      if (server.arrive(Job{id, t, 1.0})) {
        ++accepted;
      } else {
        ++rejected;
      }
    });
    ++id;
    sim.run_until(t);
  }
  EXPECT_EQ(guard.count(), 0u);
  EXPECT_LE(server.queue_length(), 4u);
  sim.run_all();
  EXPECT_EQ(accepted + rejected, id);
}

// Sampling a reserved registry touches no allocator either: the flat
// sample matrix is grown once by reserve_samples().
TEST(EventAllocation, ReservedMetricsSamplingIsAllocationFree) {
  hs::obs::MetricsRegistry registry;
  double gauge_value = 0.0;
  uint64_t counter = 0;
  registry.register_gauge("g", [&gauge_value] { return gauge_value; });
  registry.register_counter("c", &counter);
  registry.reserve_samples(10000);
  AllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    gauge_value += 0.5;
    ++counter;
    registry.sample(static_cast<double>(i));
  }
  EXPECT_EQ(guard.count(), 0u);
  EXPECT_EQ(registry.sample_count(), 10000u);
}

}  // namespace
