// Tests for the Dynamic Least-Load dispatcher.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dispatch/least_load.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::dispatch::LeastLoadDispatcher;
using hs::dispatch::LeastLoadEngine;

hs::rng::Xoshiro256 gen(1);

TEST(LeastLoad, PrefersFastestWhenAllIdle) {
  LeastLoadDispatcher d({1.0, 2.0, 10.0});
  // Normalized loads (0+1)/s: 1, 0.5, 0.1 → machine 2.
  EXPECT_EQ(d.pick(gen), 2u);
}

TEST(LeastLoad, EstimateIncrementsOnPick) {
  LeastLoadDispatcher d({1.0, 1.0});
  EXPECT_EQ(d.pick(gen), 0u);  // tie → first
  EXPECT_EQ(d.estimated_queue(0), 1u);
  EXPECT_EQ(d.pick(gen), 1u);  // now machine 1 is emptier
  EXPECT_EQ(d.pick(gen), 0u);  // alternates while no departures
}

TEST(LeastLoad, NormalizedLoadDrivesChoice) {
  LeastLoadDispatcher d({1.0, 10.0});
  // The speed-10 machine absorbs many jobs before the slow one looks
  // better: (q+1)/10 < 1 until q = 9.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(d.pick(gen), 1u) << "job " << i;
  }
  // Now (9+1)/10 == (0+1)/1 → tie, first machine wins.
  EXPECT_EQ(d.pick(gen), 0u);
}

TEST(LeastLoad, DepartureReportFreesCapacity) {
  LeastLoadDispatcher d({1.0, 1.0});
  EXPECT_EQ(d.pick(gen), 0u);
  d.on_departure_report(0);
  EXPECT_EQ(d.estimated_queue(0), 0u);
  EXPECT_EQ(d.pick(gen), 0u);  // back to the tie-first choice
}

TEST(LeastLoad, StaleReportIgnored) {
  // A crash report zeroes a machine's estimate while departure reports
  // for jobs that completed just before the crash may still be in
  // flight; such stale reports are dropped rather than rejected.
  LeastLoadDispatcher d({1.0});
  EXPECT_NO_THROW((void)(d.on_departure_report(0)));
  EXPECT_EQ(d.estimated_queue(0), 0u);
}

TEST(LeastLoad, ResetClearsEstimates) {
  LeastLoadDispatcher d({1.0, 1.0});
  (void)d.pick(gen);
  (void)d.pick(gen);
  d.reset();
  EXPECT_EQ(d.estimated_queue(0), 0u);
  EXPECT_EQ(d.estimated_queue(1), 0u);
}

TEST(LeastLoad, UsesFeedback) {
  LeastLoadDispatcher d({1.0});
  EXPECT_TRUE(d.uses_feedback());
  EXPECT_EQ(d.name(), "least-load");
  EXPECT_EQ(d.machine_count(), 1u);
}

TEST(LeastLoad, OutOfRangeReportThrows) {
  LeastLoadDispatcher d({1.0});
  EXPECT_THROW((void)(d.on_departure_report(5)), hs::util::CheckError);
  EXPECT_THROW((void)(d.estimated_queue(5)), hs::util::CheckError);
}

TEST(LeastLoad, InvalidConstructionThrows) {
  EXPECT_THROW((void)(LeastLoadDispatcher({})), hs::util::CheckError);
  EXPECT_THROW((void)(LeastLoadDispatcher({1.0, 0.0})), hs::util::CheckError);
}

TEST(LeastLoad, SteadyStateSharesFavorFastMachines) {
  // With prompt departure reports at service-rate pace, the long-run
  // job shares skew towards fast machines more than proportionally —
  // the observation behind Table 1.
  LeastLoadDispatcher d({1.0, 9.0});
  std::vector<uint64_t> counts(2, 0);
  // Crude closed loop: after each pick, report a departure from the
  // machine most likely to have finished (probability ∝ speed·queue).
  hs::rng::Xoshiro256 local_gen(5);
  for (int i = 0; i < 20000; ++i) {
    counts[d.pick(local_gen)]++;
    // Keep total in-flight around 4 jobs.
    if (d.estimated_queue(0) + d.estimated_queue(1) > 4) {
      const double w0 =
          static_cast<double>(d.estimated_queue(0)) * 1.0;
      const double w1 =
          static_cast<double>(d.estimated_queue(1)) * 9.0;
      const size_t machine =
          local_gen.next_double() * (w0 + w1) < w0 ? 0 : 1;
      if (d.estimated_queue(machine) > 0) {
        d.on_departure_report(machine);
      }
    }
  }
  const double share_fast =
      static_cast<double>(counts[1]) / static_cast<double>(counts[0] + counts[1]);
  // Proportional share would be 0.9; least-load must exceed it.
  EXPECT_GT(share_fast, 0.9);
}

// ---------------------------------------------------------------------
// Tournament-tree vs linear-scan differential testing. The tree engine
// must reproduce the reference scan bit-identically — same winner on
// every pick, same hedge choice under exclusion, same behavior through
// availability churn — because the golden determinism suite pins the
// scan's historical sequences.

// Small deterministic fixture: both engines exist side by side and every
// mutation is applied to both.
class EngineHarness {
 public:
  explicit EngineHarness(std::vector<double> speeds)
      : tree_(speeds, LeastLoadEngine::kTree),
        scan_(speeds, LeastLoadEngine::kScan),
        machines_(speeds.size()) {}

  void pick(hs::rng::Xoshiro256& g) {
    ASSERT_EQ(tree_.pick(g), scan_.pick(g));
  }
  void pick_hedge(hs::rng::Xoshiro256& g, size_t exclude) {
    const size_t from_tree = tree_.pick_hedge(g, 1.0, exclude);
    const size_t from_scan = scan_.pick_hedge(g, 1.0, exclude);
    ASSERT_EQ(from_tree, from_scan) << "exclude " << exclude;
  }
  void departure(size_t machine) {
    tree_.on_departure_report(machine);
    scan_.on_departure_report(machine);
  }
  void load_report(size_t machine, uint64_t queue) {
    tree_.on_load_report(machine, queue);
    scan_.on_load_report(machine, queue);
  }
  void mask(const std::vector<bool>& available) {
    ASSERT_TRUE(tree_.set_available_mask(available));
    ASSERT_TRUE(scan_.set_available_mask(available));
  }
  void check_estimates() {
    for (size_t i = 0; i < machines_; ++i) {
      ASSERT_EQ(tree_.estimated_queue(i), scan_.estimated_queue(i)) << i;
    }
  }
  [[nodiscard]] size_t machines() const { return machines_; }

 private:
  LeastLoadDispatcher tree_;
  LeastLoadDispatcher scan_;
  size_t machines_;
};

TEST(LeastLoadDifferential, EnginesAgreeOnDefaults) {
  LeastLoadDispatcher d({1.0, 2.0});
  EXPECT_EQ(d.engine(), LeastLoadEngine::kTree);
  LeastLoadDispatcher ref({1.0, 2.0}, LeastLoadEngine::kScan);
  EXPECT_EQ(ref.engine(), LeastLoadEngine::kScan);
}

TEST(LeastLoadDifferential, RandomizedChurnBitIdentical) {
  // Speeds with repeats force ties (lowest-index rule), and a wide range
  // forces the tree comparator through very unequal keys.
  std::vector<double> speeds;
  hs::rng::Xoshiro256 speed_gen(20260808);
  for (int i = 0; i < 67; ++i) {  // odd size: tree pads to 128 leaves
    const double choices[] = {0.5, 1.0, 1.0, 2.0, 4.0, 4.0, 16.0};
    speeds.push_back(choices[speed_gen.next_u64() % 7]);
  }
  EngineHarness harness(speeds);
  std::vector<bool> available(speeds.size(), true);
  hs::rng::Xoshiro256 op_gen(99);
  for (int step = 0; step < 30000; ++step) {
    const uint64_t op = op_gen.next_u64() % 100;
    const size_t machine = op_gen.next_u64() % harness.machines();
    if (op < 45) {
      harness.pick(op_gen);
    } else if (op < 60) {
      harness.pick_hedge(op_gen, machine);
    } else if (op < 80) {
      harness.departure(machine);
    } else if (op < 90) {
      harness.load_report(machine, op_gen.next_u64() % 12);
    } else {
      // Mask churn: flip one machine, occasionally blackout everything.
      if (op == 99) {
        const bool blackout = op_gen.next_u64() % 2 == 0;
        for (size_t i = 0; i < available.size(); ++i) {
          available[i] = !blackout;
        }
      } else {
        available[machine] = !available[machine];
      }
      harness.mask(available);
    }
    if (step % 1000 == 0) {
      harness.check_estimates();
    }
  }
  harness.check_estimates();
}

TEST(LeastLoadDifferential, HedgeExclusionEdgeCases) {
  // One available machine: hedging against it returns it unchanged (the
  // caller's skip signal) in both engines, with no estimate movement.
  for (const LeastLoadEngine engine :
       {LeastLoadEngine::kTree, LeastLoadEngine::kScan}) {
    LeastLoadDispatcher d({1.0, 2.0, 4.0}, engine);
    ASSERT_TRUE(d.set_available_mask({false, true, false}));
    hs::rng::Xoshiro256 g(3);
    EXPECT_EQ(d.pick_hedge(g, 1.0, 1), 1u);
    EXPECT_EQ(d.estimated_queue(1), 0u);
    // With a second machine up, the hedge goes there instead.
    ASSERT_TRUE(d.set_available_mask({true, true, false}));
    EXPECT_EQ(d.pick_hedge(g, 1.0, 1), 0u);
    EXPECT_EQ(d.estimated_queue(0), 1u);
  }
}

TEST(LeastLoadDifferential, AllMaskedTreatsEveryMachineAsCandidate) {
  for (const LeastLoadEngine engine :
       {LeastLoadEngine::kTree, LeastLoadEngine::kScan}) {
    LeastLoadDispatcher d({1.0, 8.0}, engine);
    ASSERT_TRUE(d.set_available_mask({false, false}));
    hs::rng::Xoshiro256 g(4);
    // Jobs must go somewhere: the fastest machine wins as if all were up.
    EXPECT_EQ(d.pick(g), 1u);
  }
}

}  // namespace
