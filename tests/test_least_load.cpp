// Tests for the Dynamic Least-Load dispatcher.
#include <gtest/gtest.h>

#include <vector>

#include "dispatch/least_load.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::dispatch::LeastLoadDispatcher;

hs::rng::Xoshiro256 gen(1);

TEST(LeastLoad, PrefersFastestWhenAllIdle) {
  LeastLoadDispatcher d({1.0, 2.0, 10.0});
  // Normalized loads (0+1)/s: 1, 0.5, 0.1 → machine 2.
  EXPECT_EQ(d.pick(gen), 2u);
}

TEST(LeastLoad, EstimateIncrementsOnPick) {
  LeastLoadDispatcher d({1.0, 1.0});
  EXPECT_EQ(d.pick(gen), 0u);  // tie → first
  EXPECT_EQ(d.estimated_queue(0), 1u);
  EXPECT_EQ(d.pick(gen), 1u);  // now machine 1 is emptier
  EXPECT_EQ(d.pick(gen), 0u);  // alternates while no departures
}

TEST(LeastLoad, NormalizedLoadDrivesChoice) {
  LeastLoadDispatcher d({1.0, 10.0});
  // The speed-10 machine absorbs many jobs before the slow one looks
  // better: (q+1)/10 < 1 until q = 9.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(d.pick(gen), 1u) << "job " << i;
  }
  // Now (9+1)/10 == (0+1)/1 → tie, first machine wins.
  EXPECT_EQ(d.pick(gen), 0u);
}

TEST(LeastLoad, DepartureReportFreesCapacity) {
  LeastLoadDispatcher d({1.0, 1.0});
  EXPECT_EQ(d.pick(gen), 0u);
  d.on_departure_report(0);
  EXPECT_EQ(d.estimated_queue(0), 0u);
  EXPECT_EQ(d.pick(gen), 0u);  // back to the tie-first choice
}

TEST(LeastLoad, StaleReportIgnored) {
  // A crash report zeroes a machine's estimate while departure reports
  // for jobs that completed just before the crash may still be in
  // flight; such stale reports are dropped rather than rejected.
  LeastLoadDispatcher d({1.0});
  EXPECT_NO_THROW((void)(d.on_departure_report(0)));
  EXPECT_EQ(d.estimated_queue(0), 0u);
}

TEST(LeastLoad, ResetClearsEstimates) {
  LeastLoadDispatcher d({1.0, 1.0});
  (void)d.pick(gen);
  (void)d.pick(gen);
  d.reset();
  EXPECT_EQ(d.estimated_queue(0), 0u);
  EXPECT_EQ(d.estimated_queue(1), 0u);
}

TEST(LeastLoad, UsesFeedback) {
  LeastLoadDispatcher d({1.0});
  EXPECT_TRUE(d.uses_feedback());
  EXPECT_EQ(d.name(), "least-load");
  EXPECT_EQ(d.machine_count(), 1u);
}

TEST(LeastLoad, OutOfRangeReportThrows) {
  LeastLoadDispatcher d({1.0});
  EXPECT_THROW((void)(d.on_departure_report(5)), hs::util::CheckError);
  EXPECT_THROW((void)(d.estimated_queue(5)), hs::util::CheckError);
}

TEST(LeastLoad, InvalidConstructionThrows) {
  EXPECT_THROW((void)(LeastLoadDispatcher({})), hs::util::CheckError);
  EXPECT_THROW((void)(LeastLoadDispatcher({1.0, 0.0})), hs::util::CheckError);
}

TEST(LeastLoad, SteadyStateSharesFavorFastMachines) {
  // With prompt departure reports at service-rate pace, the long-run
  // job shares skew towards fast machines more than proportionally —
  // the observation behind Table 1.
  LeastLoadDispatcher d({1.0, 9.0});
  std::vector<uint64_t> counts(2, 0);
  // Crude closed loop: after each pick, report a departure from the
  // machine most likely to have finished (probability ∝ speed·queue).
  hs::rng::Xoshiro256 local_gen(5);
  for (int i = 0; i < 20000; ++i) {
    counts[d.pick(local_gen)]++;
    // Keep total in-flight around 4 jobs.
    if (d.estimated_queue(0) + d.estimated_queue(1) > 4) {
      const double w0 =
          static_cast<double>(d.estimated_queue(0)) * 1.0;
      const double w1 =
          static_cast<double>(d.estimated_queue(1)) * 9.0;
      const size_t machine =
          local_gen.next_double() * (w0 + w1) < w0 ? 0 : 1;
      if (d.estimated_queue(machine) > 0) {
        d.on_departure_report(machine);
      }
    }
  }
  const double share_fast =
      static_cast<double>(counts[1]) / static_cast<double>(counts[0] + counts[1]);
  // Proportional share would be 0.9; least-load must exceed it.
  EXPECT_GT(share_fast, 0.9);
}

}  // namespace
