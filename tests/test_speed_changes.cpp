// Tests for time-varying machine speeds (degradation / failure /
// recovery injection) on the PS server and through the cluster harness.
#include <gtest/gtest.h>

#include <map>

#include "cluster/sim.h"
#include "core/policy.h"
#include "queueing/fcfs_server.h"
#include "queueing/ps_server.h"
#include "queueing/rr_server.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace {

using hs::queueing::Completion;
using hs::queueing::FcfsServer;
using hs::queueing::Job;
using hs::queueing::PsServer;
using hs::sim::Simulator;

struct Harness {
  Simulator sim;
  PsServer server;
  std::map<uint64_t, double> departures;

  explicit Harness(double speed = 1.0) : server(sim, speed, 0) {
    server.set_completion_callback([this](const Completion& c) {
      departures[c.job.id] = c.departure_time;
    });
  }

  void arrive_at(double t, uint64_t id, double size) {
    sim.schedule_at(t, [this, id, size, t] {
      server.arrive(Job{id, t, size});
    });
  }
};

TEST(PsSpeedChange, SlowdownStretchesRemainingWork) {
  // Size 4 at speed 2: would finish at t=2. At t=1 (2 units done) the
  // machine drops to speed 1 → remaining 2 units take 2 s → t=3.
  Harness h(2.0);
  h.arrive_at(0.0, 1, 4.0);
  h.sim.schedule_at(1.0, [&] { h.server.set_speed(1.0); });
  h.sim.run_all();
  EXPECT_NEAR(h.departures[1], 3.0, 1e-9);
}

TEST(PsSpeedChange, SpeedupAcceleratesRemainingWork) {
  // Size 4 at speed 1; at t=2 (2 done) speed 4 → remaining 2 in 0.5 s.
  Harness h(1.0);
  h.arrive_at(0.0, 1, 4.0);
  h.sim.schedule_at(2.0, [&] { h.server.set_speed(4.0); });
  h.sim.run_all();
  EXPECT_NEAR(h.departures[1], 2.5, 1e-9);
}

TEST(PsSpeedChange, FullStopAndRecovery) {
  // Size 2 at speed 1; stopped during [1, 5); finishes at 6.
  Harness h(1.0);
  h.arrive_at(0.0, 1, 2.0);
  h.sim.schedule_at(1.0, [&] { h.server.set_speed(0.0); });
  h.sim.schedule_at(5.0, [&] { h.server.set_speed(1.0); });
  h.sim.run_all();
  EXPECT_NEAR(h.departures[1], 6.0, 1e-9);
}

TEST(PsSpeedChange, ArrivalsDuringStopAreHeld) {
  Harness h(1.0);
  h.sim.schedule_at(0.0, [&] { h.server.set_speed(0.0); });
  h.arrive_at(1.0, 1, 1.0);
  h.arrive_at(2.0, 2, 1.0);
  h.sim.schedule_at(10.0, [&] { h.server.set_speed(1.0); });
  h.sim.run_all();
  // Both share capacity from t=10: each needs 1 unit at rate 1/2.
  EXPECT_NEAR(h.departures[1], 12.0, 1e-9);
  EXPECT_NEAR(h.departures[2], 12.0, 1e-9);
}

TEST(PsSpeedChange, SharingPreservedAcrossChange) {
  // Two size-2 jobs from t=0 on speed 2 (each progresses at 1). At t=1
  // (each has 1 unit done) speed halves to 1 (each progresses at 0.5):
  // remaining 1 unit each → both finish at t=3.
  Harness h(2.0);
  h.arrive_at(0.0, 1, 2.0);
  h.arrive_at(0.0, 2, 2.0);
  h.sim.schedule_at(1.0, [&] { h.server.set_speed(1.0); });
  h.sim.run_all();
  EXPECT_NEAR(h.departures[1], 3.0, 1e-9);
  EXPECT_NEAR(h.departures[2], 3.0, 1e-9);
}

TEST(PsSpeedChange, NegativeSpeedRejected) {
  Harness h(1.0);
  EXPECT_THROW(h.server.set_speed(-1.0), hs::util::CheckError);
}

// ------------------------------------------------- other disciplines

TEST(FcfsSpeedChange, MidServiceChangeBanksWork) {
  // Size 4 at speed 2 from t=0; at t=1 (2 units done) drop to speed 1:
  // remaining 2 units take 2 s → finishes at t=3. The queued job then
  // runs at speed 1: 2 more seconds.
  Simulator sim;
  FcfsServer server(sim, 2.0, 0);
  std::map<uint64_t, double> departures;
  server.set_completion_callback([&](const Completion& c) {
    departures[c.job.id] = c.departure_time;
  });
  sim.schedule_at(0.0, [&] { server.arrive(Job{1, 0.0, 4.0}); });
  sim.schedule_at(0.5, [&] { server.arrive(Job{2, 0.5, 2.0}); });
  sim.schedule_at(1.0, [&] { server.set_speed(1.0); });
  sim.run_all();
  EXPECT_NEAR(departures[1], 3.0, 1e-9);
  EXPECT_NEAR(departures[2], 5.0, 1e-9);
}

TEST(FcfsSpeedChange, StopAndRecover) {
  Simulator sim;
  FcfsServer server(sim, 1.0, 0);
  std::map<uint64_t, double> departures;
  server.set_completion_callback([&](const Completion& c) {
    departures[c.job.id] = c.departure_time;
  });
  sim.schedule_at(0.0, [&] { server.arrive(Job{1, 0.0, 2.0}); });
  sim.schedule_at(1.0, [&] { server.set_speed(0.0); });
  sim.schedule_at(4.0, [&] { server.set_speed(1.0); });
  sim.run_all();
  EXPECT_NEAR(departures[1], 5.0, 1e-9);
}

TEST(RrSpeedChange, MidSliceChangeBanksWork) {
  // Quantum 1, speed 2: job of size 3. Slice 1 would do 2 units in
  // [0,1); at t=0.5 (1 unit done) speed drops to 1, the slice restarts
  // with remaining 2 units: next slice does 1 unit in [0.5, 1.5), then
  // final slice 1 unit in [1.5, 2.5).
  Simulator sim;
  hs::queueing::RrServer server(sim, 2.0, 0, 1.0);
  std::map<uint64_t, double> departures;
  server.set_completion_callback([&](const Completion& c) {
    departures[c.job.id] = c.departure_time;
  });
  sim.schedule_at(0.0, [&] { server.arrive(Job{1, 0.0, 3.0}); });
  sim.schedule_at(0.5, [&] { server.set_speed(1.0); });
  sim.run_all();
  EXPECT_NEAR(departures[1], 2.5, 1e-9);
}

TEST(RrSpeedChange, StopHoldsSliceAndQueue) {
  Simulator sim;
  hs::queueing::RrServer server(sim, 1.0, 0, 1.0);
  std::map<uint64_t, double> departures;
  server.set_completion_callback([&](const Completion& c) {
    departures[c.job.id] = c.departure_time;
  });
  sim.schedule_at(0.0, [&] { server.arrive(Job{1, 0.0, 1.0}); });
  sim.schedule_at(0.5, [&] { server.set_speed(0.0); });
  sim.schedule_at(2.5, [&] { server.set_speed(1.0); });
  sim.run_all();
  // 0.5 units done before the stop, 0.5 after recovery at t=2.5.
  EXPECT_NEAR(departures[1], 3.0, 1e-9);
}

// ------------------------------------------------- through the harness

TEST(ClusterSpeedChange, DegradedMachineHurtsStaticScheduler) {
  // Machine 1 (speed 10 of {1,10}) degrades to speed 2 halfway through.
  // ORR keeps routing by the stale speeds, so the mean response ratio
  // must be clearly worse than the no-failure run.
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 10.0};
  config.rho = 0.6;
  config.sim_time = 60000.0;
  config.warmup_frac = 0.1;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 4;

  auto healthy_d = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto healthy = hs::cluster::run_simulation(config, *healthy_d);

  config.speed_changes = {{30000.0, 1, 2.0}};
  auto degraded_d = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto degraded = hs::cluster::run_simulation(config, *degraded_d);

  EXPECT_GT(degraded.mean_response_ratio,
            1.5 * healthy.mean_response_ratio);
}

TEST(ClusterSpeedChange, LeastLoadRoutesAroundDegradation) {
  // Same degradation: the dynamic policy's queue estimates grow on the
  // degraded machine, so it reroutes and suffers far less than ORR.
  hs::cluster::SimulationConfig config;
  config.speeds = {2.0, 2.0, 10.0};
  config.rho = 0.5;
  config.sim_time = 60000.0;
  config.warmup_frac = 0.1;
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.seed = 9;
  config.speed_changes = {{20000.0, 2, 1.0}};

  auto orr = hs::core::make_policy_dispatcher(hs::core::PolicyKind::kORR,
                                              config.speeds, config.rho);
  auto ll = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kLeastLoad, config.speeds, config.rho);
  const auto orr_result = hs::cluster::run_simulation(config, *orr);
  const auto ll_result = hs::cluster::run_simulation(config, *ll);
  EXPECT_LT(ll_result.mean_response_ratio,
            0.7 * orr_result.mean_response_ratio);
}

TEST(ClusterSpeedChange, ValidationRejectsBadEvents) {
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 2.0};
  config.rho = 0.5;
  config.sim_time = 1000.0;

  config.speed_changes = {{10.0, 5, 1.0}};  // machine out of range
  EXPECT_THROW(config.validate(), hs::util::CheckError);

  config.speed_changes = {{-1.0, 0, 1.0}};  // negative time
  EXPECT_THROW(config.validate(), hs::util::CheckError);

  config.speed_changes = {{10.0, 0, -2.0}};  // negative target speed
  EXPECT_THROW(config.validate(), hs::util::CheckError);

  config.speed_changes = {{10.0, 0, 1.0}};  // valid, any discipline
  config.discipline = hs::cluster::ServiceDiscipline::kFcfs;
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
