// Tests for the HS_CHECK invariant macro.
#include <gtest/gtest.h>

#include <string>

#include "util/check.h"

namespace {

using hs::util::CheckError;

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(HS_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(HS_CHECK(false, "always fails"), CheckError);
}

TEST(Check, MessageContainsExpressionAndText) {
  try {
    const int x = -3;
    HS_CHECK(x >= 0, "x must be non-negative, got " << x);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x >= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("got -3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return true;
  };
  HS_CHECK(count(), "side effect probe");
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, MessageNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "msg";
  };
  HS_CHECK(true, count());
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, IsAlsoLogicError) {
  EXPECT_THROW(HS_CHECK(false, "inherits"), std::logic_error);
}

}  // namespace
