// The fault-space explorer: schedule format, hook semantics, invariant
// registry, search drivers, shrinker, and the committed repro corpus.
//
// The replay tests load tests/repros/*.hssched via HS_REPRO_DIR (set by
// tests/CMakeLists.txt) — those files are the repo's regression corpus:
// each must reproduce its violation with the planted bug armed and run
// clean without it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cluster/choice.h"
#include "cluster/sim.h"
#include "dispatch/least_load.h"
#include "explore/explorer.h"
#include "explore/hook.h"
#include "explore/invariants.h"
#include "explore/schedule.h"
#include "explore/shrink.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "util/check.h"

namespace {

using hs::cluster::ChoiceKind;
using hs::explore::ExploreConfig;
using hs::explore::Explorer;
using hs::explore::InvariantRegistry;
using hs::explore::Override;
using hs::explore::RunOutcome;
using hs::explore::Schedule;
using hs::explore::ScheduleHook;
using hs::explore::SearchStats;
using hs::explore::Violation;
using hs::obs::TraceEventKind;
using hs::obs::TraceSink;
using hs::util::CheckError;

// ---- HSSCHED1 round-trip and rejection -----------------------------------

Schedule gnarly_schedule() {
  Schedule schedule;
  schedule.ops.push_back(
      Override::force_bool(ChoiceKind::kDispatchLoss, 1, 3, true));
  schedule.ops.push_back(
      Override::force_bool(ChoiceKind::kHedgeIssue, 2, 0, false));
  schedule.ops.push_back(Override::force_double(
      ChoiceKind::kLinkDelay, 0, 7, 0.1));  // not exactly representable
  schedule.ops.push_back(Override::force_double(
      ChoiceKind::kFaultUptime, 5, 0, std::numeric_limits<double>::min()));
  schedule.ops.push_back(Override::force_double(
      ChoiceKind::kFaultDowntime, 0, 0,
      std::numeric_limits<double>::denorm_min()));
  schedule.ops.push_back(Override::force_double(
      ChoiceKind::kArrivalGap, 0, 12, std::numeric_limits<double>::max()));
  schedule.ops.push_back(
      Override::force_double(ChoiceKind::kFeedbackDelay, 3, 1, 0.0));
  return schedule;
}

TEST(ScheduleFormat, RoundTripsGnarlyDoublesBitExactly) {
  const Schedule schedule = gnarly_schedule();
  const std::vector<uint8_t> bytes = schedule.encode();
  const Schedule decoded = Schedule::decode(bytes);
  ASSERT_EQ(decoded.ops.size(), schedule.ops.size());
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    EXPECT_EQ(decoded.ops[i], schedule.ops[i]) << "op " << i;
    EXPECT_EQ(decoded.ops[i].value_bits, schedule.ops[i].value_bits);
  }
  EXPECT_EQ(decoded, schedule);
}

TEST(ScheduleFormat, EmptyScheduleRoundTrips) {
  const std::vector<uint8_t> bytes = Schedule{}.encode();
  EXPECT_TRUE(Schedule::decode(bytes).empty());
}

TEST(ScheduleFormat, RejectsMalformedBytes) {
  const std::vector<uint8_t> bytes = gnarly_schedule().encode();

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(Schedule::decode(bad_magic), CheckError);

  for (size_t cut : {size_t{0}, size_t{4}, size_t{9}, bytes.size() - 1}) {
    const std::vector<uint8_t> truncated(bytes.begin(),
                                         bytes.begin() + cut);
    EXPECT_THROW(Schedule::decode(truncated), CheckError) << cut;
  }

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(Schedule::decode(trailing), CheckError);
}

TEST(ScheduleFormat, RejectsInvalidOps) {
  // force_bool/force_double validate eagerly, so malformed ops (as a
  // corrupted file would decode them) are built as raw aggregates.
  Schedule bad_kind;
  bad_kind.ops.push_back(Override{static_cast<ChoiceKind>(200), 0, 0, 1});
  EXPECT_THROW(bad_kind.validate(), CheckError);

  Schedule bad_bool;
  bad_bool.ops.push_back(
      Override{ChoiceKind::kDispatchLoss, 0, 0, 2});  // non-canonical
  EXPECT_THROW(bad_bool.validate(), CheckError);

  Schedule nan_double;
  nan_double.ops.push_back(Override{ChoiceKind::kLinkDelay, 0, 0,
                                    0x7ff8000000000000ull});  // quiet NaN
  EXPECT_THROW(nan_double.validate(), CheckError);

  Schedule negative_double;
  negative_double.ops.push_back(Override{ChoiceKind::kLinkDelay, 0, 0,
                                         0xbff0000000000000ull});  // -1.0
  EXPECT_THROW(negative_double.validate(), CheckError);

  EXPECT_THROW(
      (void)Override::force_double(ChoiceKind::kLinkDelay, 0, 0, -1.0),
      CheckError);
  EXPECT_THROW(
      (void)Override::force_bool(ChoiceKind::kLinkDelay, 0, 0, true),
      CheckError);  // double kind cannot take a bool

  Schedule duplicate;
  duplicate.ops.push_back(
      Override::force_bool(ChoiceKind::kDispatchLoss, 1, 2, true));
  duplicate.ops.push_back(
      Override::force_bool(ChoiceKind::kDispatchLoss, 1, 2, false));
  EXPECT_THROW(duplicate.validate(), CheckError);
}

// ---- Hook parity: instrumentation off == empty schedule ------------------

hs::cluster::SimulationConfig small_faulty_config() {
  hs::cluster::SimulationConfig config;
  config.speeds = {1.0, 2.0, 3.0};
  config.rho = 0.8;
  config.sim_time = 200.0;
  config.warmup_frac = 0.0;
  config.seed = 7;
  config.faults.processes.assign(3, {300.0, 20.0});
  config.network.dispatch_link.loss = 0.01;
  config.network.report_link.loss = 0.01;
  config.network.heartbeat.interval = 1.0;
  return config;
}

std::vector<double> result_fingerprint(
    const hs::cluster::SimulationResult& result) {
  std::vector<double> print = {
      result.mean_response_time,
      result.mean_response_ratio,
      static_cast<double>(result.completed_jobs),
      static_cast<double>(result.dispatched_jobs),
      static_cast<double>(result.total_arrivals),
      static_cast<double>(result.total_completed),
      static_cast<double>(result.total_dropped),
      static_cast<double>(result.msgs_lost),
      static_cast<double>(result.suspicions),
      static_cast<double>(result.events_fired),
  };
  print.insert(print.end(), result.machine_fractions.begin(),
               result.machine_fractions.end());
  print.insert(print.end(), result.machine_downtime.begin(),
               result.machine_downtime.end());
  return print;
}

TEST(ChoiceHook, NullHookAndEmptyScheduleAreBitIdentical) {
  hs::cluster::SimulationConfig config = small_faulty_config();
  hs::dispatch::LeastLoadDispatcher baseline_dispatcher(config.speeds);
  const auto baseline =
      hs::cluster::run_simulation(config, baseline_dispatcher);

  ScheduleHook hook((Schedule()));
  config.choice_hook = &hook;
  hs::dispatch::LeastLoadDispatcher hooked_dispatcher(config.speeds);
  const auto hooked = hs::cluster::run_simulation(config, hooked_dispatcher);

  EXPECT_EQ(hook.applied(), 0u);
  EXPECT_FALSE(hook.sites().empty());  // it observed the run's draws
  const auto a = result_fingerprint(baseline);
  const auto b = result_fingerprint(hooked);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "fingerprint field " << i;
  }
}

TEST(ChoiceHook, ForcedCrashIsObservable) {
  const Explorer explorer(ExploreConfig{});

  const RunOutcome natural = explorer.run_schedule(Schedule{});
  ASSERT_EQ(natural.result.machine_downtime.size(), 3u);
  // The scenario's MTBF (1e8 s) makes a natural crash impossible within
  // the 120 s horizon.
  EXPECT_EQ(natural.result.machine_downtime[1], 0.0);
  EXPECT_TRUE(natural.violations.empty());

  Schedule crash;
  crash.ops.push_back(
      Override::force_double(ChoiceKind::kFaultUptime, 1, 0, 20.0));
  const RunOutcome crashed = explorer.run_schedule(crash);
  EXPECT_EQ(crashed.overrides_applied, 1u);
  EXPECT_GT(crashed.result.machine_downtime[1], 0.0);
  EXPECT_EQ(crashed.result.machine_downtime[0], 0.0);
  EXPECT_TRUE(crashed.violations.empty())
      << crashed.violations.front().to_string();
}

TEST(ChoiceHook, ScheduledRunsReplayBitIdentically) {
  const Explorer explorer(ExploreConfig{});
  Schedule schedule;
  schedule.ops.push_back(
      Override::force_double(ChoiceKind::kFaultUptime, 0, 0, 30.0));
  schedule.ops.push_back(
      Override::force_bool(ChoiceKind::kDispatchLoss, 1, 0, true));

  const RunOutcome first = explorer.run_schedule(schedule);
  const RunOutcome second = explorer.run_schedule(schedule);
  EXPECT_EQ(result_fingerprint(first.result),
            result_fingerprint(second.result));
  EXPECT_EQ(first.coverage, second.coverage);
  EXPECT_EQ(first.overrides_applied, second.overrides_applied);
}

// ---- Invariant registry: each invariant fires on violating state ---------

hs::cluster::SimulationResult consistent_result() {
  hs::cluster::SimulationResult result;
  result.machine_fractions = {1.0, 0.0, 0.0};
  result.machine_utilizations = {0.5, 0.5, 0.5};
  return result;
}

std::vector<std::string> violated_names(const TraceSink& trace,
                                        const hs::cluster::SimulationResult& r,
                                        const InvariantRegistry& registry) {
  std::vector<std::string> names;
  for (const Violation& violation :
       hs::explore::check_run(registry, trace, r, 3)) {
    names.push_back(violation.invariant);
  }
  return names;
}

TEST(Invariants, CleanTracePasses) {
  TraceSink trace(64);
  trace.record(1.0, TraceEventKind::kArrival, 1, TraceSink::kScheduler);
  trace.record(1.0, TraceEventKind::kDispatch, 1, 0);
  trace.record(2.0, TraceEventKind::kCompletion, 1, 0);
  hs::cluster::SimulationResult result = consistent_result();
  result.total_arrivals = 1;
  result.total_completed = 1;
  EXPECT_TRUE(violated_names(trace, result, InvariantRegistry{}).empty());
}

TEST(Invariants, TimeMonotoneFires) {
  TraceSink trace(64);
  trace.record(5.0, TraceEventKind::kArrival, 1, TraceSink::kScheduler);
  trace.record(1.0, TraceEventKind::kArrival, 2, TraceSink::kScheduler);
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"time-monotone"});
}

TEST(Invariants, ExactlyOnceFires) {
  TraceSink trace(64);
  trace.record(1.0, TraceEventKind::kDispatch, 1, 0);
  trace.record(2.0, TraceEventKind::kCompletion, 1, 0);
  trace.record(3.0, TraceEventKind::kCompletion, 1, 1);
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names,
            std::vector<std::string>{"exactly-once-completion"});
}

TEST(Invariants, LifecycleFiresOnDispatchAfterDrop) {
  TraceSink trace(64);
  trace.record(1.0, TraceEventKind::kDispatch, 1, 0);
  trace.record(2.0, TraceEventKind::kDrop, 1, TraceSink::kScheduler);
  trace.record(3.0, TraceEventKind::kDispatch, 1, 1);
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"job-lifecycle"});
}

TEST(Invariants, LifecycleFiresOnCompletionWithoutDispatch) {
  TraceSink trace(64);
  trace.record(1.0, TraceEventKind::kCompletion, 1, 0);
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"job-lifecycle"});
}

TEST(Invariants, DispatchLegalityFiresOnBadMachine) {
  TraceSink trace(64);
  trace.record(1.0, TraceEventKind::kDispatch, 1, 7);  // only 3 machines
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"dispatch-legality"});
}

TEST(Invariants, BreakerLegalityFiresOnIllegalTransition) {
  TraceSink trace(64);
  // Half-open is only legal from open; machine 0 starts closed.
  trace.record(1.0, TraceEventKind::kBreakerHalfOpen, TraceSink::kNoJob, 0);
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"breaker-legality"});

  TraceSink legal(64);
  legal.record(1.0, TraceEventKind::kBreakerOpen, TraceSink::kNoJob, 0);
  legal.record(2.0, TraceEventKind::kBreakerHalfOpen, TraceSink::kNoJob, 0);
  legal.record(3.0, TraceEventKind::kBreakerClose, TraceSink::kNoJob, 0);
  EXPECT_TRUE(
      violated_names(legal, consistent_result(), InvariantRegistry{})
          .empty());
}

TEST(Invariants, DetectorMonotoneFires) {
  TraceSink trace(64);
  trace.record(1.0, TraceEventKind::kSuspect, TraceSink::kNoJob, 0);
  trace.record(2.0, TraceEventKind::kSuspect, TraceSink::kNoJob, 0);
  const auto names =
      violated_names(trace, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"detector-monotone"});

  TraceSink cleared(64);
  cleared.record(1.0, TraceEventKind::kSuspectCleared, TraceSink::kNoJob, 1);
  const auto cleared_names =
      violated_names(cleared, consistent_result(), InvariantRegistry{});
  EXPECT_EQ(cleared_names,
            std::vector<std::string>{"detector-monotone"});
}

TEST(Invariants, JobConservationFires) {
  TraceSink trace(64);
  hs::cluster::SimulationResult result = consistent_result();
  result.total_arrivals = 10;
  result.total_completed = 9;  // one job vanished
  const auto names = violated_names(trace, result, InvariantRegistry{});
  EXPECT_EQ(names, std::vector<std::string>{"job-conservation"});
}

TEST(Invariants, ResultSanityFires) {
  TraceSink trace(64);
  hs::cluster::SimulationResult nan_result = consistent_result();
  nan_result.mean_response_time =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(violated_names(trace, nan_result, InvariantRegistry{}),
            std::vector<std::string>{"result-sanity"});

  hs::cluster::SimulationResult bad_fraction = consistent_result();
  bad_fraction.dispatched_jobs = 10;
  bad_fraction.machine_fractions = {0.5, 0.7, 0.0};  // sums to 1.2
  EXPECT_EQ(violated_names(trace, bad_fraction, InvariantRegistry{}),
            std::vector<std::string>{"result-sanity"});

  hs::cluster::SimulationResult bad_util = consistent_result();
  bad_util.machine_utilizations = {0.5, 1.5, 0.5};
  EXPECT_EQ(violated_names(trace, bad_util, InvariantRegistry{}),
            std::vector<std::string>{"result-sanity"});
}

TEST(Invariants, RegistryTogglesSuppressChecks) {
  TraceSink trace(64);
  trace.record(5.0, TraceEventKind::kArrival, 1, TraceSink::kScheduler);
  trace.record(1.0, TraceEventKind::kArrival, 2, TraceSink::kScheduler);
  InvariantRegistry registry;
  registry.set_enabled(hs::explore::invariant::kTimeMonotone, false);
  EXPECT_TRUE(
      violated_names(trace, consistent_result(), registry).empty());
}

TEST(Invariants, RegistryRejectsUnknownNames) {
  InvariantRegistry registry;
  EXPECT_THROW(registry.set_enabled("no-such-invariant", true), CheckError);
  EXPECT_THROW((void)registry.enabled("no-such-invariant"), CheckError);
  EXPECT_EQ(registry.names().size(), 9u);
}

TEST(Invariants, RejectsWrappedTrace) {
  TraceSink trace(2);
  for (int i = 0; i < 5; ++i) {
    trace.record(i, TraceEventKind::kArrival, static_cast<uint64_t>(i),
                 TraceSink::kScheduler);
  }
  ASSERT_GT(trace.overwritten(), 0u);
  EXPECT_THROW(hs::explore::check_run(InvariantRegistry{}, trace,
                                      consistent_result(), 3),
               CheckError);
}

// ---- Search drivers ------------------------------------------------------

TEST(ExplorerSearch, ExhaustiveSpaceIsDocumentedSize) {
  const Explorer explorer(ExploreConfig{});
  // (1 + 2 crash times)^3 machines * 2^2 loss machines = 27 * 4.
  EXPECT_EQ(explorer.exhaustive_space_size(), 108u);
  EXPECT_TRUE(explorer.exhaustive_schedule(0).empty());
  EXPECT_THROW(explorer.exhaustive_schedule(108), CheckError);

  // Every index yields a valid, distinct schedule.
  std::vector<std::vector<uint8_t>> encodings;
  for (uint64_t i = 0; i < 108; ++i) {
    encodings.push_back(explorer.exhaustive_schedule(i).encode());
  }
  for (size_t i = 0; i < encodings.size(); ++i) {
    for (size_t j = i + 1; j < encodings.size(); ++j) {
      EXPECT_NE(encodings[i], encodings[j]) << i << " vs " << j;
    }
  }
}

TEST(ExplorerSearch, ExhaustiveCleanWithoutPlantedBug) {
  const Explorer explorer(ExploreConfig{});
  const SearchStats stats = explorer.run_exhaustive();
  EXPECT_EQ(stats.runs, 108u);
  EXPECT_FALSE(stats.found_violation);
  EXPECT_GT(stats.coverage_tuples(), 0u);

  // Deterministic: the same enumeration again, bit-identical stats.
  const SearchStats again = explorer.run_exhaustive();
  EXPECT_EQ(again.runs, stats.runs);
  EXPECT_EQ(again.coverage, stats.coverage);
}

TEST(ExplorerSearch, ExhaustiveFindsPlantedBug) {
  ExploreConfig config;
  config.plant_bug = true;
  const Explorer explorer(config);
  const SearchStats stats = explorer.run_exhaustive();
  ASSERT_TRUE(stats.found_violation);
  EXPECT_EQ(stats.violation.invariant,
            hs::explore::invariant::kJobConservation);
  EXPECT_LT(stats.runs, 108u);  // stops at the first violating schedule
  EXPECT_FALSE(stats.counterexample.empty());

  // The counterexample replays to the same violation.
  const RunOutcome replay = explorer.run_schedule(stats.counterexample);
  ASSERT_FALSE(replay.violations.empty());
  EXPECT_EQ(replay.violations.front().invariant,
            hs::explore::invariant::kJobConservation);
  EXPECT_EQ(replay.violations.front().detail, stats.violation.detail);
}

TEST(ExplorerSearch, GuidedSearchBeatsSeedSoakCoverage) {
  const Explorer explorer(ExploreConfig{});
  const uint64_t budget = 60;
  const SearchStats guided = explorer.run_search(budget, /*seed=*/1);
  const SearchStats soak = explorer.run_random(budget, /*seed=*/1);
  EXPECT_EQ(guided.runs, budget);
  EXPECT_EQ(soak.runs, budget);
  // The acceptance criterion: strictly more coverage tuples at the
  // same run count (the soak cannot force crashes/partitions/breaker
  // trips that the guided mutations reach).
  EXPECT_GT(guided.coverage_tuples(), soak.coverage_tuples());
}

TEST(ExplorerSearch, GuidedSearchIsDeterministicInItsSeed) {
  const Explorer explorer(ExploreConfig{});
  const SearchStats a = explorer.run_search(30, 99);
  const SearchStats b = explorer.run_search(30, 99);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.runs, b.runs);
}

// ---- Shrinker ------------------------------------------------------------

TEST(Shrinker, ReducesPlantedScheduleToMinimalRepro) {
  ExploreConfig config;
  config.plant_bug = true;
  const Explorer explorer(config);

  // The two ops that actually trigger the conservation leak...
  Schedule planted;
  planted.ops.push_back(
      Override::force_double(ChoiceKind::kFaultUptime, 0, 0, 70.0));
  planted.ops.push_back(
      Override::force_double(ChoiceKind::kFaultUptime, 1, 0, 70.0));
  // ...buried in 198 dead ops (occurrences the run never reaches), with
  // the live ops scattered mid-list so chunk deletion has to work for
  // them to survive.
  for (uint32_t i = 0; i < 99; ++i) {
    planted.ops.insert(
        planted.ops.begin() + (i % 2),
        Override::force_double(ChoiceKind::kFaultUptime, 0, 50 + i, 5.0));
    planted.ops.push_back(
        Override::force_double(ChoiceKind::kFaultUptime, 2, 50 + i, 5.0));
  }
  ASSERT_EQ(planted.ops.size(), 200u);
  ASSERT_FALSE(explorer.run_schedule(planted).violations.empty());

  const hs::explore::ShrinkResult result = hs::explore::shrink(
      explorer, planted, hs::explore::invariant::kJobConservation);
  EXPECT_EQ(result.initial_ops, 200u);
  EXPECT_LE(result.schedule.ops.size(), 10u);
  EXPECT_EQ(result.violation.invariant,
            hs::explore::invariant::kJobConservation);

  // Deterministic: shrinking again yields the identical schedule.
  const hs::explore::ShrinkResult again = hs::explore::shrink(
      explorer, planted, hs::explore::invariant::kJobConservation);
  EXPECT_EQ(again.schedule, result.schedule);

  // 1-minimal: removing any surviving op loses the violation.
  for (size_t i = 0; i < result.schedule.ops.size(); ++i) {
    Schedule weakened = result.schedule;
    weakened.ops.erase(weakened.ops.begin() + static_cast<ptrdiff_t>(i));
    bool still_fails = false;
    for (const Violation& violation :
         explorer.run_schedule(weakened).violations) {
      still_fails |= violation.invariant ==
                     hs::explore::invariant::kJobConservation;
    }
    EXPECT_FALSE(still_fails) << "op " << i << " is removable";
  }
}

TEST(Shrinker, RejectsNonViolatingInput) {
  const Explorer explorer(ExploreConfig{});
  EXPECT_THROW(hs::explore::shrink(
                   explorer, Schedule{},
                   hs::explore::invariant::kJobConservation),
               CheckError);
}

// ---- Committed repro corpus ----------------------------------------------

TEST(ReproCorpus, DropLeakConservationReplays) {
  const std::string path =
      std::string(HS_REPRO_DIR) + "/drop_leak_conservation.hssched";
  const Schedule repro = hs::explore::load_schedule(path);
  EXPECT_FALSE(repro.empty());

  // With the planted bug armed the repro must reproduce the violation…
  ExploreConfig buggy;
  buggy.plant_bug = true;
  const RunOutcome bad = Explorer(buggy).run_schedule(repro);
  bool reproduced = false;
  for (const Violation& violation : bad.violations) {
    reproduced |= violation.invariant ==
                  hs::explore::invariant::kJobConservation;
  }
  EXPECT_TRUE(reproduced);

  // …and bit-identically so across replays.
  const RunOutcome bad_again = Explorer(buggy).run_schedule(repro);
  ASSERT_EQ(bad.violations.size(), bad_again.violations.size());
  for (size_t i = 0; i < bad.violations.size(); ++i) {
    EXPECT_EQ(bad.violations[i].detail, bad_again.violations[i].detail);
  }

  // Without the bug, the same schedule runs clean — the corpus file is
  // a regression test for the fix.
  const RunOutcome clean = Explorer(ExploreConfig{}).run_schedule(repro);
  EXPECT_TRUE(clean.violations.empty())
      << clean.violations.front().to_string();
}

}  // namespace
