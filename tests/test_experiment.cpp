// Tests for the replicated experiment runner.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "cluster/experiment.h"
#include "core/policy.h"
#include "util/check.h"

namespace {

using namespace hs::cluster;
using hs::core::policy_dispatcher_factory;
using hs::core::PolicyKind;

ExperimentConfig quick_experiment(std::vector<double> speeds, double rho,
                                  unsigned reps = 4) {
  ExperimentConfig config;
  config.simulation.speeds = std::move(speeds);
  config.simulation.workload.arrival_kind =
      hs::workload::ArrivalKind::kPoisson;
  config.simulation.workload.size_kind =
      hs::workload::SizeKind::kExponential;
  config.simulation.workload.fixed_or_mean_size = 1.0;
  config.simulation.rho = rho;
  config.simulation.sim_time = 20000.0;
  config.replications = reps;
  config.base_seed = 7;
  return config;
}

TEST(Experiment, AggregatesAllReplications) {
  auto config = quick_experiment({1.0, 2.0}, 0.6);
  const auto result = run_experiment(
      config, policy_dispatcher_factory(PolicyKind::kORR, {1.0, 2.0}, 0.6));
  EXPECT_EQ(result.replications.size(), 4u);
  EXPECT_EQ(result.response_ratio.n, 4u);
  EXPECT_GT(result.total_jobs, 0u);
  // The aggregate mean is the mean of replication means.
  double sum = 0.0;
  for (const auto& rep : result.replications) {
    sum += rep.mean_response_ratio;
  }
  EXPECT_NEAR(result.response_ratio.mean, sum / 4.0, 1e-12);
}

TEST(Experiment, ReplicationsUseDistinctStreams) {
  auto config = quick_experiment({1.0, 2.0}, 0.6);
  const auto result = run_experiment(
      config, policy_dispatcher_factory(PolicyKind::kWRAN, {1.0, 2.0}, 0.6));
  // No two replications should coincide exactly.
  for (size_t i = 0; i < result.replications.size(); ++i) {
    for (size_t j = i + 1; j < result.replications.size(); ++j) {
      EXPECT_NE(result.replications[i].mean_response_time,
                result.replications[j].mean_response_time);
    }
  }
  EXPECT_GT(result.response_ratio.half_width, 0.0);
}

TEST(Experiment, DeterministicRegardlessOfThreadCount) {
  auto config = quick_experiment({1.0, 5.0}, 0.7, 6);
  config.max_threads = 1;
  const auto serial = run_experiment(
      config, policy_dispatcher_factory(PolicyKind::kORR, {1.0, 5.0}, 0.7));
  config.max_threads = 6;
  const auto parallel = run_experiment(
      config, policy_dispatcher_factory(PolicyKind::kORR, {1.0, 5.0}, 0.7));
  ASSERT_EQ(serial.replications.size(), parallel.replications.size());
  for (size_t r = 0; r < serial.replications.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial.replications[r].mean_response_time,
                     parallel.replications[r].mean_response_time);
    EXPECT_EQ(serial.replications[r].completed_jobs,
              parallel.replications[r].completed_jobs);
  }
  EXPECT_DOUBLE_EQ(serial.response_ratio.mean, parallel.response_ratio.mean);
}

TEST(Experiment, MachineFractionsAveragedAndNormalized) {
  auto config = quick_experiment({1.0, 3.0}, 0.6);
  const auto result = run_experiment(
      config, policy_dispatcher_factory(PolicyKind::kWRR, {1.0, 3.0}, 0.6));
  ASSERT_EQ(result.mean_machine_fractions.size(), 2u);
  const double sum = std::accumulate(result.mean_machine_fractions.begin(),
                                     result.mean_machine_fractions.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // WRR sends speed-proportional shares.
  EXPECT_NEAR(result.mean_machine_fractions[0], 0.25, 0.01);
  EXPECT_NEAR(result.mean_machine_fractions[1], 0.75, 0.01);
}

TEST(Experiment, UtilizationsNearTargetRho) {
  auto config = quick_experiment({1.0, 2.0, 5.0}, 0.5);
  const auto result = run_experiment(
      config,
      policy_dispatcher_factory(PolicyKind::kWRR, {1.0, 2.0, 5.0}, 0.5));
  for (double u : result.mean_machine_utilizations) {
    EXPECT_NEAR(u, 0.5, 0.05);
  }
}

TEST(Experiment, ConfidenceIntervalShrinksWithMoreReps) {
  auto few = quick_experiment({1.0, 2.0}, 0.7, 3);
  auto many = quick_experiment({1.0, 2.0}, 0.7, 12);
  const auto factory =
      policy_dispatcher_factory(PolicyKind::kWRAN, {1.0, 2.0}, 0.7);
  const auto r_few = run_experiment(few, factory);
  const auto r_many = run_experiment(many, factory);
  EXPECT_LT(r_many.response_ratio.half_width,
            r_few.response_ratio.half_width);
}

TEST(Experiment, ZeroReplicationsThrows) {
  auto config = quick_experiment({1.0}, 0.5);
  config.replications = 0;
  EXPECT_THROW(
      run_experiment(config,
                     policy_dispatcher_factory(PolicyKind::kWRR, {1.0}, 0.5)),
      hs::util::CheckError);
}

// Each rejection names the offending knob — config mistakes surface as
// a message about the field, not a crash three layers down.
TEST(Experiment, ValidationMessagesNameTheOffendingField) {
  const auto message_for = [](const ExperimentConfig& config) -> std::string {
    try {
      config.validate();
    } catch (const hs::util::CheckError& e) {
      return e.what();
    }
    return "";
  };

  auto config = quick_experiment({1.0, 2.0}, 0.5);
  EXPECT_EQ(message_for(config), "");  // the baseline is valid

  config.replications = 0;
  EXPECT_NE(message_for(config).find("at least one replication"),
            std::string::npos);

  config = quick_experiment({1.0, 2.0}, 0.5);
  config.simulation.sim_time = 0.0;
  EXPECT_NE(message_for(config).find("sim_time"), std::string::npos);
  config.simulation.sim_time = -100.0;
  EXPECT_NE(message_for(config).find("sim_time"), std::string::npos);
  config.simulation.sim_time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(message_for(config).find("sim_time"), std::string::npos);

  config = quick_experiment({1.0, 2.0}, 0.5);
  config.simulation.speeds = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_NE(message_for(config).find("machine speed"), std::string::npos);
  config.simulation.speeds = {1.0, -2.0};
  EXPECT_NE(message_for(config).find("machine speed"), std::string::npos);
  config.simulation.speeds = {};
  EXPECT_NE(message_for(config).find("at least one machine"),
            std::string::npos);

  config = quick_experiment({1.0, 2.0}, 0.5);
  config.simulation.warmup_frac = 1.0;
  EXPECT_NE(message_for(config).find("warmup"), std::string::npos);

  config = quick_experiment({1.0, 2.0}, 0.5);
  config.observability.sample_interval = 0.0;
  EXPECT_NE(message_for(config).find("sample_interval"), std::string::npos);

  // Overload knobs are validated through the same entry point.
  config = quick_experiment({1.0, 2.0}, 0.5);
  config.simulation.overload.machine_capacity = {4, 0};
  EXPECT_NE(message_for(config).find("machine_capacity[1]"),
            std::string::npos);
}

TEST(Experiment, NullFactoryRejected) {
  auto config = quick_experiment({1.0}, 0.5, 1);
  EXPECT_THROW(
      run_experiment(config, [] {
        return std::unique_ptr<hs::dispatch::Dispatcher>{};
      }),
      hs::util::CheckError);
}

TEST(Experiment, WorkerExceptionPropagates) {
  auto config = quick_experiment({1.0, 2.0}, 0.5, 3);
  // Dispatcher sized for the wrong cluster → run_simulation throws inside
  // the worker thread; the error must surface to the caller.
  EXPECT_THROW(
      run_experiment(config,
                     policy_dispatcher_factory(PolicyKind::kWRR, {1.0}, 0.5)),
      hs::util::CheckError);
}

}  // namespace
