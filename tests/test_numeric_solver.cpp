// Tests for the numerical KKT water-filling solver — the independent
// cross-check of Algorithm 1's closed form.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "alloc/numeric_solver.h"
#include "alloc/optimized.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using hs::alloc::Allocation;
using hs::alloc::minimize_weighted_response;
using hs::alloc::NumericOptimizedAllocation;
using hs::alloc::objective_value;
using hs::alloc::OptimizedAllocation;

TEST(NumericSolver, MatchesClosedFormSimpleCase) {
  const std::vector<double> speeds = {1.0, 2.0, 4.0};
  const double rho = 0.85;
  const Allocation numeric = NumericOptimizedAllocation().compute(speeds, rho);
  const Allocation closed = OptimizedAllocation().compute(speeds, rho);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(numeric[i], closed[i], 1e-9);
  }
}

TEST(NumericSolver, MatchesClosedFormWithExcludedMachines) {
  const std::vector<double> speeds = {1.0, 10.0};
  const double rho = 0.3;  // slow machine excluded
  const Allocation numeric = NumericOptimizedAllocation().compute(speeds, rho);
  const Allocation closed = OptimizedAllocation().compute(speeds, rho);
  EXPECT_NEAR(numeric[0], 0.0, 1e-9);
  EXPECT_NEAR(numeric[1], closed[1], 1e-9);
}

// Property: closed form and KKT solver agree on random clusters — two
// completely independent derivations of the same optimum.
class NumericVsClosedForm : public ::testing::TestWithParam<int> {};

TEST_P(NumericVsClosedForm, Agree) {
  hs::rng::Xoshiro256 gen(static_cast<uint64_t>(GetParam()) * 6151);
  const size_t n = 1 + gen.next_below(20);
  std::vector<double> speeds(n);
  for (double& s : speeds) {
    s = gen.uniform(0.2, 30.0);
  }
  const double rho = gen.uniform(0.03, 0.97);
  const Allocation numeric = NumericOptimizedAllocation().compute(speeds, rho);
  const Allocation closed = OptimizedAllocation().compute(speeds, rho);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(numeric[i], closed[i], 1e-7)
        << "machine " << i << " of " << n << " at rho=" << rho;
  }
  EXPECT_NEAR(objective_value(numeric, speeds, rho),
              objective_value(closed, speeds, rho),
              1e-7 * objective_value(closed, speeds, rho));
}

INSTANTIATE_TEST_SUITE_P(RandomClusters, NumericVsClosedForm,
                         ::testing::Range(1, 31));

TEST(NumericSolver, WeightedVariantUnitWeightsIsStandard) {
  const std::vector<double> speeds = {1.0, 3.0, 7.0};
  const std::vector<double> unit(speeds.size(), 1.0);
  const Allocation weighted =
      minimize_weighted_response(speeds, 0.6, unit);
  const Allocation closed = OptimizedAllocation().compute(speeds, 0.6);
  for (size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(weighted[i], closed[i], 1e-9);
  }
}

TEST(NumericSolver, UpweightedMachineReceivesLess) {
  // Raising wᵢ penalizes response time on machine i, so the optimizer
  // diverts work away from it.
  const std::vector<double> speeds = {2.0, 2.0};
  const std::vector<double> unit = {1.0, 1.0};
  const std::vector<double> skewed = {4.0, 1.0};
  const Allocation base = minimize_weighted_response(speeds, 0.6, unit);
  const Allocation shifted = minimize_weighted_response(speeds, 0.6, skewed);
  EXPECT_NEAR(base[0], 0.5, 1e-9);
  EXPECT_LT(shifted[0], base[0]);
  EXPECT_GT(shifted[1], base[1]);
}

TEST(NumericSolver, WeightedSolutionSatisfiesKkt) {
  // Every active machine must have equal weighted marginal cost.
  const std::vector<double> speeds = {1.0, 2.0, 5.0, 9.0};
  const std::vector<double> weights = {1.0, 2.0, 0.5, 1.5};
  const double rho = 0.7;
  const Allocation a = minimize_weighted_response(speeds, rho, weights);
  const double lambda = rho * (1.0 + 2.0 + 5.0 + 9.0);
  double reference = -1.0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    if (a[i] <= 1e-9) {
      continue;
    }
    const double denom = speeds[i] - a[i] * lambda;
    const double marginal = weights[i] * speeds[i] / (denom * denom);
    if (reference < 0.0) {
      reference = marginal;
    } else {
      EXPECT_NEAR(marginal, reference, 1e-5 * reference) << "machine " << i;
    }
  }
}

TEST(NumericSolver, NoMachineSaturated) {
  const std::vector<double> speeds = {0.5, 0.5, 0.5, 15.0};
  for (double rho : {0.05, 0.5, 0.95}) {
    const Allocation a = NumericOptimizedAllocation().compute(speeds, rho);
    EXPECT_LT(a.max_machine_utilization(speeds, rho), 1.0) << "rho=" << rho;
  }
}

TEST(NumericSolver, InvalidInputsThrow) {
  const std::vector<double> speeds = {1.0, 2.0};
  EXPECT_THROW(NumericOptimizedAllocation(-1.0), hs::util::CheckError);
  EXPECT_THROW(NumericOptimizedAllocation().compute(speeds, 0.0),
               hs::util::CheckError);
  const std::vector<double> bad_weights = {1.0, -1.0};
  EXPECT_THROW(minimize_weighted_response(speeds, 0.5, bad_weights),
               hs::util::CheckError);
  const std::vector<double> short_weights = {1.0};
  EXPECT_THROW(minimize_weighted_response(speeds, 0.5, short_weights),
               hs::util::CheckError);
}

}  // namespace
