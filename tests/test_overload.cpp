// Overload-protection subsystem tests: config validation, the retry
// budget token bucket, admission policies, the circuit-breaking
// dispatcher's state machine, and end-to-end simulations pinning the
// rejection/shed/drop accounting identity and overload-on determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/sim.h"
#include "core/policy.h"
#include "obs/trace.h"
#include "overload/admission.h"
#include "overload/circuit_breaker.h"
#include "overload/config.h"
#include "overload/retry_budget.h"
#include "rng/rng.h"
#include "util/check.h"

namespace {

using namespace hs::overload;
using hs::util::CheckError;

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}

// ---- OverloadConfig validation ----

TEST(OverloadConfig, DefaultIsDisabledAndValid) {
  OverloadConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(config.validate(3));
}

TEST(OverloadConfig, AnyFeatureEnables) {
  OverloadConfig config;
  config.queue_capacity = 8;
  EXPECT_TRUE(config.enabled());
  config = OverloadConfig{};
  config.machine_capacity = {4, 4};
  EXPECT_TRUE(config.enabled());
  config = OverloadConfig{};
  config.admission = AdmissionKind::kQueueBoundShed;
  EXPECT_TRUE(config.enabled());
  config = OverloadConfig{};
  config.retry_budget.enabled = true;
  EXPECT_TRUE(config.enabled());
}

TEST(OverloadConfig, MachineCapacityArityChecked) {
  OverloadConfig config;
  config.machine_capacity = {4, 4};
  const std::string message =
      error_message([&] { config.validate(3); });
  EXPECT_NE(message.find("one entry per machine"), std::string::npos)
      << message;
}

TEST(OverloadConfig, MachineCapacityBelowOneRejected) {
  OverloadConfig config;
  config.machine_capacity = {4, 0, 4};
  const std::string message =
      error_message([&] { config.validate(3); });
  EXPECT_NE(message.find("machine_capacity[1]"), std::string::npos)
      << message;
}

TEST(OverloadConfig, QueueBoundShedNeedsPositiveBound) {
  OverloadConfig config;
  config.admission = AdmissionKind::kQueueBoundShed;
  config.admission_queue_bound = 0;
  const std::string message =
      error_message([&] { config.validate(2); });
  EXPECT_NE(message.find("admission_queue_bound"), std::string::npos)
      << message;
}

TEST(OverloadConfig, DeadlineShedNeedsFiniteSlo) {
  OverloadConfig config;
  config.admission = AdmissionKind::kDeadlineShed;
  config.slo_budget = 0.0;  // the default — must be set explicitly
  EXPECT_NE(error_message([&] { config.validate(2); }).find("slo_budget"),
            std::string::npos);
  config.slo_budget = std::numeric_limits<double>::infinity();
  EXPECT_NE(error_message([&] { config.validate(2); }).find("slo_budget"),
            std::string::npos);
}

TEST(OverloadConfig, DeadlineShedProbabilityRangeChecked) {
  OverloadConfig config;
  config.admission = AdmissionKind::kDeadlineShed;
  config.slo_budget = 100.0;
  config.shed_probability = 0.0;
  EXPECT_NE(
      error_message([&] { config.validate(2); }).find("shed_probability"),
      std::string::npos);
  config.shed_probability = 1.5;
  EXPECT_NE(
      error_message([&] { config.validate(2); }).find("shed_probability"),
      std::string::npos);
}

TEST(OverloadConfig, AdmissionKindNames) {
  EXPECT_STREQ(admission_kind_name(AdmissionKind::kAlwaysAdmit),
               "always-admit");
  EXPECT_STREQ(admission_kind_name(AdmissionKind::kQueueBoundShed),
               "queue-bound-shed");
  EXPECT_STREQ(admission_kind_name(AdmissionKind::kDeadlineShed),
               "deadline-shed");
}

// ---- RetryBudget ----

TEST(RetryBudget, ConfigValidation) {
  RetryBudgetConfig config;
  EXPECT_NO_THROW(config.validate());
  // Validation only applies when the budget is on; a disabled budget
  // never reads its knobs.
  config.tokens_per_admission = -0.1;
  EXPECT_NO_THROW(config.validate());
  config.enabled = true;
  EXPECT_NE(error_message([&] { config.validate(); })
                .find("tokens_per_admission"),
            std::string::npos);
  config = RetryBudgetConfig{};
  config.enabled = true;
  config.burst = 0.0;
  EXPECT_NE(error_message([&] { config.validate(); }).find("burst"),
            std::string::npos);
  config = RetryBudgetConfig{};
  config.enabled = true;
  config.initial_tokens = std::nan("");
  EXPECT_NE(error_message([&] { config.validate(); }).find("initial_tokens"),
            std::string::npos);
}

TEST(RetryBudget, SpendsDownToDenial) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.initial_tokens = 2.0;
  config.burst = 10.0;
  config.tokens_per_admission = 0.0;  // no refill: pure drain
  RetryBudget budget(config);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // bucket empty
  EXPECT_EQ(budget.funded(), 2u);
  EXPECT_EQ(budget.denied(), 1u);
}

TEST(RetryBudget, AdmissionsEarnFractionalTokens) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.initial_tokens = 0.0;
  config.burst = 10.0;
  config.tokens_per_admission = 0.2;
  RetryBudget budget(config);
  EXPECT_FALSE(budget.try_spend());  // nothing banked yet
  for (int i = 0; i < 5; ++i) {
    budget.on_admission();  // 5 × 0.2 = 1 whole token
  }
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  // Sustained ratio: 100 admissions fund at most 20 retries.
  for (int i = 0; i < 100; ++i) {
    budget.on_admission();
  }
  int funded = 0;
  while (budget.try_spend()) {
    ++funded;
  }
  EXPECT_EQ(funded, 10);  // capped by burst, not by the 20 earned
}

TEST(RetryBudget, BurstCapsBanking) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.initial_tokens = 100.0;  // clamped to burst at construction
  config.burst = 3.0;
  config.tokens_per_admission = 5.0;  // each admission would overfill
  RetryBudget budget(config);
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
  budget.on_admission();
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

TEST(RetryBudget, ResetRestoresInitialBucket) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.initial_tokens = 1.0;
  config.tokens_per_admission = 0.0;
  RetryBudget budget(config);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  budget.reset();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);
  EXPECT_EQ(budget.funded(), 0u);
  EXPECT_EQ(budget.denied(), 0u);
}

// ---- Admission policies ----

TEST(Admission, QueueBoundShedThreshold) {
  QueueBoundShed policy(4);
  hs::rng::Xoshiro256 gen(1);
  AdmissionContext ctx;
  ctx.queue_length = 3;
  EXPECT_TRUE(policy.admit(ctx, gen));
  ctx.queue_length = 4;
  EXPECT_FALSE(policy.admit(ctx, gen));
  ctx.queue_length = 100;
  EXPECT_FALSE(policy.admit(ctx, gen));
  EXPECT_EQ(policy.name(), "queue-bound-shed(4)");
}

TEST(Admission, DeadlineShedEstimateTracksBacklog) {
  const std::vector<double> speeds = {1.0, 4.0};
  DeadlineShed policy(50.0, 1.0, speeds, 0.5, 2.0);
  // Estimates grow with queue depth and never fall below the analytic
  // baseline.
  const double empty = policy.estimate(0, 0, 2.0, 1.0);
  const double deep = policy.estimate(0, 30, 2.0, 1.0);
  EXPECT_GT(deep, empty);
  EXPECT_GE(deep, 30.0 * 2.0 / 1.0);  // at least the raw backlog term
  // A stopped machine can never finish: infinite estimate.
  EXPECT_TRUE(std::isinf(policy.estimate(0, 0, 2.0, 0.0)));
}

TEST(Admission, DeadlineShedAdmitsUnderSloShedsOver) {
  const std::vector<double> speeds = {1.0, 1.0};
  DeadlineShed policy(50.0, 1.0, speeds, 0.5, 2.0);
  hs::rng::Xoshiro256 gen(2);
  AdmissionContext ctx;
  ctx.machine = 0;
  ctx.speed = 1.0;
  ctx.job_size = 2.0;
  ctx.queue_length = 0;
  EXPECT_TRUE(policy.admit(ctx, gen));
  ctx.queue_length = 100;  // 100 × 2 s of backlog >> 50 s SLO
  EXPECT_FALSE(policy.admit(ctx, gen));
}

TEST(Admission, DeadlineShedProbabilisticUsesStream) {
  const std::vector<double> speeds = {1.0};
  DeadlineShed policy(10.0, 0.5, speeds, 0.5, 2.0);
  hs::rng::Xoshiro256 gen(3);
  AdmissionContext ctx;
  ctx.machine = 0;
  ctx.speed = 1.0;
  ctx.job_size = 2.0;
  ctx.queue_length = 100;  // far over the SLO on every trial
  int admitted = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    admitted += policy.admit(ctx, gen) ? 1 : 0;
  }
  // Sheds with p = 0.5: the admitted fraction concentrates around half.
  EXPECT_NEAR(static_cast<double>(admitted) / trials, 0.5, 0.05);
}

TEST(Admission, FactoryBuildsConfiguredPolicy) {
  const std::vector<double> speeds = {1.0, 2.0};
  OverloadConfig config;
  EXPECT_EQ(make_admission_policy(config, speeds, 0.5, 2.0)->name(),
            "always-admit");
  config.admission = AdmissionKind::kQueueBoundShed;
  config.admission_queue_bound = 7;
  EXPECT_EQ(make_admission_policy(config, speeds, 0.5, 2.0)->name(),
            "queue-bound-shed(7)");
  config.admission = AdmissionKind::kDeadlineShed;
  config.slo_budget = 25.0;
  const auto deadline = make_admission_policy(config, speeds, 0.5, 2.0);
  EXPECT_NE(deadline->name().find("deadline-shed"), std::string::npos);
}

// ---- CircuitBreakerDispatcher ----

/// Minimal deterministic inner dispatcher: cycles over the allowed
/// machines. Masking support is switchable so both decorator modes are
/// covered with one stub.
class StubDispatcher final : public hs::dispatch::Dispatcher {
 public:
  StubDispatcher(size_t machines, bool supports_mask)
      : allowed_(machines, true), supports_mask_(supports_mask) {}

  size_t pick(hs::rng::Xoshiro256& gen) override {
    (void)gen;
    for (size_t step = 0; step < allowed_.size(); ++step) {
      const size_t machine = cursor_;
      cursor_ = (cursor_ + 1) % allowed_.size();
      if (allowed_[machine]) {
        return machine;
      }
    }
    return 0;  // everything masked: fail fast on machine 0
  }
  void reset() override { cursor_ = 0; }
  std::string name() const override { return "stub"; }
  size_t machine_count() const override { return allowed_.size(); }
  bool set_available_mask(const std::vector<bool>& available) override {
    if (!supports_mask_) {
      return false;
    }
    allowed_ = available;
    return true;
  }

 private:
  std::vector<bool> allowed_;
  size_t cursor_ = 0;
  bool supports_mask_;
};

CircuitBreakerConfig quick_breaker() {
  CircuitBreakerConfig config;
  config.trip_threshold = 3;
  config.cooldown = 10.0;
  config.probe_successes = 2;
  return config;
}

TEST(CircuitBreakerConfig, Validation) {
  EXPECT_NO_THROW(CircuitBreakerConfig{}.validate());
  CircuitBreakerConfig config;
  config.trip_threshold = 0;
  EXPECT_NE(error_message([&] { config.validate(); }).find("trip_threshold"),
            std::string::npos);
  config = CircuitBreakerConfig{};
  config.cooldown = 0.0;
  EXPECT_NE(error_message([&] { config.validate(); }).find("cooldown"),
            std::string::npos);
  config = CircuitBreakerConfig{};
  config.probe_successes = 0;
  EXPECT_NE(error_message([&] { config.validate(); }).find("probe_successes"),
            std::string::npos);
}

TEST(CircuitBreaker, RequiresMaskOrRebuilder) {
  EXPECT_THROW(CircuitBreakerDispatcher(
                   std::make_unique<StubDispatcher>(2, false),
                   quick_breaker()),
               CheckError);
  EXPECT_NO_THROW(CircuitBreakerDispatcher(
      std::make_unique<StubDispatcher>(2, true), quick_breaker()));
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(3, true),
                                   quick_breaker());
  breaker.on_dispatch_result(1, false, 1.0);
  breaker.on_dispatch_result(1, false, 2.0);
  EXPECT_EQ(breaker.state(1), BreakerState::kClosed);
  breaker.on_dispatch_result(1, false, 3.0);  // third consecutive: trip
  EXPECT_EQ(breaker.state(1), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_count(), 1u);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, AcceptResetsTheFailureStreak) {
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, true),
                                   quick_breaker());
  breaker.on_dispatch_result(0, false, 1.0);
  breaker.on_dispatch_result(0, false, 2.0);
  breaker.on_dispatch_result(0, true, 3.0);  // streak broken
  breaker.on_dispatch_result(0, false, 4.0);
  breaker.on_dispatch_result(0, false, 5.0);
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, CooldownHalfOpensThenProbesClose) {
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, true),
                                   quick_breaker());
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(0, false, 1.0);
  }
  EXPECT_EQ(breaker.state(0), BreakerState::kOpen);
  breaker.on_arrival(5.0);  // cooldown (10 s from t=1) not yet elapsed
  EXPECT_EQ(breaker.state(0), BreakerState::kOpen);
  breaker.on_arrival(11.5);
  EXPECT_EQ(breaker.state(0), BreakerState::kHalfOpen);
  breaker.on_dispatch_result(0, true, 11.5);
  EXPECT_EQ(breaker.state(0), BreakerState::kHalfOpen);
  breaker.on_dispatch_result(0, true, 12.0);  // second probe success
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  EXPECT_EQ(breaker.open_count(), 0u);
}

TEST(CircuitBreaker, HalfOpenFailureReopensAndRestartsCooldown) {
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, true),
                                   quick_breaker());
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(0, false, 1.0);
  }
  breaker.on_arrival(12.0);
  EXPECT_EQ(breaker.state(0), BreakerState::kHalfOpen);
  breaker.on_dispatch_result(0, false, 12.0);  // failed probe
  EXPECT_EQ(breaker.state(0), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  breaker.on_arrival(13.0);  // new cooldown runs from t=12
  EXPECT_EQ(breaker.state(0), BreakerState::kOpen);
  breaker.on_arrival(22.5);
  EXPECT_EQ(breaker.state(0), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, CrashReportTripsInstantly) {
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, true),
                                   quick_breaker());
  breaker.on_arrival(7.0);
  breaker.on_machine_state_report(1, false);
  EXPECT_EQ(breaker.state(1), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  // Cooldown runs from the last observed time (t=7).
  breaker.on_arrival(16.0);
  EXPECT_EQ(breaker.state(1), BreakerState::kOpen);
  breaker.on_arrival(17.5);
  EXPECT_EQ(breaker.state(1), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, RebuilderModeReallocatesOverSurvivors) {
  std::vector<std::vector<bool>> masks_seen;
  auto rebuilder = [&masks_seen](const std::vector<bool>& available) {
    masks_seen.push_back(available);
    return std::make_unique<StubDispatcher>(available.size(), false);
  };
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(3, false),
                                   quick_breaker(), rebuilder);
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(2, false, 1.0);
  }
  EXPECT_EQ(breaker.rebuilds(), 1u);
  ASSERT_EQ(masks_seen.size(), 1u);
  EXPECT_EQ(masks_seen[0], (std::vector<bool>{true, true, false}));
  // Half-open rejoins the routing set: another rebuild with all three.
  breaker.on_arrival(12.0);
  EXPECT_EQ(breaker.rebuilds(), 2u);
  EXPECT_EQ(masks_seen[1], (std::vector<bool>{true, true, true}));
}

TEST(CircuitBreaker, AllOpenKeepsPreviousRouting) {
  size_t rebuild_calls = 0;
  auto rebuilder = [&rebuild_calls](const std::vector<bool>& available) {
    ++rebuild_calls;
    return std::make_unique<StubDispatcher>(available.size(), false);
  };
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, false),
                                   quick_breaker(), rebuilder);
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(0, false, 1.0);
  }
  EXPECT_EQ(rebuild_calls, 1u);
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(1, false, 2.0);
  }
  // Both open: no rebuild over an empty survivor set — the previous
  // routing stays so jobs fail fast and feed the half-open probes.
  EXPECT_EQ(rebuild_calls, 1u);
  EXPECT_EQ(breaker.open_count(), 2u);
  hs::rng::Xoshiro256 gen(5);
  EXPECT_LT(breaker.pick(gen), 2u);  // still routable, fails fast
}

TEST(CircuitBreaker, TransitionsAreTraced) {
  hs::obs::TraceSink sink(64);
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, true),
                                   quick_breaker());
  breaker.set_trace_sink(&sink);
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(0, false, 1.0);
  }
  breaker.on_arrival(12.0);
  breaker.on_dispatch_result(0, true, 12.0);
  breaker.on_dispatch_result(0, true, 13.0);
  std::vector<hs::obs::TraceEventKind> kinds;
  for (size_t i = 0; i < sink.size(); ++i) {
    kinds.push_back(sink.at(i).kind);
  }
  EXPECT_EQ(kinds, (std::vector<hs::obs::TraceEventKind>{
                       hs::obs::TraceEventKind::kBreakerOpen,
                       hs::obs::TraceEventKind::kBreakerHalfOpen,
                       hs::obs::TraceEventKind::kBreakerClose}));
}

TEST(CircuitBreaker, ResetRestoresAllClosed) {
  CircuitBreakerDispatcher breaker(std::make_unique<StubDispatcher>(2, true),
                                   quick_breaker());
  for (int i = 0; i < 3; ++i) {
    breaker.on_dispatch_result(0, false, 1.0);
  }
  EXPECT_EQ(breaker.open_count(), 1u);
  breaker.reset();
  EXPECT_EQ(breaker.open_count(), 0u);
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
}

// ---- End-to-end simulations ----

hs::cluster::SimulationConfig overload_sim(std::vector<double> speeds,
                                           double rho) {
  hs::cluster::SimulationConfig config;
  config.speeds = std::move(speeds);
  config.workload.arrival_kind = hs::workload::ArrivalKind::kPoisson;
  config.workload.size_kind = hs::workload::SizeKind::kExponential;
  config.workload.fixed_or_mean_size = 1.0;
  config.rho = rho;
  config.sim_time = 5000.0;
  config.warmup_frac = 0.1;
  config.seed = 99;
  return config;
}

void expect_accounting_identity(const hs::cluster::SimulationResult& r) {
  EXPECT_EQ(r.total_arrivals,
            r.total_completed + r.total_shed + r.total_dropped +
                r.in_flight_at_end);
}

TEST(OverloadSim, BoundedQueuesRejectAndAccountingBalances) {
  auto config = overload_sim({1.0, 1.0}, 1.4);
  config.overload.queue_capacity = 3;
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_GT(result.jobs_rejected, 0u);
  EXPECT_GT(result.jobs_dropped, 0u);  // retries exhaust at sustained 1.4
  EXPECT_EQ(result.jobs_shed, 0u);     // no admission policy configured
  expect_accounting_identity(result);
  EXPECT_GT(result.total_arrivals, 0u);
}

TEST(OverloadSim, PerMachineCapacityOverridesGlobal) {
  auto config = overload_sim({1.0, 1.0}, 1.4);
  config.overload.queue_capacity = 3;
  config.overload.machine_capacity = {2, 1000};  // m1 effectively unbounded
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_GT(result.jobs_rejected, 0u);  // the capacity-2 machine rejects
  expect_accounting_identity(result);
}

TEST(OverloadSim, QueueBoundShedRefusesAtTheDoor) {
  auto config = overload_sim({1.0, 1.0}, 1.4);
  config.overload.queue_capacity = 8;
  config.overload.admission = AdmissionKind::kQueueBoundShed;
  config.overload.admission_queue_bound = 4;
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_GT(result.jobs_shed, 0u);
  // Shedding below the hard bound keeps queues from ever filling: the
  // only way to exceed the admission bound would be retries, which need
  // rejections first.
  EXPECT_EQ(result.jobs_rejected, 0u);
  expect_accounting_identity(result);
}

TEST(OverloadSim, RetryBudgetDropsWhenExhausted) {
  auto config = overload_sim({1.0, 1.0}, 1.6);
  config.overload.queue_capacity = 2;
  config.overload.retry_budget.enabled = true;
  config.overload.retry_budget.initial_tokens = 0.0;
  config.overload.retry_budget.tokens_per_admission = 0.01;
  config.overload.retry_budget.burst = 1.0;
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kWRR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  EXPECT_GT(result.jobs_rejected, 0u);
  EXPECT_GT(result.retry_budget_denied, 0u);
  EXPECT_GT(result.jobs_dropped, 0u);
  expect_accounting_identity(result);
}

TEST(OverloadSim, CircuitBreakerTripsUnderSustainedRejection) {
  auto config = overload_sim({1.0, 1.0, 1.0}, 1.5);
  config.overload.queue_capacity = 2;
  auto dispatcher = hs::core::make_circuit_breaker_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho,
      CircuitBreakerConfig{});
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  const auto* breaker =
      dynamic_cast<const CircuitBreakerDispatcher*>(dispatcher.get());
  ASSERT_NE(breaker, nullptr);
  EXPECT_GT(breaker->trips(), 0u);
  EXPECT_GT(result.jobs_rejected, 0u);
  expect_accounting_identity(result);
}

TEST(OverloadSim, OverloadOnRunsAreDeterministic) {
  auto config = overload_sim({1.0, 2.0}, 1.3);
  config.overload.queue_capacity = 4;
  config.overload.admission = AdmissionKind::kDeadlineShed;
  config.overload.slo_budget = 6.0;
  config.overload.shed_probability = 0.5;  // exercises the RNG stream
  config.overload.retry_budget.enabled = true;
  auto first = hs::core::make_circuit_breaker_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho,
      CircuitBreakerConfig{});
  auto second = hs::core::make_circuit_breaker_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho,
      CircuitBreakerConfig{});
  const auto a = hs::cluster::run_simulation(config, *first);
  const auto b = hs::cluster::run_simulation(config, *second);
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.total_shed, b.total_shed);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected);
  EXPECT_EQ(a.mean_response_time, b.mean_response_time);  // bit-for-bit
  expect_accounting_identity(a);
}

TEST(OverloadSim, StableUnderloadedRunShedsNothing) {
  auto config = overload_sim({1.0, 2.0}, 0.5);
  config.overload.queue_capacity = 200;
  config.overload.admission = AdmissionKind::kQueueBoundShed;
  config.overload.admission_queue_bound = 100;
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  const auto result = hs::cluster::run_simulation(config, *dispatcher);
  // Generous bounds at ρ=0.5: protection is pure bookkeeping.
  EXPECT_EQ(result.jobs_rejected, 0u);
  EXPECT_EQ(result.jobs_shed, 0u);
  EXPECT_EQ(result.jobs_dropped, 0u);
  expect_accounting_identity(result);
}

TEST(OverloadSim, InvalidOverloadConfigRejectedByRun) {
  auto config = overload_sim({1.0, 2.0}, 0.5);
  config.overload.machine_capacity = {4};  // wrong arity
  auto dispatcher = hs::core::make_policy_dispatcher(
      hs::core::PolicyKind::kORR, config.speeds, config.rho);
  EXPECT_THROW((void)hs::cluster::run_simulation(config, *dispatcher),
               CheckError);
}

}  // namespace
