// Tests for the simulation clock and scheduling semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/check.h"

namespace {

using hs::sim::Simulator;

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, ScheduleInAdvancesClockOnFire) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(4.0, [&] { fired_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Simulator, EventsFireInOrderAcrossNesting) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(1.0, [&] {
    order.push_back(1);
    sim.schedule_in(0.5, [&] { order.push_back(2); });  // at t=1.5
  });
  sim.schedule_in(2.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(2.0, [&] { fired.push_back(2.0); });
  sim.schedule_at(3.0, [&] { fired.push_back(3.0); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_TRUE(sim.has_pending());
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, ResumeAfterRunUntil) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_TRUE(fired.empty());
  sim.run_all();
  EXPECT_EQ(fired, (std::vector<double>{5.0}));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_in(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), hs::util::CheckError);
  EXPECT_THROW(sim.schedule_in(-0.1, [] {}), hs::util::CheckError);
}

TEST(Simulator, RunUntilBackwardsThrows) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(4.0), hs::util::CheckError);
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_in(static_cast<double>(i), [] {});
  }
  sim.run_all();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(Simulator, ZeroDelaySelfSchedulingTerminatesWithRunUntil) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run_until(100.0);
  EXPECT_EQ(count, 100);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
